// Ablation A1 — fetch ordering. The BE Plan Generator searches for the
// minimum-bound fetch order (Example 2's discussion: fetching package
// before call gives M = 2,000 + 24,000 + 12M, whereas call-first gives
// 2,000 + 1M + 12M plus a larger intermediate T at runtime). This bench
// executes both the optimizer's plan and a hand-built worst-order plan
// and compares deduced bounds, actual fetches and wall time.

#include "bench_util.h"
#include "bounded/bounded_executor.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

namespace {

/// Reorders the steps of a generated plan to fetch `call` before
/// `package`, recomputing bounds and per-step metadata the way the
/// generator would have for that order.
BoundedPlan SwapLastTwoSteps(const BoundedPlan& optimal) {
  BoundedPlan bad = optimal;
  if (bad.steps.size() != 3) return bad;
  std::swap(bad.steps[1], bad.steps[2]);
  // Recompute running bounds: step 2 now multiplies by its own N over the
  // step-1 bound, etc. Key sources by T-position still line up because
  // both swapped steps key on (pnum <- T, const): pnum's T position is
  // set by step 1 (business) and unchanged by the swap; the layout
  // changes order, so rebuild added-column bookkeeping.
  uint64_t bound = bad.steps[0].step_bound;
  bad.total_access_bound = bound;
  for (size_t i = 1; i < bad.steps.size(); ++i) {
    bound *= bad.steps[i].constraint.limit_n;
    bad.steps[i].step_bound = bound;
    bad.total_access_bound += bound;
  }
  bad.total_bound = bound;
  // Layout follows fetch order: business cols, then call's, then
  // package's. Conjunct scheduling and T-key positions are recomputed by
  // the caller against this new layout.
  bad.layout.clear();
  for (FetchStep& step : bad.steps) {
    for (const AttrRef& attr : step.added_columns) bad.layout.push_back(attr);
  }
  return bad;
}

}  // namespace

int main() {
  double sf = EnvDouble("TLC_SF", 4);
  PrintHeader(StringPrintf("Ablation: fetch order (SF %.1f)", sf));
  TlcEnv env = MakeTlcEnv(sf);
  const std::string& q = TlcExample2Sql();
  auto bound_query = env.db->Bind(q);
  if (!bound_query.ok()) return 1;
  auto coverage = env.session->Check(q);
  if (!coverage.ok() || !coverage->covered) return 1;

  BoundedExecutor executor(env.catalog.get());
  auto optimal = executor.Execute(*bound_query, coverage->plan);
  if (!optimal.ok()) {
    std::fprintf(stderr, "%s\n", optimal.status().ToString().c_str());
    return 1;
  }

  // The worst order: swap package/call fetches. Conjunct scheduling is
  // recomputed by re-running the generator with the call constraint
  // boosted to look cheap, which is the honest way to obtain a valid
  // alternative plan: drop psi2 so the only order is business->call,
  // then... psi2 is required for coverage. Instead: rebuild metadata here.
  BoundedPlan bad = SwapLastTwoSteps(coverage->plan);
  // Fix conjunct scheduling: recompute which conjuncts are evaluable after
  // each step from the layout prefix.
  {
    std::vector<bool> done(bound_query->conjuncts.size(), false);
    for (size_t ci : bad.initial_conjuncts) done[ci] = true;
    size_t consumed = 0;
    for (FetchStep& step : bad.steps) {
      consumed += step.added_columns.size();
      step.conjuncts_after.clear();
      std::vector<AttrRef> prefix(bad.layout.begin(),
                                  bad.layout.begin() + consumed);
      for (size_t ci = 0; ci < bound_query->conjuncts.size(); ++ci) {
        if (done[ci]) continue;
        bool evaluable = !bound_query->conjuncts[ci].attrs.empty();
        for (const AttrRef& attr : bound_query->conjuncts[ci].attrs) {
          bool present = false;
          for (const AttrRef& p : prefix) {
            present |= (p.atom == attr.atom && p.col == attr.col);
          }
          evaluable &= present;
        }
        if (evaluable) {
          step.conjuncts_after.push_back(ci);
          done[ci] = true;
        }
      }
    }
    // Fix kFromT key positions against the new layout.
    for (FetchStep& step : bad.steps) {
      for (size_t k = 0; k < step.key_sources.size(); ++k) {
        KeySource& src = step.key_sources[k];
        if (src.kind != KeySource::Kind::kFromT) continue;
        // The key column equates to business.pnum (atom of step 0).
        for (size_t p = 0; p < bad.layout.size(); ++p) {
          if (bad.layout[p].atom == bad.steps[0].atom &&
              bad.layout[p].col == 0) {
            src.t_column = p;
          }
        }
      }
    }
  }
  auto worst = executor.Execute(*bound_query, bad);
  if (!worst.ok()) {
    std::fprintf(stderr, "%s\n", worst.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %-16s %-16s %-10s %-8s\n", "plan", "deduced M",
              "actual fetched", "time ms", "rows");
  std::printf("%-22s %-16s %-16s %-10.2f %-8zu\n", "optimizer (pkg first)",
              WithCommas(coverage->plan.total_access_bound).c_str(),
              WithCommas(optimal->tuples_accessed).c_str(), optimal->millis,
              optimal->rows.size());
  std::printf("%-22s %-16s %-16s %-10.2f %-8zu\n", "worst (call first)",
              WithCommas(bad.total_access_bound).c_str(),
              WithCommas(worst->tuples_accessed).c_str(), worst->millis,
              worst->rows.size());
  if (!RowMultisetsEqual(optimal->rows, worst->rows)) {
    std::fprintf(stderr, "ANSWERS DIVERGED — ablation invalid\n");
    return 1;
  }
  std::printf("\nanswers identical; the optimizer's order has a %.1fx "
              "smaller deduced bound (12.026M vs 13.002M in paper terms) "
              "and fetches %.1fx fewer tuples here.\n",
              static_cast<double>(bad.total_access_bound) /
                  static_cast<double>(coverage->plan.total_access_bound),
              static_cast<double>(std::max<uint64_t>(worst->tuples_accessed, 1)) /
                  static_cast<double>(
                      std::max<uint64_t>(optimal->tuples_accessed, 1)));
  return 0;
}
