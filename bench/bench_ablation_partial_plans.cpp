// Ablation A3 — partially bounded plans. §3: for queries not covered by
// A, the BE Plan Optimizer "identifies sub-queries of Q that are boundedly
// evaluable under A and speeds up the evaluation of Q by capitalizing on
// the indices of A". This bench builds uncovered variants of TLC queries
// (a covered fragment joined to an unconstrained scan) and compares the
// partially bounded pipeline against fully conventional execution.

#include "bench_util.h"
#include "bounded/plan_optimizer.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  double sf = EnvDouble("TLC_SF", 4);
  PrintHeader(StringPrintf("Ablation: partially bounded plans (SF %.1f)", sf));
  TlcEnv env = MakeTlcEnv(sf);

  // Uncovered queries: business/customer fragments are coverable; the
  // region/severity scans on the other atom are not.
  const struct {
    const char* id;
    const char* sql;
  } queries[] = {
      {"P1",
       "SELECT call.recnum FROM call, business "
       "WHERE business.type = 'bank' AND business.region = 'R1' "
       "AND business.pnum = call.pnum AND call.region = 'R1'"},
      {"P2",
       "SELECT complaint.category, complaint.severity "
       "FROM business, customer, complaint "
       "WHERE business.type = 'bank' AND business.region = 'R1' "
       "AND business.pnum = customer.pnum AND customer.cid = complaint.cid "
       "AND complaint.date = '2016-03-20'"},
      {"P3",
       "SELECT count(*) AS n FROM call, business "
       "WHERE business.type = 'hospital' AND business.region = 'R2' "
       "AND business.pnum = call.pnum AND call.duration > 300"},
  };

  std::printf("%-4s %-10s | %-12s %-12s %-9s | %-16s %-16s %-6s\n", "id",
              "mode", "partial ms", "conv ms", "speedup", "partial tuples",
              "conv tuples", "match");
  for (const auto& query : queries) {
    BeasSession::ExecutionDecision decision;
    auto partial = env.session->Execute(query.sql, &decision);
    auto conventional = env.db->Query(query.sql);
    if (!partial.ok() || !conventional.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", query.id,
                   partial.ok() ? conventional.status().ToString().c_str()
                                : partial.status().ToString().c_str());
      return 1;
    }
    double partial_ms = MedianMillis(
        [&] { (void)env.session->Execute(query.sql); });
    double conv_ms = MedianMillis([&] { (void)env.db->Query(query.sql); });
    bool match = RowMultisetsEqual(partial->rows, conventional->rows);
    const char* mode =
        decision.mode == BeasSession::ExecutionDecision::Mode::kPartiallyBounded
            ? "partial"
            : (decision.mode == BeasSession::ExecutionDecision::Mode::kBounded
                   ? "bounded"
                   : "conv");
    std::printf("%-4s %-10s | %-12.3f %-12.3f %8.1fx | %-16s %-16s %-6s\n",
                query.id, mode, partial_ms, conv_ms,
                conv_ms / std::max(partial_ms, 1e-3),
                WithCommas(partial->tuples_accessed).c_str(),
                WithCommas(conventional->tuples_accessed).c_str(),
                match ? "yes" : "NO");
    if (!match) return 1;
  }
  std::printf("\nthe bounded fragment prunes the probe side of the final "
              "join; the unconstrained relation is still scanned (that is "
              "exactly what distinguishes partially bounded from bounded).\n");
  return 0;
}
