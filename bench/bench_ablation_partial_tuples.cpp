// Ablation A2 — partial vs whole tuples. Paper feature (2), "reduced
// redundancy": BEAS "fetches only (distinct) partial tuples needed for
// answering Q. This reduces duplicated and unnecessary attributes in
// tuples fetched by traditional DBMS." The `call` relation is wide
// (8 attributes incl. duration/cost/cell_id/imei payload); Q only needs
// (recnum, region). This bench runs Q1 under two catalogs: one whose
// call-constraint fetches the 2 needed attributes, one whose constraint
// drags all 8 — comparing values fetched, index footprint and time.

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  double sf = EnvDouble("TLC_SF", 4);
  PrintHeader(StringPrintf("Ablation: partial vs whole tuples (SF %.1f)", sf));
  TlcEnv env = MakeTlcEnv(sf);
  const std::string& q = TlcExample2Sql();

  struct Variant {
    const char* label;
    std::vector<std::string> y_attrs;
  };
  const Variant variants[] = {
      {"partial (recnum,region)", {"recnum", "region"}},
      {"whole tuple (8 attrs)",
       {"recnum", "region", "duration", "cost", "cell_id", "imei"}},
  };

  std::printf("%-26s %-14s %-16s %-14s %-10s\n", "variant", "fetched tuples",
              "values fetched", "index bytes", "time ms");
  std::vector<size_t> rows_check;
  for (const Variant& variant : variants) {
    AsCatalog catalog(env.db.get());
    // psi2/psi3 unchanged; the call constraint differs in Y width.
    if (!catalog.Register({"c1", "call", {"pnum", "date"}, variant.y_attrs,
                           500}).ok()) {
      return 1;
    }
    if (!catalog.Register({"c2", "package", {"pnum", "year"},
                           {"pid", "start", "end"}, 12}).ok()) {
      return 1;
    }
    if (!catalog.Register({"c3", "business", {"type", "region"}, {"pnum"},
                           2000}).ok()) {
      return 1;
    }
    BeasSession session(env.db.get(), &catalog);
    auto result = session.ExecuteBounded(q);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    double ms = MedianMillis([&] { (void)session.ExecuteBounded(q); });
    // Values fetched ~ tuples x Y-arity of the call constraint (plus the
    // smaller psi2/psi3 contributions, identical across variants).
    uint64_t values =
        result->tuples_accessed * (variant.y_attrs.size());
    std::printf("%-26s %-14s %-16s %-14s %-10.2f\n", variant.label,
                WithCommas(result->tuples_accessed).c_str(),
                WithCommas(values).c_str(),
                WithCommas(catalog.TotalIndexBytes()).c_str(), ms);
    rows_check.push_back(result->rows.size());
  }
  if (rows_check.size() == 2 && rows_check[0] != rows_check[1]) {
    std::fprintf(stderr, "ANSWERS DIVERGED\n");
    return 1;
  }
  std::printf("\nnote: whole-tuple fetching also inflates the distinct-Y "
              "buckets (payload attrs defeat deduplication), which is the "
              "paper's \"redundancies get inflated rapidly\" effect in "
              "joins.\n");
  return 0;
}
