// Fig. 2(A) walkthrough — the BE Checker's budget feature: "users can
// also enter a budget on the amount of data to be accessed, and use BE
// Checker to find whether Q can be answered within the budget under A,
// without executing Q". This bench sweeps budgets for every covered TLC
// query and verifies the verdicts against the deduced bounds; it also
// demonstrates resource-bounded approximation when the budget is below M.

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  PrintHeader("Fig 2(A): budget checks without execution + approximation");
  TlcEnv env = MakeTlcEnv(2);

  std::printf("%-4s %-14s | %-12s %-12s %-12s\n", "id", "deduced M",
              "budget 10k", "budget 1M", "budget 100M");
  for (const TlcQuery& query : TlcQueries()) {
    auto coverage = env.session->Check(query.sql);
    if (!coverage.ok()) return 1;
    if (!coverage->covered) {
      std::printf("%-4s %-14s | not boundedly evaluable\n", query.id.c_str(),
                  "-");
      continue;
    }
    std::string cells[3];
    uint64_t budgets[3] = {10000, 1000000, 100000000};
    for (int i = 0; i < 3; ++i) {
      auto report = env.session->CheckBudget(query.sql, budgets[i]);
      if (!report.ok()) return 1;
      cells[i] = report->within_budget ? "yes" : "NO";
      // Verdict must agree with the deduced bound.
      bool expect = coverage->plan.total_access_bound <= budgets[i];
      if (report->within_budget != expect) {
        std::fprintf(stderr, "budget verdict inconsistent for %s\n",
                     query.id.c_str());
        return 1;
      }
    }
    std::printf("%-4s %-14s | %-12s %-12s %-12s\n", query.id.c_str(),
                WithCommas(coverage->plan.total_access_bound).c_str(),
                cells[0].c_str(), cells[1].c_str(), cells[2].c_str());
  }

  // Approximation under a binding budget (Q1's M = 12,026,000 >> budget).
  std::printf("\nresource-bounded approximation of Q1 under tight budgets:\n");
  std::printf("%-12s %-14s %-8s %-10s\n", "budget", "fetched", "eta",
              "rows");
  auto exact = env.session->ExecuteBounded(TlcExample2Sql());
  if (!exact.ok()) return 1;
  for (uint64_t budget : {4ull, 16ull, 64ull, 100000ull}) {
    auto approx = env.session->ExecuteApproximate(TlcExample2Sql(), budget);
    if (!approx.ok()) return 1;
    std::printf("%-12s %-14s %-8.3f %zu%s\n", WithCommas(budget).c_str(),
                WithCommas(approx->tuples_fetched).c_str(), approx->eta,
                approx->result.rows.size(),
                approx->exact ? " (exact)" : "");
  }
  std::printf("exact answer: %zu rows, %s tuples fetched\n",
              exact->rows.size(), WithCommas(exact->tuples_accessed).c_str());
  return 0;
}
