// Fig. 2(D/E) walkthrough — the AS Catalog discovery module: input a
// dataset, a set of query patterns and an objective (storage budget /
// N-penalty); output an access schema. This bench sweeps the storage
// budget and reports, per setting: constraints selected, index bytes,
// and how many of the 11 workload queries become covered.

#include "bench_util.h"
#include "common/string_util.h"
#include "discovery/discovery.h"

using namespace beas;
using namespace beas::bench;

int main() {
  PrintHeader("Fig 2(D/E): access schema discovery under storage budgets");
  TlcEnv env = MakeTlcEnv(1);

  std::vector<std::string> workload;
  for (const TlcQuery& query : TlcQueries()) workload.push_back(query.sql);

  std::printf("%-14s | %-11s %-14s %-14s %-10s\n", "budget", "constraints",
              "index bytes", "covered", "time ms");
  for (double mb : {0.05, 0.5, 4.0, 64.0}) {
    DiscoveryOptions options;
    options.storage_budget_bytes = static_cast<uint64_t>(mb * (1 << 20));
    auto start = std::chrono::steady_clock::now();
    auto result = DiscoverAccessSchema(*env.db, workload, options);
    double elapsed = MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    // Register the discovered schema in a fresh catalog and count coverage.
    AsCatalog catalog(env.db.get());
    for (const AccessConstraint& c : result->schema.constraints()) {
      if (!catalog.Register(c).ok()) return 1;
    }
    BeasSession session(env.db.get(), &catalog);
    size_t covered = 0;
    for (const std::string& sql : workload) {
      auto coverage = session.Check(sql);
      if (coverage.ok() && coverage->covered) ++covered;
    }
    std::printf("%10.2f MB | %-11zu %-14s %zu/%-11zu %-10.1f\n", mb,
                result->schema.size(), WithCommas(result->bytes_used).c_str(),
                covered, workload.size(), elapsed);
  }

  std::printf("\nsample of the discovered schema at 64 MB "
              "(cf. the hand-written A_TLC):\n");
  DiscoveryOptions options;
  options.storage_budget_bytes = 64ull << 20;
  auto result = DiscoverAccessSchema(*env.db, workload, options);
  if (result.ok()) {
    std::string text = result->schema.ToString();
    std::printf("%s", text.substr(0, 1200).c_str());
  }
  return 0;
}
