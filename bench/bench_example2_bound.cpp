// Example 2 (in-text) — the bound deduction itself: BEAS deduces
// M = 2,000 business + 24,000 package + 12,000,000 call partial tuples
// for Q under A0 = {psi1, psi2, psi3}, BEFORE executing, and M does not
// change as D grows. This bench prints the deduced per-step bounds
// (which must equal the paper's arithmetic exactly, since the declared
// N = 2000/12/500 are the paper's) and the actual access counts across
// scale factors — actuals stay under M and under a scale-independent
// cohort-sized envelope.

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  PrintHeader("Example 2: deduced access bound M vs actual access");
  const std::string& q = TlcExample2Sql();

  {
    TlcEnv env = MakeTlcEnv(1);
    auto coverage = env.session->Check(q);
    if (!coverage.ok() || !coverage->covered) {
      std::fprintf(stderr, "Q must be covered\n");
      return 1;
    }
    std::printf("deduced per-fetch bounds:\n");
    const char* paper[3] = {"2,000", "24,000", "12,000,000"};
    for (size_t i = 0; i < coverage->plan.steps.size(); ++i) {
      const FetchStep& step = coverage->plan.steps[i];
      std::printf("  step %zu via %-6s |T| <= %-12s (paper: %s)\n", i + 1,
                  step.constraint.name.c_str(),
                  WithCommas(step.step_bound).c_str(),
                  i < 3 ? paper[i] : "-");
    }
    std::printf("  total M = %s (paper: 12,026,000 = 2,000 + 24,000 + "
                "12,000,000)\n\n",
                WithCommas(coverage->plan.total_access_bound).c_str());
  }

  std::printf("%-6s %-12s %-16s %-14s %-12s\n", "SF", "deduced M",
              "actual fetched", "BEAS (ms)", "PG-like (ms)");
  for (double sf : {1.0, 2.0, 4.0}) {
    TlcEnv env = MakeTlcEnv(sf);
    auto coverage = env.session->Check(q);
    auto beas = env.session->ExecuteBounded(q);
    auto pg = env.db->Query(q);
    if (!coverage.ok() || !beas.ok() || !pg.ok()) return 1;
    std::printf("%-6.1f %-12s %-16s %-14.2f %-12.2f\n", sf,
                WithCommas(coverage->plan.total_access_bound).c_str(),
                WithCommas(beas->tuples_accessed).c_str(), beas->millis,
                pg->millis);
    if (beas->tuples_accessed > coverage->plan.total_access_bound) {
      std::fprintf(stderr, "BOUND VIOLATED\n");
      return 1;
    }
  }
  std::printf("\npaper: \"finds exact answers to Q in 96.13ms ... while a "
              "commercial DBMS takes 187.8s, i.e., BEAS is 1953 times "
              "faster, although it still accesses over 12 million tuples\" "
              "(their data fills the bound; our synthetic cohort is "
              "sparser, so actuals sit far below M — M itself matches).\n");
  return 0;
}
