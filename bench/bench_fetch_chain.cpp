// Fetch-chain executor bench: vectorized (columnar T + batched probes +
// compiled step programs) vs the scalar row-at-a-time reference, on the
// multi-step TLC chains the paper's core claim rests on. Measures the
// fetch chain itself (ExecuteFragment — what the tentpole vectorizes) and
// the end-to-end bounded execution (fetch chain + shared relational
// tail), verifies result parity (rows, order, weights, η) per chain, and
// emits BENCH_fetch_chain.json so CI tracks the perf trajectory.
//
// A second section drives *string-keyed* chains over a synthetic
// three-level edge graph with ~30-byte node names, where every probe key
// and every gathered payload is a string — the workload the dictionary
// encoding targets. Each chain is timed three ways: scalar reference,
// vectorized with dictionary encoding (the default), and vectorized with
// interning disabled (the PR 2 executor's behavior); `dict_speedup` is
// the dictionary's isolated contribution on the vectorized path, and all
// three must produce identical fragments.
//
// A third section measures *hash-partitioned storage* (the sharding
// tentpole): the same TLC data is materialized at BEAS_SHARDS=1 and at
// BEAS_SHARDS=N (default 4), and every multi-step chain runs the
// vectorized executor with the same worker pool on both — so the
// difference is exactly the sharded fan-out (partitioned AC-index probes
// + chunk-parallel gather). Both runs must be bit-identical to the
// unsharded scalar reference; the Fig. 4 chain's sharded/unsharded ratio
// is the CI gate (tools/check_bench_regression.py, skipped on single-core
// runners where no parallel speedup is physically possible).
//
// A fourth section measures the *columnar relational tail*: tail-heavy
// queries (high-cardinality string GROUP BY, DISTINCT, ORDER BY + LIMIT)
// over the Fig. 4-shaped string chain, executed end to end twice on the
// same vectorized fetch chain — once with the columnar tail (default) and
// once with the scalar row-at-a-time tail — after a maintenance pass has
// renumbered the dictionaries into sorted order (so string ORDER BY is
// pure code comparisons on both paths). `fig4_tail_speedup` (the 3-step
// chain's ratio) is gated at >= 1.5x by tools/check_bench_regression.py;
// results must be identical rows-and-order on both tails.
//
// A fifth section measures the *write path* (the durability subsystem):
// the same single-row insert storm is driven through a durable service
// (per-shard WAL, group commit, one fsync per group) and through an
// in-memory service, from WRITE_WRITERS concurrent client threads. Each
// durable Insert blocks until its group's fsync AND apply complete, so
// the per-op wall time IS the group-commit ack latency — reported as
// p50/p99 — and the throughput ratio is the price of durability. Both
// runs must read back exactly the inserted row count. The durable run
// lands on tmpfs (/dev/shm) when available so CI measures the protocol,
// not the disk.
//
// A sixth section measures *overload behavior* (the admission-control
// tentpole): a closed-loop submit storm from OVERLOAD_CLIENTS threads
// drives covered bounded queries through a service deliberately
// provisioned too small (tiny max_inflight_cost, a submit queue shorter
// than the client count). The service must degrade before it rejects and
// reject before it collapses: the section records how many requests were
// answered exactly, answered degraded (admission capped the fetch budget,
// honest η < 1), and refused outright, plus the mean η of what was served
// and the submit-to-resolve ack p50/p99. These land in the JSON for
// trend-watching (recorded only — counts are timing-dependent, so the
// regression gate does not bar them); the section fails the bench only
// if a request errors with something other than the typed
// kResourceExhausted rejection, or nothing is accepted at all.
//
// A seventh section measures the *network front door*: a loopback wire
// server (BNW1 protocol) under a closed-loop storm of NET_CLIENTS TCP
// clients split across two tenants — "alpha" uncapped, "beta" cost-capped
// below one query's bound — running mixed read/write traffic. Every exact
// wire answer must be bit-identical to in-process Execute on the same
// service; degraded answers must be subsets; the only acceptable error is
// the typed tenant rejection. Per-tenant closed-loop p50/p99 and QPS land
// in the JSON (recorded only — loopback latency is machine-dependent).
//
// Knobs: TLC_SF (default 32) data scale; FETCH_REPS (default 15) timing
// reps; BEAS_SHARDS (default 4) sharded-run shard count; WRITE_ROWS
// (default 512*sf) / WRITE_WRITERS (default 4) write-path storm shape;
// OVERLOAD_CLIENTS (default 8) / OVERLOAD_REQS (default 64 per client)
// overload storm shape; NET_CLIENTS (default 8) / NET_REQS (default 60
// per client) wire storm shape; BENCH_JSON_PATH (default
// BENCH_fetch_chain.json).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/file_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/beas_service.h"

#include "bench_util.h"
#include "bounded/bounded_executor.h"
#include "common/shard_config.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "maintenance/maintenance.h"
#include "workload/tlc_queries.h"

using namespace beas;
using namespace beas::bench;

namespace {

struct ChainResult {
  std::string name;
  size_t steps = 0;
  double frag_scalar_ms = 0;
  double frag_vectorized_ms = 0;
  double frag_speedup = 0;
  double exec_scalar_ms = 0;
  double exec_vectorized_ms = 0;
  double exec_speedup = 0;
  double vectorized_qps = 0;
  bool identical = false;
};

bool FragmentsIdentical(const BoundedExecutor::Fragment& a,
                        const BoundedExecutor::Fragment& b) {
  if (a.rows.size() != b.rows.size()) return false;
  if (a.weights != b.weights) return false;
  if (a.stats.eta != b.stats.eta) return false;
  if (a.stats.tuples_fetched != b.stats.tuples_fetched) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (CompareValueVec(a.rows[r], b.rows[r]) != 0) return false;
  }
  return true;
}

double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(std::max(x, 1e-6));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

// ---------------------------------------------------------------------------
// String-keyed chains: a three-level edge graph whose keys and payloads
// are all strings long enough (~30 bytes) to defeat SSO — the shape where
// inline strings cost an allocation per copy and a byte hash per probe.
// ---------------------------------------------------------------------------

struct StringChainResult {
  std::string name;
  size_t steps = 0;
  double frag_scalar_ms = 0;
  double frag_vectorized_ms = 0;
  double frag_speedup = 0;       ///< scalar / vectorized (dict on)
  double frag_nodict_ms = 0;     ///< vectorized, interning disabled (PR 2)
  double dict_speedup = 0;       ///< nodict / dict on the vectorized path
  bool identical = false;
};

struct StringChainEnv {
  std::unique_ptr<Database> db;
  std::unique_ptr<AsCatalog> catalog;
  std::unique_ptr<BeasSession> session;
};

std::string NodeName(const char* level, int i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_%05d_padpadpadpadpadpadpad", level, i);
  return buf;
}

/// Builds the edge graph with interning on or off: 4 roots x 64 level-1
/// nodes, 32 edges per level-1 node into 1024 level-2 nodes, 8 edges per
/// level-2 node into 256 level-3 nodes.
StringChainEnv MakeStringChainEnv(double sf, bool dict_enabled) {
  bool saved = TableHeap::default_dict_enabled();
  TableHeap::default_dict_enabled() = dict_enabled;
  StringChainEnv env;
  env.db = std::make_unique<Database>();
  int l1 = std::max(8, static_cast<int>(2 * sf));
  int l2 = l1 * 4;
  int l3 = std::max(16, l2 / 4);
  Schema edge_schema({{"src", TypeId::kString}, {"dst", TypeId::kString}});
  const char* names[] = {"e1", "e2", "e3"};
  for (const char* name : names) {
    if (!env.db->CreateTable(name, edge_schema).ok()) std::abort();
  }
  auto heap = [&](const char* name) {
    return (*env.db->catalog()->GetTable(name))->heap();
  };
  std::vector<Row> rows;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < l1 / 4; ++i) {
      rows.push_back({Value::String(NodeName("root", r)),
                      Value::String(NodeName("l1", r * (l1 / 4) + i))});
    }
  }
  heap("e1")->InsertBatchUnchecked(std::move(rows));
  rows.clear();
  for (int i = 0; i < l1; ++i) {
    for (int j = 0; j < 32; ++j) {
      rows.push_back({Value::String(NodeName("l1", i)),
                      Value::String(NodeName("l2", (i * 32 + j) % l2))});
    }
  }
  heap("e2")->InsertBatchUnchecked(std::move(rows));
  rows.clear();
  for (int k = 0; k < l2; ++k) {
    for (int m = 0; m < 8; ++m) {
      rows.push_back({Value::String(NodeName("l2", k)),
                      Value::String(NodeName("l3", (k * 8 + m) % l3))});
    }
  }
  heap("e3")->InsertBatchUnchecked(std::move(rows));

  env.catalog = std::make_unique<AsCatalog>(env.db.get());
  if (!env.catalog
           ->Register(
               {"chi1", "e1", {"src"}, {"dst"}, static_cast<uint64_t>(l1)})
           .ok() ||
      !env.catalog->Register({"chi2", "e2", {"src"}, {"dst"}, 32}).ok() ||
      !env.catalog->Register({"chi3", "e3", {"src"}, {"dst"}, 8}).ok()) {
    std::abort();
  }
  env.session =
      std::make_unique<BeasSession>(env.db.get(), env.catalog.get());
  TableHeap::default_dict_enabled() = saved;
  return env;
}

const std::vector<std::pair<std::string, std::string>>& StringChainQueries() {
  static const auto* kQueries =
      new std::vector<std::pair<std::string, std::string>>{
          {"S1",
           "SELECT c.dst FROM e1 a, e2 b, e3 c WHERE a.src = '" +
               NodeName("root", 0) + "' AND b.src = a.dst AND c.src = b.dst"},
          {"S2",
           "SELECT b.dst FROM e1 a, e2 b WHERE a.src IN ('" +
               NodeName("root", 1) + "', '" + NodeName("root", 2) +
               "') AND b.src = a.dst AND b.dst <> '" + NodeName("l2", 7) +
               "'"},
          {"S3",
           "SELECT DISTINCT c.dst FROM e1 a, e2 b, e3 c WHERE a.src = '" +
               NodeName("root", 3) +
               "' AND b.src = a.dst AND c.src = b.dst AND c.dst >= '" +
               NodeName("l3", 0) + "'"},
      };
  return *kQueries;
}

// ---------------------------------------------------------------------------
// Columnar vs scalar relational tail over the string chain.
// ---------------------------------------------------------------------------

struct TailRun {
  std::string name;
  size_t steps = 0;
  size_t t_rows = 0;          ///< T rows entering the tail
  double scalar_tail_ms = 0;  ///< vectorized chain + scalar tail
  double columnar_tail_ms = 0;
  double speedup = 0;
  bool identical = false;
};

/// Tail-heavy queries over the edge graph: the fetch chain fans out to
/// thousands of T rows, then everything interesting happens in the tail.
const std::vector<std::pair<std::string, std::string>>& TailQueries() {
  static const auto* kQueries = new std::vector<
      std::pair<std::string, std::string>>{
      // Fig. 4-shaped 3-step chain, high-cardinality string GROUP BY +
      // ORDER BY over the counts — the CI-gated headline.
      {"T1",
       "SELECT c.dst, count(*) AS n FROM e1 a, e2 b, e3 c WHERE a.src IN "
       "('" + NodeName("root", 0) + "', '" + NodeName("root", 1) + "', '" +
           NodeName("root", 2) + "', '" + NodeName("root", 3) +
           "') AND b.src = a.dst AND c.src = b.dst GROUP BY c.dst "
           "ORDER BY 2 DESC, 1"},
      // Grouped aggregation with DISTINCT + MIN/MAX over string keys.
      {"T2",
       "SELECT b.dst, count(*) AS n, count(DISTINCT a.src) AS roots, "
       "min(a.dst) AS lo FROM e1 a, e2 b WHERE a.src IN ('" +
           NodeName("root", 0) + "', '" + NodeName("root", 1) + "', '" +
           NodeName("root", 2) + "', '" + NodeName("root", 3) +
           "') AND b.src = a.dst GROUP BY b.dst ORDER BY 1"},
      // DISTINCT projection, encoded dedup + sort.
      {"T3",
       "SELECT DISTINCT c.dst, b.dst FROM e1 a, e2 b, e3 c WHERE a.src = '" +
           NodeName("root", 0) +
           "' AND b.src = a.dst AND c.src = b.dst ORDER BY 1, 2"},
      // Bag-expansion ORDER BY + LIMIT: the index sort materializes only
      // the survivors.
      {"T4",
       "SELECT c.dst, b.dst FROM e1 a, e2 b, e3 c WHERE a.src IN ('" +
           NodeName("root", 0) + "', '" + NodeName("root", 1) +
           "') AND b.src = a.dst AND c.src = b.dst ORDER BY 1 DESC, 2 "
           "LIMIT 500"},
  };
  return *kQueries;
}

bool ResultsIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (CompareValueVec(a.rows[r], b.rows[r]) != 0) return false;
  }
  return true;
}

std::vector<TailRun> RunTailSection(StringChainEnv* env, int reps,
                                    bool* error) {
  BoundedExecutor executor(env->catalog.get());
  // Production shape: a maintenance cycle has renumbered the dictionaries
  // into sorted order, so ORDER BY on string columns is pure code
  // comparisons — on both tails (the scalar tail's Value::Compare takes
  // the same sorted-code fast path; the columnar win measured here is
  // grouping and materialization, not a sort handicap).
  MaintenanceManager maintenance(env->db.get(), env->catalog.get());
  MaintenanceManager::DictRebuildPolicy force;
  force.min_strings = 1;
  force.min_out_of_order_fraction = 0.0;
  if (!maintenance.MaintainDictionaries(force).ok()) *error = true;

  std::vector<TailRun> out;
  for (const auto& [id, sql] : TailQueries()) {
    auto coverage = env->session->Check(sql);
    if (!coverage.ok() || !coverage->covered) {
      std::fprintf(stderr, "%s: tail chain not covered\n", id.c_str());
      *error = true;
      continue;
    }
    auto bound = env->db->Bind(sql);
    if (!bound.ok()) {
      *error = true;
      continue;
    }
    const BoundQuery& query = *bound;
    const BoundedPlan& plan = coverage->plan;

    BoundedExecOptions columnar_opts;
    columnar_opts.collect_stats = false;
    auto compiled = CompileBoundedPlan(query, plan, *env->catalog);
    if (compiled.ok()) columnar_opts.compiled = &*compiled;
    BoundedExecOptions scalar_tail_opts = columnar_opts;
    scalar_tail_opts.use_columnar_tail = false;

    auto res_c = executor.Execute(query, plan, columnar_opts);
    auto res_s = executor.Execute(query, plan, scalar_tail_opts);
    auto frag = executor.ExecuteFragment(query, plan, columnar_opts);
    if (!res_c.ok() || !res_s.ok() || !frag.ok()) {
      std::fprintf(stderr, "%s: tail executor error\n", id.c_str());
      *error = true;
      continue;
    }
    for (int w = 0; w < 3; ++w) {
      (void)executor.Execute(query, plan, columnar_opts);
      (void)executor.Execute(query, plan, scalar_tail_opts);
    }

    TailRun r;
    r.name = id;
    r.steps = plan.steps.size();
    r.t_rows = frag->rows.size();
    r.identical = ResultsIdentical(*res_c, *res_s);
    r.columnar_tail_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, columnar_opts); }, reps);
    r.scalar_tail_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, scalar_tail_opts); }, reps);
    r.speedup = r.scalar_tail_ms / std::max(r.columnar_tail_ms, 1e-6);
    out.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sharded vs unsharded storage on the TLC chains.
// ---------------------------------------------------------------------------

struct ShardRun {
  std::string name;
  size_t steps = 0;
  double ms = 0;
  bool identical = false;
};

/// Materializes TLC at `shards` storage shards and median-times every
/// covered multi-step chain on the vectorized executor with a worker pool
/// and compiled plans — so two calls differ only in the shard count. Each
/// chain is cross-checked bit-for-bit against the scalar reference on the
/// same storage.
std::vector<ShardRun> RunShardSection(double sf, int reps, size_t shards,
                                      bool* error) {
  ShardCountOverride() = shards;
  TlcEnv env = MakeTlcEnv(sf);
  ShardCountOverride() = 0;
  BoundedExecutor executor(env.catalog.get());
  TaskPool pool(std::max<size_t>(2, shards));

  std::vector<ShardRun> out;
  for (const TlcQuery& q : TlcQueries()) {
    if (!q.expect_covered) continue;
    auto coverage = env.session->Check(q.sql);
    if (!coverage.ok() || !coverage->covered) continue;
    auto bound = env.db->Bind(q.sql);
    if (!bound.ok()) continue;
    const BoundQuery& query = *bound;
    const BoundedPlan& plan = coverage->plan;
    if (plan.steps.size() < 2) continue;

    BoundedExecOptions vec_opts;
    vec_opts.collect_stats = false;
    vec_opts.probe_pool = &pool;
    auto compiled = CompileBoundedPlan(query, plan, *env.catalog);
    if (compiled.ok()) vec_opts.compiled = &*compiled;
    BoundedExecOptions scalar_opts;
    scalar_opts.use_vectorized = false;
    scalar_opts.collect_stats = false;

    auto frag_v = executor.ExecuteFragment(query, plan, vec_opts);
    auto frag_s = executor.ExecuteFragment(query, plan, scalar_opts);
    if (!frag_v.ok() || !frag_s.ok()) {
      *error = true;
      continue;
    }
    for (int w = 0; w < 3; ++w) {
      (void)executor.ExecuteFragment(query, plan, vec_opts);
    }
    ShardRun r;
    r.name = q.id;
    r.steps = plan.steps.size();
    // Scalar runs on the same (sharded) storage: if partitioning leaked
    // into answers anywhere, this cross-check diverges.
    r.identical = FragmentsIdentical(*frag_v, *frag_s);
    r.ms = MedianMillis(
        [&] { (void)executor.ExecuteFragment(query, plan, vec_opts); }, reps);
    out.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Write path: durable inserts (WAL + group commit) vs in-memory.
// ---------------------------------------------------------------------------

struct WritePathResult {
  size_t rows = 0;
  size_t writers = 0;
  double inmem_rows_per_sec = 0;
  double durable_rows_per_sec = 0;
  double durable_relative = 0;  ///< durable / in-memory throughput
  double ack_p50_ms = 0;        ///< durable per-insert ack latency
  double ack_p99_ms = 0;
  uint64_t group_commits = 0;
  uint64_t fsyncs = 0;
  double rows_per_group = 0;
  bool ok = false;
};

/// Fresh data directory for the durable run — tmpfs when available so
/// the bench times the commit protocol rather than the disk (matching
/// the CI recovery job, which also runs on /dev/shm).
std::string MakeWriteBenchDir() {
  const char* base = "/dev/shm";
  if (::access(base, W_OK) != 0) {
    base = std::getenv("TMPDIR");
    if (base == nullptr || *base == '\0') base = "/tmp";
  }
  std::string tmpl = std::string(base) + "/beas_bench_wal_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return std::string();
  return buf.data();
}

/// Drives `writers` client threads, each pushing its slice of `rows`
/// single-row inserts through the service. Insert() returns only after
/// the row is applied — and, in durable mode, after its group's fsync —
/// so per-op wall time is the commit ack latency; those land in
/// `ack_ms` when non-null. Returns total wall-clock milliseconds.
double InsertStorm(BeasService* service, size_t rows, size_t writers,
                   std::vector<double>* ack_ms, bool* ok) {
  std::vector<std::vector<double>> lat(writers);
  std::vector<std::thread> threads;
  std::atomic<bool> all_ok{true};
  auto t0 = std::chrono::steady_clock::now();
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      size_t begin = rows * w / writers;
      size_t end = rows * (w + 1) / writers;
      if (ack_ms != nullptr) lat[w].reserve(end - begin);
      char key[32];
      for (size_t i = begin; i < end; ++i) {
        std::snprintf(key, sizeof(key), "wkey_%08zu", i);
        auto op0 = std::chrono::steady_clock::now();
        Status st = service->Insert(
            "wp", {Value::String(key), Value::Int64(static_cast<int64_t>(i))});
        if (!st.ok()) all_ok.store(false);
        if (ack_ms != nullptr) lat[w].push_back(MillisSince(op0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_ms = MillisSince(t0);
  if (!all_ok.load()) *ok = false;
  if (ack_ms != nullptr) {
    for (std::vector<double>& l : lat) {
      ack_ms->insert(ack_ms->end(), l.begin(), l.end());
    }
  }
  return wall_ms;
}

/// Read-after-write check: the table must hold exactly `rows` rows.
bool CountMatches(BeasService* service, size_t rows) {
  auto res = service->Execute("SELECT count(*) FROM wp");
  return res.ok() && res->result.rows.size() == 1 &&
         res->result.rows[0][0].AsInt64() == static_cast<int64_t>(rows);
}

WritePathResult RunWritePathSection(double sf) {
  WritePathResult r;
  r.rows = static_cast<size_t>(EnvDouble("WRITE_ROWS", 512 * sf));
  r.writers = std::max<size_t>(1, static_cast<size_t>(
                                      EnvDouble("WRITE_WRITERS", 4)));
  r.ok = true;
  Schema schema({{"k", TypeId::kString}, {"v", TypeId::kInt64}});

  ServiceOptions inmem_opts;
  inmem_opts.num_workers = 1;
  {
    BeasService svc(inmem_opts);
    if (!svc.CreateTable("wp", schema).ok()) r.ok = false;
    double wall_ms = InsertStorm(&svc, r.rows, r.writers, nullptr, &r.ok);
    r.inmem_rows_per_sec = 1000.0 * static_cast<double>(r.rows) /
                           std::max(wall_ms, 1e-6);
    if (!CountMatches(&svc, r.rows)) r.ok = false;
  }

  std::string dir = MakeWriteBenchDir();
  if (dir.empty()) {
    r.ok = false;
    return r;
  }
  {
    ServiceOptions opts = inmem_opts;
    opts.durability.dir = dir;
    BeasService svc(opts);
    if (!svc.durable() || !svc.durability_status().ok() ||
        !svc.CreateTable("wp", schema).ok()) {
      r.ok = false;
    }
    std::vector<double> ack_ms;
    double wall_ms = InsertStorm(&svc, r.rows, r.writers, &ack_ms, &r.ok);
    r.durable_rows_per_sec = 1000.0 * static_cast<double>(r.rows) /
                             std::max(wall_ms, 1e-6);
    if (!CountMatches(&svc, r.rows)) r.ok = false;
    std::sort(ack_ms.begin(), ack_ms.end());
    if (!ack_ms.empty()) {
      r.ack_p50_ms = ack_ms[ack_ms.size() / 2];
      r.ack_p99_ms = ack_ms[std::min(ack_ms.size() - 1,
                                     ack_ms.size() * 99 / 100)];
    }
    durability::DurabilityCounters counters = svc.durability_counters();
    r.group_commits = counters.wal_group_commits_total;
    r.fsyncs = counters.wal_fsyncs_total;
    if (r.group_commits == 0 || counters.wal_records_total < r.rows) {
      r.ok = false;
    }
    r.rows_per_group = static_cast<double>(r.rows) /
                       std::max<double>(1.0, static_cast<double>(
                                                 r.group_commits));
  }
  RemoveAll(dir);
  r.durable_relative =
      r.durable_rows_per_sec / std::max(r.inmem_rows_per_sec, 1e-6);
  return r;
}

// ---------------------------------------------------------------------------
// Overload: closed-loop submit storm against an underprovisioned service.
// ---------------------------------------------------------------------------

struct OverloadResult {
  size_t requests = 0;
  size_t clients = 0;
  uint64_t accepted = 0;     ///< answered (exact or degraded)
  uint64_t degraded = 0;     ///< answered under an admission-capped budget
  uint64_t rejected = 0;     ///< typed kResourceExhausted (queue/admission)
  double mean_eta = 0;       ///< mean coverage η over accepted answers
  double ack_p50_ms = 0;     ///< submit-to-resolve latency, accepted or not
  double ack_p99_ms = 0;
  bool ok = false;
};

/// Drives `clients` closed-loop threads (submit, wait, repeat) of covered
/// IN-probe queries — each with a deduced access bound of 8 keys x 64
/// rows = 512 cost units — through a service whose admission pool holds
/// less than two such queries and whose submit queue is shorter than the
/// client count. Every request must resolve as an answer (possibly
/// degraded with honest η) or a typed kResourceExhausted rejection;
/// anything else fails the section.
OverloadResult RunOverloadSection() {
  OverloadResult r;
  r.clients = std::max<size_t>(
      2, static_cast<size_t>(EnvDouble("OVERLOAD_CLIENTS", 8)));
  size_t per_client =
      std::max<size_t>(1, static_cast<size_t>(EnvDouble("OVERLOAD_REQS", 64)));
  r.requests = r.clients * per_client;
  r.ok = true;

  constexpr int kKeys = 64;
  constexpr int kFanout = 64;
  constexpr int kProbeKeys = 8;

  ServiceOptions opts;
  opts.num_workers = 2;
  // The storm must be able to overfill the queue (closed-loop clients
  // hold at most `clients` submissions in flight) and the admission pool
  // (each query asks for kProbeKeys * kFanout = 512 cost units).
  opts.max_queue_depth = r.clients - 1;
  opts.max_inflight_cost = kProbeKeys * kFanout + kFanout;
  BeasService svc(opts);

  Schema schema({{"k", TypeId::kString}, {"v", TypeId::kInt64}});
  if (!svc.CreateTable("ov", schema).ok()) r.ok = false;
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(kKeys) * kFanout);
  char key[32];
  for (int k = 0; k < kKeys; ++k) {
    std::snprintf(key, sizeof(key), "ovkey_%04d", k);
    for (int f = 0; f < kFanout; ++f) {
      rows.push_back({Value::String(key),
                      Value::Int64(static_cast<int64_t>(k) * kFanout + f)});
    }
  }
  if (!svc.InsertBatch("ov", std::move(rows)).ok()) r.ok = false;
  if (!svc.RegisterConstraint({"ov_acc", "ov", {"k"}, {"v"}, kFanout}).ok()) {
    r.ok = false;
  }
  if (!r.ok) return r;

  // 8-key IN probe starting at a per-request offset: covered, single
  // step, bound 512 — big enough that two can't be admitted side by side.
  auto storm_query = [&](size_t request) {
    std::string sql = "SELECT v FROM ov WHERE k IN (";
    for (int j = 0; j < kProbeKeys; ++j) {
      char k[32];
      std::snprintf(k, sizeof(k), "ovkey_%04zu",
                    (request * 7 + static_cast<size_t>(j) * 5) % kKeys);
      sql += (j > 0 ? ", '" : "'");
      sql += k;
      sql += "'";
    }
    sql += ")";
    return sql;
  };

  std::vector<std::thread> threads;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<bool> all_ok{true};
  std::vector<std::vector<double>> lat(r.clients);
  std::vector<std::vector<double>> etas(r.clients);
  for (size_t c = 0; c < r.clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        std::string sql = storm_query(c * per_client + i);
        auto op0 = std::chrono::steady_clock::now();
        auto res = svc.Submit(sql).get();
        lat[c].push_back(MillisSince(op0));
        if (res.ok()) {
          accepted.fetch_add(1);
          if (res->degraded) degraded.fetch_add(1);
          etas[c].push_back(res->eta);
        } else if (res.status().code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);  // queue full, admission, or min_eta
        } else {
          all_ok.store(false);  // overload must never surface as an
                                // untyped error
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  r.accepted = accepted.load();
  r.degraded = degraded.load();
  r.rejected = rejected.load();
  if (!all_ok.load() || r.accepted == 0) r.ok = false;
  double eta_sum = 0;
  size_t eta_n = 0;
  std::vector<double> ack_ms;
  ack_ms.reserve(r.requests);
  for (size_t c = 0; c < r.clients; ++c) {
    for (double e : etas[c]) eta_sum += e;
    eta_n += etas[c].size();
    ack_ms.insert(ack_ms.end(), lat[c].begin(), lat[c].end());
  }
  r.mean_eta = eta_n == 0 ? 0 : eta_sum / static_cast<double>(eta_n);
  std::sort(ack_ms.begin(), ack_ms.end());
  if (!ack_ms.empty()) {
    r.ack_p50_ms = ack_ms[ack_ms.size() / 2];
    r.ack_p99_ms = ack_ms[std::min(ack_ms.size() - 1, ack_ms.size() * 99 / 100)];
  }
  return r;
}

// ---------------------------------------------------------------------------
// Network front door: closed-loop multi-client loopback storm.
// ---------------------------------------------------------------------------

struct NetTenantLane {
  uint64_t requests = 0;  ///< reads + writes driven under this tenant
  double p50_ms = 0;      ///< closed-loop round-trip latency
  double p99_ms = 0;
  double qps = 0;
};

struct NetBenchResult {
  size_t clients = 0;
  size_t requests = 0;     ///< total ops over the wire (reads + inserts)
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t degraded = 0;   ///< answers served under a tenant-capped grant
  uint64_t rejected = 0;   ///< typed kResourceExhausted refusals
  NetTenantLane alpha;     ///< uncapped tenant
  NetTenantLane beta;      ///< cost-capped tenant
  bool ok = false;
};

/// Drives NET_CLIENTS closed-loop TCP clients (even threads as tenant
/// "alpha", odd as the cost-capped "beta") through a loopback wire
/// server: mixed read/write (1 insert per 5 ops), every exact answer
/// verified bit-identical against in-process Execute on the same
/// service, degraded answers verified as subsets, and any error other
/// than the typed tenant rejection fails the section. Latencies are
/// per-tenant closed-loop round trips — the wire's own contribution on
/// top of the in-process numbers the other sections record.
NetBenchResult RunNetSection() {
  NetBenchResult r;
  r.clients = std::max<size_t>(
      2, static_cast<size_t>(EnvDouble("NET_CLIENTS", 8)));
  size_t per_client =
      std::max<size_t>(1, static_cast<size_t>(EnvDouble("NET_REQS", 60)));
  r.ok = true;

  constexpr int kKeys = 48;
  constexpr int kFanout = 12;
  constexpr uint64_t kBound = 64;

  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_inflight_cost = 64 * kBound;
  // beta gets half a query's bound: every beta read is admitted degraded
  // (grant < bound) and concurrent beta reads contend for the cap.
  opts.tenant_cost_caps["beta"] = kBound / 2;
  BeasService svc(opts);
  if (!svc.CreateTable("net", Schema({{"k", TypeId::kInt64},
                                      {"v", TypeId::kInt64}}))
           .ok()) {
    r.ok = false;
  }
  std::vector<Row> seed;
  seed.reserve(static_cast<size_t>(kKeys) * kFanout);
  for (int k = 0; k < kKeys; ++k) {
    for (int f = 0; f < kFanout; ++f) {
      seed.push_back({Value::Int64(k),
                      Value::Int64(static_cast<int64_t>(k) * 1000 + f)});
    }
  }
  if (!svc.InsertBatch("net", std::move(seed)).ok()) r.ok = false;
  if (!svc.RegisterConstraint({"net_acc", "net", {"k"}, {"v"}, kBound})
           .ok()) {
    r.ok = false;
  }
  if (!r.ok) return r;

  auto key_query = [](int k) {
    return "SELECT net.v FROM net WHERE net.k = " + std::to_string(k);
  };
  // In-process reference, captured before the storm (reads only touch
  // keys < kKeys; wire inserts land on disjoint high keys).
  std::vector<std::vector<std::string>> reference(kKeys);
  auto row_strings = [](const std::vector<Row>& rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  for (int k = 0; k < kKeys; ++k) {
    auto ref = svc.Execute(key_query(k));
    if (!ref.ok()) {
      r.ok = false;
      return r;
    }
    reference[k] = row_strings(ref->result.rows);
  }

  net::Server server(&svc);
  if (!server.Start().ok()) {
    r.ok = false;
    return r;
  }

  std::atomic<uint64_t> reads{0}, writes{0}, degraded{0}, rejected{0};
  std::atomic<bool> all_ok{true};
  std::vector<std::vector<double>> lat(r.clients);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < r.clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        all_ok.store(false);
        return;
      }
      const std::string tenant = (c % 2 == 0) ? "alpha" : "beta";
      lat[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        auto op0 = std::chrono::steady_clock::now();
        if (i % 5 == 4) {
          // Write lane: fresh keys disjoint from the read working set.
          int64_t key = 10000 + static_cast<int64_t>(c) * 1000 +
                        static_cast<int64_t>(i);
          auto acked = client.Insert(
              "net", {{Value::Int64(key), Value::Int64(key * 10)}});
          lat[c].push_back(MillisSince(op0));
          if (!acked.ok() || *acked != 1) {
            all_ok.store(false);
          } else {
            writes.fetch_add(1);
          }
          continue;
        }
        int k = static_cast<int>((c * 11 + i * 7) % kKeys);
        QueryRequest request;
        request.sql = key_query(k);
        request.tenant = tenant;
        auto resp = client.Query(request);
        lat[c].push_back(MillisSince(op0));
        if (!resp.ok()) {
          if (resp.status().code() == StatusCode::kResourceExhausted) {
            rejected.fetch_add(1);
          } else {
            all_ok.store(false);
          }
          continue;
        }
        reads.fetch_add(1);
        if (resp->degraded) degraded.fetch_add(1);
        auto got = row_strings(resp->result.rows);
        if (resp->eta >= 1.0 && !resp->timed_out) {
          if (got != reference[k]) all_ok.store(false);
        } else if (!std::includes(reference[k].begin(), reference[k].end(),
                                  got.begin(), got.end())) {
          all_ok.store(false);  // partial answers must still be subsets
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_s = MillisSince(t0) / 1000.0;
  server.Stop();

  r.reads = reads.load();
  r.writes = writes.load();
  r.degraded = degraded.load();
  r.rejected = rejected.load();
  r.requests = r.clients * per_client;
  if (!all_ok.load() || r.reads == 0 || r.writes == 0) r.ok = false;

  auto lane = [&](size_t parity) {
    NetTenantLane out;
    std::vector<double> ms;
    for (size_t c = parity; c < r.clients; c += 2) {
      ms.insert(ms.end(), lat[c].begin(), lat[c].end());
    }
    out.requests = ms.size();
    if (ms.empty()) return out;
    std::sort(ms.begin(), ms.end());
    out.p50_ms = ms[ms.size() / 2];
    out.p99_ms = ms[std::min(ms.size() - 1, ms.size() * 99 / 100)];
    out.qps = wall_s > 0 ? static_cast<double>(ms.size()) / wall_s : 0;
    return out;
  };
  r.alpha = lane(0);
  r.beta = lane(1);
  return r;
}

// ---------------------------------------------------------------------------
// Hot-key result cache: Zipf-skewed repeated-parameter storm over the wire.
// ---------------------------------------------------------------------------

struct HotKeyLane {
  double p50_ms = 0;  ///< closed-loop round-trip latency
  double p99_ms = 0;
  double qps = 0;
};

struct HotKeyResult {
  size_t clients = 0;
  size_t requests = 0;   ///< ops per lane (each lane replays the same storm)
  uint64_t hits = 0;     ///< wire-reported result-cache hits, cached lane
  double hit_ratio = 0;
  HotKeyLane uncached;   ///< result cache disabled
  HotKeyLane cached;     ///< result cache enabled, cold at lane start
  double speedup = 0;    ///< cached qps / uncached qps
  bool ok = false;
};

/// Drives the same Zipf-skewed storm of repeated-parameter two-step chain
/// queries through a loopback wire server twice — result cache off, then
/// on from cold — so the lanes differ only in answer materialization.
/// Each query probes 1 + 32 keys and gathers ~1k tuples but returns a
/// single aggregate row, so evaluation (what the cache skips) dominates
/// serialization (what it cannot). Every answer in both lanes must be
/// bit-identical to the in-process reference; the cached lane must
/// actually hit. `speedup` is the CI-gated headline.
HotKeyResult RunHotKeySection() {
  HotKeyResult r;
  r.clients = std::max<size_t>(
      2, static_cast<size_t>(EnvDouble("HOTKEY_CLIENTS", 8)));
  size_t per_client =
      std::max<size_t>(1, static_cast<size_t>(EnvDouble("HOTKEY_REQS", 250)));
  r.requests = r.clients * per_client;
  r.ok = true;

  constexpr int kHotKeys = 64;  ///< distinct frozen-parameter templates
  constexpr int kFan1 = 32;     ///< edges per root
  constexpr int kFan2 = 32;     ///< edges per level-1 node

  ServiceOptions opts;
  opts.num_workers = 2;
  BeasService svc(opts);
  Schema edge_schema({{"src", TypeId::kString}, {"dst", TypeId::kString}});
  if (!svc.CreateTable("hk1", edge_schema).ok() ||
      !svc.CreateTable("hk2", edge_schema).ok()) {
    r.ok = false;
    return r;
  }
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(kHotKeys) * kFan1);
  int l1 = kHotKeys * 4;  // level-1 nodes, shared across roots
  for (int k = 0; k < kHotKeys; ++k) {
    for (int f = 0; f < kFan1; ++f) {
      rows.push_back({Value::String(NodeName("hkroot", k)),
                      Value::String(NodeName("hkl1", (k * 7 + f * 3) % l1))});
    }
  }
  if (!svc.InsertBatch("hk1", std::move(rows)).ok()) r.ok = false;
  rows.clear();
  rows.reserve(static_cast<size_t>(l1) * kFan2);
  for (int i = 0; i < l1; ++i) {
    for (int f = 0; f < kFan2; ++f) {
      rows.push_back({Value::String(NodeName("hkl1", i)),
                      Value::String(NodeName("hkl2", (i * 5 + f) % 512))});
    }
  }
  if (!svc.InsertBatch("hk2", std::move(rows)).ok()) r.ok = false;
  if (!svc.RegisterConstraint({"hk_acc1", "hk1", {"src"}, {"dst"}, kFan1})
           .ok() ||
      !svc.RegisterConstraint({"hk_acc2", "hk2", {"src"}, {"dst"}, kFan2})
           .ok()) {
    r.ok = false;
  }
  if (!r.ok) return r;

  // One covered two-step chain per hot key: ~1 + 32 probes and ~1k
  // gathered tuples collapse to one aggregate row.
  auto key_query = [](int k) {
    return "SELECT count(*) AS n FROM hk1 a, hk2 b WHERE a.src = '" +
           NodeName("hkroot", k) + "' AND b.src = a.dst";
  };
  std::vector<std::string> reference(kHotKeys);
  svc.set_result_cache_enabled(false);
  for (int k = 0; k < kHotKeys; ++k) {
    auto ref = svc.Execute(key_query(k));
    if (!ref.ok() || ref->result.rows.size() != 1) {
      r.ok = false;
      return r;
    }
    reference[k] = ref->result.rows[0][0].ToString();
  }

  // Zipf(s=1.2) lottery over key ranks, drawn with a per-request hash —
  // deterministic across runs, identical in both lanes.
  std::vector<int> lottery;
  {
    double total = 0;
    std::vector<double> w(kHotKeys);
    for (int k = 0; k < kHotKeys; ++k) {
      w[k] = 1.0 / std::pow(static_cast<double>(k + 1), 1.2);
      total += w[k];
    }
    for (int k = 0; k < kHotKeys; ++k) {
      int slots = std::max(1, static_cast<int>(4096.0 * w[k] / total));
      for (int s = 0; s < slots; ++s) lottery.push_back(k);
    }
  }

  net::Server server(&svc);
  if (!server.Start().ok()) {
    r.ok = false;
    return r;
  }

  auto storm = [&](std::atomic<uint64_t>* hit_count) {
    HotKeyLane lane;
    std::vector<std::vector<double>> lat(r.clients);
    std::atomic<bool> all_ok{true};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < r.clients; ++c) {
      threads.emplace_back([&, c] {
        net::Client client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          all_ok.store(false);
          return;
        }
        lat[c].reserve(per_client);
        for (size_t i = 0; i < per_client; ++i) {
          size_t draw = (c * 1315423911u) ^ (i * 2654435761u);
          int k = lottery[draw % lottery.size()];
          QueryRequest request;
          request.sql = key_query(k);
          auto op0 = std::chrono::steady_clock::now();
          auto resp = client.Query(request);
          lat[c].push_back(MillisSince(op0));
          if (!resp.ok() || resp->result.rows.size() != 1 ||
              resp->result.rows[0][0].ToString() != reference[k]) {
            all_ok.store(false);
            continue;
          }
          if (hit_count != nullptr && resp->result_cache_hit) {
            hit_count->fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double wall_s = MillisSince(t0) / 1000.0;
    if (!all_ok.load()) r.ok = false;
    std::vector<double> ms;
    ms.reserve(r.requests);
    for (auto& l : lat) ms.insert(ms.end(), l.begin(), l.end());
    std::sort(ms.begin(), ms.end());
    if (!ms.empty()) {
      lane.p50_ms = ms[ms.size() / 2];
      lane.p99_ms = ms[std::min(ms.size() - 1, ms.size() * 99 / 100)];
    }
    lane.qps = wall_s > 0 ? static_cast<double>(ms.size()) / wall_s : 0;
    return lane;
  };

  // Lane A: cache off — every request re-evaluates through the plan
  // cache, admission, and the executor. (Warm-up: the reference pass
  // above already populated the plan cache.)
  r.uncached = storm(nullptr);
  // Lane B: cache on, cold — the first touch of each key misses, every
  // repeat is a hit that bypasses binding and admission entirely.
  svc.set_result_cache_enabled(true);
  svc.ClearResultCache();
  std::atomic<uint64_t> hits{0};
  r.cached = storm(&hits);
  server.Stop();

  r.hits = hits.load();
  r.hit_ratio = r.requests == 0
                    ? 0
                    : static_cast<double>(r.hits) /
                          static_cast<double>(r.requests);
  r.speedup = r.cached.qps / std::max(r.uncached.qps, 1e-6);
  // A cached lane that never hits measures nothing: fail the section.
  if (r.hits == 0) r.ok = false;
  return r;
}

}  // namespace

int main() {
  PrintHeader("Fetch-chain execution: vectorized vs scalar");
  double sf = EnvDouble("TLC_SF", 32);
  int reps = static_cast<int>(EnvDouble("FETCH_REPS", 15));
  const char* json_path = std::getenv("BENCH_JSON_PATH");
  if (json_path == nullptr) json_path = "BENCH_fetch_chain.json";

  TlcEnv env = MakeTlcEnv(sf);
  BoundedExecutor executor(env.catalog.get());

  std::vector<ChainResult> results;
  bool any_error = false;
  for (const TlcQuery& q : TlcQueries()) {
    if (!q.expect_covered) continue;
    auto coverage = env.session->Check(q.sql);
    if (!coverage.ok() || !coverage->covered) continue;
    auto bound = env.db->Bind(q.sql);
    if (!bound.ok()) continue;
    const BoundQuery& query = *bound;
    const BoundedPlan& plan = coverage->plan;
    if (plan.steps.size() < 2) continue;  // multi-step chains only

    BoundedExecOptions scalar_opts;
    scalar_opts.use_vectorized = false;
    scalar_opts.collect_stats = false;
    BoundedExecOptions vec_opts;
    vec_opts.collect_stats = false;
    // Mirror the service's cached fast path: step programs are compiled
    // once per template and reused by every execution.
    auto compiled = CompileBoundedPlan(query, plan, *env.catalog);
    if (compiled.ok()) vec_opts.compiled = &*compiled;

    // Parity first (rows, order, weights, eta) — doubles as warmup. An
    // execution error on either path is itself a divergence: flag it.
    auto frag_s = executor.ExecuteFragment(query, plan, scalar_opts);
    auto frag_v = executor.ExecuteFragment(query, plan, vec_opts);
    if (!frag_s.ok() || !frag_v.ok()) {
      std::fprintf(stderr, "%s: executor error (scalar: %s, vectorized: %s)\n",
                   q.id.c_str(), frag_s.status().ToString().c_str(),
                   frag_v.status().ToString().c_str());
      any_error = true;
      continue;
    }
    for (int w = 0; w < 3; ++w) {
      (void)executor.ExecuteFragment(query, plan, scalar_opts);
      (void)executor.ExecuteFragment(query, plan, vec_opts);
    }

    ChainResult r;
    r.name = q.id;
    r.steps = plan.steps.size();
    r.identical = FragmentsIdentical(*frag_s, *frag_v);
    r.frag_scalar_ms = MedianMillis(
        [&] { (void)executor.ExecuteFragment(query, plan, scalar_opts); },
        reps);
    r.frag_vectorized_ms = MedianMillis(
        [&] { (void)executor.ExecuteFragment(query, plan, vec_opts); }, reps);
    r.exec_scalar_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, scalar_opts); }, reps);
    r.exec_vectorized_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, vec_opts); }, reps);
    r.frag_speedup = r.frag_scalar_ms / std::max(r.frag_vectorized_ms, 1e-6);
    r.exec_speedup = r.exec_scalar_ms / std::max(r.exec_vectorized_ms, 1e-6);
    r.vectorized_qps = 1000.0 / std::max(r.exec_vectorized_ms, 1e-6);
    results.push_back(r);
  }

  // --- String-keyed chains: scalar vs vectorized+dict vs vectorized
  // without interning (the PR 2 executor's string handling). ---
  StringChainEnv dict_env = MakeStringChainEnv(sf, /*dict_enabled=*/true);
  StringChainEnv nodict_env = MakeStringChainEnv(sf, /*dict_enabled=*/false);
  BoundedExecutor dict_executor(dict_env.catalog.get());
  BoundedExecutor nodict_executor(nodict_env.catalog.get());
  std::vector<StringChainResult> string_results;
  // Errors are tracked per section so a setup failure in one cannot be
  // misreported as a divergence of the other.
  bool string_error = false;
  for (const auto& [id, sql] : StringChainQueries()) {
    auto coverage = dict_env.session->Check(sql);
    auto nd_coverage = nodict_env.session->Check(sql);
    if (!coverage.ok() || !coverage->covered || !nd_coverage.ok() ||
        !nd_coverage->covered) {
      std::fprintf(stderr, "%s: string chain not covered (%s)\n", id.c_str(),
                   coverage.ok() ? coverage->reason.c_str()
                                 : coverage.status().ToString().c_str());
      string_error = true;
      continue;
    }
    auto bound = dict_env.db->Bind(sql);
    auto nd_bound = nodict_env.db->Bind(sql);
    if (!bound.ok() || !nd_bound.ok()) {
      string_error = true;
      continue;
    }

    BoundedExecOptions scalar_opts;
    scalar_opts.use_vectorized = false;
    scalar_opts.collect_stats = false;
    BoundedExecOptions vec_opts;
    vec_opts.collect_stats = false;
    auto compiled = CompileBoundedPlan(*bound, coverage->plan, *dict_env.catalog);
    if (compiled.ok()) vec_opts.compiled = &*compiled;
    BoundedExecOptions nd_vec_opts;
    nd_vec_opts.collect_stats = false;
    auto nd_compiled =
        CompileBoundedPlan(*nd_bound, nd_coverage->plan, *nodict_env.catalog);
    if (nd_compiled.ok()) nd_vec_opts.compiled = &*nd_compiled;

    auto frag_s = dict_executor.ExecuteFragment(*bound, coverage->plan,
                                                scalar_opts);
    auto frag_v = dict_executor.ExecuteFragment(*bound, coverage->plan,
                                                vec_opts);
    auto frag_nd = nodict_executor.ExecuteFragment(
        *nd_bound, nd_coverage->plan, nd_vec_opts);
    if (!frag_s.ok() || !frag_v.ok() || !frag_nd.ok()) {
      std::fprintf(stderr, "%s: string chain executor error\n", id.c_str());
      string_error = true;
      continue;
    }
    for (int w = 0; w < 3; ++w) {
      (void)dict_executor.ExecuteFragment(*bound, coverage->plan, vec_opts);
      (void)nodict_executor.ExecuteFragment(*nd_bound, nd_coverage->plan,
                                            nd_vec_opts);
    }

    StringChainResult r;
    r.name = id;
    r.steps = coverage->plan.steps.size();
    r.identical = FragmentsIdentical(*frag_s, *frag_v) &&
                  FragmentsIdentical(*frag_v, *frag_nd);
    r.frag_scalar_ms = MedianMillis(
        [&] {
          (void)dict_executor.ExecuteFragment(*bound, coverage->plan,
                                              scalar_opts);
        },
        reps);
    r.frag_vectorized_ms = MedianMillis(
        [&] {
          (void)dict_executor.ExecuteFragment(*bound, coverage->plan,
                                              vec_opts);
        },
        reps);
    r.frag_nodict_ms = MedianMillis(
        [&] {
          (void)nodict_executor.ExecuteFragment(*nd_bound, nd_coverage->plan,
                                                nd_vec_opts);
        },
        reps);
    r.frag_speedup = r.frag_scalar_ms / std::max(r.frag_vectorized_ms, 1e-6);
    r.dict_speedup = r.frag_nodict_ms / std::max(r.frag_vectorized_ms, 1e-6);
    string_results.push_back(r);
  }

  std::printf("%-6s %-6s | %-22s | %-22s | %-10s %s\n", "chain", "steps",
              "fetch chain s->v (ms)", "end-to-end s->v (ms)", "vec qps",
              "identical?");
  std::vector<double> frag_speedups;
  std::vector<double> exec_speedups;
  // Vacuous passes are failures: no measured chain, or any executor error,
  // counts as divergence.
  bool all_identical = !results.empty() && !any_error;
  for (const ChainResult& r : results) {
    std::printf(
        "%-6s %-6zu | %6.3f -> %6.3f %5.2fx | %6.3f -> %6.3f %5.2fx | "
        "%-10.0f %s\n",
        r.name.c_str(), r.steps, r.frag_scalar_ms, r.frag_vectorized_ms,
        r.frag_speedup, r.exec_scalar_ms, r.exec_vectorized_ms,
        r.exec_speedup, r.vectorized_qps, r.identical ? "yes" : "NO");
    frag_speedups.push_back(r.frag_speedup);
    exec_speedups.push_back(r.exec_speedup);
    all_identical &= r.identical;
  }
  // The headline: the paper's Fig. 4 query (Q1 = Example 2, a 3-step
  // chain) at the fetch-chain level — the code path this PR vectorizes.
  double fig4_speedup = results.empty() ? 0 : results.front().frag_speedup;
  std::printf(
      "\nfig4 chain (Q1) fetch-chain speedup: %.2fx; geomean over %zu "
      "multi-step chains: fetch chain %.2fx, end-to-end %.2fx (results "
      "%s)\n",
      fig4_speedup, results.size(), Geomean(frag_speedups),
      Geomean(exec_speedups), all_identical ? "bit-identical" : "DIVERGED");

  std::printf(
      "\n%-6s %-6s | %-30s | %-16s | %s\n", "chain", "steps",
      "string fetch chain s->v (ms)", "nodict vec (ms)",
      "dict speedup / identical?");
  std::vector<double> string_speedups;
  std::vector<double> dict_speedups;
  bool strings_identical = !string_results.empty() && !string_error;
  for (const StringChainResult& r : string_results) {
    std::printf("%-6s %-6zu | %8.3f -> %8.3f %6.2fx | %12.3f | %5.2fx %s\n",
                r.name.c_str(), r.steps, r.frag_scalar_ms,
                r.frag_vectorized_ms, r.frag_speedup, r.frag_nodict_ms,
                r.dict_speedup, r.identical ? "yes" : "NO");
    string_speedups.push_back(r.frag_speedup);
    dict_speedups.push_back(r.dict_speedup);
    strings_identical &= r.identical;
  }
  all_identical &= strings_identical;
  std::printf(
      "\nstring-keyed chains: fetch-chain geomean %.2fx vs scalar; "
      "dictionary encoding alone %.2fx vs the no-dict vectorized executor "
      "(results %s)\n",
      Geomean(string_speedups), Geomean(dict_speedups),
      strings_identical ? "bit-identical" : "DIVERGED");

  // --- Columnar vs scalar relational tail (same vectorized chain). ---
  // Runs on the dictionary env *after* its timing sections: the embedded
  // maintenance pass renumbers the dictionaries, which must not happen
  // under the earlier sections' feet.
  bool tail_error = false;
  std::vector<TailRun> tail_results = RunTailSection(&dict_env, reps,
                                                     &tail_error);
  std::printf("\n%-6s %-6s %-8s | %-26s | %s\n", "chain", "steps", "T rows",
              "tail scalar -> columnar (ms)", "speedup / identical?");
  std::vector<double> tail_speedups;
  double fig4_tail_speedup = 0;
  bool tails_identical = !tail_results.empty() && !tail_error;
  for (size_t i = 0; i < tail_results.size(); ++i) {
    const TailRun& r = tail_results[i];
    std::printf("%-6s %-6zu %-8zu | %9.3f -> %9.3f | %5.2fx %s\n",
                r.name.c_str(), r.steps, r.t_rows, r.scalar_tail_ms,
                r.columnar_tail_ms, r.speedup, r.identical ? "yes" : "NO");
    tail_speedups.push_back(r.speedup);
    if (i == 0) fig4_tail_speedup = r.speedup;
    tails_identical &= r.identical;
  }
  all_identical &= tails_identical;
  std::printf(
      "\ncolumnar tail: fig4-shaped chain (T1) %.2fx vs the scalar tail, "
      "geomean %.2fx over %zu tail-heavy chains (results %s)\n",
      fig4_tail_speedup, Geomean(tail_speedups), tail_results.size(),
      tails_identical ? "identical" : "DIVERGED");

  // --- Sharded vs unsharded storage (the end-to-end fan-out A/B). ---
  size_t shard_count =
      static_cast<size_t>(EnvDouble("BEAS_SHARDS", 4));
  if (shard_count < 2) shard_count = 2;
  unsigned hw = std::thread::hardware_concurrency();
  bool shard_error = false;
  std::vector<ShardRun> unsharded = RunShardSection(sf, reps, 1,
                                                    &shard_error);
  std::vector<ShardRun> sharded =
      RunShardSection(sf, reps, shard_count, &shard_error);

  std::printf("\n%-6s %-6s | %-26s | %s\n", "chain", "steps",
              "shards 1 -> N fetch (ms)", "speedup / identical?");
  std::vector<double> shard_speedups;
  double fig4_shard_speedup = 0;
  // An empty section (no covered multi-step chains at this scale) still
  // fails the bench — a vacuous run must not pass the CI gate — but is
  // reported as such, not as a divergence.
  bool shard_section_ran =
      !unsharded.empty() && unsharded.size() == sharded.size();
  bool shards_identical = shard_section_ran && !shard_error;
  for (size_t i = 0; i < sharded.size() && i < unsharded.size(); ++i) {
    const ShardRun& u = unsharded[i];
    const ShardRun& s = sharded[i];
    double speedup = u.ms / std::max(s.ms, 1e-6);
    bool identical = u.identical && s.identical && u.name == s.name;
    std::printf("%-6s %-6zu | %8.3f -> %8.3f | %5.2fx %s\n", s.name.c_str(),
                s.steps, u.ms, s.ms, speedup, identical ? "yes" : "NO");
    shard_speedups.push_back(speedup);
    if (i == 0) fig4_shard_speedup = speedup;
    shards_identical &= identical;
  }
  all_identical &= shards_identical;
  std::printf(
      "\nsharded storage (BEAS_SHARDS=%zu, %u cores): fig4 chain %.2fx vs "
      "unsharded, geomean %.2fx (results %s)\n",
      shard_count, hw, fig4_shard_speedup, Geomean(shard_speedups),
      !shard_section_ran ? "MISSING — no qualifying chains"
      : shards_identical ? "bit-identical"
                         : "DIVERGED");

  // --- Write path: durable (WAL + group commit) vs in-memory inserts. ---
  WritePathResult wp = RunWritePathSection(sf);
  std::printf(
      "\nwrite path (%zu rows, %zu writers): in-memory %.0f rows/s, durable "
      "%.0f rows/s (%.2fx of in-memory); group-commit ack p50 %.3f ms / p99 "
      "%.3f ms; %llu groups (%.1f rows per fsync'd group) (%s)\n",
      wp.rows, wp.writers, wp.inmem_rows_per_sec, wp.durable_rows_per_sec,
      wp.durable_relative, wp.ack_p50_ms, wp.ack_p99_ms,
      static_cast<unsigned long long>(wp.group_commits), wp.rows_per_group,
      wp.ok ? "ok" : "FAILED");
  // A write-path failure (insert error, lost rows on read-back, or a
  // durable run that never group-committed) fails the bench like a
  // divergence does.
  all_identical &= wp.ok;

  // --- Overload: closed-loop submit storm vs admission control. ---
  OverloadResult ov = RunOverloadSection();
  std::printf(
      "\noverload storm (%zu requests, %zu clients, queue %zu, admission "
      "pool %d): accepted %llu (%llu degraded), rejected %llu; mean eta "
      "%.3f over served answers; ack p50 %.3f ms / p99 %.3f ms (%s)\n",
      ov.requests, ov.clients, ov.clients - 1, 8 * 64 + 64,
      static_cast<unsigned long long>(ov.accepted),
      static_cast<unsigned long long>(ov.degraded),
      static_cast<unsigned long long>(ov.rejected), ov.mean_eta,
      ov.ack_p50_ms, ov.ack_p99_ms, ov.ok ? "ok" : "FAILED");
  // Counts are timing-dependent and recorded-only, but an overloaded
  // service answering with anything other than a (possibly degraded)
  // result or a typed rejection fails the bench.
  all_identical &= ov.ok;

  // --- Network front door: loopback wire storm, per-tenant lanes. ---
  NetBenchResult nb = RunNetSection();
  std::printf(
      "\nnet loopback (%zu clients, %zu ops): %llu reads + %llu inserts, "
      "%llu degraded, %llu rejected; alpha p50 %.3f ms / p99 %.3f ms "
      "(%.0f qps), beta p50 %.3f ms / p99 %.3f ms (%.0f qps) (%s)\n",
      nb.clients, nb.requests, static_cast<unsigned long long>(nb.reads),
      static_cast<unsigned long long>(nb.writes),
      static_cast<unsigned long long>(nb.degraded),
      static_cast<unsigned long long>(nb.rejected), nb.alpha.p50_ms,
      nb.alpha.p99_ms, nb.alpha.qps, nb.beta.p50_ms, nb.beta.p99_ms,
      nb.beta.qps, nb.ok ? "ok" : "FAILED");
  // Latencies are recorded-only; the section fails the bench if any wire
  // answer diverges from the in-process reference or an error arrives
  // untyped.
  all_identical &= nb.ok;

  // --- Hot-key result cache: Zipf wire storm, cache off vs on. ---
  HotKeyResult hk = RunHotKeySection();
  std::printf(
      "\nhot-key result cache (%zu clients, %zu Zipf reqs per lane): "
      "uncached p50 %.3f ms / p99 %.3f ms (%.0f qps) -> cached p50 %.3f ms "
      "/ p99 %.3f ms (%.0f qps); %.2fx qps, hit ratio %.3f (%s)\n",
      hk.clients, hk.requests, hk.uncached.p50_ms, hk.uncached.p99_ms,
      hk.uncached.qps, hk.cached.p50_ms, hk.cached.p99_ms, hk.cached.qps,
      hk.speedup, hk.hit_ratio, hk.ok ? "ok" : "FAILED");
  // Both lanes verify every answer against the in-process reference; a
  // divergence, an error, or a cached lane that never hits fails the
  // bench. The speedup itself is gated by check_bench_regression.py.
  all_identical &= hk.ok;

  FILE* json = std::fopen(json_path, "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"fetch_chain\",\n");
    std::fprintf(json, "  \"tlc_sf\": %.2f,\n  \"reps\": %d,\n", sf, reps);
    std::fprintf(json, "  \"fig4_chain_speedup\": %.4f,\n", fig4_speedup);
    std::fprintf(json, "  \"fetch_chain_speedup_geomean\": %.4f,\n",
                 Geomean(frag_speedups));
    std::fprintf(json, "  \"end_to_end_speedup_geomean\": %.4f,\n",
                 Geomean(exec_speedups));
    std::fprintf(json, "  \"all_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(json, "  \"string_chain_speedup_geomean\": %.4f,\n",
                 Geomean(string_speedups));
    std::fprintf(json, "  \"string_dict_speedup_geomean\": %.4f,\n",
                 Geomean(dict_speedups));
    std::fprintf(json, "  \"fig4_tail_speedup\": %.4f,\n", fig4_tail_speedup);
    std::fprintf(json, "  \"tail_speedup_geomean\": %.4f,\n",
                 Geomean(tail_speedups));
    std::fprintf(json, "  \"tail_chains\": [\n");
    for (size_t i = 0; i < tail_results.size(); ++i) {
      const TailRun& r = tail_results[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"steps\": %zu, \"t_rows\": %zu, "
                   "\"scalar_tail_ms\": %.4f, \"columnar_tail_ms\": %.4f, "
                   "\"speedup\": %.4f, \"identical\": %s}%s\n",
                   r.name.c_str(), r.steps, r.t_rows, r.scalar_tail_ms,
                   r.columnar_tail_ms, r.speedup,
                   r.identical ? "true" : "false",
                   i + 1 < tail_results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"durable_insert_rows_per_sec\": %.1f,\n",
                 wp.durable_rows_per_sec);
    std::fprintf(json, "  \"inmem_insert_rows_per_sec\": %.1f,\n",
                 wp.inmem_rows_per_sec);
    std::fprintf(json, "  \"durable_insert_relative\": %.4f,\n",
                 wp.durable_relative);
    std::fprintf(json,
                 "  \"write_path\": {\"rows\": %zu, \"writers\": %zu, "
                 "\"ack_p50_ms\": %.4f, \"ack_p99_ms\": %.4f, "
                 "\"group_commits\": %llu, \"fsyncs\": %llu, "
                 "\"rows_per_group\": %.2f, \"ok\": %s},\n",
                 wp.rows, wp.writers, wp.ack_p50_ms, wp.ack_p99_ms,
                 static_cast<unsigned long long>(wp.group_commits),
                 static_cast<unsigned long long>(wp.fsyncs),
                 wp.rows_per_group, wp.ok ? "true" : "false");
    std::fprintf(json,
                 "  \"overload\": {\"requests\": %zu, \"clients\": %zu, "
                 "\"accepted\": %llu, \"degraded\": %llu, "
                 "\"rejected\": %llu, \"mean_eta\": %.4f, "
                 "\"ack_p50_ms\": %.4f, \"ack_p99_ms\": %.4f, \"ok\": %s},\n",
                 ov.requests, ov.clients,
                 static_cast<unsigned long long>(ov.accepted),
                 static_cast<unsigned long long>(ov.degraded),
                 static_cast<unsigned long long>(ov.rejected), ov.mean_eta,
                 ov.ack_p50_ms, ov.ack_p99_ms, ov.ok ? "true" : "false");
    std::fprintf(json,
                 "  \"net\": {\"clients\": %zu, \"requests\": %zu, "
                 "\"reads\": %llu, \"writes\": %llu, \"degraded\": %llu, "
                 "\"rejected\": %llu, "
                 "\"alpha_p50_ms\": %.4f, \"alpha_p99_ms\": %.4f, "
                 "\"alpha_qps\": %.1f, "
                 "\"beta_p50_ms\": %.4f, \"beta_p99_ms\": %.4f, "
                 "\"beta_qps\": %.1f, \"ok\": %s},\n",
                 nb.clients, nb.requests,
                 static_cast<unsigned long long>(nb.reads),
                 static_cast<unsigned long long>(nb.writes),
                 static_cast<unsigned long long>(nb.degraded),
                 static_cast<unsigned long long>(nb.rejected),
                 nb.alpha.p50_ms, nb.alpha.p99_ms, nb.alpha.qps,
                 nb.beta.p50_ms, nb.beta.p99_ms, nb.beta.qps,
                 nb.ok ? "true" : "false");
    std::fprintf(json, "  \"hotkey_speedup\": %.4f,\n", hk.speedup);
    std::fprintf(json,
                 "  \"hotkey\": {\"clients\": %zu, \"requests\": %zu, "
                 "\"hits\": %llu, \"hit_ratio\": %.4f, "
                 "\"uncached_p50_ms\": %.4f, \"uncached_p99_ms\": %.4f, "
                 "\"uncached_qps\": %.1f, "
                 "\"cached_p50_ms\": %.4f, \"cached_p99_ms\": %.4f, "
                 "\"cached_qps\": %.1f, \"speedup\": %.4f, \"ok\": %s},\n",
                 hk.clients, hk.requests,
                 static_cast<unsigned long long>(hk.hits), hk.hit_ratio,
                 hk.uncached.p50_ms, hk.uncached.p99_ms, hk.uncached.qps,
                 hk.cached.p50_ms, hk.cached.p99_ms, hk.cached.qps,
                 hk.speedup, hk.ok ? "true" : "false");
    std::fprintf(json, "  \"shards\": %zu,\n", shard_count);
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(json, "  \"fig4_shard_speedup\": %.4f,\n",
                 fig4_shard_speedup);
    std::fprintf(json, "  \"shard_speedup_geomean\": %.4f,\n",
                 Geomean(shard_speedups));
    std::fprintf(json, "  \"shard_chains\": [\n");
    for (size_t i = 0; i < sharded.size() && i < unsharded.size(); ++i) {
      const ShardRun& u = unsharded[i];
      const ShardRun& s = sharded[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"steps\": %zu, "
                   "\"unsharded_ms\": %.4f, \"sharded_ms\": %.4f, "
                   "\"speedup\": %.4f, \"identical\": %s}%s\n",
                   s.name.c_str(), s.steps, u.ms, s.ms,
                   u.ms / std::max(s.ms, 1e-6),
                   (u.identical && s.identical) ? "true" : "false",
                   i + 1 < sharded.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"string_chains\": [\n");
    for (size_t i = 0; i < string_results.size(); ++i) {
      const StringChainResult& r = string_results[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"steps\": %zu, "
          "\"fetch_chain_scalar_ms\": %.4f, "
          "\"fetch_chain_vectorized_ms\": %.4f, "
          "\"fetch_chain_speedup\": %.4f, "
          "\"vectorized_nodict_ms\": %.4f, \"dict_speedup\": %.4f, "
          "\"identical\": %s}%s\n",
          r.name.c_str(), r.steps, r.frag_scalar_ms, r.frag_vectorized_ms,
          r.frag_speedup, r.frag_nodict_ms, r.dict_speedup,
          r.identical ? "true" : "false",
          i + 1 < string_results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"chains\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ChainResult& r = results[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"steps\": %zu, "
          "\"fetch_chain_scalar_ms\": %.4f, "
          "\"fetch_chain_vectorized_ms\": %.4f, "
          "\"fetch_chain_speedup\": %.4f, "
          "\"scalar_ms\": %.4f, \"vectorized_ms\": %.4f, "
          "\"speedup\": %.4f, \"ops_per_sec\": %.1f, \"identical\": %s}%s\n",
          r.name.c_str(), r.steps, r.frag_scalar_ms, r.frag_vectorized_ms,
          r.frag_speedup, r.exec_scalar_ms, r.exec_vectorized_ms,
          r.exec_speedup, r.vectorized_qps, r.identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path);
  }

  return all_identical ? 0 : 1;
}
