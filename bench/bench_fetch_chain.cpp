// Fetch-chain executor bench: vectorized (columnar T + batched probes +
// compiled step programs) vs the scalar row-at-a-time reference, on the
// multi-step TLC chains the paper's core claim rests on. Measures the
// fetch chain itself (ExecuteFragment — what the tentpole vectorizes) and
// the end-to-end bounded execution (fetch chain + shared relational
// tail), verifies result parity (rows, order, weights, η) per chain, and
// emits BENCH_fetch_chain.json so CI tracks the perf trajectory.
//
// Knobs: TLC_SF (default 32) data scale; FETCH_REPS (default 15) timing
// reps; BENCH_JSON_PATH (default BENCH_fetch_chain.json).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "bounded/bounded_executor.h"
#include "common/string_util.h"
#include "workload/tlc_queries.h"

using namespace beas;
using namespace beas::bench;

namespace {

struct ChainResult {
  std::string name;
  size_t steps = 0;
  double frag_scalar_ms = 0;
  double frag_vectorized_ms = 0;
  double frag_speedup = 0;
  double exec_scalar_ms = 0;
  double exec_vectorized_ms = 0;
  double exec_speedup = 0;
  double vectorized_qps = 0;
  bool identical = false;
};

bool FragmentsIdentical(const BoundedExecutor::Fragment& a,
                        const BoundedExecutor::Fragment& b) {
  if (a.rows.size() != b.rows.size()) return false;
  if (a.weights != b.weights) return false;
  if (a.stats.eta != b.stats.eta) return false;
  if (a.stats.tuples_fetched != b.stats.tuples_fetched) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (CompareValueVec(a.rows[r], b.rows[r]) != 0) return false;
  }
  return true;
}

double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(std::max(x, 1e-6));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main() {
  PrintHeader("Fetch-chain execution: vectorized vs scalar");
  double sf = EnvDouble("TLC_SF", 32);
  int reps = static_cast<int>(EnvDouble("FETCH_REPS", 15));
  const char* json_path = std::getenv("BENCH_JSON_PATH");
  if (json_path == nullptr) json_path = "BENCH_fetch_chain.json";

  TlcEnv env = MakeTlcEnv(sf);
  BoundedExecutor executor(env.catalog.get());

  std::vector<ChainResult> results;
  bool any_error = false;
  for (const TlcQuery& q : TlcQueries()) {
    if (!q.expect_covered) continue;
    auto coverage = env.session->Check(q.sql);
    if (!coverage.ok() || !coverage->covered) continue;
    auto bound = env.db->Bind(q.sql);
    if (!bound.ok()) continue;
    const BoundQuery& query = *bound;
    const BoundedPlan& plan = coverage->plan;
    if (plan.steps.size() < 2) continue;  // multi-step chains only

    BoundedExecOptions scalar_opts;
    scalar_opts.use_vectorized = false;
    scalar_opts.collect_stats = false;
    BoundedExecOptions vec_opts;
    vec_opts.collect_stats = false;
    // Mirror the service's cached fast path: step programs are compiled
    // once per template and reused by every execution.
    auto compiled = CompileBoundedPlan(query, plan, *env.catalog);
    if (compiled.ok()) vec_opts.compiled = &*compiled;

    // Parity first (rows, order, weights, eta) — doubles as warmup. An
    // execution error on either path is itself a divergence: flag it.
    auto frag_s = executor.ExecuteFragment(query, plan, scalar_opts);
    auto frag_v = executor.ExecuteFragment(query, plan, vec_opts);
    if (!frag_s.ok() || !frag_v.ok()) {
      std::fprintf(stderr, "%s: executor error (scalar: %s, vectorized: %s)\n",
                   q.id.c_str(), frag_s.status().ToString().c_str(),
                   frag_v.status().ToString().c_str());
      any_error = true;
      continue;
    }
    for (int w = 0; w < 3; ++w) {
      (void)executor.ExecuteFragment(query, plan, scalar_opts);
      (void)executor.ExecuteFragment(query, plan, vec_opts);
    }

    ChainResult r;
    r.name = q.id;
    r.steps = plan.steps.size();
    r.identical = FragmentsIdentical(*frag_s, *frag_v);
    r.frag_scalar_ms = MedianMillis(
        [&] { (void)executor.ExecuteFragment(query, plan, scalar_opts); },
        reps);
    r.frag_vectorized_ms = MedianMillis(
        [&] { (void)executor.ExecuteFragment(query, plan, vec_opts); }, reps);
    r.exec_scalar_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, scalar_opts); }, reps);
    r.exec_vectorized_ms = MedianMillis(
        [&] { (void)executor.Execute(query, plan, vec_opts); }, reps);
    r.frag_speedup = r.frag_scalar_ms / std::max(r.frag_vectorized_ms, 1e-6);
    r.exec_speedup = r.exec_scalar_ms / std::max(r.exec_vectorized_ms, 1e-6);
    r.vectorized_qps = 1000.0 / std::max(r.exec_vectorized_ms, 1e-6);
    results.push_back(r);
  }

  std::printf("%-6s %-6s | %-22s | %-22s | %-10s %s\n", "chain", "steps",
              "fetch chain s->v (ms)", "end-to-end s->v (ms)", "vec qps",
              "identical?");
  std::vector<double> frag_speedups;
  std::vector<double> exec_speedups;
  // Vacuous passes are failures: no measured chain, or any executor error,
  // counts as divergence.
  bool all_identical = !results.empty() && !any_error;
  for (const ChainResult& r : results) {
    std::printf(
        "%-6s %-6zu | %6.3f -> %6.3f %5.2fx | %6.3f -> %6.3f %5.2fx | "
        "%-10.0f %s\n",
        r.name.c_str(), r.steps, r.frag_scalar_ms, r.frag_vectorized_ms,
        r.frag_speedup, r.exec_scalar_ms, r.exec_vectorized_ms,
        r.exec_speedup, r.vectorized_qps, r.identical ? "yes" : "NO");
    frag_speedups.push_back(r.frag_speedup);
    exec_speedups.push_back(r.exec_speedup);
    all_identical &= r.identical;
  }
  // The headline: the paper's Fig. 4 query (Q1 = Example 2, a 3-step
  // chain) at the fetch-chain level — the code path this PR vectorizes.
  double fig4_speedup = results.empty() ? 0 : results.front().frag_speedup;
  std::printf(
      "\nfig4 chain (Q1) fetch-chain speedup: %.2fx; geomean over %zu "
      "multi-step chains: fetch chain %.2fx, end-to-end %.2fx (results "
      "%s)\n",
      fig4_speedup, results.size(), Geomean(frag_speedups),
      Geomean(exec_speedups), all_identical ? "bit-identical" : "DIVERGED");

  FILE* json = std::fopen(json_path, "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"fetch_chain\",\n");
    std::fprintf(json, "  \"tlc_sf\": %.2f,\n  \"reps\": %d,\n", sf, reps);
    std::fprintf(json, "  \"fig4_chain_speedup\": %.4f,\n", fig4_speedup);
    std::fprintf(json, "  \"fetch_chain_speedup_geomean\": %.4f,\n",
                 Geomean(frag_speedups));
    std::fprintf(json, "  \"end_to_end_speedup_geomean\": %.4f,\n",
                 Geomean(exec_speedups));
    std::fprintf(json, "  \"all_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(json, "  \"chains\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ChainResult& r = results[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"steps\": %zu, "
          "\"fetch_chain_scalar_ms\": %.4f, "
          "\"fetch_chain_vectorized_ms\": %.4f, "
          "\"fetch_chain_speedup\": %.4f, "
          "\"scalar_ms\": %.4f, \"vectorized_ms\": %.4f, "
          "\"speedup\": %.4f, \"ops_per_sec\": %.1f, \"identical\": %s}%s\n",
          r.name.c_str(), r.steps, r.frag_scalar_ms, r.frag_vectorized_ms,
          r.frag_speedup, r.exec_scalar_ms, r.exec_vectorized_ms,
          r.exec_speedup, r.vectorized_qps, r.identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path);
  }

  return all_identical ? 0 : 1;
}
