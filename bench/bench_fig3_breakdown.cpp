// Figure 3 — "Performance analysis of Q in Example 2": the BEAS analyzer
// panel. Reports (a) overall execution time, acceleration ratio vs the
// commercial engines, total tuples fetched, number of access constraints
// employed; (b) a per-operation cost breakdown of the bounded plan vs the
// conventional plan. Paper headline (20 GB TLC): BEAS 96.13 ms vs
// PostgreSQL 187.8 s / MySQL / MariaDB — 1953x / 6562x / 5135x. Absolute
// numbers here are laptop-scale; the artifact is the analysis itself and
// the orders-of-magnitude ratio.
//
// Knobs: TLC_SF (default 4).

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  double sf = EnvDouble("TLC_SF", 4);
  PrintHeader(StringPrintf("Figure 3: performance analysis of Q (SF %.1f)",
                           sf));
  TlcEnv env = MakeTlcEnv(sf);
  const std::string& q = TlcExample2Sql();

  auto coverage = env.session->Check(q);
  if (!coverage.ok() || !coverage->covered) {
    std::fprintf(stderr, "Q must be covered\n");
    return 1;
  }
  auto beas = env.session->ExecuteBounded(q);
  if (!beas.ok()) {
    std::fprintf(stderr, "%s\n", beas.status().ToString().c_str());
    return 1;
  }

  std::printf("(a) overall\n");
  std::printf("    %-22s %10s %16s %10s\n", "engine", "time (ms)",
              "tuples accessed", "ratio");
  std::printf("    %-22s %10.2f %16s %10s\n", "BEAS", beas->millis,
              WithCommas(beas->tuples_accessed).c_str(), "1.0x");
  for (const EngineProfile* profile :
       {&EngineProfile::PostgresLike(), &EngineProfile::MySqlLike(),
        &EngineProfile::MariaDbLike()}) {
    auto r = env.db->Query(q, *profile);
    if (!r.ok()) return 1;
    std::printf("    %-22s %10.2f %16s %9.0fx\n", profile->name.c_str(),
                r->millis, WithCommas(r->tuples_accessed).c_str(),
                r->millis / std::max(beas->millis, 1e-3));
  }
  std::printf("    deduced access bound M = %s tuples; "
              "%zu access constraints employed\n",
              WithCommas(coverage->plan.total_access_bound).c_str(),
              coverage->plan.NumConstraintsUsed());
  std::printf("    paper: 96.13 ms vs 187.8 s => 1953x (PostgreSQL), "
              "6562x (MySQL), 5135x (MariaDB)\n");

  std::printf("\n(b) per-operation breakdown, BEAS bounded plan\n%s",
              beas->stats.ToString(1).c_str());
  auto pg = env.db->Query(q);
  if (pg.ok()) {
    std::printf("\n    conventional counterpart (PostgreSQL-like)\n%s",
                pg->stats.ToString(1).c_str());
  }

  std::printf("\nbounded plan (Fig. 2(B) annotations):\n%s",
              beas->plan_text.c_str());
  return 0;
}
