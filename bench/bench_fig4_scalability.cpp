// Figure 4 — "Scalability comparison": evaluation time of query Q
// (Example 2) on BEAS vs PostgreSQL/MySQL/MariaDB-like engines while the
// TLC dataset scales. The paper sweeps 1 GB -> 200 GB and reports BEAS
// flat (~1 s, "scale-independent") while the DBMS baselines grow to
// 1932 s / 6187 s / 5243 s. Here the sweep is scale factors (rows scale
// linearly; see DESIGN.md E1): the series to check is BEAS ~flat vs the
// baselines growing ~linearly, baseline ordering pg < mariadb < mysql.
//
// Knobs: TLC_SF_MAX (default 8) doubles the largest scale factor.

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  PrintHeader("Figure 4: scalability of Q across TLC scale factors");
  double sf_max = EnvDouble("TLC_SF_MAX", 8);
  std::vector<double> sfs;
  for (double sf = 1; sf <= sf_max + 1e-9; sf *= 2) sfs.push_back(sf);

  std::printf("%-6s %-10s | %-12s %-16s %-16s %-16s | %s\n", "SF",
              "call rows", "BEAS (ms)", "PostgreSQL-like", "MySQL-like",
              "MariaDB-like", "BEAS tuples vs PG tuples");
  std::vector<double> beas_series;
  std::vector<double> pg_series;
  for (double sf : sfs) {
    TlcEnv env = MakeTlcEnv(sf);
    const std::string& q = TlcExample2Sql();

    uint64_t beas_tuples = 0;
    double beas_ms = MedianMillis([&] {
      auto r = env.session->ExecuteBounded(q);
      if (r.ok()) beas_tuples = r->tuples_accessed;
    });

    double engine_ms[3] = {0, 0, 0};
    uint64_t pg_tuples = 0;
    const EngineProfile* profiles[3] = {&EngineProfile::PostgresLike(),
                                        &EngineProfile::MySqlLike(),
                                        &EngineProfile::MariaDbLike()};
    for (int i = 0; i < 3; ++i) {
      engine_ms[i] = MedianMillis([&] {
        auto r = env.db->Query(q, *profiles[i]);
        if (r.ok() && i == 0) pg_tuples = r->tuples_accessed;
      });
    }
    std::printf("%-6.1f %-10zu | %-12.2f %-16.2f %-16.2f %-16.2f | %s vs %s\n",
                sf, env.stats.rows_per_table[0], beas_ms, engine_ms[0],
                engine_ms[1], engine_ms[2], WithCommas(beas_tuples).c_str(),
                WithCommas(pg_tuples).c_str());
    beas_series.push_back(beas_ms);
    pg_series.push_back(engine_ms[0]);
  }

  // Shape checks mirroring the paper's claims.
  if (beas_series.size() >= 2) {
    double beas_growth = beas_series.back() / std::max(beas_series.front(), 1e-3);
    double pg_growth = pg_series.back() / std::max(pg_series.front(), 1e-3);
    std::printf("\nshape: BEAS grew %.1fx while PostgreSQL-like grew %.1fx "
                "across a %.0fx data sweep\n",
                beas_growth, pg_growth, sfs.back() / sfs.front());
    std::printf("paper: BEAS ~1 s flat (\"scale-independent\"); baselines "
                "grow to 1932/6187/5243 s at 200 GB\n");
  }
  return 0;
}
