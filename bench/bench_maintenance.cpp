// §3 maintenance module — "incrementally updates the indices of A in
// response to changes to the datasets, by employing an optimal incremental
// algorithm". This bench streams inserts+deletes into the `call` table
// with the maintenance hook attached and compares against rebuilding the
// affected index from scratch after every batch; per-update cost must be
// flat (independent of |D|) while rebuild cost grows with |D|.

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "maintenance/maintenance.h"

using namespace beas;
using namespace beas::bench;

int main() {
  PrintHeader("Maintenance: incremental index updates vs full rebuild");

  std::printf("%-6s %-11s | %-18s %-18s %-10s\n", "SF", "call rows",
              "incremental us/op", "rebuild ms/batch", "ratio");
  for (double sf : {1.0, 2.0, 4.0}) {
    TlcEnv env = MakeTlcEnv(sf);
    MaintenanceManager maintenance(env.db.get(), env.catalog.get());
    maintenance.Attach();

    constexpr int kBatch = 2000;
    Rng rng(7);
    // Stream kBatch insert/delete index updates. The rows are applied
    // directly to the call indices (AcIndex::OnInsert/OnDelete — exactly
    // what the write hook runs), so the measurement isolates maintenance
    // cost from row location (DeleteWhereEquals scans the heap to find
    // the victim row, which would swamp the number being measured).
    std::vector<AcIndex*> call_indices = env.catalog->IndexesForTable("call");
    std::vector<Row> batch;
    for (int i = 0; i < kBatch; ++i) {
      batch.push_back(Row{Value::Int64(999000 + rng.Uniform(0, 50)),
                          Value::Int64(rng.Uniform(1, 1000)),
                          Value::Date(20160301 + rng.Uniform(0, 27)),
                          Value::String("R1"), Value::Int64(60),
                          Value::Double(1.0), Value::Int64(1),
                          Value::Int64(1)});
    }
    auto start = std::chrono::steady_clock::now();
    uint64_t ops = 0;
    for (const Row& row : batch) {
      for (AcIndex* index : call_indices) {
        index->OnInsert(row);
        ++ops;
      }
    }
    for (const Row& row : batch) {
      for (AcIndex* index : call_indices) {
        index->OnDelete(row);
        ++ops;
      }
    }
    double incremental_ms = MillisSince(start);

    // Rebuild cost: re-register psi1 over the current data.
    AccessConstraint psi1 = *(*env.catalog->schema().Find("psi1"));
    auto t2 = std::chrono::steady_clock::now();
    if (!env.catalog->Unregister("psi1").ok()) return 1;
    if (!env.catalog->Register(psi1).ok()) return 1;
    double rebuild_ms = MillisSince(t2);

    double us_per_op = incremental_ms * 1000.0 / std::max<uint64_t>(ops, 1);
    std::printf("%-6.1f %-11zu | %-18.2f %-18.2f %9.0fx\n", sf,
                env.stats.rows_per_table[0], us_per_op, rebuild_ms,
                rebuild_ms * 1000.0 / std::max(us_per_op, 1e-3));
  }
  std::printf("\nshape: per-update cost stays flat while rebuild cost grows "
              "with |D| — the point of incremental maintenance.\n");

  // Correctness spot-check: suggestions after drift.
  TlcEnv env = MakeTlcEnv(1);
  MaintenanceManager maintenance(env.db.get(), env.catalog.get());
  maintenance.Attach();
  for (int i = 0; i < 40; ++i) {
    Row row{Value::Int64(888000),       Value::Int64(5000 + i),
            Value::Date(20160310),      Value::String("R1"),
            Value::Int64(60),           Value::Double(1.0),
            Value::Int64(1),            Value::Int64(1)};
    if (!env.db->Insert("call", row).ok()) return 1;
  }
  auto suggestions = maintenance.RevalidateAndSuggest();
  std::printf("\nafter drift, RevalidateAndSuggest proposes:\n");
  for (const auto& adj : suggestions) {
    if (adj.constraint_name == "psi1" || adj.violated) {
      std::printf("  %s\n", adj.ToString().c_str());
    }
  }
  return 0;
}
