// Micro-benchmarks (google-benchmark): the hot paths underneath bounded
// evaluation — AC-index probes, the BE checker's plan search, SQL parsing
// and binding, hash-join throughput. These are the components whose costs
// the demo paper's analyzer attributes per operation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sql/parser.h"
#include "workload/tlc_schema.h"

namespace beas {
namespace {

bench::TlcEnv* Env() {
  static auto* env = new bench::TlcEnv(bench::MakeTlcEnv(1));
  return env;
}

void BM_AcIndexLookup(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const AcIndex* index = env->catalog->IndexFor("psi1");
  ValueVec key{Value::Int64(kTlcProbePnum), Value::Date(20160315)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->LookupWithCounts(key));
  }
}
BENCHMARK(BM_AcIndexLookup);

void BM_AcIndexInsertDelete(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  AcIndex* index = env->catalog->IndexFor("psi1");
  Row row{Value::Int64(777), Value::Int64(888), Value::Date(20160301),
          Value::String("R1"), Value::Int64(1), Value::Double(1),
          Value::Int64(1), Value::Int64(1)};
  for (auto _ : state) {
    index->OnInsert(row);
    index->OnDelete(row);
  }
}
BENCHMARK(BM_AcIndexInsertDelete);

void BM_ParseExample2(benchmark::State& state) {
  const std::string& sql = TlcExample2Sql();
  for (auto _ : state) {
    auto stmt = Parser::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseExample2);

void BM_BindExample2(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const std::string& sql = TlcExample2Sql();
  for (auto _ : state) {
    auto bound = env->db->Bind(sql);
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_BindExample2);

void BM_BeCheckerExample2(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const std::string& sql = TlcExample2Sql();
  for (auto _ : state) {
    auto coverage = env->session->Check(sql);
    benchmark::DoNotOptimize(coverage);
  }
}
BENCHMARK(BM_BeCheckerExample2);

void BM_BoundedExecuteExample2(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const std::string& sql = TlcExample2Sql();
  for (auto _ : state) {
    auto result = env->session->ExecuteBounded(sql);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BoundedExecuteExample2);

void BM_ConventionalExample2(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const std::string& sql = TlcExample2Sql();
  for (auto _ : state) {
    auto result = env->db->Query(sql);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ConventionalExample2);

void BM_HashJoinQ9(benchmark::State& state) {
  bench::TlcEnv* env = Env();
  const std::string& sql = TlcQueries()[8].sql;  // handoff x tower join
  for (auto _ : state) {
    auto result = env->db->Query(sql);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HashJoinQ9);

}  // namespace
}  // namespace beas

BENCHMARK_MAIN();
