// Service-layer throughput: QPS on repeated *parameterized* TLC templates
// with the template plan cache enabled vs. disabled.
//
// Real workloads re-issue the same query shapes with different constants
// (BEAVER's template-dominated enterprise traces); for BEAS the per-query
// coverage search and bound deduction depend only on the template, so the
// service caches them per template and rebinds fetch-key constants per
// instance. This bench quantifies that saving end to end, including parse,
// bind, normalization, cache lookup and execution.
//
// Acceptance (ISSUE 1): >= 2x QPS with the cache enabled on this workload.
//
// Knobs: TLC_SF (default 1), SVC_ITERS (default 4000).

#include <cinttypes>

#include "bench_util.h"
#include "common/string_util.h"
#include "service/beas_service.h"

using namespace beas;
using namespace beas::bench;

namespace {

const char* kDates[] = {"2016-03-08", "2016-03-09", "2016-03-10",
                        "2016-03-11", "2016-03-12", "2016-03-13",
                        "2016-03-14", "2016-03-15", "2016-03-16"};

/// The workload: parameterized versions of TLC query shapes (Q1/Q2/Q4/Q5/
/// Q9 templates), instantiated with rotating subscriber/date/package
/// parameters.
std::vector<std::string> BuildWorkload(size_t iters, size_t num_pnums) {
  std::vector<std::string> queries;
  queries.reserve(iters);
  size_t num_dates = sizeof(kDates) / sizeof(kDates[0]);
  for (size_t i = 0; i < iters; ++i) {
    int64_t pnum = 10001 + static_cast<int64_t>((i * 37) % num_pnums);
    const char* date = kDates[i % num_dates];
    int64_t pid = 1 + static_cast<int64_t>(i % 20);
    switch (i % 5) {
      case 0:  // Q1 / paper Example 2, three-atom join
        queries.push_back(StringPrintf(
            "SELECT call.region FROM call, package, business "
            "WHERE business.type = 'bank' AND business.region = 'R1' "
            "AND business.pnum = call.pnum AND call.date = '%s' "
            "AND call.pnum = package.pnum AND package.year = 2016 "
            "AND package.start <= '%s' AND package.end >= '%s' "
            "AND package.pid = %" PRId64,
            date, date, date, pid));
        break;
      case 1:  // Q2: distinct numbers called on a day
        queries.push_back(StringPrintf(
            "SELECT DISTINCT call.recnum FROM call WHERE call.pnum = %" PRId64
            " AND call.date = '%s'",
            pnum, date));
        break;
      case 2:  // Q4: payments of the customer owning a number
        queries.push_back(StringPrintf(
            "SELECT sum(payment.amount) AS total FROM customer, payment "
            "WHERE customer.pnum = %" PRId64
            " AND customer.cid = payment.cid AND payment.year = 2016",
            pnum));
        break;
      case 3:  // Q5: call volume by destination region (top 3)
        queries.push_back(StringPrintf(
            "SELECT call.region, count(*) AS calls FROM call "
            "WHERE call.pnum = %" PRId64 " AND call.date = '%s' "
            "GROUP BY call.region ORDER BY calls DESC LIMIT 3",
            pnum, date));
        break;
      default:  // Q9: tower capacities serving a subscriber's handoffs
        queries.push_back(StringPrintf(
            "SELECT handoff.tid, tower.capacity FROM handoff, tower "
            "WHERE handoff.pnum = %" PRId64 " AND handoff.date = '%s' "
            "AND handoff.tid = tower.tid",
            pnum, date));
        break;
    }
  }
  return queries;
}

struct RunResult {
  double millis = 0;
  size_t errors = 0;
  uint64_t rows = 0;
};

RunResult RunWorkload(BeasService* service,
                      const std::vector<std::string>& queries) {
  RunResult out;
  auto start = std::chrono::steady_clock::now();
  for (const std::string& sql : queries) {
    auto resp = service->Execute(sql);
    if (!resp.ok()) {
      ++out.errors;
      continue;
    }
    out.rows += resp->result.rows.size();
  }
  out.millis = MillisSince(start);
  return out;
}

}  // namespace

int main() {
  double sf = EnvDouble("TLC_SF", 1);
  size_t iters = static_cast<size_t>(EnvDouble("SVC_ITERS", 4000));
  PrintHeader(StringPrintf("BeasService throughput, repeated parameterized "
                           "TLC templates (SF %.1f, %zu queries)",
                           sf, iters));

  ServiceOptions options;
  options.num_workers = 4;
  BeasService service(options);

  TlcOptions tlc;
  tlc.scale_factor = sf;
  auto stats = GenerateTlc(service.db(), tlc);
  if (!stats.ok()) {
    std::fprintf(stderr, "TLC generation failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  Status st = RegisterTlcAccessSchema(service.catalog());
  if (!st.ok()) {
    std::fprintf(stderr, "schema registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats->ToString().c_str());

  std::vector<std::string> queries = BuildWorkload(iters, stats->num_pnums);

  // --- Cache disabled: full parse+bind+check+plan per query. ---
  service.set_cache_enabled(false);
  service.ClearCache();
  RunResult off = RunWorkload(&service, queries);

  // --- Cache enabled: one coverage search per template, then rebinds. ---
  service.set_cache_enabled(true);
  service.ClearCache();
  RunResult on = RunWorkload(&service, queries);
  PlanCacheStats cache = service.cache_stats();

  if (off.errors != 0 || on.errors != 0 || off.rows != on.rows) {
    std::fprintf(stderr,
                 "FAIL: runs disagree (errors %zu/%zu, rows %" PRIu64
                 " vs %" PRIu64 ")\n",
                 off.errors, on.errors, off.rows, on.rows);
    return 1;
  }

  double qps_off = 1000.0 * static_cast<double>(iters) / off.millis;
  double qps_on = 1000.0 * static_cast<double>(iters) / on.millis;
  double speedup = qps_on / qps_off;

  std::printf("%-16s %12s %12s %10s\n", "mode", "wall ms", "QPS", "rows");
  std::printf("%-16s %12.1f %12.0f %10" PRIu64 "\n", "cache disabled",
              off.millis, qps_off, off.rows);
  std::printf("%-16s %12.1f %12.0f %10" PRIu64 "\n", "cache enabled",
              on.millis, qps_on, on.rows);
  std::printf("%s\n", cache.ToString().c_str());
  std::printf("hit rate: %.1f%%   speedup: %.2fx   %s\n",
              100.0 * static_cast<double>(cache.hits) /
                  static_cast<double>(cache.hits + cache.misses),
              speedup, speedup >= 2.0 ? "PASS (>= 2x)" : "BELOW TARGET");

  // --- Showcase: the same workload through the worker pool. ---
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Result<ServiceResponse>>> futures;
  futures.reserve(queries.size());
  for (const std::string& sql : queries) futures.push_back(service.Submit(sql));
  size_t errors = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    if (!resp.ok()) ++errors;
  }
  double pool_millis = MillisSince(t0);
  std::printf("worker pool (%zu workers): %.1f ms, %.0f QPS, %zu errors\n",
              options.num_workers, pool_millis,
              1000.0 * static_cast<double>(iters) / pool_millis, errors);

  return speedup >= 2.0 ? 0 : 2;
}
