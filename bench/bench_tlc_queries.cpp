// In-text deployment claim (§1/§4): "BEAS outperforms commercial DBMS by
// orders of magnitude for more than 90% of their queries" and "these
// analytical queries are actually boundedly evaluable under a small
// access schema". This bench runs all 11 built-in TLC queries through the
// full BEAS pipeline and the PostgreSQL-like baseline, reporting coverage,
// deduced bounds, execution mode, times, speedups and answer parity.
//
// Knobs: TLC_SF (default 4).

#include "bench_util.h"
#include "common/string_util.h"

using namespace beas;
using namespace beas::bench;

int main() {
  double sf = EnvDouble("TLC_SF", 4);
  PrintHeader(StringPrintf("TLC 11-query suite (SF %.1f)", sf));
  TlcEnv env = MakeTlcEnv(sf);

  std::printf("%-4s %-8s %-14s %-6s %-10s %-10s %-9s %-6s\n", "id", "covered",
              "deduced M", "mode", "BEAS ms", "PG ms", "speedup", "match");
  size_t covered_count = 0;
  size_t faster_count = 0;
  std::vector<double> speedups;
  for (const TlcQuery& query : TlcQueries()) {
    auto coverage = env.session->Check(query.sql);
    if (!coverage.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   coverage.status().ToString().c_str());
      return 1;
    }
    BeasSession::ExecutionDecision decision;
    auto beas = env.session->Execute(query.sql, &decision);
    auto pg = env.db->Query(query.sql);
    if (!beas.ok() || !pg.ok()) {
      std::fprintf(stderr, "%s failed\n", query.id.c_str());
      return 1;
    }
    const char* mode =
        decision.mode == BeasSession::ExecutionDecision::Mode::kBounded
            ? "BE"
            : (decision.mode ==
                       BeasSession::ExecutionDecision::Mode::kPartiallyBounded
                   ? "part"
                   : "conv");
    bool match = RowMultisetsEqual(beas->rows, pg->rows);
    double speedup = pg->millis / std::max(beas->millis, 1e-3);
    if (coverage->covered) ++covered_count;
    if (speedup > 1.0) ++faster_count;
    speedups.push_back(speedup);
    std::printf("%-4s %-8s %-14s %-6s %-10.3f %-10.3f %8.1fx %-6s\n",
                query.id.c_str(), coverage->covered ? "yes" : "no",
                coverage->covered
                    ? WithCommas(coverage->plan.total_access_bound).c_str()
                    : "-",
                mode, beas->millis, pg->millis, speedup,
                match ? "yes" : "NO");
    if (!match) return 1;
  }
  std::sort(speedups.begin(), speedups.end());
  std::printf("\ncoverage: %zu/11 queries boundedly evaluable (%.0f%%; "
              "paper: >90%%)\n",
              covered_count, 100.0 * covered_count / 11);
  std::printf("BEAS faster on %zu/11 queries; median speedup %.1fx "
              "(grows with SF; paper reports orders of magnitude at "
              "20-200 GB)\n",
              faster_count, speedups[speedups.size() / 2]);
  return 0;
}
