#ifndef BEAS_BENCH_BENCH_UTIL_H_
#define BEAS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bounded/beas_session.h"
#include "workload/tlc_access_schema.h"
#include "workload/tlc_generator.h"
#include "workload/tlc_queries.h"

namespace beas {
namespace bench {

/// A fully wired TLC environment at one scale factor.
struct TlcEnv {
  std::unique_ptr<Database> db;
  std::unique_ptr<AsCatalog> catalog;
  std::unique_ptr<BeasSession> session;
  TlcStats stats;
  double generate_millis = 0;
  double index_millis = 0;
};

inline double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Builds TLC at `sf`, registers A_TLC, opens a session. Aborts on error
/// (benchmark setup failures are fatal by design).
inline TlcEnv MakeTlcEnv(double sf, uint64_t seed = 42) {
  TlcEnv env;
  env.db = std::make_unique<Database>();
  TlcOptions options;
  options.scale_factor = sf;
  options.seed = seed;
  auto t0 = std::chrono::steady_clock::now();
  auto stats = GenerateTlc(env.db.get(), options);
  if (!stats.ok()) {
    std::fprintf(stderr, "TLC generation failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  env.generate_millis = MillisSince(t0);
  env.stats = *stats;
  auto t1 = std::chrono::steady_clock::now();
  env.catalog = std::make_unique<AsCatalog>(env.db.get());
  Status st = RegisterTlcAccessSchema(env.catalog.get());
  if (!st.ok()) {
    std::fprintf(stderr, "access schema registration failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  env.index_millis = MillisSince(t1);
  env.session = std::make_unique<BeasSession>(env.db.get(), env.catalog.get());
  return env;
}

/// Reads a double knob from the environment (e.g. TLC_SF_MAX).
inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

/// Median wall-clock milliseconds of `fn()` over `reps` runs.
template <typename Fn>
double MedianMillis(Fn&& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    times.push_back(MillisSince(start));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace beas

#endif  // BEAS_BENCH_BENCH_UTIL_H_
