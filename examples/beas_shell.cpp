// beas_shell: an interactive console standing in for the BEAS demo portal
// (paper Fig. 2). Loads the TLC benchmark, registers A_TLC, and accepts
// SQL plus dot-commands:
//
//   .schema                show the access schema catalog (Fig. 2(E))
//   .tables                list tables with row counts
//   .check <sql>           BE Checker verdict + annotated plan (Fig. 2(A/B))
//   .budget <n> <sql>      can the query be answered within n tuples?
//   .approx <n> <sql>      resource-bounded approximation under n tuples
//   .engine <pg|mysql|maria>  conventional profile used for comparison
//   .queries               list the 11 built-in TLC queries
//   .q <id>                run a built-in query (e.g. .q Q1)
//   .quit
//
// Any other input is executed as SQL through the full BEAS pipeline and
// through the selected conventional engine, with the Fig. 2(C)-style
// performance analysis printed after the answers.
//
// Usage: beas_shell [scale_factor]   (also reads stdin non-interactively)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bounded/beas_session.h"
#include "common/string_util.h"
#include "workload/tlc_access_schema.h"
#include "workload/tlc_generator.h"
#include "workload/tlc_queries.h"
#include "workload/tlc_schema.h"

using namespace beas;

namespace {

const EngineProfile* g_profile = &EngineProfile::PostgresLike();

void RunSql(BeasSession* session, Database* db, const std::string& sql) {
  BeasSession::ExecutionDecision decision;
  auto beas = session->Execute(sql, &decision, *g_profile);
  if (!beas.ok()) {
    std::printf("error: %s\n", beas.status().ToString().c_str());
    return;
  }
  std::printf("%s", beas->ToTable(15).c_str());
  std::printf("(%zu rows)  mode: %s\n", beas->rows.size(),
              decision.explanation.c_str());
  auto conventional = db->Query(sql, *g_profile);
  if (conventional.ok()) {
    std::printf(
        "analysis: BEAS %.2f ms / %s tuples   vs   %s %.2f ms / %s tuples "
        "(%.0fx)\n",
        beas->millis, WithCommas(beas->tuples_accessed).c_str(),
        g_profile->name.c_str(), conventional->millis,
        WithCommas(conventional->tuples_accessed).c_str(),
        conventional->millis / std::max(beas->millis, 1e-3));
  }
}

void CheckSql(BeasSession* session, Database* db, const std::string& sql) {
  auto coverage = session->Check(sql);
  if (!coverage.ok()) {
    std::printf("error: %s\n", coverage.status().ToString().c_str());
    return;
  }
  if (!coverage->covered) {
    std::printf("NOT boundedly evaluable: %s\n", coverage->reason.c_str());
    return;
  }
  auto bound = db->Bind(sql);
  std::printf("boundedly evaluable under the access schema.\n%s",
              coverage->plan.ToString(*bound).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("BEAS shell — bounded evaluation of SQL (TLC @ SF %.1f)\n", sf);
  Database db;
  TlcOptions options;
  options.scale_factor = sf;
  auto stats = GenerateTlc(&db, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  AsCatalog catalog(&db);
  if (!RegisterTlcAccessSchema(&catalog).ok()) return 1;
  BeasSession session(&db, &catalog);
  std::printf("%zu tables, %zu rows, %zu access constraints. Type .help\n",
              TlcTableNames().size(), stats->total_rows,
              catalog.schema().size());

  std::string line;
  while (true) {
    std::printf("beas> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    line = Trim(line);
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf(
          ".schema .tables .queries .q <id> .check <sql> .budget <n> <sql> "
          ".approx <n> <sql> .engine <pg|mysql|maria> .quit\n");
    } else if (line == ".schema") {
      std::printf("%s", catalog.MetadataReport().c_str());
    } else if (line == ".tables") {
      for (const std::string& name : db.catalog()->TableNames()) {
        auto table = db.catalog()->GetTable(name);
        std::printf("  %-12s %zu rows\n", name.c_str(),
                    (*table)->heap()->NumRows());
      }
    } else if (line == ".queries") {
      for (const TlcQuery& query : TlcQueries()) {
        std::printf("  %-4s %s\n", query.id.c_str(),
                    query.description.c_str());
      }
    } else if (StartsWith(line, ".q ")) {
      std::string id = Trim(line.substr(3));
      bool found = false;
      for (const TlcQuery& query : TlcQueries()) {
        if (EqualsIgnoreCase(query.id, id)) {
          std::printf("%s\n", query.sql.c_str());
          RunSql(&session, &db, query.sql);
          found = true;
        }
      }
      if (!found) std::printf("unknown query id '%s'\n", id.c_str());
    } else if (StartsWith(line, ".check ")) {
      CheckSql(&session, &db, line.substr(7));
    } else if (StartsWith(line, ".budget ")) {
      size_t pos = 0;
      uint64_t budget = std::stoull(line.substr(8), &pos);
      auto report = session.CheckBudget(Trim(line.substr(8 + pos)), budget);
      std::printf("%s\n", report.ok()
                              ? report->explanation.c_str()
                              : report.status().ToString().c_str());
    } else if (StartsWith(line, ".approx ")) {
      size_t pos = 0;
      uint64_t budget = std::stoull(line.substr(8), &pos);
      auto approx =
          session.ExecuteApproximate(Trim(line.substr(8 + pos)), budget);
      if (!approx.ok()) {
        std::printf("error: %s\n", approx.status().ToString().c_str());
      } else {
        std::printf("%s(eta >= %.3f, fetched %s of budget %s)\n",
                    approx->result.ToTable(15).c_str(), approx->eta,
                    WithCommas(approx->tuples_fetched).c_str(),
                    WithCommas(budget).c_str());
      }
    } else if (StartsWith(line, ".engine ")) {
      std::string which = Trim(line.substr(8));
      if (which == "pg") g_profile = &EngineProfile::PostgresLike();
      else if (which == "mysql") g_profile = &EngineProfile::MySqlLike();
      else if (which == "maria") g_profile = &EngineProfile::MariaDbLike();
      std::printf("comparison engine: %s\n", g_profile->name.c_str());
    } else if (line[0] == '.') {
      std::printf("unknown command; try .help\n");
    } else {
      RunSql(&session, &db, line);
    }
  }
  return 0;
}
