// Bounded resources end-to-end: check whether a query fits an access
// budget BEFORE running it (paper Fig. 2(A)), and when it does not, fall
// back to resource-bounded approximation with a deterministic coverage
// bound η (paper §2/§3).

#include <cstdio>

#include "bounded/beas_session.h"
#include "common/string_util.h"
#include "workload/tlc_access_schema.h"
#include "workload/tlc_generator.h"
#include "workload/tlc_queries.h"

using namespace beas;

int main() {
  Database db;
  TlcOptions options;
  options.scale_factor = 2.0;
  if (!GenerateTlc(&db, options).ok()) return 1;
  AsCatalog catalog(&db);
  if (!RegisterTlcAccessSchema(&catalog).ok()) return 1;
  BeasSession session(&db, &catalog);

  const std::string& q = TlcExample2Sql();
  std::printf("query Q (Example 2):\n%s\n\n", q.c_str());

  // 1. Deduce the bound, then ask budget questions without executing.
  auto coverage = session.Check(q);
  if (!coverage.ok() || !coverage->covered) return 1;
  std::printf("deduced access bound M = %s tuples\n\n",
              WithCommas(coverage->plan.total_access_bound).c_str());
  for (uint64_t budget : {10000ull, 1000000ull, 50000000ull}) {
    auto report = session.CheckBudget(q, budget);
    if (!report.ok()) return 1;
    std::printf("can Q be answered within %s tuples?  %s\n",
                WithCommas(budget).c_str(),
                report->within_budget ? "YES" : "no");
  }

  // 2. The user insists on a small budget: approximate, with eta reported.
  std::printf("\nresource-bounded approximation under tight budgets:\n");
  auto exact = session.ExecuteBounded(q);
  if (!exact.ok()) return 1;
  for (uint64_t budget : {8ull, 32ull, 1000ull}) {
    auto approx = session.ExecuteApproximate(q, budget);
    if (!approx.ok()) return 1;
    std::printf(
        "  budget %-6s -> %zu of %zu answer rows, eta >= %.3f, fetched %s\n",
        WithCommas(budget).c_str(), approx->result.rows.size(),
        exact->rows.size(), approx->eta,
        WithCommas(approx->tuples_fetched).c_str());
  }
  std::printf("\nevery approximate row is an exact answer computed from "
              "fetched data; eta is the deterministic coverage lower bound "
              "(1.0 = the budget was not binding).\n");
  return 0;
}
