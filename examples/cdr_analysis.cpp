// CDR analysis walkthrough: the paper's demo scenario (§4) on the
// simulated TLC telecom benchmark.
//
// Reproduces the Fig. 2 interaction flow on the console:
//   (A) bounded-evaluability check + access budget check,
//   (B) the bounded plan with per-fetch bound annotations,
//   (C) execution + performance analysis vs the conventional engines,
//   and the partially-bounded path for the one uncovered query.

#include <cstdio>
#include <cstdlib>

#include "bounded/beas_session.h"
#include "common/string_util.h"
#include "workload/tlc_access_schema.h"
#include "workload/tlc_generator.h"
#include "workload/tlc_queries.h"

using namespace beas;

int main() {
  double sf = 1.0;
  if (const char* env = std::getenv("TLC_SF")) sf = std::atof(env);

  std::printf("== generating TLC at scale factor %.1f ==\n", sf);
  Database db;
  TlcOptions options;
  options.scale_factor = sf;
  auto stats = GenerateTlc(&db, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats->ToString().c_str());

  AsCatalog catalog(&db);
  Status st = RegisterTlcAccessSchema(&catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== AS catalog metadata (Fig. 2(E)) ==\n%s\n",
              catalog.MetadataReport().c_str());

  BeasSession session(&db, &catalog);
  const std::string& q = TlcExample2Sql();
  std::printf("== query Q (paper Example 2) ==\n%s\n\n", q.c_str());

  // (A) Check + budget.
  auto coverage = session.Check(q);
  if (!coverage.ok()) {
    std::fprintf(stderr, "%s\n", coverage.status().ToString().c_str());
    return 1;
  }
  std::printf("BE Checker: %s\n",
              coverage->covered ? "boundedly evaluable under A_TLC"
                                : coverage->reason.c_str());
  for (uint64_t budget : {1000000ull, 100000000ull}) {
    auto report = session.CheckBudget(q, budget);
    if (report.ok()) std::printf("  budget check: %s\n", report->explanation.c_str());
  }

  // (B) The bounded plan with deduced bounds.
  auto bound_query = db.Bind(q);
  std::printf("\n== bounded plan (Fig. 2(B)) ==\n%s\n",
              coverage->plan.ToString(*bound_query).c_str());

  // (C) Execute through BEAS and the three conventional profiles.
  auto beas_result = session.ExecuteBounded(q);
  if (!beas_result.ok()) {
    std::fprintf(stderr, "%s\n", beas_result.status().ToString().c_str());
    return 1;
  }
  std::printf("== answers (first rows) ==\n%s\n",
              beas_result->ToTable(5).c_str());

  std::printf("== performance analysis (Fig. 3) ==\n");
  std::printf("%-18s %12s %16s %12s\n", "engine", "time (ms)",
              "tuples accessed", "speedup");
  std::printf("%-18s %12.2f %16s %12s\n", "BEAS", beas_result->millis,
              WithCommas(beas_result->tuples_accessed).c_str(), "1.0x");
  for (const EngineProfile* profile :
       {&EngineProfile::PostgresLike(), &EngineProfile::MySqlLike(),
        &EngineProfile::MariaDbLike()}) {
    auto r = db.Query(q, *profile);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s %12.2f %16s %11.0fx\n", profile->name.c_str(),
                r->millis, WithCommas(r->tuples_accessed).c_str(),
                r->millis / std::max(beas_result->millis, 1e-6));
  }
  std::printf("\nBEAS per-operation breakdown:\n%s\n",
              beas_result->stats.ToString().c_str());

  // The uncovered query Q11 goes through the partially-bounded path.
  const TlcQuery& q11 = TlcQueries().back();
  std::printf("== uncovered query %s ==\n%s\n", q11.id.c_str(),
              q11.sql.c_str());
  BeasSession::ExecutionDecision decision;
  auto fallback = session.Execute(q11.sql, &decision);
  if (!fallback.ok()) {
    std::fprintf(stderr, "%s\n", fallback.status().ToString().c_str());
    return 1;
  }
  std::printf("decision: %s\n%s\n", decision.explanation.c_str(),
              fallback->ToTable(3).c_str());
  return 0;
}
