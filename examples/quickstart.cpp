// Quickstart: declare a schema, load data, register an access schema, and
// run the same query through BEAS (bounded) and a conventional engine.
//
// This is the smallest end-to-end tour of the public API:
//   Database -> AsCatalog::Register -> BeasSession::Check/Execute.

#include <cstdio>

#include "asx/access_schema.h"
#include "bounded/beas_session.h"
#include "engine/database.h"

using namespace beas;  // examples favor brevity

int main() {
  // 1. A tiny CDR-style database: who called whom on which day.
  Database db;
  Schema call_schema({{"pnum", TypeId::kInt64},
                      {"recnum", TypeId::kInt64},
                      {"date", TypeId::kDate},
                      {"region", TypeId::kString}});
  auto table = db.CreateTable("call", call_schema);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  // Subscriber 7 calls three numbers on 2016-03-15; subscriber 8 calls one.
  struct Rec { int64_t p, r; const char* d; const char* reg; };
  for (const Rec& rec : std::initializer_list<Rec>{
           {7, 100, "2016-03-15", "R1"},
           {7, 101, "2016-03-15", "R1"},
           {7, 102, "2016-03-15", "R2"},
           {7, 100, "2016-03-16", "R1"},
           {8, 200, "2016-03-15", "R3"},
       }) {
    Status st = db.Insert(
        "call", {Value::Int64(rec.p), Value::Int64(rec.r),
                 Value::DateFromString(rec.d).ValueOrDie(),
                 Value::String(rec.reg)});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 2. An access constraint: each number calls at most 500 distinct
  //    (recnum, region) pairs per day — paper Example 1's psi1.
  AsCatalog catalog(&db);
  Status st = catalog.Register(
      {"psi1", "call", {"pnum", "date"}, {"recnum", "region"}, 500});
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("access schema:\n%s\n", catalog.schema().ToString().c_str());

  // 3. Check bounded evaluability, inspect the plan, then execute.
  BeasSession session(&db, &catalog);
  const char* sql =
      "SELECT call.recnum, call.region FROM call "
      "WHERE call.pnum = 7 AND call.date = '2016-03-15'";
  auto coverage = session.Check(sql);
  if (!coverage.ok()) {
    std::fprintf(stderr, "%s\n", coverage.status().ToString().c_str());
    return 1;
  }
  std::printf("covered: %s\n", coverage->covered ? "yes" : "no");
  std::printf("%s\n", coverage->plan.ToString(db.Bind(sql).ValueOrDie()).c_str());

  auto bounded = session.ExecuteBounded(sql);
  if (!bounded.ok()) {
    std::fprintf(stderr, "%s\n", bounded.status().ToString().c_str());
    return 1;
  }
  std::printf("BEAS answer (%llu tuples fetched):\n%s\n",
              static_cast<unsigned long long>(bounded->tuples_accessed),
              bounded->ToTable().c_str());

  // 4. The same query on the conventional engine (full scan).
  auto conventional = db.Query(sql);
  if (!conventional.ok()) {
    std::fprintf(stderr, "%s\n", conventional.status().ToString().c_str());
    return 1;
  }
  std::printf("conventional answer (%llu tuples scanned):\n%s\n",
              static_cast<unsigned long long>(conventional->tuples_accessed),
              conventional->ToTable().c_str());

  // 5. Budget check without execution (Fig. 2(A)).
  auto budget = session.CheckBudget(sql, 100);
  if (budget.ok()) {
    std::printf("budget check: %s\n", budget->explanation.c_str());
  }
  return 0;
}
