// Access schema management walkthrough (paper Fig. 2(D/E) and §3 AS
// Catalog): discover an access schema from data + historical queries,
// verify conformance, register it, attach incremental maintenance, and
// watch a constraint adjustment proposal after the data drifts.

#include <cstdio>

#include "asx/conformance.h"
#include "bounded/beas_session.h"
#include "discovery/discovery.h"
#include "maintenance/maintenance.h"
#include "workload/tlc_generator.h"
#include "workload/tlc_queries.h"
#include "workload/tlc_schema.h"

using namespace beas;

int main() {
  Database db;
  TlcOptions options;
  options.scale_factor = 1.0;
  auto stats = GenerateTlc(&db, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  // 1. Discovery: dataset + query patterns + objective -> access schema.
  std::vector<std::string> workload;
  for (const TlcQuery& query : TlcQueries()) workload.push_back(query.sql);
  DiscoveryOptions objective;
  objective.storage_budget_bytes = 32ull << 20;
  objective.n_headroom = 1.25;
  auto discovered = DiscoverAccessSchema(db, workload, objective);
  if (!discovered.ok()) {
    std::fprintf(stderr, "%s\n", discovered.status().ToString().c_str());
    return 1;
  }
  std::printf("== discovery log ==\n%s\n", discovered->report.c_str());

  // 2. Conformance: D |= A must hold for every discovered constraint.
  auto reports = VerifySchemaConformance(db, discovered->schema);
  if (!reports.ok()) return 1;
  size_t ok_count = 0;
  for (const ConformanceReport& report : *reports) {
    if (report.conforms) ++ok_count;
  }
  std::printf("== conformance: %zu/%zu constraints hold on D ==\n\n", ok_count,
              reports->size());

  // 3. Register + check the workload coverage under the discovered schema.
  AsCatalog catalog(&db);
  for (const AccessConstraint& c : discovered->schema.constraints()) {
    if (!catalog.Register(c).ok()) return 1;
  }
  BeasSession session(&db, &catalog);
  size_t covered = 0;
  for (const TlcQuery& query : TlcQueries()) {
    auto coverage = session.Check(query.sql);
    if (coverage.ok() && coverage->covered) ++covered;
  }
  std::printf("== %zu/%zu workload queries covered by the discovered schema "
              "==\n\n",
              covered, TlcQueries().size());

  // 4. Maintenance: attach the write hook, drift the data, revalidate.
  MaintenanceManager maintenance(&db, &catalog);
  maintenance.Attach();
  for (int i = 0; i < 50; ++i) {
    Status st = db.Insert(
        "call", {Value::Int64(kTlcProbePnum), Value::Int64(5000 + i),
                 Value::Date(20160310), Value::String("R1"), Value::Int64(30),
                 Value::Double(0.5), Value::Int64(3), Value::Int64(9)});
    if (!st.ok()) return 1;
  }
  std::printf("== after %llu incremental index updates, revalidation "
              "proposes ==\n",
              static_cast<unsigned long long>(maintenance.updates_applied()));
  for (const auto& adj : maintenance.RevalidateAndSuggest(1.2)) {
    if (adj.violated) std::printf("  %s\n", adj.ToString().c_str());
  }
  std::printf("(no output above means no constraint was violated by the "
              "drift)\n\n== AS catalog after maintenance ==\n%s",
              catalog.MetadataReport().c_str());
  return 0;
}
