// Service demo: the concurrent query-service layer on top of the BEAS
// pipeline — template plan cache, prepared instantiation, worker pool,
// and maintenance-driven invalidation.
//
// Walkthrough:
//   1. stand up a BeasService (it owns the Database + AS catalog +
//      maintenance module + worker pool);
//   2. load the TLC workload and register its access schema;
//   3. serve repeated *parameterized templates* — the first instance pays
//      the full parse+bind+coverage-search cost, every later instance is
//      instantiated from the cached template plan;
//   4. show what invalidates the cache (bound adjustments) and what does
//      not (plain inserts, kept fresh by incremental index maintenance);
//   5. push a concurrent batch through the worker pool.

#include <cinttypes>
#include <cstdio>

#include "common/string_util.h"
#include "service/beas_service.h"
#include "workload/tlc_access_schema.h"
#include "workload/tlc_generator.h"

using namespace beas;  // examples favor brevity

namespace {

void Show(const char* tag, const Result<ServiceResponse>& resp) {
  if (!resp.ok()) {
    std::printf("%-28s ERROR %s\n", tag, resp.status().ToString().c_str());
    return;
  }
  std::printf("%-28s %4zu rows  %-9s  %s\n", tag, resp->result.rows.size(),
              resp->cache_hit ? "cache-hit" : "miss",
              resp->decision.explanation.c_str());
}

}  // namespace

int main() {
  // --- 1. The service owns the whole stack. ---
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = 256;
  BeasService service(options);

  // --- 2. Bulk-load TLC and register its access schema (setup phase). ---
  TlcOptions tlc;
  tlc.scale_factor = 0.5;
  auto stats = GenerateTlc(service.db(), tlc);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  if (Status st = RegisterTlcAccessSchema(service.catalog()); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded: %s\n", stats->ToString().c_str());

  // --- 3. One template, many parameterizations. ---
  std::printf("\n-- repeated parameterized template --\n");
  for (int64_t pnum : {10001, 10002, 10003, 10001}) {
    std::string sql = StringPrintf(
        "SELECT DISTINCT call.recnum FROM call WHERE call.pnum = %" PRId64
        " AND call.date = '2016-03-15'",
        pnum);
    Show(("pnum=" + std::to_string(pnum)).c_str(), service.Execute(sql));
  }

  // --- 4a. Plain inserts do NOT invalidate (indices maintained). ---
  std::printf("\n-- plain insert: no invalidation, fresh answer --\n");
  Status st = service.Insert(
      "call", {Value::Int64(10001), Value::Int64(424242),
               Value::DateFromString("2016-03-15").ValueOrDie(),
               Value::String("R1"), Value::Int64(60), Value::Double(0.25),
               Value::Int64(17), Value::Int64(12345678)});
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  Show("pnum=10001 after insert",
       service.Execute("SELECT DISTINCT call.recnum FROM call WHERE "
                       "call.pnum = 10001 AND call.date = '2016-03-15'"));

  // --- 4b. Maintenance bound adjustment DOES invalidate. ---
  std::printf("\n-- maintenance adjustment: affected templates evicted --\n");
  size_t changed = 0;
  st = service.RunAdjustmentCycle(1.2, &changed);
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::printf("adjusted %zu declared bounds\n", changed);
  Show("pnum=10001 after adjust",
       service.Execute("SELECT DISTINCT call.recnum FROM call WHERE "
                       "call.pnum = 10001 AND call.date = '2016-03-15'"));

  // --- 5. A concurrent batch through the worker pool. ---
  std::printf("\n-- worker pool --\n");
  std::vector<std::future<Result<ServiceResponse>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.Submit(StringPrintf(
        "SELECT call.region, count(*) AS calls FROM call "
        "WHERE call.pnum = %d AND call.date = '2016-03-15' "
        "GROUP BY call.region ORDER BY calls DESC LIMIT 3",
        10001 + i % 8)));
  }
  size_t ok = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++ok;
  }
  std::printf("%zu/%zu concurrent queries answered\n", ok, futures.size());

  std::printf("\n%s\n", service.cache_stats().ToString().c_str());
  return 0;
}
