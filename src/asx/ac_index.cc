#include "asx/ac_index.h"

namespace beas {

Result<std::unique_ptr<AcIndex>> AcIndex::Build(AccessConstraint constraint,
                                                const TableHeap& heap) {
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> x_cols,
                        constraint.ResolveX(heap.schema()));
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> y_cols,
                        constraint.ResolveY(heap.schema()));
  std::unique_ptr<AcIndex> index(new AcIndex(
      std::move(constraint), std::move(x_cols), std::move(y_cols)));
  index->dict_ = heap.dict();
  for (auto it = heap.Begin(); it.Valid(); it.Next()) {
    index->OnInsert(it.row());
  }
  return index;
}

ValueVec AcIndex::KeyOf(const Row& row) const {
  ValueVec key;
  key.reserve(x_cols_.size());
  for (size_t c : x_cols_) key.push_back(row[c]);
  return key;
}

Row AcIndex::YProjectionOf(const Row& row) const {
  Row y;
  y.reserve(y_cols_.size());
  for (size_t c : y_cols_) y.push_back(row[c]);
  return y;
}

const std::vector<Row>* AcIndex::Lookup(const ValueVec& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second.distinct_y;
}

AcIndex::BucketView AcIndex::LookupWithCounts(const ValueVec& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return BucketView{};
  return BucketView{&it->second.distinct_y, &it->second.mults};
}

void AcIndex::LookupBatch(const ValueVec* keys, size_t count,
                          BucketView* out) const {
  for (size_t i = 0; i < count; ++i) {
    auto it = buckets_.find(keys[i]);
    out[i] = it == buckets_.end()
                 ? BucketView{}
                 : BucketView{&it->second.distinct_y, &it->second.mults};
  }
}

void AcIndex::OnInsert(const Row& row) {
  ValueVec key = KeyOf(row);
  for (const Value& v : key) {
    if (v.is_null()) return;  // NULL X-values are not indexed
  }
  Bucket& bucket = buckets_[std::move(key)];
  Row y = YProjectionOf(row);
  auto it = bucket.positions.find(y);
  if (it != bucket.positions.end()) {
    ++bucket.mults[it->second];
    return;
  }
  bucket.positions.emplace(y, bucket.distinct_y.size());
  bucket.distinct_y.push_back(std::move(y));
  bucket.mults.push_back(1);
  ++num_entries_;
}

void AcIndex::OnDelete(const Row& row) {
  ValueVec key = KeyOf(row);
  for (const Value& v : key) {
    if (v.is_null()) return;
  }
  auto bucket_it = buckets_.find(key);
  if (bucket_it == buckets_.end()) return;
  Bucket& bucket = bucket_it->second;
  Row y = YProjectionOf(row);
  auto it = bucket.positions.find(y);
  if (it == bucket.positions.end()) return;
  size_t pos = it->second;
  if (--bucket.mults[pos] > 0) return;
  // Multiplicity hit zero: remove the distinct Y-value. Swap-with-last
  // keeps removal O(1); fix the moved row's recorded position.
  size_t last = bucket.distinct_y.size() - 1;
  bucket.positions.erase(it);
  if (pos != last) {
    bucket.distinct_y[pos] = std::move(bucket.distinct_y[last]);
    bucket.mults[pos] = bucket.mults[last];
    bucket.positions[bucket.distinct_y[pos]] = pos;
  }
  bucket.distinct_y.pop_back();
  bucket.mults.pop_back();
  --num_entries_;
  if (bucket.distinct_y.empty()) buckets_.erase(bucket_it);
}

size_t AcIndex::MaxBucketSize() const {
  size_t max_size = 0;
  for (const auto& [key, bucket] : buckets_) {
    max_size = std::max(max_size, bucket.distinct_y.size());
  }
  return max_size;
}

uint64_t AcIndex::ApproxBytes() const {
  // Values are tagged unions: ~32 bytes inline + string bodies ignored.
  constexpr uint64_t kValueBytes = 32;
  constexpr uint64_t kBucketOverhead = 64;
  uint64_t key_bytes = static_cast<uint64_t>(NumKeys()) *
                       (x_cols_.size() * kValueBytes + kBucketOverhead);
  uint64_t entry_bytes = static_cast<uint64_t>(NumEntries()) *
                         (y_cols_.size() * kValueBytes + 16);
  return key_bytes + entry_bytes;
}

}  // namespace beas
