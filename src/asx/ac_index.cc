#include "asx/ac_index.h"

#include "common/task_pool.h"

namespace beas {

namespace {

/// Key sets below this size are probed with the plain per-key loop: the
/// partition pass plus a pool dispatch would cost more than the probes
/// themselves. Matches the executor's serial cutoff for single-shard
/// chunked fan-out, so small per-step batches never pay fan-out overhead
/// on either path.
constexpr size_t kShardedProbeMin = 1024;

}  // namespace

AcIndex::AcIndex(AccessConstraint constraint, std::vector<size_t> x_cols,
                 std::vector<size_t> y_cols, size_t num_shards)
    : constraint_(std::move(constraint)),
      x_cols_(std::move(x_cols)),
      y_cols_(std::move(y_cols)) {
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<SubIndex>());
  }
}

Result<std::unique_ptr<AcIndex>> AcIndex::Build(AccessConstraint constraint,
                                                const TableHeap& heap) {
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> x_cols,
                        constraint.ResolveX(heap.schema()));
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> y_cols,
                        constraint.ResolveY(heap.schema()));
  std::unique_ptr<AcIndex> index(
      new AcIndex(std::move(constraint), std::move(x_cols), std::move(y_cols),
                  heap.num_shards()));
  index->dict_ = heap.dict();
  for (auto it = heap.Begin(); it.Valid(); it.Next()) {
    index->OnInsert(it.row());
  }
  return index;
}

ValueVec AcIndex::KeyOf(const Row& row) const {
  ValueVec key;
  key.reserve(x_cols_.size());
  for (size_t c : x_cols_) key.push_back(row[c]);
  return key;
}

Row AcIndex::YProjectionOf(const Row& row) const {
  Row y;
  y.reserve(y_cols_.size());
  for (size_t c : y_cols_) y.push_back(row[c]);
  return y;
}

const std::vector<Row>* AcIndex::Lookup(const ValueVec& key) const {
  const SubIndex& sub = *shards_[ShardOfKey(key)];
  auto it = sub.buckets.find(key);
  return it == sub.buckets.end() ? nullptr : &it->second.distinct_y;
}

AcIndex::BucketView AcIndex::FindIn(const SubIndex& sub,
                                    const ValueVec& key) const {
  auto it = sub.buckets.find(key);
  if (it == sub.buckets.end()) return BucketView{};
  return BucketView{&it->second.distinct_y, &it->second.mults};
}

AcIndex::BucketView AcIndex::LookupWithCounts(const ValueVec& key) const {
  return FindIn(*shards_[ShardOfKey(key)], key);
}

void AcIndex::LookupBatch(const ValueVec* keys, size_t count,
                          BucketView* out) const {
  for (size_t i = 0; i < count; ++i) {
    out[i] = FindIn(*shards_[ShardOfKey(keys[i])], keys[i]);
  }
}

void AcIndex::LookupBatch(const ValueVec* keys, size_t count, BucketView* out,
                          TaskPool* pool) const {
  size_t num_shards = shards_.size();
  if (num_shards == 1 || count < kShardedProbeMin) {
    LookupBatch(keys, count, out);
    return;
  }
  // Counting-sort the key positions by sub-index, then resolve each
  // shard's group as one unit. Results scatter into the caller's slots,
  // so the merged answer order is the caller's key order by construction
  // — no merge step, no schedule dependence.
  std::vector<uint32_t> shard_of(count);
  std::vector<uint32_t> begin(num_shards + 1, 0);
  for (size_t i = 0; i < count; ++i) {
    uint32_t s = static_cast<uint32_t>(ShardOfKey(keys[i]));
    shard_of[i] = s;
    ++begin[s + 1];
  }
  for (size_t s = 0; s < num_shards; ++s) begin[s + 1] += begin[s];
  std::vector<uint32_t> grouped(count);
  {
    std::vector<uint32_t> cursor(begin.begin(), begin.end() - 1);
    for (size_t i = 0; i < count; ++i) {
      grouped[cursor[shard_of[i]]++] = static_cast<uint32_t>(i);
    }
  }
  auto probe_shard = [&](size_t s) {
    const SubIndex& sub = *shards_[s];
    for (uint32_t j = begin[s]; j < begin[s + 1]; ++j) {
      uint32_t p = grouped[j];
      out[p] = FindIn(sub, keys[p]);
    }
  };
  if (pool != nullptr && pool->num_threads() > 0) {
    pool->ParallelFor(num_shards, probe_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) probe_shard(s);
  }
}

void AcIndex::RemapDictCodes(const std::vector<uint32_t>& old_to_new) {
  if (dict_ == nullptr) return;
  auto remap = [&](Value* v) {
    if (v->dict() == dict_) {
      *v = Value::DictString(dict_, old_to_new[v->dict_code()]);
    }
  };
  for (std::unique_ptr<SubIndex>& sub : shards_) {
    // Keys are const inside the map; extract() hands them back mutable.
    // The remapped key hashes identically (ValueVecHash folds byte
    // hashes, which a renumbering does not change), so re-insertion is
    // collision-free by construction.
    decltype(sub->buckets) rebuilt;
    rebuilt.reserve(sub->buckets.size());
    while (!sub->buckets.empty()) {
      auto node = sub->buckets.extract(sub->buckets.begin());
      for (Value& v : node.key()) remap(&v);
      Bucket& bucket = node.mapped();
      for (Row& y : bucket.distinct_y) {
        for (Value& v : y) remap(&v);
      }
      // positions keys mirror distinct_y; rebuild them from the remapped
      // rows rather than extracting node-by-node.
      bucket.positions.clear();
      for (size_t i = 0; i < bucket.distinct_y.size(); ++i) {
        bucket.positions.emplace(bucket.distinct_y[i], i);
      }
      rebuilt.insert(std::move(node));
    }
    sub->buckets = std::move(rebuilt);
  }
}

void AcIndex::OnInsert(const Row& row) {
  ValueVec key = KeyOf(row);
  for (const Value& v : key) {
    if (v.is_null()) return;  // NULL X-values are not indexed
  }
  SubIndex& sub = *shards_[ShardOfKey(key)];
  // Writers whose rows hash to different heap shards may reach the same
  // sub-index; per-key order still equals the commit order they observed.
  std::lock_guard<std::mutex> lock(sub.write_mutex);
  Bucket& bucket = sub.buckets[std::move(key)];
  Row y = YProjectionOf(row);
  auto it = bucket.positions.find(y);
  if (it != bucket.positions.end()) {
    ++bucket.mults[it->second];
    return;
  }
  bucket.positions.emplace(y, bucket.distinct_y.size());
  bucket.distinct_y.push_back(std::move(y));
  bucket.mults.push_back(1);
  ++sub.num_entries;
}

void AcIndex::OnDelete(const Row& row) {
  ValueVec key = KeyOf(row);
  for (const Value& v : key) {
    if (v.is_null()) return;
  }
  SubIndex& sub = *shards_[ShardOfKey(key)];
  std::lock_guard<std::mutex> lock(sub.write_mutex);
  auto bucket_it = sub.buckets.find(key);
  if (bucket_it == sub.buckets.end()) return;
  Bucket& bucket = bucket_it->second;
  Row y = YProjectionOf(row);
  auto it = bucket.positions.find(y);
  if (it == bucket.positions.end()) return;
  size_t pos = it->second;
  if (--bucket.mults[pos] > 0) return;
  // Multiplicity hit zero: remove the distinct Y-value. Swap-with-last
  // keeps removal O(1); fix the moved row's recorded position.
  size_t last = bucket.distinct_y.size() - 1;
  bucket.positions.erase(it);
  if (pos != last) {
    bucket.distinct_y[pos] = std::move(bucket.distinct_y[last]);
    bucket.mults[pos] = bucket.mults[last];
    bucket.positions[bucket.distinct_y[pos]] = pos;
  }
  bucket.distinct_y.pop_back();
  bucket.mults.pop_back();
  --sub.num_entries;
  if (bucket.distinct_y.empty()) sub.buckets.erase(bucket_it);
}

void AcIndex::ForEachBucket(
    const std::function<void(const ValueVec& key, const std::vector<Row>& ys,
                             const std::vector<size_t>& mults)>& fn) const {
  for (const std::unique_ptr<SubIndex>& sub : shards_) {
    for (const auto& [key, bucket] : sub->buckets) {
      fn(key, bucket.distinct_y, bucket.mults);
    }
  }
}

Result<std::unique_ptr<AcIndex>> AcIndex::Restore(
    AccessConstraint constraint, const TableHeap& heap,
    std::vector<RestoredBucket> buckets) {
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> x_cols,
                        constraint.ResolveX(heap.schema()));
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> y_cols,
                        constraint.ResolveY(heap.schema()));
  std::unique_ptr<AcIndex> index(
      new AcIndex(std::move(constraint), std::move(x_cols), std::move(y_cols),
                  heap.num_shards()));
  index->dict_ = heap.dict();
  for (RestoredBucket& restored : buckets) {
    if (restored.ys.size() != restored.mults.size()) {
      return Status::Internal("restored bucket ys/mults size mismatch");
    }
    SubIndex& sub = *index->shards_[index->ShardOfKey(restored.key)];
    Bucket& bucket = sub.buckets[std::move(restored.key)];
    if (!bucket.distinct_y.empty()) {
      return Status::Internal("duplicate restored bucket key");
    }
    bucket.distinct_y = std::move(restored.ys);
    bucket.mults = std::move(restored.mults);
    for (size_t i = 0; i < bucket.distinct_y.size(); ++i) {
      bucket.positions.emplace(bucket.distinct_y[i], i);
    }
    sub.num_entries += bucket.distinct_y.size();
  }
  return index;
}

size_t AcIndex::NumKeys() const {
  size_t n = 0;
  for (const auto& sub : shards_) n += sub->buckets.size();
  return n;
}

size_t AcIndex::NumEntries() const {
  size_t n = 0;
  for (const auto& sub : shards_) n += sub->num_entries;
  return n;
}

size_t AcIndex::MaxBucketSize() const {
  size_t max_size = 0;
  for (const auto& sub : shards_) {
    for (const auto& [key, bucket] : sub->buckets) {
      max_size = std::max(max_size, bucket.distinct_y.size());
    }
  }
  return max_size;
}

uint64_t AcIndex::ApproxBytes() const {
  // Values are tagged unions: ~32 bytes inline + string bodies ignored.
  constexpr uint64_t kValueBytes = 32;
  constexpr uint64_t kBucketOverhead = 64;
  uint64_t key_bytes = static_cast<uint64_t>(NumKeys()) *
                       (x_cols_.size() * kValueBytes + kBucketOverhead);
  uint64_t entry_bytes = static_cast<uint64_t>(NumEntries()) *
                         (y_cols_.size() * kValueBytes + 16);
  return key_bytes + entry_bytes;
}

}  // namespace beas
