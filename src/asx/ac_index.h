#ifndef BEAS_ASX_AC_INDEX_H_
#define BEAS_ASX_AC_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "asx/access_constraint.h"
#include "common/result.h"
#include "storage/table_heap.h"

namespace beas {

class TaskPool;

/// \brief The "modified hash index" of an access constraint (paper §3):
/// the key is the X-projection of a tuple; each key maps to the bucket
/// D_Y(X = ā) of distinct Y-projections.
///
/// Buckets store *partial tuples* (Y-projections only) — fetching through
/// this index is what gives BEAS its "reduced redundancy" property (§1
/// feature 2): no duplicated Y values, no unused attributes.
///
/// The index is incrementally maintainable (paper §3 maintenance module):
/// each bucket keeps a multiplicity count per distinct Y-value, so inserts
/// and deletes are O(1) expected, independent of |D|.
///
/// Rows whose X-projection contains NULL are not indexed (SQL equality
/// never matches NULL keys).
///
/// ## Hash sharding
///
/// The index is partitioned into the same number of shards as the heap it
/// was built over: a key lives in sub-index `hash(key) % num_shards()`.
/// Each bucket lives entirely in one sub-index, and per-key maintenance
/// order equals the caller's write order, so bucket contents — and hence
/// every fetched Y order downstream — are bit-identical across shard
/// counts. `LookupBatch` with a TaskPool partitions a deduplicated probe
/// set by sub-index and probes the shards in parallel, writing each
/// result into its caller-assigned slot (results therefore come back in
/// the caller's first-appearance key order, merge-free). Maintenance
/// (OnInsert/OnDelete) takes a per-sub-index mutex so writers whose rows
/// hash to different heap shards — serialized only per shard by Database
/// — may maintain one index concurrently; lookups never lock (readers are
/// excluded from all writers by the per-shard lock table).
///
/// ## Dictionary-encoded string keys
///
/// Keys and buckets are projections of heap rows, and the heap interns
/// every string at insert — so for a table with a dictionary, the stored
/// X-keys are effectively *code vectors*: hashing a string component
/// reads the dictionary's precomputed hash (zero byte hashing per probe)
/// and equality against another value of the same dictionary is a uint32
/// compare. Callers who probe with ad-hoc (inline) strings still get
/// byte-correct answers — hashes agree across representations — but the
/// bounded executor canonicalizes probe keys into this dictionary first
/// (see dict()) to stay on the O(1) path. Codes are not order-preserving;
/// this index is hash/equality only, so no ordering guarantee is needed
/// here — range and ORDER BY consumers decode at the comparison
/// (Value::Compare).
class AcIndex {
 public:
  /// Builds the index over all live rows of `heap` (walked in global
  /// insertion order — shard-count invariant). The declared bound
  /// `constraint.limit_n` is NOT enforced here: the index always stores
  /// every distinct Y-value so query answers stay exact; conformance is
  /// checked separately (see conformance.h) and exposed via Conforms().
  static Result<std::unique_ptr<AcIndex>> Build(AccessConstraint constraint,
                                                const TableHeap& heap);

  /// Returns the bucket for `key` (X-projection values, in x_attrs order),
  /// or nullptr if no tuple has this X-value. The returned rows are the
  /// distinct Y-projections, arity |Y|.
  const std::vector<Row>* Lookup(const ValueVec& key) const;

  /// \brief A bucket with per-Y multiplicities.
  ///
  /// `multiplicities[i]` is the number of base tuples projecting to
  /// `rows[i]` — the bag weight of the partial tuple. BEAS fetches only
  /// distinct partial tuples (paper feature 2, "reduced redundancy") yet
  /// stays exact for SQL bag semantics (COUNT/SUM/AVG) by carrying these
  /// weights through joins.
  struct BucketView {
    const std::vector<Row>* rows = nullptr;
    const std::vector<size_t>* multiplicities = nullptr;
    size_t size() const { return rows == nullptr ? 0 : rows->size(); }
  };

  /// Lookup returning Y-projections together with their multiplicities.
  BucketView LookupWithCounts(const ValueVec& key) const;

  /// \brief Batched probe: resolves `count` keys into `out[0..count)`.
  /// A tight find loop per sub-index; the batching win lives in the
  /// caller, which deduplicates the raw (row × combo) fan-out to distinct
  /// keys before probing. Keys containing NULL resolve to the empty
  /// bucket (NULL X-values are never indexed). Read-only and safe to call
  /// concurrently from several shards of one key set.
  void LookupBatch(const ValueVec* keys, size_t count, BucketView* out) const;

  /// Shard-routed batched probe: partitions the keys by sub-index and
  /// probes each shard's group as one unit — on `pool` when provided
  /// (shard-parallel, the fan-out grain of the sharded fetch chain),
  /// serially otherwise (still per-shard grouped for locality). Each
  /// result lands in its key's slot of `out`, so the merged answer is in
  /// the caller's key order regardless of shard schedule.
  void LookupBatch(const ValueVec* keys, size_t count, BucketView* out,
                   TaskPool* pool) const;

  /// Renumbers every dictionary-backed value stored in this index — X-key
  /// components and Y-projection cells — after the indexed heap's
  /// dictionary was rebuilt into sorted order (`old_to_new` is the
  /// permutation TableHeap::RebuildDictSorted returned). Byte hashes are
  /// code-independent, so every key keeps its hash and its sub-index;
  /// only the stored code payloads change. Caller holds the structural
  /// lock exclusively (no readers, no writers, same section as the heap
  /// rebuild).
  void RemapDictCodes(const std::vector<uint32_t>& old_to_new);

  /// Incremental maintenance on tuple insert (locks the key's sub-index).
  void OnInsert(const Row& row);

  /// Incremental maintenance on tuple delete (locks the key's sub-index).
  void OnDelete(const Row& row);

  const AccessConstraint& constraint() const { return constraint_; }

  /// The indexed table's string dictionary (nullptr when the table has no
  /// STRING columns or interning is off). Probe keys whose string
  /// components are backed by this dictionary hash and compare in O(1).
  const StringDict* dict() const { return dict_; }

  /// Patches the declared bound (maintenance module's periodic adjustment;
  /// the index structure itself is bound-agnostic).
  void set_limit(uint64_t n) { constraint_.limit_n = n; }

  /// Number of hash shards (sub-indexes).
  size_t num_shards() const { return shards_.size(); }

  /// Number of distinct X-keys.
  size_t NumKeys() const;

  /// Total number of distinct (X, Y) entries.
  size_t NumEntries() const;

  /// Largest bucket (max distinct Y per X observed).
  size_t MaxBucketSize() const;

  /// True if every bucket is within the declared bound N.
  bool Conforms() const { return MaxBucketSize() <= constraint_.limit_n; }

  /// Rough memory footprint, for the discovery module's storage budget.
  uint64_t ApproxBytes() const;

  /// Extracts the X-projection of a full table row (the probe key).
  ValueVec KeyOf(const Row& row) const;

  /// Extracts the Y-projection of a full table row.
  Row YProjectionOf(const Row& row) const;

  /// \name Durability surface (checkpoint export / recovery restore).
  /// @{
  /// Visits every bucket: (key, distinct Y-projections, multiplicities).
  /// Bucket-internal vectors are in maintenance order (the order answers
  /// depend on); bucket visit order is hash-map order — irrelevant, since
  /// buckets are only ever addressed by key. Caller holds the structural
  /// lock exclusively.
  void ForEachBucket(
      const std::function<void(const ValueVec& key, const std::vector<Row>& ys,
                               const std::vector<size_t>& mults)>& fn) const;

  /// One checkpointed bucket, as parsed back from a segment.
  struct RestoredBucket {
    ValueVec key;
    std::vector<Row> ys;
    std::vector<size_t> mults;
  };

  /// Rebuilds an index from checkpointed cells instead of a heap walk:
  /// resolves columns and adopts `heap`'s dictionary like Build, then
  /// installs each bucket verbatim (same Y order, same multiplicities —
  /// the state incremental maintenance had reached at the checkpoint).
  /// Keys and Y-values must already be canonicalized against `heap`'s
  /// dictionary; sub-index routing is recomputed from the key hashes
  /// (deterministic, representation-independent).
  static Result<std::unique_ptr<AcIndex>> Restore(
      AccessConstraint constraint, const TableHeap& heap,
      std::vector<RestoredBucket> buckets);
  /// @}

 private:
  AcIndex(AccessConstraint constraint, std::vector<size_t> x_cols,
          std::vector<size_t> y_cols, size_t num_shards);

  struct Bucket {
    /// Distinct Y-projections, stable order for determinism.
    std::vector<Row> distinct_y;
    /// Multiplicity of each distinct Y-value, parallel to distinct_y.
    std::vector<size_t> mults;
    /// Y-value -> position in distinct_y.
    std::unordered_map<ValueVec, size_t, ValueVecHash, ValueVecEq> positions;
  };

  /// One hash partition of the key space.
  struct SubIndex {
    std::unordered_map<ValueVec, Bucket, ValueVecHash, ValueVecEq> buckets;
    size_t num_entries = 0;
    /// Writer-writer serialization only (see class comment).
    std::mutex write_mutex;
  };

  /// The sub-index `key` routes to. The modulo distributes the same
  /// 64-bit hash the sub-maps use, so routing is deterministic and free
  /// of representational bias (dictionary-backed and inline strings hash
  /// identically).
  size_t ShardOfKey(const ValueVec& key) const {
    if (shards_.size() == 1) return 0;
    return static_cast<size_t>(ValueVecHash{}(key) % shards_.size());
  }

  BucketView FindIn(const SubIndex& sub, const ValueVec& key) const;

  AccessConstraint constraint_;
  std::vector<size_t> x_cols_;
  std::vector<size_t> y_cols_;
  const StringDict* dict_ = nullptr;  ///< the indexed heap's dictionary
  std::vector<std::unique_ptr<SubIndex>> shards_;
};

}  // namespace beas

#endif  // BEAS_ASX_AC_INDEX_H_
