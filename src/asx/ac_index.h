#ifndef BEAS_ASX_AC_INDEX_H_
#define BEAS_ASX_AC_INDEX_H_

#include <memory>
#include <unordered_map>

#include "asx/access_constraint.h"
#include "common/result.h"
#include "storage/table_heap.h"

namespace beas {

/// \brief The "modified hash index" of an access constraint (paper §3):
/// the key is the X-projection of a tuple; each key maps to the bucket
/// D_Y(X = ā) of distinct Y-projections.
///
/// Buckets store *partial tuples* (Y-projections only) — fetching through
/// this index is what gives BEAS its "reduced redundancy" property (§1
/// feature 2): no duplicated Y values, no unused attributes.
///
/// The index is incrementally maintainable (paper §3 maintenance module):
/// each bucket keeps a multiplicity count per distinct Y-value, so inserts
/// and deletes are O(1) expected, independent of |D|.
///
/// Rows whose X-projection contains NULL are not indexed (SQL equality
/// never matches NULL keys).
///
/// ## Dictionary-encoded string keys
///
/// Keys and buckets are projections of heap rows, and the heap interns
/// every string at insert — so for a table with a dictionary, the stored
/// X-keys are effectively *code vectors*: hashing a string component
/// reads the dictionary's precomputed hash (zero byte hashing per probe)
/// and equality against another value of the same dictionary is a uint32
/// compare. Callers who probe with ad-hoc (inline) strings still get
/// byte-correct answers — hashes agree across representations — but the
/// bounded executor canonicalizes probe keys into this dictionary first
/// (see dict()) to stay on the O(1) path. Codes are not order-preserving;
/// this index is hash/equality only, so no ordering guarantee is needed
/// here — range and ORDER BY consumers decode at the comparison
/// (Value::Compare).
class AcIndex {
 public:
  /// Builds the index over all live rows of `heap`. The declared bound
  /// `constraint.limit_n` is NOT enforced here: the index always stores
  /// every distinct Y-value so query answers stay exact; conformance is
  /// checked separately (see conformance.h) and exposed via Conforms().
  static Result<std::unique_ptr<AcIndex>> Build(AccessConstraint constraint,
                                                const TableHeap& heap);

  /// Returns the bucket for `key` (X-projection values, in x_attrs order),
  /// or nullptr if no tuple has this X-value. The returned rows are the
  /// distinct Y-projections, arity |Y|.
  const std::vector<Row>* Lookup(const ValueVec& key) const;

  /// \brief A bucket with per-Y multiplicities.
  ///
  /// `multiplicities[i]` is the number of base tuples projecting to
  /// `rows[i]` — the bag weight of the partial tuple. BEAS fetches only
  /// distinct partial tuples (paper feature 2, "reduced redundancy") yet
  /// stays exact for SQL bag semantics (COUNT/SUM/AVG) by carrying these
  /// weights through joins.
  struct BucketView {
    const std::vector<Row>* rows = nullptr;
    const std::vector<size_t>* multiplicities = nullptr;
    size_t size() const { return rows == nullptr ? 0 : rows->size(); }
  };

  /// Lookup returning Y-projections together with their multiplicities.
  BucketView LookupWithCounts(const ValueVec& key) const;

  /// \brief Batched probe: resolves `count` keys into `out[0..count)`.
  /// Today this is a tight find loop — one probe per key, same cost as N
  /// LookupWithCounts calls; the batching win lives in the caller, which
  /// deduplicates the raw (row × combo) fan-out to distinct keys before
  /// probing and shards large batches across a TaskPool. Keys containing
  /// NULL resolve to the empty bucket (NULL X-values are never indexed).
  /// Read-only and safe to call concurrently from several shards of one
  /// key set.
  void LookupBatch(const ValueVec* keys, size_t count, BucketView* out) const;

  /// Incremental maintenance on tuple insert.
  void OnInsert(const Row& row);

  /// Incremental maintenance on tuple delete.
  void OnDelete(const Row& row);

  const AccessConstraint& constraint() const { return constraint_; }

  /// The indexed table's string dictionary (nullptr when the table has no
  /// STRING columns or interning is off). Probe keys whose string
  /// components are backed by this dictionary hash and compare in O(1).
  const StringDict* dict() const { return dict_; }

  /// Patches the declared bound (maintenance module's periodic adjustment;
  /// the index structure itself is bound-agnostic).
  void set_limit(uint64_t n) { constraint_.limit_n = n; }

  /// Number of distinct X-keys.
  size_t NumKeys() const { return buckets_.size(); }

  /// Total number of distinct (X, Y) entries.
  size_t NumEntries() const { return num_entries_; }

  /// Largest bucket (max distinct Y per X observed).
  size_t MaxBucketSize() const;

  /// True if every bucket is within the declared bound N.
  bool Conforms() const { return MaxBucketSize() <= constraint_.limit_n; }

  /// Rough memory footprint, for the discovery module's storage budget.
  uint64_t ApproxBytes() const;

  /// Extracts the X-projection of a full table row (the probe key).
  ValueVec KeyOf(const Row& row) const;

  /// Extracts the Y-projection of a full table row.
  Row YProjectionOf(const Row& row) const;

 private:
  AcIndex(AccessConstraint constraint, std::vector<size_t> x_cols,
          std::vector<size_t> y_cols)
      : constraint_(std::move(constraint)),
        x_cols_(std::move(x_cols)),
        y_cols_(std::move(y_cols)) {}

  struct Bucket {
    /// Distinct Y-projections, stable order for determinism.
    std::vector<Row> distinct_y;
    /// Multiplicity of each distinct Y-value, parallel to distinct_y.
    std::vector<size_t> mults;
    /// Y-value -> position in distinct_y.
    std::unordered_map<ValueVec, size_t, ValueVecHash, ValueVecEq> positions;
  };

  AccessConstraint constraint_;
  std::vector<size_t> x_cols_;
  std::vector<size_t> y_cols_;
  const StringDict* dict_ = nullptr;  ///< the indexed heap's dictionary
  std::unordered_map<ValueVec, Bucket, ValueVecHash, ValueVecEq> buckets_;
  size_t num_entries_ = 0;
};

}  // namespace beas

#endif  // BEAS_ASX_AC_INDEX_H_
