#include "asx/access_constraint.h"

#include "common/string_util.h"

namespace beas {

std::string AccessConstraint::ToString() const {
  std::string out = table + "({" + Join(x_attrs, ", ") + "} -> {" +
                    Join(y_attrs, ", ") + "}, " + std::to_string(limit_n) +
                    ")";
  if (!name.empty()) out = name + ": " + out;
  return out;
}

namespace {

Result<std::vector<size_t>> ResolveAttrs(const std::vector<std::string>& attrs,
                                         const Schema& schema,
                                         const std::string& table) {
  std::vector<size_t> out;
  out.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    auto idx = schema.IndexOf(attr);
    if (!idx.ok()) {
      return Status::InvalidArgument("access constraint references unknown "
                                     "column '" +
                                     attr + "' of table '" + table + "'");
    }
    out.push_back(idx.ValueOrDie());
  }
  return out;
}

}  // namespace

Result<std::vector<size_t>> AccessConstraint::ResolveX(
    const Schema& schema) const {
  return ResolveAttrs(x_attrs, schema, table);
}

Result<std::vector<size_t>> AccessConstraint::ResolveY(
    const Schema& schema) const {
  return ResolveAttrs(y_attrs, schema, table);
}

}  // namespace beas
