#ifndef BEAS_ASX_ACCESS_CONSTRAINT_H_
#define BEAS_ASX_ACCESS_CONSTRAINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

namespace beas {

/// \brief An access constraint ψ = R(X → Y, N) (paper §2).
///
/// Semantics: a relation instance D of R conforms to ψ iff for every
/// X-value ā in D there are at most N distinct Y-projections
/// D_Y(X = ā) = { t[Y] | t ∈ D, t[X] = ā }, and an index exists that
/// retrieves D_Y(X = ā) given ā by accessing at most N tuples.
///
/// Example (paper Example 1):
///   ψ1: call({pnum, date} → {recnum, region}, 500)
struct AccessConstraint {
  std::string name;   ///< e.g. "psi1"
  std::string table;  ///< relation name R
  std::vector<std::string> x_attrs;
  std::vector<std::string> y_attrs;
  uint64_t limit_n = 0;

  /// Renders "R({x1,x2} -> {y1,y2}, N)".
  std::string ToString() const;

  /// Resolves X attribute names to column indices in `schema`.
  Result<std::vector<size_t>> ResolveX(const Schema& schema) const;

  /// Resolves Y attribute names to column indices in `schema`.
  Result<std::vector<size_t>> ResolveY(const Schema& schema) const;

  bool operator==(const AccessConstraint& other) const {
    return table == other.table && x_attrs == other.x_attrs &&
           y_attrs == other.y_attrs && limit_n == other.limit_n;
  }
};

}  // namespace beas

#endif  // BEAS_ASX_ACCESS_CONSTRAINT_H_
