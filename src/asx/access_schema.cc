#include "asx/access_schema.h"

#include "common/string_util.h"

namespace beas {

Status AccessSchema::Add(AccessConstraint constraint) {
  for (const AccessConstraint& existing : constraints_) {
    if (existing == constraint) {
      return Status::AlreadyExists("duplicate access constraint " +
                                   constraint.ToString());
    }
    if (!constraint.name.empty() && existing.name == constraint.name) {
      return Status::AlreadyExists("duplicate constraint name '" +
                                   constraint.name + "'");
    }
  }
  if (constraint.name.empty()) {
    constraint.name = "psi" + std::to_string(constraints_.size() + 1);
  }
  constraints_.push_back(std::move(constraint));
  return Status::OK();
}

std::vector<const AccessConstraint*> AccessSchema::ForTable(
    const std::string& table) const {
  std::vector<const AccessConstraint*> out;
  for (const AccessConstraint& c : constraints_) {
    if (EqualsIgnoreCase(c.table, table)) out.push_back(&c);
  }
  return out;
}

Result<const AccessConstraint*> AccessSchema::Find(
    const std::string& name) const {
  for (const AccessConstraint& c : constraints_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("no access constraint named '" + name + "'");
}

std::string AccessSchema::ToString() const {
  std::string out;
  for (const AccessConstraint& c : constraints_) {
    out += c.ToString();
    out += "\n";
  }
  return out;
}

Status AsCatalog::Register(AccessConstraint constraint) {
  BEAS_ASSIGN_OR_RETURN(TableInfo * table,
                        db_->catalog()->GetTable(constraint.table));
  // The table's first constraint nominates the heap's shard key: rows
  // inserted from now on hash-route by its first X-column, so writes with
  // distinct key values spread across per-shard write locks. Placement is
  // a locality hint only (the heap's slot directory records every row's
  // location), so rows loaded before this point simply stay where the
  // row-hash fallback put them.
  if (table->heap()->shard_key_col() < 0) {
    Result<std::vector<size_t>> x_cols =
        constraint.ResolveX(table->heap()->schema());
    if (x_cols.ok() && !x_cols->empty()) {
      table->heap()->DeclareShardKey((*x_cols)[0]);
    }
  }
  BEAS_RETURN_NOT_OK(schema_.Add(constraint));
  const AccessConstraint& added = schema_.constraints().back();
  auto index = AcIndex::Build(added, *table->heap());
  if (!index.ok()) {
    // Roll back the schema entry to keep schema_ and indexes_ in sync.
    // (Add() appends, so the failing constraint is last.)
    AccessSchema rebuilt;
    for (size_t i = 0; i + 1 < schema_.constraints().size(); ++i) {
      (void)rebuilt.Add(schema_.constraints()[i]);
    }
    schema_ = std::move(rebuilt);
    return index.status();
  }
  indexes_.push_back(std::move(index).ValueOrDie());
  NotifyChange(ChangeKind::kConstraintRegistered, added.table, added.name);
  return Status::OK();
}

Status AsCatalog::AdoptRestored(AccessConstraint constraint,
                                std::unique_ptr<AcIndex> index) {
  BEAS_RETURN_NOT_OK(schema_.Add(std::move(constraint)));
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Status AsCatalog::Unregister(const std::string& name) {
  for (size_t i = 0; i < schema_.constraints().size(); ++i) {
    if (schema_.constraints()[i].name == name) {
      std::string table = schema_.constraints()[i].table;
      AccessSchema rebuilt;
      for (size_t j = 0; j < schema_.constraints().size(); ++j) {
        if (j != i) (void)rebuilt.Add(schema_.constraints()[j]);
      }
      schema_ = std::move(rebuilt);
      indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(i));
      NotifyChange(ChangeKind::kConstraintUnregistered, table, name);
      return Status::OK();
    }
  }
  return Status::NotFound("no access constraint named '" + name + "'");
}

void AsCatalog::NotifyChange(ChangeKind kind, const std::string& table,
                             const std::string& name) const {
  for (const ChangeListener& listener : listeners_) {
    listener(kind, table, name);
  }
}

AcIndex* AsCatalog::IndexFor(const std::string& constraint_name) {
  for (auto& index : indexes_) {
    if (index->constraint().name == constraint_name) return index.get();
  }
  return nullptr;
}

const AcIndex* AsCatalog::IndexFor(const std::string& constraint_name) const {
  for (const auto& index : indexes_) {
    if (index->constraint().name == constraint_name) return index.get();
  }
  return nullptr;
}

std::vector<AcIndex*> AsCatalog::IndexesForTable(const std::string& table) {
  std::vector<AcIndex*> out;
  for (auto& index : indexes_) {
    if (EqualsIgnoreCase(index->constraint().table, table)) {
      out.push_back(index.get());
    }
  }
  return out;
}

uint64_t AsCatalog::TotalIndexBytes() const {
  uint64_t total = 0;
  for (const auto& index : indexes_) total += index->ApproxBytes();
  return total;
}

Status AsCatalog::AdjustLimit(const std::string& name, uint64_t new_n) {
  for (size_t i = 0; i < schema_.constraints().size(); ++i) {
    if (schema_.constraints()[i].name == name) {
      AccessSchema rebuilt;
      for (size_t j = 0; j < schema_.constraints().size(); ++j) {
        AccessConstraint c = schema_.constraints()[j];
        if (j == i) c.limit_n = new_n;
        (void)rebuilt.Add(std::move(c));
      }
      schema_ = std::move(rebuilt);
      // The index structure is bound-agnostic; keep its constraint copy in
      // sync so AcIndex::Conforms() uses the new bound.
      indexes_[i]->set_limit(new_n);
      NotifyChange(ChangeKind::kLimitAdjusted,
                   schema_.constraints()[i].table, name);
      return Status::OK();
    }
  }
  return Status::NotFound("no access constraint named '" + name + "'");
}

Result<bool> AsCatalog::RebuildTableDictSorted(const std::string& table) {
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->GetTable(table));
  std::vector<uint32_t> old_to_new;
  if (!info->heap()->RebuildDictSorted(&old_to_new)) return false;
  // Indexes project heap rows, so their stored keys and Y-cells carry the
  // old numbering; remap them in the same exclusive section.
  for (AcIndex* index : IndexesForTable(table)) {
    index->RemapDictCodes(old_to_new);
  }
  NotifyChange(ChangeKind::kDictRebuilt, info->name(), /*name=*/"");
  return true;
}

std::string AsCatalog::MetadataReport() const {
  std::string out =
      StringPrintf("%-8s %-52s %10s %10s %10s %12s %s\n", "name",
                   "constraint", "keys", "entries", "maxbucket", "bytes",
                   "conforms");
  for (size_t i = 0; i < schema_.constraints().size(); ++i) {
    const AccessConstraint& c = schema_.constraints()[i];
    const AcIndex& index = *indexes_[i];
    out += StringPrintf(
        "%-8s %-52s %10zu %10zu %10zu %12llu %s\n", c.name.c_str(),
        c.ToString().c_str(), index.NumKeys(), index.NumEntries(),
        index.MaxBucketSize(),
        static_cast<unsigned long long>(index.ApproxBytes()),
        index.Conforms() ? "yes" : "NO");
  }
  return out;
}

}  // namespace beas
