#ifndef BEAS_ASX_ACCESS_SCHEMA_H_
#define BEAS_ASX_ACCESS_SCHEMA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "asx/ac_index.h"
#include "asx/access_constraint.h"
#include "common/result.h"
#include "engine/database.h"

namespace beas {

/// \brief A set of access constraints over a database schema (paper §2).
class AccessSchema {
 public:
  AccessSchema() = default;

  /// Adds a constraint; auto-names it "psiK" if unnamed. Errors on a
  /// duplicate (same table/X/Y/N).
  Status Add(AccessConstraint constraint);

  const std::vector<AccessConstraint>& constraints() const {
    return constraints_;
  }

  /// Constraints defined on `table`.
  std::vector<const AccessConstraint*> ForTable(const std::string& table) const;

  /// Finds a constraint by name.
  Result<const AccessConstraint*> Find(const std::string& name) const;

  size_t size() const { return constraints_.size(); }

  std::string ToString() const;

 private:
  std::vector<AccessConstraint> constraints_;
};

/// \brief The AS Catalog metadata module (paper §3, Fig. 1): registered
/// access schema, the built indices, and their statistics.
///
/// Offline service: constraints are registered (building their modified
/// hash indices), and the catalog exposes per-index statistics "in a
/// system table" for plan generation and optimization.
class AsCatalog {
 public:
  explicit AsCatalog(Database* db) : db_(db) {}

  AsCatalog(const AsCatalog&) = delete;
  AsCatalog& operator=(const AsCatalog&) = delete;

  /// Registers a constraint and builds its index over the current data.
  Status Register(AccessConstraint constraint);

  /// Removes a constraint and drops its index.
  Status Unregister(const std::string& name);

  /// Recovery-only Register: adds `constraint` with an index restored
  /// from a checkpoint segment instead of a fresh heap walk, and fires no
  /// change listeners (recovery runs before the service serves anything,
  /// so there is nothing to invalidate — and the durability layer's own
  /// structural-logging listener must not re-log restored state). The
  /// index's constraint copy is the source of `constraint`; they arrive
  /// together from the segment. Call in original registration order so
  /// auto-naming ("psiK") and index slots line up with the pre-crash
  /// catalog.
  Status AdoptRestored(AccessConstraint constraint,
                       std::unique_ptr<AcIndex> index);

  const AccessSchema& schema() const { return schema_; }
  Database* db() { return db_; }

  /// The index for a registered constraint, or nullptr.
  AcIndex* IndexFor(const std::string& constraint_name);
  const AcIndex* IndexFor(const std::string& constraint_name) const;

  /// All indices over a given table (used by maintenance on writes).
  std::vector<AcIndex*> IndexesForTable(const std::string& table);

  /// Total approximate memory of all indices.
  uint64_t TotalIndexBytes() const;

  /// Updates the declared bound N of a registered constraint (used by the
  /// maintenance module's periodic adjustment).
  Status AdjustLimit(const std::string& name, uint64_t new_n);

  /// \brief A change to the registered access schema that affects plan
  /// validity: coverage decisions and deduced bounds derived before the
  /// change may no longer hold. Plain data writes are deliberately NOT
  /// events — AcIndex maintenance keeps existing plans valid under
  /// inserts/deletes.
  enum class ChangeKind {
    kConstraintRegistered,
    kConstraintUnregistered,
    kLimitAdjusted,
    /// A table's string dictionary was renumbered into sorted order:
    /// dictionary-backed values minted before the rebuild decode wrong,
    /// so anything cached that could hold them (plans, prepared
    /// bindings) must be dropped for the table.
    kDictRebuilt,
  };

  /// Listener invoked after every schema change, with the affected table
  /// (the invalidation granularity of the service plan cache) and the
  /// constraint name. Must be registered before the catalog is shared
  /// across threads; runs on the mutating thread.
  using ChangeListener = std::function<void(
      ChangeKind kind, const std::string& table, const std::string& name)>;
  void AddChangeListener(ChangeListener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Renumbers `table`'s string dictionary into byte-sorted order and
  /// remaps every consumer the catalog knows about: the heap's stored
  /// rows and all AC indexes built over it, then fires kDictRebuilt so
  /// the service layer evicts the table's cached plans. Caller holds the
  /// Database structural lock exclusively (the maintenance module's
  /// adjustment cycle is the intended call site). Returns true when a
  /// rebuild actually happened (false: no dictionary, or already
  /// sorted).
  Result<bool> RebuildTableDictSorted(const std::string& table);

  /// Human-readable system-table dump: one line per constraint with
  /// index statistics (keys, entries, max bucket, bytes, conforming?).
  std::string MetadataReport() const;

 private:
  void NotifyChange(ChangeKind kind, const std::string& table,
                    const std::string& name) const;

  Database* db_;
  AccessSchema schema_;
  std::vector<std::unique_ptr<AcIndex>> indexes_;  // parallel to schema_
  std::vector<ChangeListener> listeners_;
};

}  // namespace beas

#endif  // BEAS_ASX_ACCESS_SCHEMA_H_
