#include "asx/conformance.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace beas {

std::string ConformanceReport::ToString() const {
  std::string out = StringPrintf(
      "%s: %s (declared N=%llu, observed max=%llu over %llu keys)",
      constraint_name.c_str(), conforms ? "conforms" : "VIOLATED",
      static_cast<unsigned long long>(declared_n),
      static_cast<unsigned long long>(observed_max),
      static_cast<unsigned long long>(num_keys));
  for (const std::string& v : sample_violations) {
    out += "\n  violating X-value: " + v;
  }
  return out;
}

Result<ConformanceReport> VerifyConformance(
    const TableHeap& heap, const AccessConstraint& constraint) {
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> x_cols,
                        constraint.ResolveX(heap.schema()));
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> y_cols,
                        constraint.ResolveY(heap.schema()));

  std::unordered_map<ValueVec,
                     std::unordered_set<ValueVec, ValueVecHash, ValueVecEq>,
                     ValueVecHash, ValueVecEq>
      groups;
  for (auto it = heap.Begin(); it.Valid(); it.Next()) {
    const Row& row = it.row();
    ValueVec key;
    key.reserve(x_cols.size());
    bool null_key = false;
    for (size_t c : x_cols) {
      if (row[c].is_null()) null_key = true;
      key.push_back(row[c]);
    }
    if (null_key) continue;
    ValueVec y;
    y.reserve(y_cols.size());
    for (size_t c : y_cols) y.push_back(row[c]);
    groups[std::move(key)].insert(std::move(y));
  }

  ConformanceReport report;
  report.constraint_name =
      constraint.name.empty() ? constraint.ToString() : constraint.name;
  report.declared_n = constraint.limit_n;
  report.num_keys = groups.size();
  for (const auto& [key, ys] : groups) {
    report.observed_max = std::max<uint64_t>(report.observed_max, ys.size());
    if (ys.size() > constraint.limit_n &&
        report.sample_violations.size() < 5) {
      report.sample_violations.push_back(ValueVecToString(key) + " has " +
                                         std::to_string(ys.size()) +
                                         " distinct Y-values");
    }
  }
  report.conforms = report.observed_max <= constraint.limit_n;
  return report;
}

Result<std::vector<ConformanceReport>> VerifySchemaConformance(
    const Database& db, const AccessSchema& schema) {
  std::vector<ConformanceReport> reports;
  for (const AccessConstraint& c : schema.constraints()) {
    BEAS_ASSIGN_OR_RETURN(TableInfo * table, db.catalog().GetTable(c.table));
    BEAS_ASSIGN_OR_RETURN(ConformanceReport report,
                          VerifyConformance(*table->heap(), c));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace beas
