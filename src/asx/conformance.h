#ifndef BEAS_ASX_CONFORMANCE_H_
#define BEAS_ASX_CONFORMANCE_H_

#include <string>
#include <vector>

#include "asx/access_constraint.h"
#include "asx/access_schema.h"
#include "common/result.h"
#include "storage/table_heap.h"

namespace beas {

/// \brief Result of verifying D |= ψ for one constraint.
struct ConformanceReport {
  std::string constraint_name;
  bool conforms = false;
  uint64_t declared_n = 0;
  uint64_t observed_max = 0;  ///< max distinct Y per X-value in the data
  uint64_t num_keys = 0;
  std::vector<std::string> sample_violations;  ///< up to 5 offending X-keys

  std::string ToString() const;
};

/// \brief Verifies the cardinality side of ψ against a table snapshot
/// (one grouping pass; the index side is AcIndex by construction).
Result<ConformanceReport> VerifyConformance(const TableHeap& heap,
                                            const AccessConstraint& constraint);

/// \brief Verifies D |= A: every constraint of the access schema against
/// the database (paper notation: D conforms to each ψ in A).
Result<std::vector<ConformanceReport>> VerifySchemaConformance(
    const Database& db, const AccessSchema& schema);

}  // namespace beas

#endif  // BEAS_ASX_CONFORMANCE_H_
