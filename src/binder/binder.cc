#include "binder/binder.h"

#include <algorithm>

#include "common/string_util.h"
#include "sql/parser.h"

namespace beas {

struct Binder::Context {
  const std::vector<BoundAtom>* atoms;
  const std::vector<size_t>* offsets;
};

namespace {

bool IsNumericType(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble;
}

/// Coerces a literal operand to `target` when implicitly allowed, so that
/// e.g. call.date = '2016-03-01' compares DATE with DATE.
Result<ExprPtr> CoerceLiteral(ExprPtr e, TypeId target) {
  if (e->kind == ExprKind::kLiteral && !e->literal.is_null() &&
      e->literal.type() != target &&
      IsImplicitlyCoercible(e->literal.type(), target)) {
    BEAS_ASSIGN_OR_RETURN(Value v, e->literal.CoerceTo(target));
    return Expression::Literal(std::move(v), e->literal_param);
  }
  return e;
}

Result<AggFn> AggFnFromName(const std::string& name, bool star_arg) {
  if (name == "count") return star_arg ? AggFn::kCountStar : AggFn::kCount;
  if (star_arg) {
    return Status::BindError("'*' argument is only valid in COUNT(*)");
  }
  if (name == "sum") return AggFn::kSum;
  if (name == "avg") return AggFn::kAvg;
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  return Status::BindError("unknown aggregate function '" + name + "'");
}

Result<TypeId> AggResultType(AggFn fn, const ExprPtr& arg) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return TypeId::kInt64;
    case AggFn::kSum: {
      TypeId t = arg->ResultType();
      if (!IsNumericType(t)) {
        return Status::BindError("SUM requires a numeric argument");
      }
      return t;
    }
    case AggFn::kAvg:
      if (!IsNumericType(arg->ResultType())) {
        return Status::BindError("AVG requires a numeric argument");
      }
      return TypeId::kDouble;
    case AggFn::kMin:
    case AggFn::kMax:
      return arg->ResultType();
    case AggFn::kNone:
      break;
  }
  return Status::Internal("bad aggregate function");
}

}  // namespace

Result<BoundQuery> Binder::BindSql(const std::string& sql) {
  BEAS_ASSIGN_OR_RETURN(SelectStatement stmt, Parser::Parse(sql));
  return Bind(stmt);
}

Result<AttrRef> Binder::ResolveColumn(const Context& ctx,
                                      const std::string& table,
                                      const std::string& column) const {
  const auto& atoms = *ctx.atoms;
  if (!table.empty()) {
    for (size_t a = 0; a < atoms.size(); ++a) {
      if (EqualsIgnoreCase(atoms[a].alias, table)) {
        auto idx = atoms[a].table->schema().IndexOf(column);
        if (!idx.ok()) {
          return Status::BindError("table '" + table + "' has no column '" +
                                   column + "'");
        }
        return AttrRef{a, idx.ValueOrDie()};
      }
    }
    return Status::BindError("unknown table or alias '" + table + "'");
  }
  // Unqualified: must be unique across atoms.
  std::vector<AttrRef> matches;
  for (size_t a = 0; a < atoms.size(); ++a) {
    auto idx = atoms[a].table->schema().IndexOf(column);
    if (idx.ok()) matches.push_back(AttrRef{a, idx.ValueOrDie()});
  }
  if (matches.empty()) {
    return Status::BindError("unknown column '" + column + "'");
  }
  if (matches.size() > 1) {
    return Status::BindError("ambiguous column '" + column +
                             "' (qualify with a table alias)");
  }
  return matches[0];
}

Result<ExprPtr> Binder::BindScalar(const Context& ctx,
                                   const AstExpr& ast) const {
  switch (ast.type) {
    case AstExprType::kColumn: {
      BEAS_ASSIGN_OR_RETURN(AttrRef ref, ResolveColumn(ctx, ast.table, ast.column));
      const BoundAtom& atom = (*ctx.atoms)[ref.atom];
      TypeId type = atom.table->schema().ColumnAt(ref.col).type;
      size_t global = (*ctx.offsets)[ref.atom] + ref.col;
      return Expression::Column(global, type, atom.alias + "." + ast.column);
    }
    case AstExprType::kLiteral:
      return Expression::Literal(ast.literal, ast.literal_param);
    case AstExprType::kBinary: {
      if (ast.bin_op == AstBinOp::kAnd || ast.bin_op == AstBinOp::kOr) {
        BEAS_ASSIGN_OR_RETURN(ExprPtr l, BindScalar(ctx, *ast.children[0]));
        BEAS_ASSIGN_OR_RETURN(ExprPtr r, BindScalar(ctx, *ast.children[1]));
        return Expression::Logic(
            ast.bin_op == AstBinOp::kAnd ? LogicOp::kAnd : LogicOp::kOr,
            std::move(l), std::move(r));
      }
      BEAS_ASSIGN_OR_RETURN(ExprPtr l, BindScalar(ctx, *ast.children[0]));
      BEAS_ASSIGN_OR_RETURN(ExprPtr r, BindScalar(ctx, *ast.children[1]));
      switch (ast.bin_op) {
        case AstBinOp::kEq:
        case AstBinOp::kNe:
        case AstBinOp::kLt:
        case AstBinOp::kLe:
        case AstBinOp::kGt:
        case AstBinOp::kGe: {
          BEAS_ASSIGN_OR_RETURN(l, CoerceLiteral(std::move(l), r->ResultType()));
          BEAS_ASSIGN_OR_RETURN(r, CoerceLiteral(std::move(r), l->ResultType()));
          if (!IsComparableTypes(l->ResultType(), r->ResultType())) {
            return Status::BindError(
                std::string("cannot compare ") +
                TypeIdToString(l->ResultType()) + " with " +
                TypeIdToString(r->ResultType()) + " in " + ast.ToString());
          }
          CompareOp op;
          switch (ast.bin_op) {
            case AstBinOp::kEq: op = CompareOp::kEq; break;
            case AstBinOp::kNe: op = CompareOp::kNe; break;
            case AstBinOp::kLt: op = CompareOp::kLt; break;
            case AstBinOp::kLe: op = CompareOp::kLe; break;
            case AstBinOp::kGt: op = CompareOp::kGt; break;
            default: op = CompareOp::kGe; break;
          }
          return Expression::Compare(op, std::move(l), std::move(r));
        }
        case AstBinOp::kAdd:
        case AstBinOp::kSub:
        case AstBinOp::kMul:
        case AstBinOp::kDiv:
        case AstBinOp::kMod: {
          TypeId lt = l->ResultType();
          TypeId rt = r->ResultType();
          if ((!IsNumericType(lt) && lt != TypeId::kNull) ||
              (!IsNumericType(rt) && rt != TypeId::kNull)) {
            return Status::BindError("arithmetic requires numeric operands in " +
                                     ast.ToString());
          }
          ArithOp op;
          switch (ast.bin_op) {
            case AstBinOp::kAdd: op = ArithOp::kAdd; break;
            case AstBinOp::kSub: op = ArithOp::kSub; break;
            case AstBinOp::kMul: op = ArithOp::kMul; break;
            case AstBinOp::kDiv: op = ArithOp::kDiv; break;
            default: op = ArithOp::kMod; break;
          }
          return Expression::Arith(op, std::move(l), std::move(r));
        }
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case AstExprType::kUnary: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr child, BindScalar(ctx, *ast.children[0]));
      if (ast.un_op == AstUnOp::kNot) return Expression::Not(std::move(child));
      if (!IsNumericType(child->ResultType())) {
        return Status::BindError("unary minus requires a numeric operand");
      }
      return Expression::Neg(std::move(child));
    }
    case AstExprType::kBetween: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(ctx, *ast.children[0]));
      BEAS_ASSIGN_OR_RETURN(ExprPtr lo, BindScalar(ctx, *ast.children[1]));
      BEAS_ASSIGN_OR_RETURN(ExprPtr hi, BindScalar(ctx, *ast.children[2]));
      BEAS_ASSIGN_OR_RETURN(lo, CoerceLiteral(std::move(lo), e->ResultType()));
      BEAS_ASSIGN_OR_RETURN(hi, CoerceLiteral(std::move(hi), e->ResultType()));
      if (!IsComparableTypes(e->ResultType(), lo->ResultType()) ||
          !IsComparableTypes(e->ResultType(), hi->ResultType())) {
        return Status::BindError("BETWEEN operands are not comparable in " +
                                 ast.ToString());
      }
      return Expression::Between(std::move(e), std::move(lo), std::move(hi));
    }
    case AstExprType::kInList: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(ctx, *ast.children[0]));
      std::vector<Value> values;
      std::vector<int32_t> params;
      for (size_t i = 1; i < ast.children.size(); ++i) {
        if (ast.children[i]->type != AstExprType::kLiteral) {
          return Status::BindError("IN list items must be literals");
        }
        Value v = ast.children[i]->literal;
        if (!v.is_null() && v.type() != e->ResultType() &&
            IsImplicitlyCoercible(v.type(), e->ResultType())) {
          BEAS_ASSIGN_OR_RETURN(v, v.CoerceTo(e->ResultType()));
        }
        if (!v.is_null() && !IsComparableTypes(v.type(), e->ResultType())) {
          return Status::BindError("IN list item " + v.ToString() +
                                   " is not comparable with " +
                                   ast.children[0]->ToString());
        }
        values.push_back(std::move(v));
        params.push_back(ast.children[i]->literal_param);
      }
      return Expression::InList(std::move(e), std::move(values),
                                std::move(params));
    }
    case AstExprType::kIsNull: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(ctx, *ast.children[0]));
      return Expression::IsNull(std::move(e), ast.negated);
    }
    case AstExprType::kFunction:
      return Status::BindError("aggregate '" + ast.func_name +
                               "' is not allowed in this clause");
    case AstExprType::kStar:
      return Status::BindError("'*' is only valid in COUNT(*)");
  }
  return Status::Internal("bad AST node");
}

Status Binder::ClassifyConjunct(const BoundQuery& query,
                                Conjunct* conjunct) const {
  const Expression& e = *conjunct->expr;

  std::vector<size_t> cols;
  e.CollectColumns(&cols);
  conjunct->attrs.clear();
  for (size_t g : cols) conjunct->attrs.push_back(query.AttrOfGlobal(g));

  conjunct->cls = ConjunctClass::kOther;
  if (e.kind == ExprKind::kCompare && e.cmp == CompareOp::kEq) {
    const Expression& l = *e.children[0];
    const Expression& r = *e.children[1];
    if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral &&
        !r.literal.is_null()) {
      conjunct->cls = ConjunctClass::kEqConst;
      conjunct->lhs = query.AttrOfGlobal(l.column_index);
      conjunct->const_val = r.literal;
    } else if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral &&
               !l.literal.is_null()) {
      conjunct->cls = ConjunctClass::kEqConst;
      conjunct->lhs = query.AttrOfGlobal(r.column_index);
      conjunct->const_val = l.literal;
    } else if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
      conjunct->cls = ConjunctClass::kEqAttr;
      conjunct->lhs = query.AttrOfGlobal(l.column_index);
      conjunct->rhs = query.AttrOfGlobal(r.column_index);
    }
  } else if (e.kind == ExprKind::kInList &&
             e.children[0]->kind == ExprKind::kColumnRef) {
    bool all_non_null = true;
    for (const Value& v : e.in_values) {
      if (v.is_null()) all_non_null = false;
    }
    if (all_non_null && !e.in_values.empty()) {
      conjunct->cls = ConjunctClass::kInConst;
      conjunct->lhs = query.AttrOfGlobal(e.children[0]->column_index);
      // Deduplicate: IN (2, 2) ≡ IN (2). The list seeds bounded-plan probe
      // keys and the bound multiplier, where duplicates would double-count.
      for (const Value& v : e.in_values) {
        bool seen = false;
        for (const Value& w : conjunct->in_vals) seen |= (w == v);
        if (!seen) conjunct->in_vals.push_back(v);
      }
    }
  }
  return Status::OK();
}

Status Binder::BindWhere(const Context& ctx, const AstExpr& ast,
                         BoundQuery* query) const {
  // Flatten top-level ANDs into CNF conjuncts.
  if (ast.type == AstExprType::kBinary && ast.bin_op == AstBinOp::kAnd) {
    BEAS_RETURN_NOT_OK(BindWhere(ctx, *ast.children[0], query));
    BEAS_RETURN_NOT_OK(BindWhere(ctx, *ast.children[1], query));
    return Status::OK();
  }
  auto bound = BindScalar(ctx, ast);
  if (!bound.ok()) return bound.status();
  Conjunct conjunct;
  conjunct.expr = std::move(bound).ValueOrDie();
  BEAS_RETURN_NOT_OK(ClassifyConjunct(*query, &conjunct));
  query->conjuncts.push_back(std::move(conjunct));
  return Status::OK();
}

Result<ExprPtr> Binder::BindHaving(const Context& ctx, const AstExpr& ast,
                                   BoundQuery* query) const {
  size_t num_groups = query->group_by.size();
  switch (ast.type) {
    case AstExprType::kFunction: {
      bool star = !ast.children.empty() &&
                  ast.children[0]->type == AstExprType::kStar;
      BEAS_ASSIGN_OR_RETURN(AggFn fn, AggFnFromName(ast.func_name, star));
      ExprPtr arg;
      if (!star) {
        BEAS_ASSIGN_OR_RETURN(arg, BindScalar(ctx, *ast.children[0]));
      }
      // Reuse an existing aggregate if one matches, else append a hidden one.
      for (size_t i = 0; i < query->aggregates.size(); ++i) {
        const AggSpec& spec = query->aggregates[i];
        bool same_arg = (!spec.arg && !arg) ||
                        (spec.arg && arg && spec.arg->Equals(*arg));
        if (spec.fn == fn && spec.distinct == ast.distinct_arg && same_arg) {
          return Expression::Column(num_groups + i, spec.result_type, spec.name);
        }
      }
      AggSpec spec;
      spec.fn = fn;
      spec.distinct = ast.distinct_arg;
      spec.arg = arg;
      if (fn == AggFn::kCountStar) {
        spec.result_type = TypeId::kInt64;
      } else {
        BEAS_ASSIGN_OR_RETURN(spec.result_type, AggResultType(fn, arg));
      }
      spec.name = ast.ToString();
      query->aggregates.push_back(spec);
      return Expression::Column(num_groups + query->aggregates.size() - 1,
                                spec.result_type, spec.name);
    }
    case AstExprType::kColumn: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(ctx, ast));
      for (size_t g = 0; g < query->group_by.size(); ++g) {
        if (query->group_by[g]->Equals(*bound)) {
          return Expression::Column(g, bound->ResultType(), bound->ToString());
        }
      }
      return Status::BindError("HAVING references '" + ast.ToString() +
                               "' which is not in GROUP BY");
    }
    case AstExprType::kLiteral:
      return Expression::Literal(ast.literal, ast.literal_param);
    case AstExprType::kBinary: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr l, BindHaving(ctx, *ast.children[0], query));
      BEAS_ASSIGN_OR_RETURN(ExprPtr r, BindHaving(ctx, *ast.children[1], query));
      switch (ast.bin_op) {
        case AstBinOp::kAnd:
          return Expression::Logic(LogicOp::kAnd, std::move(l), std::move(r));
        case AstBinOp::kOr:
          return Expression::Logic(LogicOp::kOr, std::move(l), std::move(r));
        case AstBinOp::kEq:
          return Expression::Compare(CompareOp::kEq, std::move(l), std::move(r));
        case AstBinOp::kNe:
          return Expression::Compare(CompareOp::kNe, std::move(l), std::move(r));
        case AstBinOp::kLt:
          return Expression::Compare(CompareOp::kLt, std::move(l), std::move(r));
        case AstBinOp::kLe:
          return Expression::Compare(CompareOp::kLe, std::move(l), std::move(r));
        case AstBinOp::kGt:
          return Expression::Compare(CompareOp::kGt, std::move(l), std::move(r));
        case AstBinOp::kGe:
          return Expression::Compare(CompareOp::kGe, std::move(l), std::move(r));
        case AstBinOp::kAdd:
          return Expression::Arith(ArithOp::kAdd, std::move(l), std::move(r));
        case AstBinOp::kSub:
          return Expression::Arith(ArithOp::kSub, std::move(l), std::move(r));
        case AstBinOp::kMul:
          return Expression::Arith(ArithOp::kMul, std::move(l), std::move(r));
        case AstBinOp::kDiv:
          return Expression::Arith(ArithOp::kDiv, std::move(l), std::move(r));
        case AstBinOp::kMod:
          return Expression::Arith(ArithOp::kMod, std::move(l), std::move(r));
      }
      return Status::Internal("unhandled binary op in HAVING");
    }
    case AstExprType::kUnary: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr c, BindHaving(ctx, *ast.children[0], query));
      return ast.un_op == AstUnOp::kNot ? Expression::Not(std::move(c))
                                        : Expression::Neg(std::move(c));
    }
    case AstExprType::kBetween: {
      BEAS_ASSIGN_OR_RETURN(ExprPtr e, BindHaving(ctx, *ast.children[0], query));
      BEAS_ASSIGN_OR_RETURN(ExprPtr lo, BindHaving(ctx, *ast.children[1], query));
      BEAS_ASSIGN_OR_RETURN(ExprPtr hi, BindHaving(ctx, *ast.children[2], query));
      return Expression::Between(std::move(e), std::move(lo), std::move(hi));
    }
    default:
      return Status::BindError("unsupported expression in HAVING: " +
                               ast.ToString());
  }
}

Result<BoundQuery> Binder::Bind(const SelectStatement& stmt) {
  BoundQuery query;

  // FROM: resolve atoms.
  if (stmt.from.empty()) {
    return Status::BindError("FROM clause is required");
  }
  for (const TableRef& ref : stmt.from) {
    auto table = catalog_->GetTable(ref.table);
    if (!table.ok()) {
      return Status::BindError("unknown table '" + ref.table + "'");
    }
    const std::string& alias = ref.EffectiveName();
    for (const BoundAtom& existing : query.atoms) {
      if (EqualsIgnoreCase(existing.alias, alias)) {
        return Status::BindError("duplicate table alias '" + alias + "'");
      }
    }
    query.atoms.push_back(BoundAtom{table.ValueOrDie(), alias});
  }
  query.atom_offsets.resize(query.atoms.size());
  size_t offset = 0;
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    query.atom_offsets[a] = offset;
    offset += query.atoms[a].table->schema().NumColumns();
  }
  query.total_columns = offset;

  Context ctx{&query.atoms, &query.atom_offsets};

  // WHERE.
  if (stmt.where) {
    BEAS_RETURN_NOT_OK(BindWhere(ctx, *stmt.where, &query));
  }

  // GROUP BY.
  for (const AstExprPtr& g : stmt.group_by) {
    BEAS_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(ctx, *g));
    query.group_by.push_back(std::move(e));
  }

  // SELECT list.
  for (const SelectItem& item : stmt.items) {
    OutputItem out;
    const AstExpr& ast = *item.expr;
    if (ast.type == AstExprType::kFunction) {
      bool star = !ast.children.empty() &&
                  ast.children[0]->type == AstExprType::kStar;
      BEAS_ASSIGN_OR_RETURN(AggFn fn, AggFnFromName(ast.func_name, star));
      AggSpec spec;
      spec.fn = fn;
      spec.distinct = ast.distinct_arg;
      if (!star) {
        BEAS_ASSIGN_OR_RETURN(spec.arg, BindScalar(ctx, *ast.children[0]));
        BEAS_ASSIGN_OR_RETURN(spec.result_type, AggResultType(fn, spec.arg));
      } else {
        spec.result_type = TypeId::kInt64;
      }
      spec.name = item.alias.empty() ? ast.ToString() : item.alias;
      out.agg = fn;
      out.slot = query.aggregates.size();
      out.name = spec.name;
      out.type = spec.result_type;
      query.aggregates.push_back(std::move(spec));
    } else {
      if (ast.type == AstExprType::kStar) {
        return Status::BindError(
            "SELECT * is not supported; name the columns explicitly");
      }
      BEAS_ASSIGN_OR_RETURN(out.expr, BindScalar(ctx, ast));
      out.name = item.alias.empty() ? ast.ToString() : item.alias;
      out.type = out.expr->ResultType();
    }
    query.outputs.push_back(std::move(out));
  }

  // Aggregate-query validation: every scalar output must match a GROUP BY
  // expression.
  if (query.HasAggregates()) {
    for (OutputItem& out : query.outputs) {
      if (out.agg != AggFn::kNone) continue;
      bool found = false;
      for (size_t g = 0; g < query.group_by.size(); ++g) {
        if (query.group_by[g]->Equals(*out.expr)) {
          out.slot = g;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::BindError("output '" + out.name +
                                 "' must appear in GROUP BY or be aggregated");
      }
    }
  }

  // HAVING.
  if (stmt.having) {
    if (!query.HasAggregates()) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    BEAS_ASSIGN_OR_RETURN(query.having, BindHaving(ctx, *stmt.having, &query));
  }

  // ORDER BY: resolve to output positions.
  for (const OrderItem& item : stmt.order_by) {
    const AstExpr& ast = *item.expr;
    BoundOrderItem bound;
    bound.asc = item.asc;
    bool resolved = false;
    if (ast.type == AstExprType::kLiteral &&
        ast.literal.type() == TypeId::kInt64) {
      int64_t pos = ast.literal.AsInt64();
      if (pos < 1 || pos > static_cast<int64_t>(query.outputs.size())) {
        return Status::BindError("ORDER BY position " + std::to_string(pos) +
                                 " is out of range");
      }
      bound.output_index = static_cast<size_t>(pos - 1);
      resolved = true;
    } else if (ast.type == AstExprType::kColumn) {
      // Try alias/name match first.
      for (size_t i = 0; i < query.outputs.size() && !resolved; ++i) {
        if (EqualsIgnoreCase(query.outputs[i].name, ast.column) ||
            EqualsIgnoreCase(query.outputs[i].name, ast.ToString())) {
          bound.output_index = i;
          resolved = true;
        }
      }
      // Then structural match against scalar outputs.
      if (!resolved) {
        auto e = BindScalar(ctx, ast);
        if (e.ok()) {
          for (size_t i = 0; i < query.outputs.size() && !resolved; ++i) {
            if (query.outputs[i].expr &&
                query.outputs[i].expr->Equals(**e)) {
              bound.output_index = i;
              resolved = true;
            }
          }
        }
      }
    } else if (ast.type == AstExprType::kFunction) {
      // Match an aggregate output by (fn, distinct, argument).
      bool star = !ast.children.empty() &&
                  ast.children[0]->type == AstExprType::kStar;
      auto fn = AggFnFromName(ast.func_name, star);
      if (fn.ok()) {
        ExprPtr arg;
        if (!star) {
          auto bound_arg = BindScalar(ctx, *ast.children[0]);
          if (!bound_arg.ok()) return bound_arg.status();
          arg = std::move(bound_arg).ValueOrDie();
        }
        for (size_t i = 0; i < query.outputs.size() && !resolved; ++i) {
          const OutputItem& out = query.outputs[i];
          if (out.agg != *fn) continue;
          const AggSpec& spec = query.aggregates[out.slot];
          bool same_arg = (!spec.arg && !arg) ||
                          (spec.arg && arg && spec.arg->Equals(*arg));
          if (same_arg && spec.distinct == ast.distinct_arg) {
            bound.output_index = i;
            resolved = true;
          }
        }
      }
    }
    if (!resolved) {
      return Status::BindError(
          "ORDER BY must reference a select-list column, alias, or position: " +
          ast.ToString());
    }
    query.order_by.push_back(bound);
  }

  query.limit = stmt.limit;
  query.limit_param = stmt.limit_param;
  query.distinct = stmt.distinct;
  if (query.distinct && query.HasAggregates()) {
    return Status::BindError(
        "SELECT DISTINCT with aggregates is not supported");
  }
  return query;
}

}  // namespace beas
