#ifndef BEAS_BINDER_BINDER_H_
#define BEAS_BINDER_BINDER_H_

#include <string>

#include "binder/bound_query.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace beas {

/// \brief Semantic analysis: resolves a parsed SelectStatement against the
/// catalog into a BoundQuery.
///
/// Responsibilities:
///  - FROM resolution (tables, unique aliases, self-joins);
///  - column resolution (qualified and unqualified; ambiguity detection);
///  - literal coercion (string/int literals compared to DATE columns);
///  - static type checking of comparisons and arithmetic;
///  - CNF conversion of WHERE and conjunct classification (attr = const,
///    attr = attr, attr IN (...), other) for the BE checker;
///  - aggregate validation (non-aggregated outputs must appear in GROUP BY;
///    no nested aggregates) and HAVING/ORDER BY resolution.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a parsed statement.
  Result<BoundQuery> Bind(const SelectStatement& stmt);

  /// Convenience: parse + bind.
  Result<BoundQuery> BindSql(const std::string& sql);

 private:
  struct Context;

  Result<AttrRef> ResolveColumn(const Context& ctx, const std::string& table,
                                const std::string& column) const;
  Result<ExprPtr> BindScalar(const Context& ctx, const AstExpr& ast) const;
  Status BindWhere(const Context& ctx, const AstExpr& ast,
                   BoundQuery* query) const;
  Status ClassifyConjunct(const BoundQuery& query, Conjunct* conjunct) const;
  Result<ExprPtr> BindHaving(const Context& ctx, const AstExpr& ast,
                             BoundQuery* query) const;

  const Catalog* catalog_;
};

}  // namespace beas

#endif  // BEAS_BINDER_BINDER_H_
