#include "binder/bound_query.h"

#include <algorithm>

namespace beas {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kNone: return "none";
    case AggFn::kCountStar: return "count(*)";
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

std::string Conjunct::ToString() const {
  return expr ? expr->ToString() : "<null>";
}

AttrRef BoundQuery::AttrOfGlobal(size_t global) const {
  AttrRef ref;
  for (size_t a = atoms.size(); a-- > 0;) {
    if (global >= atom_offsets[a]) {
      ref.atom = a;
      ref.col = global - atom_offsets[a];
      return ref;
    }
  }
  return ref;
}

std::vector<AttrRef> BoundQuery::AttrsUsed() const {
  std::vector<size_t> globals;
  auto collect = [&globals](const ExprPtr& e) {
    if (!e) return;
    std::vector<size_t> cols;
    e->CollectColumns(&cols);
    globals.insert(globals.end(), cols.begin(), cols.end());
  };
  for (const auto& c : conjuncts) collect(c.expr);
  for (const auto& o : outputs) collect(o.expr);
  for (const auto& g : group_by) collect(g);
  for (const auto& a : aggregates) collect(a.arg);
  std::sort(globals.begin(), globals.end());
  globals.erase(std::unique(globals.begin(), globals.end()), globals.end());
  std::vector<AttrRef> out;
  out.reserve(globals.size());
  for (size_t g : globals) out.push_back(AttrOfGlobal(g));
  return out;
}

std::string BoundQuery::AttrName(AttrRef a) const {
  return atoms[a.atom].alias + "." +
         atoms[a.atom].table->schema().ColumnAt(a.col).name;
}

std::string BoundQuery::ToString() const {
  std::string out = "BoundQuery{atoms=[";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].table->name();
    if (atoms[i].alias != atoms[i].table->name()) out += " " + atoms[i].alias;
  }
  out += "], conjuncts=[";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i].ToString();
  }
  out += "], outputs=[";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i > 0) out += ", ";
    out += outputs[i].name;
  }
  out += "]}";
  return out;
}

}  // namespace beas
