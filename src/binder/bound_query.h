#ifndef BEAS_BINDER_BOUND_QUERY_H_
#define BEAS_BINDER_BOUND_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"

namespace beas {

/// \brief A (relation-atom, column) pair: the identity of an attribute
/// occurrence in a query. Self-joins give the same table several atoms.
struct AttrRef {
  size_t atom = 0;
  size_t col = 0;

  bool operator==(const AttrRef& other) const {
    return atom == other.atom && col == other.col;
  }
  bool operator<(const AttrRef& other) const {
    return atom != other.atom ? atom < other.atom : col < other.col;
  }
};

/// \brief One relation occurrence in FROM.
struct BoundAtom {
  TableInfo* table = nullptr;
  std::string alias;
};

/// \brief Classification of a WHERE conjunct, used by the BE checker.
enum class ConjunctClass {
  kEqConst,  ///< attr = constant
  kEqAttr,   ///< attr = attr (equi-join or intra-atom equality)
  kInConst,  ///< attr IN (c1..ck), all constants
  kOther,    ///< anything else (ranges, ORs, arithmetic, ...)
};

/// \brief One conjunct of the WHERE clause in CNF.
///
/// `expr` is always present and bound to the query's global column layout
/// (atom-major concatenation of the atom schemas); the classification
/// fields are populated per `cls`.
struct Conjunct {
  ConjunctClass cls = ConjunctClass::kOther;
  AttrRef lhs;               ///< kEqConst / kEqAttr / kInConst
  AttrRef rhs;               ///< kEqAttr
  Value const_val;           ///< kEqConst
  std::vector<Value> in_vals;  ///< kInConst
  ExprPtr expr;
  std::vector<AttrRef> attrs;  ///< all attributes referenced, sorted

  std::string ToString() const;
};

/// \brief Aggregate functions.
enum class AggFn { kNone, kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFnToString(AggFn fn);

/// \brief One aggregate computed by the query (visible or HAVING-only).
struct AggSpec {
  AggFn fn = AggFn::kCountStar;
  bool distinct = false;
  ExprPtr arg;  ///< null for COUNT(*); bound to the global layout
  TypeId result_type = TypeId::kInt64;
  std::string name;
};

/// \brief One item of the (bound) SELECT list.
struct OutputItem {
  AggFn agg = AggFn::kNone;  ///< kNone for scalar outputs
  ExprPtr expr;              ///< scalar: bound expr; aggregate: null
  size_t slot = 0;  ///< aggregate: index into `aggregates`; scalar output of a
                    ///< grouped query: index into `group_by`
  std::string name;
  TypeId type = TypeId::kNull;
};

/// \brief ORDER BY bound to a SELECT-list position.
struct BoundOrderItem {
  size_t output_index = 0;
  bool asc = true;
};

/// \brief The fully resolved query: the IR shared by the conventional
/// planner, the BE checker, and the bounded plan generator.
struct BoundQuery {
  std::vector<BoundAtom> atoms;
  std::vector<Conjunct> conjuncts;
  std::vector<OutputItem> outputs;
  std::vector<ExprPtr> group_by;     ///< bound to the global layout
  std::vector<AggSpec> aggregates;   ///< all aggregates incl. HAVING-only
  ExprPtr having;  ///< bound to the [group values..., aggregate values...] layout
  std::vector<BoundOrderItem> order_by;
  std::optional<int64_t> limit;
  int32_t limit_param = 0;  ///< literal provenance of `limit` (0 = none)
  bool distinct = false;

  /// Atom-major global layout: column `c` of atom `a` lives at
  /// `atom_offsets[a] + c`.
  std::vector<size_t> atom_offsets;
  size_t total_columns = 0;

  bool HasAggregates() const {
    return !aggregates.empty() || !group_by.empty();
  }

  size_t GlobalIndex(AttrRef a) const { return atom_offsets[a.atom] + a.col; }

  /// Inverse of GlobalIndex.
  AttrRef AttrOfGlobal(size_t global) const;

  /// All attributes the query mentions anywhere (outputs, conjuncts,
  /// grouping, aggregate arguments), sorted and deduplicated. These are
  /// the attributes a bounded plan must produce.
  std::vector<AttrRef> AttrsUsed() const;

  /// Display name "alias.column" of an attribute.
  std::string AttrName(AttrRef a) const;

  std::string ToString() const;
};

}  // namespace beas

#endif  // BEAS_BINDER_BOUND_QUERY_H_
