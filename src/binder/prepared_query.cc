#include "binder/prepared_query.h"

#include "expr/expression.h"

namespace beas {

namespace {

void MarkParams(const ExprPtr& e, std::vector<bool>* substitutable) {
  if (!e) return;
  auto mark = [&](int32_t p) {
    if (p == 0) return;
    size_t idx = static_cast<size_t>(p > 0 ? p : -p) - 1;
    if (idx < substitutable->size()) (*substitutable)[idx] = true;
  };
  mark(e->literal_param);
  for (int32_t p : e->in_params) mark(p);
  for (const ExprPtr& child : e->children) MarkParams(child, substitutable);
}

/// Refreshes the value-carrying halves of a conjunct's classification
/// after substitution (the structural halves — cls, lhs, rhs, attrs — are
/// template-level and stay). Mirrors Binder::ClassifyConjunct.
void RefreshConjunctConstants(Conjunct* conjunct) {
  const Expression& e = *conjunct->expr;
  if (conjunct->cls == ConjunctClass::kEqConst) {
    const Expression& r = *e.children[1];
    conjunct->const_val =
        r.kind == ExprKind::kLiteral ? r.literal : e.children[0]->literal;
  } else if (conjunct->cls == ConjunctClass::kInConst) {
    conjunct->in_vals.clear();
    for (const Value& v : e.in_values) {
      bool seen = false;
      for (const Value& w : conjunct->in_vals) seen |= (w == v);
      if (!seen) conjunct->in_vals.push_back(v);
    }
  }
}

}  // namespace

PreparedQuery PrepareQuery(BoundQuery query, std::vector<Value> params) {
  PreparedQuery out;
  out.params = std::move(params);
  out.substitutable.assign(out.params.size(), false);

  out.conjunct_has_params.reserve(query.conjuncts.size());
  for (const Conjunct& c : query.conjuncts) {
    MarkParams(c.expr, &out.substitutable);
    out.conjunct_has_params.push_back(HasParams(c.expr));
  }
  // Output literals are substitutable only in plain SELECTs: in grouped /
  // aggregate queries the binder matched each scalar output to a GROUP BY
  // expression *by value* (OutputItem::slot), and ORDER BY items may have
  // structurally matched an output the same way — substituting would
  // silently break the match a fresh bind re-checks.
  bool outputs_substitutable =
      !query.HasAggregates() && query.order_by.empty();
  out.output_has_params.reserve(query.outputs.size());
  out.output_name_from_expr.reserve(query.outputs.size());
  for (const OutputItem& item : query.outputs) {
    if (outputs_substitutable) MarkParams(item.expr, &out.substitutable);
    out.output_has_params.push_back(outputs_substitutable &&
                                    HasParams(item.expr));
    out.output_name_from_expr.push_back(
        item.expr != nullptr && item.name == item.expr->ToString());
  }
  if (query.limit_param != 0) {
    size_t idx = static_cast<size_t>(query.limit_param) - 1;
    if (idx < out.substitutable.size()) out.substitutable[idx] = true;
  }
  // Everything else — GROUP BY, aggregate arguments, HAVING, and literals
  // consumed during binding (ORDER BY positions / matching) — stays
  // frozen: the binder resolves those by value.
  out.query = std::move(query);
  return out;
}

Result<BoundQuery> InstantiatePrepared(const PreparedQuery& prepared,
                                       const std::vector<Value>& params) {
  if (params.size() != prepared.params.size()) {
    return Status::Internal("parameter count differs from the template");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (prepared.substitutable[i]) continue;
    if (params[i].type() != prepared.params[i].type() ||
        params[i] != prepared.params[i]) {
      return Status::Internal(
          "frozen parameter " + std::to_string(i) +
          " differs (it steered a value-sensitive binder decision)");
    }
  }

  BoundQuery query = prepared.query;
  if (query.limit_param != 0) {
    const Value& v = params[static_cast<size_t>(query.limit_param) - 1];
    if (v.type() != TypeId::kInt64) {
      return Status::Internal("LIMIT parameter is not an integer");
    }
    query.limit = v.AsInt64();
  }
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (!prepared.conjunct_has_params[ci]) continue;
    Conjunct& c = query.conjuncts[ci];
    BEAS_ASSIGN_OR_RETURN(c.expr, SubstituteParams(c.expr, params));
    RefreshConjunctConstants(&c);
  }
  for (size_t oi = 0; oi < query.outputs.size(); ++oi) {
    if (!prepared.output_has_params[oi]) continue;
    OutputItem& item = query.outputs[oi];
    BEAS_ASSIGN_OR_RETURN(item.expr, SubstituteParams(item.expr, params));
    if (prepared.output_name_from_expr[oi]) item.name = item.expr->ToString();
  }
  return query;
}

}  // namespace beas
