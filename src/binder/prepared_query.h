#ifndef BEAS_BINDER_PREPARED_QUERY_H_
#define BEAS_BINDER_PREPARED_QUERY_H_

#include <vector>

#include "binder/bound_query.h"

namespace beas {

/// \brief A bound query packaged for template reuse: the service layer's
/// prepared-statement analog.
///
/// Binding is deterministic in the query's *template* (its literal-masked
/// text) plus the catalog state: two instances of one template bind to
/// structurally identical BoundQuerys that differ only in literal values.
/// A PreparedQuery captures one instance's binding plus, per literal slot,
/// whether a fresh value can be substituted without re-binding.
///
/// A slot is *substitutable* when its literal survives into a conjunct
/// expression, an output expression of a plain SELECT (no aggregates, no
/// ORDER BY), or LIMIT — places the binder treats purely structurally.
/// Every other slot is *frozen*: its value may have steered a
/// value-sensitive binder decision (GROUP BY / HAVING / ORDER BY
/// resolution matches expressions by value, ORDER BY positions are
/// literal indices, grouped outputs are matched to GROUP BY slots), so
/// instantiation requires the new instance to supply the identical value,
/// else the caller must re-bind from scratch.
struct PreparedQuery {
  BoundQuery query;           ///< the populating instance's binding
  std::vector<Value> params;  ///< its literal values, in token order
  std::vector<bool> substitutable;  ///< per slot of `params`

  /// Per-conjunct / per-output flags: does this expression contain any
  /// substitutable parameter (computed once to skip no-op substitutions).
  std::vector<bool> conjunct_has_params;
  std::vector<bool> output_has_params;
  /// Outputs whose display name must be re-rendered after substitution
  /// (unaliased expressions embed literal values in their names).
  std::vector<bool> output_name_from_expr;
};

/// Packages `query` (bound from a SQL text whose literal values are
/// `params`, in token order — see NormalizeSql/MaskSqlLiterals).
PreparedQuery PrepareQuery(BoundQuery query, std::vector<Value> params);

/// Instantiates the template for a new parameter vector: substitutes the
/// substitutable slots, re-derives the conjunct classifications that carry
/// constants (kEqConst / kInConst), and re-checks that every frozen slot
/// received an identical value. Errors mean "re-bind the SQL instead" —
/// frozen-value mismatch, arity mismatch, or a failed coercion.
Result<BoundQuery> InstantiatePrepared(const PreparedQuery& prepared,
                                       const std::vector<Value>& params);

}  // namespace beas

#endif  // BEAS_BINDER_PREPARED_QUERY_H_
