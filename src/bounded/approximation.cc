#include "bounded/approximation.h"

namespace beas {

Result<ApproxResult> ResourceBoundedApproximator::Execute(
    const BoundQuery& query, const BoundedPlan& plan, uint64_t budget) const {
  BoundedExecOptions options;
  options.fetch_budget = budget;
  BoundedExecStats stats;
  ApproxResult out;
  BEAS_ASSIGN_OR_RETURN(out.result,
                        executor_.Execute(query, plan, options, &stats));
  out.eta = stats.eta;
  out.budget = budget;
  out.tuples_fetched = stats.tuples_fetched;
  out.exact = stats.eta >= 1.0;
  out.result.engine = "BEAS (resource-bounded approximation)";
  return out;
}

}  // namespace beas
