#ifndef BEAS_BOUNDED_APPROXIMATION_H_
#define BEAS_BOUNDED_APPROXIMATION_H_

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_executor.h"
#include "bounded/plan_generator.h"
#include "common/result.h"

namespace beas {

/// \brief An approximate answer with its deterministic coverage bound.
struct ApproxResult {
  QueryResult result;
  double eta = 1.0;     ///< deterministic coverage lower bound (see below)
  uint64_t budget = 0;  ///< requested fetch budget (tuples)
  uint64_t tuples_fetched = 0;
  bool exact = false;   ///< true when the budget was never binding
};

/// \brief Resource-bounded approximation (paper §2/§3: for queries or
/// budgets where exact bounded evaluation is not affordable, BEAS
/// "guarantees a deterministic accuracy lower bound on approximate
/// answers computed, and accesses a bounded number of tuples in the
/// entire process"; the paper defers its scheme — this is our documented
/// stand-in with the same interface shape).
///
/// Mechanism: the fetch budget is split across the plan's fetch steps in
/// proportion to their deduced bounds. Each step serves probe keys until
/// its share is exhausted; rows whose probes were not served are dropped.
/// η is the product over steps of the served-key fraction: every reported
/// answer is exact (computed from real fetched data — answers are a subset
/// of the true answer for SPC queries), and η is a deterministic, known-at-
/// completion lower bound on the fraction of probe work covered.
class ResourceBoundedApproximator {
 public:
  explicit ResourceBoundedApproximator(const AsCatalog* catalog)
      : catalog_(catalog), executor_(catalog) {}

  /// Runs the plan under `budget` fetched tuples.
  Result<ApproxResult> Execute(const BoundQuery& query,
                               const BoundedPlan& plan,
                               uint64_t budget) const;

 private:
  const AsCatalog* catalog_;
  BoundedExecutor executor_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_APPROXIMATION_H_
