#include "bounded/attr_binding.h"

#include <algorithm>

namespace beas {

size_t AttrBindingAnalysis::Find(size_t g) const {
  while (parent_[g] != g) {
    parent_[g] = parent_[parent_[g]];  // path halving
    g = parent_[g];
  }
  return g;
}

void AttrBindingAnalysis::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra != rb) parent_[rb] = ra;
}

AttrBindingAnalysis::AttrBindingAnalysis(
    const BoundQuery& query, const std::vector<bool>& conjunct_mask) {
  size_t n = query.total_columns;
  parent_.resize(n);
  for (size_t i = 0; i < n; ++i) parent_[i] = i;

  auto enabled = [&](size_t ci) {
    return conjunct_mask.empty() || conjunct_mask[ci];
  };

  // Pass 1: unions from equality conjuncts.
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (!enabled(ci)) continue;
    const Conjunct& c = query.conjuncts[ci];
    if (c.cls == ConjunctClass::kEqAttr) {
      Union(query.GlobalIndex(c.lhs), query.GlobalIndex(c.rhs));
    }
  }

  // Pass 2: attach constants to class roots.
  std::vector<std::vector<Value>> eq_consts(n);
  std::vector<std::vector<std::vector<Value>>> in_lists(n);
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (!enabled(ci)) continue;
    const Conjunct& c = query.conjuncts[ci];
    if (c.cls == ConjunctClass::kEqConst) {
      eq_consts[Find(query.GlobalIndex(c.lhs))].push_back(c.const_val);
    } else if (c.cls == ConjunctClass::kInConst) {
      in_lists[Find(query.GlobalIndex(c.lhs))].push_back(c.in_vals);
    }
  }

  constants_.assign(n, {});
  has_constants_.assign(n, false);
  members_.assign(n, {});
  for (size_t g = 0; g < n; ++g) members_[Find(g)].push_back(g);

  for (size_t root = 0; root < n; ++root) {
    if (Find(root) != root) continue;
    const auto& eqs = eq_consts[root];
    const auto& lists = in_lists[root];
    if (eqs.empty() && lists.empty()) continue;
    has_constants_[root] = true;
    std::vector<Value> values;
    if (!eqs.empty()) {
      // Equalities dominate: intersect all equality constants.
      values.push_back(eqs[0]);
      for (size_t i = 1; i < eqs.size(); ++i) {
        if (eqs[i] != eqs[0]) {
          values.clear();
          break;
        }
      }
      // Intersect with IN lists.
      for (const auto& list : lists) {
        if (values.empty()) break;
        bool found = false;
        for (const Value& v : list) found |= (v == values[0]);
        if (!found) values.clear();
      }
    } else {
      // Intersection of all IN lists.
      values = lists[0];
      for (size_t i = 1; i < lists.size(); ++i) {
        std::vector<Value> next;
        for (const Value& v : values) {
          for (const Value& w : lists[i]) {
            if (v == w) {
              next.push_back(v);
              break;
            }
          }
        }
        values = std::move(next);
      }
    }
    if (values.empty()) unsatisfiable_ = true;
    constants_[root] = std::move(values);
  }
}

size_t AttrBindingAnalysis::ClassOf(size_t g) const { return Find(g); }

const std::vector<Value>* AttrBindingAnalysis::ConstantsOf(size_t g) const {
  size_t root = Find(g);
  return has_constants_[root] ? &constants_[root] : nullptr;
}

const std::vector<size_t>& AttrBindingAnalysis::MembersOf(size_t g) const {
  return members_[Find(g)];
}

}  // namespace beas
