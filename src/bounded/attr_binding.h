#ifndef BEAS_BOUNDED_ATTR_BINDING_H_
#define BEAS_BOUNDED_ATTR_BINDING_H_

#include <vector>

#include "binder/bound_query.h"

namespace beas {

/// \brief Equivalence-class analysis of a query's attributes.
///
/// Attributes connected by equality conjuncts (a.x = b.y) form classes;
/// a class is *constant-bound* when some member is equated to a constant
/// (attr = c) or restricted to a constant list (attr IN (c1..ck)).
///
/// The BE checker uses this to decide which index keys are available:
/// an X-attribute of an access constraint can be keyed from a constant
/// (class has constants) or from previously fetched values (some class
/// member already materialized in the intermediate relation T).
class AttrBindingAnalysis {
 public:
  /// Analyzes `query`, optionally restricted to the conjuncts whose index
  /// is flagged in `conjunct_mask` (used by the partial-plan optimizer to
  /// exclude conjuncts that the bounded fragment does not enforce).
  /// An empty mask means "all conjuncts".
  explicit AttrBindingAnalysis(const BoundQuery& query,
                               const std::vector<bool>& conjunct_mask = {});

  /// Representative (root) of the class containing global column `g`.
  size_t ClassOf(size_t g) const;

  bool SameClass(size_t g1, size_t g2) const {
    return ClassOf(g1) == ClassOf(g2);
  }

  /// Constant values the class of `g` is restricted to: nullptr if the
  /// class has no constants, a singleton for attr = c, the list for
  /// attr IN (...). Contradictory equalities (attr = 1 AND attr = 2)
  /// yield an empty vector — the query is unsatisfiable.
  const std::vector<Value>* ConstantsOf(size_t g) const;

  /// All global columns in the same class as `g` (including `g`).
  const std::vector<size_t>& MembersOf(size_t g) const;

  /// True if some equality chain forces two different constants
  /// (the query returns no rows on any instance).
  bool unsatisfiable() const { return unsatisfiable_; }

 private:
  size_t Find(size_t g) const;
  void Union(size_t a, size_t b);

  mutable std::vector<size_t> parent_;
  std::vector<std::vector<Value>> constants_;   ///< by root, after Finalize
  std::vector<bool> has_constants_;             ///< by root
  std::vector<std::vector<size_t>> members_;    ///< by root
  bool unsatisfiable_ = false;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_ATTR_BINDING_H_
