#include "bounded/be_checker.h"

#include "common/string_util.h"

namespace beas {

Result<CoverageResult> BeChecker::Check(const BoundQuery& query) const {
  BEAS_ASSIGN_OR_RETURN(GenerationResult gen, generator_.Generate(query));
  CoverageResult result;
  result.covered = gen.covered;
  result.unsatisfiable = gen.unsatisfiable;
  result.plan = std::move(gen.plan);
  result.reason = std::move(gen.reason);
  result.nodes_explored = gen.nodes_explored;
  return result;
}

Result<BeChecker::BudgetReport> BeChecker::CheckBudget(
    const BoundQuery& query, uint64_t budget) const {
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, Check(query));
  BudgetReport report;
  report.budget = budget;
  report.covered = coverage.covered;
  if (!coverage.covered) {
    report.within_budget = false;
    report.explanation =
        "not boundedly evaluable under the access schema: " + coverage.reason;
    return report;
  }
  report.deduced_bound = coverage.plan.total_access_bound;
  report.within_budget = report.deduced_bound <= budget;
  report.explanation = StringPrintf(
      "deduced access bound M = %s tuples %s budget %s",
      WithCommas(report.deduced_bound).c_str(),
      report.within_budget ? "<=" : ">", WithCommas(budget).c_str());
  return report;
}

}  // namespace beas
