#ifndef BEAS_BOUNDED_BE_CHECKER_H_
#define BEAS_BOUNDED_BE_CHECKER_H_

#include <string>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/plan_generator.h"
#include "common/result.h"

namespace beas {

/// \brief Outcome of the bounded-evaluability check.
struct CoverageResult {
  bool covered = false;
  bool unsatisfiable = false;
  BoundedPlan plan;    ///< minimum-bound plan when covered
  std::string reason;  ///< diagnosis when not covered
  uint64_t nodes_explored = 0;
};

/// \brief The BE Checker (paper §3): decides whether a query is covered by
/// the access schema — the effective syntax of the Feasibility Theorem —
/// by searching for a bounded plan, and deduces the access bound M before
/// execution.
///
/// Per the Feasibility Theorem [Cao & Fan, SIGMOD'16], covered queries are
/// the core subclass of boundedly evaluable queries: Q is boundedly
/// evaluable iff it can be rewritten into an equivalent covered query.
/// BEAS (and this checker) work with coverage directly.
class BeChecker {
 public:
  explicit BeChecker(const AccessSchema* schema) : generator_(schema) {}

  /// Coverage test + plan (checking IS plan existence).
  Result<CoverageResult> Check(const BoundQuery& query) const;

  /// \brief Fig. 2(A)'s budget feature: "enter a budget on the amount of
  /// data to be accessed and find whether Q can be answered within the
  /// budget under A, without executing Q".
  struct BudgetReport {
    bool covered = false;
    bool within_budget = false;
    uint64_t deduced_bound = 0;
    uint64_t budget = 0;
    std::string explanation;
  };

  Result<BudgetReport> CheckBudget(const BoundQuery& query,
                                   uint64_t budget) const;

 private:
  BoundedPlanGenerator generator_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_BE_CHECKER_H_
