#include "bounded/beas_session.h"

#include "common/string_util.h"

namespace beas {

Result<CoverageResult> BeasSession::Check(const std::string& sql) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_->Bind(sql));
  return checker_.Check(query);
}

Result<BeChecker::BudgetReport> BeasSession::CheckBudget(
    const std::string& sql, uint64_t budget) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_->Bind(sql));
  return checker_.CheckBudget(query, budget);
}

Result<QueryResult> BeasSession::Execute(
    const std::string& sql, ExecutionDecision* decision,
    const EngineProfile& fallback_profile) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_->Bind(sql));
  return Execute(query, decision, fallback_profile);
}

Result<QueryResult> BeasSession::Execute(
    const BoundQuery& query, ExecutionDecision* decision,
    const EngineProfile& fallback_profile) const {
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, checker_.Check(query));
  if (coverage.covered) {
    BEAS_ASSIGN_OR_RETURN(QueryResult result,
                          executor_.Execute(query, coverage.plan));
    if (decision != nullptr) {
      decision->mode = ExecutionDecision::Mode::kBounded;
      decision->deduced_bound = coverage.plan.total_access_bound;
      decision->explanation =
          "covered by the access schema; bounded plan with deduced bound M = " +
          WithCommas(coverage.plan.total_access_bound);
    }
    return result;
  }
  BEAS_ASSIGN_OR_RETURN(
      PartialPlanResult partial,
      optimizer_.ExecutePartiallyBounded(query, fallback_profile));
  if (decision != nullptr) {
    decision->mode = partial.any_bounded
                         ? ExecutionDecision::Mode::kPartiallyBounded
                         : ExecutionDecision::Mode::kConventional;
    decision->deduced_bound = partial.fragment_access_bound;
    decision->explanation = coverage.reason + "; " + partial.description;
  }
  return partial.result;
}

Result<QueryResult> BeasSession::ExecuteBounded(const std::string& sql) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_->Bind(sql));
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, checker_.Check(query));
  if (!coverage.covered) {
    return Status::NotCovered(coverage.reason);
  }
  return executor_.Execute(query, coverage.plan);
}

Result<ApproxResult> BeasSession::ExecuteApproximate(const std::string& sql,
                                                     uint64_t budget) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_->Bind(sql));
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, checker_.Check(query));
  if (!coverage.covered) {
    return Status::NotCovered(
        "approximation requires a covered query: " + coverage.reason);
  }
  return approximator_.Execute(query, coverage.plan, budget);
}

}  // namespace beas
