#ifndef BEAS_BOUNDED_BEAS_SESSION_H_
#define BEAS_BOUNDED_BEAS_SESSION_H_

#include <string>

#include "asx/access_schema.h"
#include "bounded/approximation.h"
#include "bounded/be_checker.h"
#include "bounded/bounded_executor.h"
#include "bounded/plan_optimizer.h"
#include "engine/database.h"

namespace beas {

/// \brief The top-level BEAS facade, mirroring the paper's online pipeline
/// (§3): given SQL,
///   1. BE Checker decides whether the query is covered by the registered
///      access schema;
///   2. if covered, BE Plan Generator emits a bounded plan (each fetch
///      annotated with its deduced bound) and BE Plan Executor computes
///      exact answers within bounded resources;
///   3. otherwise BE Plan Optimizer builds a partially bounded plan on top
///      of the conventional engine.
/// Resource-bounded approximation is available for covered queries whose
/// deduced bound exceeds a user budget.
class BeasSession {
 public:
  BeasSession(Database* db, AsCatalog* catalog)
      : db_(db),
        catalog_(catalog),
        checker_(&catalog->schema()),
        executor_(catalog),
        optimizer_(db, catalog),
        approximator_(catalog) {}

  Database* db() { return db_; }
  AsCatalog* catalog() { return catalog_; }

  /// BE Checker entry: parse, bind, and check coverage.
  Result<CoverageResult> Check(const std::string& sql) const;

  /// Budget check without execution (Fig. 2(A)).
  Result<BeChecker::BudgetReport> CheckBudget(const std::string& sql,
                                              uint64_t budget) const;

  /// \brief Which pipeline Execute() chose, for the demo/analysis UI.
  struct ExecutionDecision {
    enum class Mode { kBounded, kPartiallyBounded, kConventional };
    Mode mode = Mode::kConventional;
    std::string explanation;
    uint64_t deduced_bound = 0;  ///< bound M when (partially) bounded
  };

  /// The paper's main flow: bounded if covered, else partially bounded
  /// (which itself falls back to conventional when nothing is coverable).
  Result<QueryResult> Execute(const std::string& sql,
                              ExecutionDecision* decision = nullptr,
                              const EngineProfile& fallback_profile =
                                  EngineProfile::PostgresLike()) const;

  /// Strict bounded execution; NotCovered error if the checker rejects.
  Result<QueryResult> ExecuteBounded(const std::string& sql) const;

  /// Resource-bounded approximation of a covered query.
  Result<ApproxResult> ExecuteApproximate(const std::string& sql,
                                          uint64_t budget) const;

 private:
  Database* db_;
  AsCatalog* catalog_;
  BeChecker checker_;
  BoundedExecutor executor_;
  BePlanOptimizer optimizer_;
  ResourceBoundedApproximator approximator_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_BEAS_SESSION_H_
