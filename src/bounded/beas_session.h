#ifndef BEAS_BOUNDED_BEAS_SESSION_H_
#define BEAS_BOUNDED_BEAS_SESSION_H_

#include <string>

#include "asx/access_schema.h"
#include "bounded/approximation.h"
#include "bounded/be_checker.h"
#include "bounded/bounded_executor.h"
#include "bounded/plan_optimizer.h"
#include "engine/database.h"

namespace beas {

/// \brief The top-level BEAS facade, mirroring the paper's online pipeline
/// (§3): given SQL,
///   1. BE Checker decides whether the query is covered by the registered
///      access schema;
///   2. if covered, BE Plan Generator emits a bounded plan (each fetch
///      annotated with its deduced bound) and BE Plan Executor computes
///      exact answers within bounded resources;
///   3. otherwise BE Plan Optimizer builds a partially bounded plan on top
///      of the conventional engine.
/// Resource-bounded approximation is available for covered queries whose
/// deduced bound exceeds a user budget.
class BeasSession {
 public:
  BeasSession(Database* db, AsCatalog* catalog)
      : db_(db),
        catalog_(catalog),
        checker_(&catalog->schema()),
        executor_(catalog),
        optimizer_(db, catalog),
        approximator_(catalog) {}

  Database* db() { return db_; }
  AsCatalog* catalog() { return catalog_; }

  /// BE Checker entry: parse, bind, and check coverage.
  Result<CoverageResult> Check(const std::string& sql) const;

  /// BE Checker entry for an already-bound query (plan-reuse path: the
  /// service layer binds once and routes through its template cache).
  Result<CoverageResult> Check(const BoundQuery& query) const {
    return checker_.Check(query);
  }

  /// Budget check without execution (Fig. 2(A)).
  Result<BeChecker::BudgetReport> CheckBudget(const std::string& sql,
                                              uint64_t budget) const;

  /// \brief Which pipeline Execute() chose, for the demo/analysis UI.
  struct ExecutionDecision {
    enum class Mode { kBounded, kPartiallyBounded, kConventional };
    Mode mode = Mode::kConventional;
    std::string explanation;
    uint64_t deduced_bound = 0;  ///< bound M when (partially) bounded
  };

  /// The paper's main flow: bounded if covered, else partially bounded
  /// (which itself falls back to conventional when nothing is coverable).
  Result<QueryResult> Execute(const std::string& sql,
                              ExecutionDecision* decision = nullptr,
                              const EngineProfile& fallback_profile =
                                  EngineProfile::PostgresLike()) const;

  /// Strict bounded execution; NotCovered error if the checker rejects.
  Result<QueryResult> ExecuteBounded(const std::string& sql) const;

  /// Resource-bounded approximation of a covered query.
  Result<ApproxResult> ExecuteApproximate(const std::string& sql,
                                          uint64_t budget) const;

  /// \name Plan-reuse entry points (used by the service layer's template
  /// plan cache to run pre-bound queries with cached, constant-rebound
  /// plans without repeating the coverage search).
  /// @{

  /// Full pipeline on a pre-bound query.
  Result<QueryResult> Execute(const BoundQuery& query,
                              ExecutionDecision* decision = nullptr,
                              const EngineProfile& fallback_profile =
                                  EngineProfile::PostgresLike()) const;

  /// Bounded execution of a covered query with a known plan. `stats_out`
  /// (optional) surfaces the chain's η / timed_out telemetry to callers
  /// that need it even on the stats-skipping fast path.
  Result<QueryResult> ExecuteCovered(
      const BoundQuery& query, const BoundedPlan& plan,
      const BoundedExecOptions& options = {},
      BoundedExecStats* stats_out = nullptr) const {
    return executor_.Execute(query, plan, options, stats_out);
  }

  /// Partial-plan search half (cacheable per template).
  Result<PartialPlanChoice> ChoosePartialPlan(const BoundQuery& query) const {
    return optimizer_.ChoosePlan(query);
  }

  /// Partial-plan execution half, for a cached (rebound) choice.
  Result<PartialPlanResult> ExecutePartialChoice(
      const BoundQuery& query, const PartialPlanChoice& choice,
      const EngineProfile& fallback_profile = EngineProfile::PostgresLike(),
      const BoundedExecOptions& exec_options = {}) const {
    return optimizer_.ExecuteChoice(query, choice, fallback_profile,
                                    exec_options);
  }

  /// Approximation of a covered query with a known plan.
  Result<ApproxResult> ExecuteApproximate(const BoundQuery& query,
                                          const BoundedPlan& plan,
                                          uint64_t budget) const {
    return approximator_.Execute(query, plan, budget);
  }

  /// @}

 private:
  Database* db_;
  AsCatalog* catalog_;
  BeChecker checker_;
  BoundedExecutor executor_;
  BePlanOptimizer optimizer_;
  ResourceBoundedApproximator approximator_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_BEAS_SESSION_H_
