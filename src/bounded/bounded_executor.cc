#include "bounded/bounded_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "bounded/columnar_tail.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "exec/grouping.h"
#include "expr/evaluator.h"

namespace beas {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Remaining per-step budget. `capped` distinguishes "no budget" from an
/// exhausted one: an exhausted step serves zero keys (η shrinks to 0 for
/// the step) instead of silently over-fetching.
struct StepBudget {
  bool capped = false;
  uint64_t cap = 0;
};

StepBudget BudgetFor(const BoundedExecOptions& options,
                     const BoundedExecStats& stats) {
  StepBudget budget;
  if (options.fetch_budget == 0) return budget;
  budget.capped = true;
  budget.cap = options.fetch_budget > stats.tuples_fetched
                   ? options.fetch_budget - stats.tuples_fetched
                   : 0;
  return budget;
}

/// The IN-list expansion shape of a step's key sources.
struct ComboShape {
  std::vector<const std::vector<Value>*> lists;
  std::vector<size_t> list_sizes;
  size_t combos = 1;
};

ComboShape ShapeOf(const FetchStep& step) {
  ComboShape shape;
  for (const KeySource& src : step.key_sources) {
    if (src.kind == KeySource::Kind::kConstantList) {
      shape.lists.push_back(&src.list);
      shape.list_sizes.push_back(src.list.size());
      shape.combos *= src.list.size();
    }
  }
  return shape;
}

/// How many distinct keys justify sharding probes across the pool.
constexpr size_t kParallelProbeThreshold = 1024;

/// How many gathered output rows justify fanning a step's gather out
/// across the pool (sharded storage only).
constexpr size_t kParallelGatherThreshold = 4096;

/// Runs fn(begin, end) over contiguous chunks of [0, n), fanned across
/// `pool` (the caller participates); serial when the pool is null or the
/// range is small. Chunking a pure scatter is order-free, so results are
/// bit-identical to the serial loop.
void ParallelChunks(TaskPool* pool, size_t n, size_t min_chunk,
                    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = pool == nullptr ? 0 : pool->num_threads();
  if (workers == 0 || n <= min_chunk) {
    fn(0, n);
    return;
  }
  size_t chunks =
      std::min((n + min_chunk - 1) / min_chunk, 4 * (workers + 1));
  size_t per = (n + chunks - 1) / chunks;
  pool->ParallelFor(chunks, [&](size_t c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Fetch chain, scalar reference path (row-at-a-time). Kept for differential
// testing against the vectorized path; probe keys are served in
// first-appearance order so budgeted runs are bit-identical across paths.
// ---------------------------------------------------------------------------

Result<BoundedExecutor::Fragment> BoundedExecutor::ExecuteFragmentScalar(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options) const {
  Fragment fragment;
  fragment.layout = plan.layout;
  fragment.stats.root.label = "BoundedFetchChain";

  // Initial conjuncts (literal-only predicates).
  Row empty_row;
  for (size_t ci : plan.initial_conjuncts) {
    BEAS_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(*query.conjuncts[ci].expr, empty_row));
    if (!pass) return fragment;  // empty result
  }

  // Unsatisfiable equality predicates -> empty T (plan has no steps but the
  // query has atoms).
  if (plan.steps.empty() && !query.atoms.empty()) return fragment;

  // T starts as a single empty row of weight 1.
  std::vector<Row> t_rows(1);
  std::vector<uint64_t> t_weights(1, 1);

  // Mapping from global column index to T position, grown per step.
  std::unordered_map<size_t, size_t> layout_pos;
  size_t t_width = 0;

  // Expiry is latched: once the control is observed expired every later
  // step serves zero non-null keys, exactly like an exhausted budget.
  const ExecControl& control = options.control;
  bool expired = false;

  for (const FetchStep& step : plan.steps) {
    // Test hook: a sleep(MS) action here makes a deadline pass mid-chain
    // at a deterministic step boundary. No-op when nothing is armed.
    (void)fail::Point("exec_step");
    auto step_start = std::chrono::steady_clock::now();
    OperatorStats step_stats;
    if (options.collect_stats) {
      step_stats.label =
          "fetch[" + step.constraint.name + " on " +
          query.atoms[step.atom].alias + "]";
    }

    const AcIndex* index = catalog_->IndexFor(step.constraint.name);
    if (index == nullptr) {
      return Status::Internal("no index registered for constraint '" +
                              step.constraint.name + "'");
    }

    // Approximation: each step may consume whatever budget remains. This
    // greedy allocation serves every probe whenever the budget exceeds the
    // actual (not worst-case) need, and degrades later steps first when it
    // does not; eta accounts for the unserved fraction either way.
    StepBudget budget = BudgetFor(options, fragment.stats);

    // --- Phase A: distinct probe keys from T (expanding IN-lists). ---
    // Each T row yields one key per combination of IN-list values.
    ComboShape shape = ShapeOf(step);

    auto key_of = [&](const Row& row, size_t combo) {
      ValueVec key;
      key.reserve(step.key_sources.size());
      size_t list_idx = 0;
      size_t rem = combo;
      for (const KeySource& src : step.key_sources) {
        switch (src.kind) {
          case KeySource::Kind::kConstant:
            key.push_back(src.constant);
            break;
          case KeySource::Kind::kConstantList: {
            size_t sz = shape.list_sizes[list_idx];
            key.push_back((*shape.lists[list_idx])[rem % sz]);
            rem /= sz;
            ++list_idx;
            break;
          }
          case KeySource::Kind::kFromT:
            key.push_back(row[src.t_column]);
            break;
        }
      }
      return key;
    };

    // Distinct keys in first-appearance order (the order budget-capped
    // serving follows, on both executor paths).
    std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> seen_keys;
    std::vector<ValueVec> ordered_keys;
    for (const Row& row : t_rows) {
      for (size_t combo = 0; combo < shape.combos; ++combo) {
        ValueVec key = key_of(row, combo);
        if (seen_keys.insert(key).second) ordered_keys.push_back(std::move(key));
      }
    }

    // --- Phase B: probe each distinct key once (budget-capped). ---
    std::unordered_map<ValueVec, AcIndex::BucketView, ValueVecHash, ValueVecEq>
        fetched;
    uint64_t fetched_this_step = 0;
    size_t served = 0;
    size_t key_index = 0;
    for (const ValueVec& key : ordered_keys) {
      // Deterministic expiry poll: index 0 (the step boundary) and every
      // kExpiryCheckInterval-th key — the same schedule the vectorized
      // path runs, so both observe expiry at the same key.
      if (control.active() && !expired &&
          key_index % ExecControl::kExpiryCheckInterval == 0) {
        expired = control.Expired();
      }
      ++key_index;
      // NULL key components never match (SQL equality).
      bool has_null = false;
      for (const Value& v : key) has_null |= v.is_null();
      if (has_null) {
        fetched.emplace(key, AcIndex::BucketView{});
        ++served;
        continue;
      }
      if (expired) {
        continue;  // unserved, like an exhausted budget: eta shrinks
      }
      if (budget.capped && fetched_this_step >= budget.cap) {
        continue;  // unserved: rows keyed by it are dropped, eta shrinks
      }
      AcIndex::BucketView bucket = index->LookupWithCounts(key);
      ++fragment.stats.keys_probed;
      fetched_this_step += bucket.size();
      fragment.stats.tuples_fetched += bucket.size();
      fetched.emplace(key, bucket);
      ++served;
    }
    if (!ordered_keys.empty()) {
      fragment.stats.eta *= static_cast<double>(served) /
                            static_cast<double>(ordered_keys.size());
    }

    // --- Phase C: join T with the fetched partial tuples. ---
    // Column -> value source within the fetched data: X columns take the
    // key value (X has priority if a column is in both X and Y).
    std::unordered_map<size_t, size_t> x_pos;  // table col -> key position
    for (size_t i = 0; i < step.x_cols.size(); ++i) x_pos[step.x_cols[i]] = i;
    std::unordered_map<size_t, size_t> y_pos;  // table col -> y position
    for (size_t i = 0; i < step.y_cols.size(); ++i) {
      if (!x_pos.count(step.y_cols[i])) y_pos[step.y_cols[i]] = i;
    }

    std::vector<Row> new_rows;
    std::vector<uint64_t> new_weights;
    for (size_t r = 0; r < t_rows.size(); ++r) {
      for (size_t combo = 0; combo < shape.combos; ++combo) {
        ValueVec key = key_of(t_rows[r], combo);
        auto it = fetched.find(key);
        if (it == fetched.end()) continue;  // unserved under budget: dropped
        const AcIndex::BucketView& bucket = it->second;
        for (size_t b = 0; b < bucket.size(); ++b) {
          Row out = t_rows[r];
          out.reserve(t_width + step.added_columns.size());
          for (const AttrRef& attr : step.added_columns) {
            auto xp = x_pos.find(attr.col);
            if (xp != x_pos.end()) {
              out.push_back(key[xp->second]);
            } else {
              out.push_back((*bucket.rows)[b][y_pos.at(attr.col)]);
            }
          }
          new_rows.push_back(std::move(out));
          new_weights.push_back(t_weights[r] * (*bucket.multiplicities)[b]);
        }
      }
    }

    // Extend the layout mapping.
    for (const AttrRef& attr : step.added_columns) {
      layout_pos[query.GlobalIndex(attr)] = t_width++;
    }

    // Apply the conjuncts that just became evaluable.
    for (size_t ci : step.conjuncts_after) {
      ExprPtr rebound = RebindColumns(query.conjuncts[ci].expr, layout_pos);
      if (!rebound) {
        return Status::Internal("rebind failed for conjunct " +
                                query.conjuncts[ci].ToString());
      }
      std::vector<Row> kept_rows;
      std::vector<uint64_t> kept_weights;
      for (size_t r = 0; r < new_rows.size(); ++r) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*rebound, new_rows[r]));
        if (pass) {
          kept_rows.push_back(std::move(new_rows[r]));
          kept_weights.push_back(new_weights[r]);
        }
      }
      new_rows = std::move(kept_rows);
      new_weights = std::move(kept_weights);
    }

    // Deduplicate T, merging weights: BEAS manipulates distinct partial
    // tuples; multiplicities live in the weights.
    std::unordered_map<ValueVec, uint64_t, ValueVecHash, ValueVecEq> merged;
    std::vector<Row> dedup_rows;
    for (size_t r = 0; r < new_rows.size(); ++r) {
      auto [it2, inserted] = merged.try_emplace(new_rows[r], 0);
      if (inserted) dedup_rows.push_back(new_rows[r]);
      it2->second += new_weights[r];
    }
    t_rows = std::move(dedup_rows);
    t_weights.clear();
    t_weights.reserve(t_rows.size());
    for (const Row& row : t_rows) t_weights.push_back(merged.at(row));

    if (options.collect_stats) {
      step_stats.rows_out = t_rows.size();
      step_stats.tuples_accessed = fetched_this_step;
      step_stats.self_millis = MillisSince(step_start);
      step_stats.total_millis = step_stats.self_millis;
      fragment.stats.root.children.push_back(std::move(step_stats));
    }
  }

  fragment.rows = std::move(t_rows);
  fragment.weights = std::move(t_weights);
  fragment.stats.timed_out = expired;
  for (const auto& child : fragment.stats.root.children) {
    fragment.stats.root.total_millis += child.total_millis;
  }
  fragment.stats.root.tuples_accessed = fragment.stats.tuples_fetched;
  fragment.stats.root.rows_out = fragment.rows.size();
  return fragment;
}

// ---------------------------------------------------------------------------
// Fetch chain, vectorized path: columnar T, deduplicated probe keys in
// first-appearance order, batched (optionally sharded) index probes,
// gather-based join, compiled predicate programs, hash-based weighted
// dedup. Bit-identical to the scalar path (rows, order, weights, η).
//
// With hash-partitioned storage (BEAS_SHARDS > 1) each step runs
// shard-parallel end to end: the probe batch partitions by AC-index
// sub-shard and executes shard groups on the pool, and the gather/hash
// scatter runs in chunks on the same pool. Every parallel piece writes to
// disjoint, caller-ordered slots, so the merged T is bit-identical to the
// serial (and single-shard) execution.
//
// String columns ride the dictionary-encoded path end to end: probe-key
// string constants are canonicalized into the probed table's dictionary
// once per step, key parts coming from T carry their source dictionary's
// precomputed hashes, and STRING output columns gather as uint32 code
// columns — the chain moves 4-byte codes and array-read hashes where it
// used to move std::strings and byte hashes. Representation never leaks
// into results: dictionary-backed and inline values hash and compare
// identically, so parity with the scalar reference is preserved.
// ---------------------------------------------------------------------------

Result<BoundedExecutor::BatchFragment>
BoundedExecutor::ExecuteFragmentVectorized(
    const BoundQuery& query, const BoundedPlan& plan,
    const CompiledPlan& compiled, const BoundedExecOptions& options) const {
  BatchFragment fragment;
  fragment.layout = plan.layout;
  fragment.stats.root.label = "BoundedFetchChain";
  // An empty result still carries the layout's arity: the columnar tail
  // borrows columns by slot, so the batch must be addressable even with
  // zero rows.
  fragment.batch = TupleBatch(plan.layout.size());

  Row empty_row;
  for (size_t ci : plan.initial_conjuncts) {
    BEAS_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(*query.conjuncts[ci].expr, empty_row));
    if (!pass) return fragment;
  }
  if (plan.steps.empty() && !query.atoms.empty()) return fragment;

  // T starts as a single empty row of weight 1 (zero columns). Row hashes
  // are threaded through every gather so dedup never rehashes the parent
  // prefix of a row.
  TupleBatch t;
  t.set_num_rows(1);
  t.weights().assign(1, 1);
  t.mutable_hashes().assign(1, TupleBatch::kHashSeed);

  // Expiry latch, mirroring the scalar path: polled at the same key
  // indices, and once observed every later step serves zero non-null keys.
  const ExecControl& control = options.control;
  bool expired = false;

  for (size_t si = 0; si < plan.steps.size(); ++si) {
    const FetchStep& step = plan.steps[si];
    const StepProgram& prog = compiled.steps[si];
    // Same deterministic step-boundary test hook as the scalar path.
    (void)fail::Point("exec_step");
    auto step_start = std::chrono::steady_clock::now();
    OperatorStats step_stats;
    if (options.collect_stats) {
      step_stats.label =
          "fetch[" + step.constraint.name + " on " +
          query.atoms[step.atom].alias + "]";
    }

    StepBudget budget = BudgetFor(options, fragment.stats);

    // --- Phase A: build + dedup probe keys, first-appearance order. ---
    // Keys are materialized lazily: per-part hashes are precomputed
    // (constants once, IN-list elements once, T columns once per row), the
    // (row, combo) loop only combines them, and a ValueVec is built only
    // when a key turns out to be distinct. For a dictionary-backed table,
    // string constants are canonicalized into the table's dictionary up
    // front and string parts from T are canonicalized when a distinct key
    // is first seen — using hashes already in hand, so no byte hashing —
    // which keeps every downstream probe and gather on the code path.
    ComboShape shape = ShapeOf(step);
    size_t num_parts = step.key_sources.size();
    size_t num_lists = shape.lists.size();
    size_t raw_keys = t.num_rows() * shape.combos;
    const StringDict* dict = prog.dict;

    // Re-encodes `v` as a code of `dict` when possible; `h` is v's hash
    // (byte-identical across representations, so no rehash on success or
    // failure). A miss means the string occurs nowhere in the probed
    // table — the probe will find no bucket either way.
    auto canonicalize = [dict](const Value& v, uint64_t h) -> Value {
      if (dict == nullptr || v.type() != TypeId::kString ||
          v.dict() == dict) {
        return v;
      }
      int64_t code = dict->FindWithHash(v.AsString(), h);
      return code >= 0
                 ? Value::DictString(dict, static_cast<uint32_t>(code))
                 : v;
    };

    std::vector<Value> const_vals(num_parts);
    std::vector<std::vector<Value>> list_vals(num_lists);
    std::vector<uint64_t> part_const_hash(num_parts, 0);
    std::vector<std::vector<uint64_t>> part_list_hashes(num_lists);
    std::vector<std::vector<uint64_t>> part_col_hashes(num_parts);
    std::vector<int64_t> list_of_part(num_parts, -1);
    {
      size_t list_idx = 0;
      for (size_t k = 0; k < num_parts; ++k) {
        const KeySource& src = step.key_sources[k];
        switch (src.kind) {
          case KeySource::Kind::kConstant: {
            uint64_t h = src.constant.Hash();
            part_const_hash[k] = h;
            const_vals[k] = canonicalize(src.constant, h);
            break;
          }
          case KeySource::Kind::kConstantList: {
            list_of_part[k] = static_cast<int64_t>(list_idx);
            std::vector<uint64_t>& hashes = part_list_hashes[list_idx];
            std::vector<Value>& vals = list_vals[list_idx];
            hashes.reserve(src.list.size());
            vals.reserve(src.list.size());
            for (const Value& v : src.list) {
              uint64_t h = v.Hash();
              hashes.push_back(h);
              vals.push_back(canonicalize(v, h));
            }
            ++list_idx;
            break;
          }
          case KeySource::Kind::kFromT: {
            const BatchColumn& col = t.column(src.t_column);
            std::vector<uint64_t>& hashes = part_col_hashes[k];
            hashes.reserve(t.num_rows());
            for (size_t r = 0; r < t.num_rows(); ++r) {
              hashes.push_back(col.HashAt(r));
            }
            break;
          }
        }
      }
    }

    // The value of part k for the current (row, combo). Constants and
    // list elements are already canonical; T parts come out in their
    // source column's representation (canonicalized at key creation).
    std::vector<size_t> list_elem(num_lists, 0);
    auto part_value = [&](size_t k, size_t r) -> Value {
      const KeySource& src = step.key_sources[k];
      switch (src.kind) {
        case KeySource::Kind::kConstant:
          return const_vals[k];
        case KeySource::Kind::kConstantList:
          return list_vals[static_cast<size_t>(list_of_part[k])]
                          [list_elem[static_cast<size_t>(list_of_part[k])]];
        case KeySource::Kind::kFromT:
        default:
          return t.column(src.t_column).At(r);
      }
    };
    // Equality of a stored key part against the current (row, combo)
    // part, without materializing the latter: O(1) for encoded columns.
    auto part_equals = [&](const Value& stored, size_t k, size_t r) -> bool {
      const KeySource& src = step.key_sources[k];
      switch (src.kind) {
        case KeySource::Kind::kConstant:
          return stored.Equals(const_vals[k]);
        case KeySource::Kind::kConstantList:
          return stored.Equals(
              list_vals[static_cast<size_t>(list_of_part[k])]
                       [list_elem[static_cast<size_t>(list_of_part[k])]]);
        case KeySource::Kind::kFromT:
        default: {
          const BatchColumn& col = t.column(src.t_column);
          if (col.encoded()) {
            uint32_t code = col.codes[r];
            if (stored.is_null()) return code == TupleBatch::kNullCode;
            return stored.dict() == col.dict && code != TupleBatch::kNullCode &&
                   stored.dict_code() == code;
          }
          return stored.Equals(col.values[r]);
        }
      }
    };
    // Hash of part k for (row, combo), read from the precomputed tables.
    auto part_hash = [&](size_t k, size_t r) -> uint64_t {
      const KeySource& src = step.key_sources[k];
      switch (src.kind) {
        case KeySource::Kind::kConstant:
          return part_const_hash[k];
        case KeySource::Kind::kConstantList:
          return part_list_hashes[static_cast<size_t>(list_of_part[k])]
                                 [list_elem[static_cast<size_t>(
                                     list_of_part[k])]];
        case KeySource::Kind::kFromT:
        default:
          return part_col_hashes[k][r];
      }
    };

    std::vector<uint32_t> key_ids;
    key_ids.reserve(raw_keys);
    // Distinct keys, two views: `distinct_keys` preserves each part's
    // source representation (what dedup equality runs against) and
    // `probe_keys` is the dictionary-canonical form handed to the index
    // and the gather. They share storage unless a T string part actually
    // needed re-encoding.
    std::vector<ValueVec> distinct_keys;
    std::vector<ValueVec> probe_keys;
    std::vector<uint64_t> key_hashes;
    std::vector<char> key_has_null;
    bool canonicalize_t_parts = false;
    if (dict != nullptr) {
      for (const KeySource& src : step.key_sources) {
        canonicalize_t_parts |= src.kind == KeySource::Kind::kFromT;
      }
    }

    size_t table_cap = HashTableCapacity(raw_keys * 2);
    size_t table_mask = table_cap - 1;
    std::vector<uint32_t> slots(table_cap, UINT32_MAX);

    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t combo = 0; combo < shape.combos; ++combo) {
        size_t rem = combo;
        for (size_t li = 0; li < num_lists; ++li) {
          list_elem[li] = rem % shape.list_sizes[li];
          rem /= shape.list_sizes[li];
        }
        uint64_t h = kValueVecHashSeed;
        for (size_t k = 0; k < num_parts; ++k) {
          HashCombine(&h, part_hash(k, r));
        }
        size_t slot = static_cast<size_t>(h) & table_mask;
        uint32_t id;
        for (;;) {
          uint32_t other = slots[slot];
          if (other == UINT32_MAX) {
            id = static_cast<uint32_t>(distinct_keys.size());
            slots[slot] = id;
            ValueVec key;
            key.reserve(num_parts);
            bool has_null = false;
            for (size_t k = 0; k < num_parts; ++k) {
              Value v = part_value(k, r);
              has_null |= v.is_null();
              key.push_back(std::move(v));
            }
            if (canonicalize_t_parts) {
              ValueVec canon;
              canon.reserve(num_parts);
              for (size_t k = 0; k < num_parts; ++k) {
                canon.push_back(canonicalize(key[k], part_hash(k, r)));
              }
              probe_keys.push_back(std::move(canon));
            }
            distinct_keys.push_back(std::move(key));
            key_hashes.push_back(h);
            key_has_null.push_back(has_null ? 1 : 0);
            break;
          }
          if (key_hashes[other] == h) {
            const ValueVec& stored = distinct_keys[other];
            bool equal = true;
            for (size_t k = 0; k < num_parts && equal; ++k) {
              equal = part_equals(stored[k], k, r);
            }
            if (equal) {
              id = other;
              break;
            }
          }
          slot = (slot + 1) & table_mask;
        }
        key_ids.push_back(id);
      }
    }
    // The canonical view the index probes and the gather reads from.
    const std::vector<ValueVec>& canon_keys =
        canonicalize_t_parts ? probe_keys : distinct_keys;

    // --- Phase B: probe distinct keys (batched; sharded when large). ---
    size_t nkeys = distinct_keys.size();
    std::vector<AcIndex::BucketView> buckets(nkeys);
    std::vector<char> served(nkeys, 0);
    uint64_t fetched_this_step = 0;
    size_t served_count = 0;
    const AcIndex* index = prog.index;

    if (!budget.capped && !control.active()) {
      // Exact evaluation: every key is served; probe the whole batch.
      // With a sharded index (BEAS_SHARDS > 1) the batch is partitioned
      // by sub-index and the shard groups execute on the pool — each
      // worker walks one sub-index (locality) and scatters results into
      // the caller-ordered slots, so the merge is deterministic by
      // construction. A single-shard index keeps the pre-sharding
      // behavior: chunked fan-out for large key sets, serial otherwise.
      // NULL-bearing keys resolve to empty buckets inside LookupBatch and
      // are excluded from probe accounting below, like the scalar path.
      // Keys are the canonical (dictionary-encoded) view, so string
      // components hash by stored code — zero byte hashing inside the
      // probe loop.
      TaskPool* pool = options.probe_pool;
      if (prog.index_shards > 1) {
        index->LookupBatch(canon_keys.data(), nkeys, buckets.data(), pool);
      } else if (pool != nullptr && pool->num_threads() > 0 &&
                 nkeys >= kParallelProbeThreshold) {
        size_t shard = std::max<size_t>(
            512, nkeys / (4 * (pool->num_threads() + 1)));
        size_t num_shards = (nkeys + shard - 1) / shard;
        pool->ParallelFor(num_shards, [&](size_t s) {
          size_t begin = s * shard;
          size_t end = std::min(nkeys, begin + shard);
          index->LookupBatch(&canon_keys[begin], end - begin,
                             &buckets[begin]);
        });
      } else {
        index->LookupBatch(canon_keys.data(), nkeys, buckets.data());
      }
      served_count = nkeys;
      for (size_t i = 0; i < nkeys; ++i) {
        served[i] = 1;
        if (key_has_null[i]) continue;
        ++fragment.stats.keys_probed;
        fetched_this_step += buckets[i].size();
        fragment.stats.tuples_fetched += buckets[i].size();
      }
    } else {
      // Budgeted and/or deadline-controlled: serve keys in order until the
      // cap is hit or expiry is observed (either serves zero from there
      // on); inherently sequential — which is also what keeps the expiry
      // check schedule identical to the scalar path's.
      for (size_t i = 0; i < nkeys; ++i) {
        if (control.active() && !expired &&
            i % ExecControl::kExpiryCheckInterval == 0) {
          expired = control.Expired();
        }
        if (key_has_null[i]) {
          served[i] = 1;
          ++served_count;
          continue;
        }
        if (expired) continue;  // unserved, like an exhausted budget
        if (budget.capped && fetched_this_step >= budget.cap) {
          continue;  // unserved
        }
        buckets[i] = index->LookupWithCounts(canon_keys[i]);
        ++fragment.stats.keys_probed;
        fetched_this_step += buckets[i].size();
        fragment.stats.tuples_fetched += buckets[i].size();
        served[i] = 1;
        ++served_count;
      }
    }
    if (nkeys > 0) {
      fragment.stats.eta *= static_cast<double>(served_count) /
                            static_cast<double>(nkeys);
    }

    // --- Phase C: gather-join T with the fetched partial tuples. ---
    size_t out_count = 0;
    for (uint32_t id : key_ids) {
      if (served[id]) out_count += buckets[id].size();
    }

    std::vector<uint32_t> src_row;
    std::vector<uint32_t> src_kid;
    std::vector<uint32_t> src_b;
    src_row.reserve(out_count);
    src_kid.reserve(out_count);
    src_b.reserve(out_count);
    std::vector<uint64_t> new_weights;
    new_weights.reserve(out_count);

    size_t flat = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      uint64_t w = t.weights()[r];
      for (size_t combo = 0; combo < shape.combos; ++combo) {
        uint32_t id = key_ids[flat++];
        if (!served[id]) continue;
        const AcIndex::BucketView& bucket = buckets[id];
        for (size_t b = 0; b < bucket.size(); ++b) {
          src_row.push_back(static_cast<uint32_t>(r));
          src_kid.push_back(id);
          src_b.push_back(static_cast<uint32_t>(b));
          new_weights.push_back(w * (*bucket.multiplicities)[b]);
        }
      }
    }

    TupleBatch next(t.num_columns() + step.added_columns.size());
    next.set_num_rows(out_count);
    next.weights() = std::move(new_weights);
    // Sharded storage fans the gather itself out across the pool: every
    // loop below is a pure scatter indexed by output row, so chunking it
    // changes nothing about the result. Null on the serial path (and for
    // single-shard indices, which keep the pre-sharding loops).
    TaskPool* gather_pool =
        (!expired && prog.index_shards > 1 && options.probe_pool != nullptr &&
         options.probe_pool->num_threads() > 0 &&
         out_count >= kParallelGatherThreshold)
            ? options.probe_pool
            : nullptr;
    constexpr size_t kGatherChunk = 4096;
    // Row hash = parent row hash folded with the added values, column by
    // column — same fold ComputeHashes would run, without rehashing the
    // parent prefix.
    std::vector<uint64_t>& next_hashes = next.mutable_hashes();
    next_hashes.resize(out_count);
    {
      const std::vector<uint64_t>& parent_hashes = t.hashes();
      ParallelChunks(gather_pool, out_count, kGatherChunk,
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         next_hashes[i] = parent_hashes[src_row[i]];
                       }
                     });
    }
    // Parent columns: encoded columns gather 4-byte codes, generic ones
    // gather Values.
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const BatchColumn& src = t.column(c);
      BatchColumn& dst = next.column(c);
      if (src.encoded()) {
        dst.dict = src.dict;
        dst.codes.resize(out_count);
        ParallelChunks(gather_pool, out_count, kGatherChunk,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           dst.codes[i] = src.codes[src_row[i]];
                         }
                       });
      } else if (gather_pool != nullptr) {
        dst.values.resize(out_count);
        ParallelChunks(gather_pool, out_count, kGatherChunk,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           dst.values[i] = src.values[src_row[i]];
                         }
                       });
      } else {
        dst.values.reserve(out_count);
        for (size_t i = 0; i < out_count; ++i) {
          dst.values.push_back(src.values[src_row[i]]);
        }
      }
    }
    // Added columns. STRING columns of a dictionary-backed table land as
    // code columns: Y-values already carry the table's codes, and probe
    // keys were canonicalized in Phase A, so encoding is a field read.
    for (size_t a = 0; a < step.added_columns.size(); ++a) {
      const StepProgram::OutSource& osrc = prog.out_sources[a];
      BatchColumn& dst = next.column(t.num_columns() + a);
      // The gathered value for output row i.
      auto value_at = [&](size_t i) -> const Value& {
        return osrc.from_key
                   ? canon_keys[src_kid[i]][osrc.pos]
                   : (*buckets[src_kid[i]].rows)[src_b[i]][osrc.pos];
      };
      bool encoded = osrc.out_dict != nullptr;
      if (encoded) {
        // Encode pass. A value that is not already a code of the target
        // dictionary cannot legitimately appear here (keys that found a
        // bucket are canonical; Y-values are interned at insert) — but if
        // it ever does, fall back to a generic column rather than guess.
        if (gather_pool != nullptr) {
          dst.codes.resize(out_count);
          std::atomic<bool> all_encoded{true};
          ParallelChunks(gather_pool, out_count, kGatherChunk,
                         [&](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             const Value& v = value_at(i);
                             if (v.is_null()) {
                               dst.codes[i] = TupleBatch::kNullCode;
                             } else if (v.dict() == osrc.out_dict) {
                               dst.codes[i] = v.dict_code();
                             } else {
                               all_encoded.store(false,
                                                 std::memory_order_relaxed);
                               return;
                             }
                           }
                         });
          encoded = all_encoded.load(std::memory_order_relaxed);
        } else {
          dst.codes.reserve(out_count);
          for (size_t i = 0; i < out_count && encoded; ++i) {
            const Value& v = value_at(i);
            if (v.is_null()) {
              dst.codes.push_back(TupleBatch::kNullCode);
            } else if (v.dict() == osrc.out_dict) {
              dst.codes.push_back(v.dict_code());
            } else {
              encoded = false;
            }
          }
        }
        if (encoded) {
          dst.dict = osrc.out_dict;
          const StringDict* out_dict = osrc.out_dict;
          ParallelChunks(gather_pool, out_count, kGatherChunk,
                         [&](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             uint32_t code = dst.codes[i];
                             HashCombine(&next_hashes[i],
                                         code == TupleBatch::kNullCode
                                             ? kNullValueHash
                                             : out_dict->hash(code));
                           }
                         });
        } else {
          dst.codes.clear();
        }
      }
      if (!encoded) {
        if (gather_pool != nullptr) {
          dst.values.resize(out_count);
          ParallelChunks(gather_pool, out_count, kGatherChunk,
                         [&](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             const Value& v = value_at(i);
                             HashCombine(&next_hashes[i], v.Hash());
                             dst.values[i] = v;
                           }
                         });
        } else {
          dst.values.reserve(out_count);
          for (size_t i = 0; i < out_count; ++i) {
            const Value& v = value_at(i);
            HashCombine(&next_hashes[i], v.Hash());
            dst.values.push_back(v);
          }
        }
      }
    }
    t = std::move(next);

    // --- Apply the conjuncts that just became evaluable. ---
    // Runs even on an empty T so rebind failures surface exactly like the
    // scalar path's.
    if (!step.conjuncts_after.empty()) {
      std::vector<char> keep(t.num_rows(), 1);
      // Built on demand, once per step, for interpreted fallbacks only.
      std::unordered_map<size_t, size_t> fallback_mapping;
      for (size_t k = 0; k < step.conjuncts_after.size(); ++k) {
        size_t ci = step.conjuncts_after[k];
        const std::optional<ExprProgram>& cp = prog.conjunct_programs[k];
        bool evaluated = false;
        if (cp.has_value()) {
          Result<std::vector<Value>> lits =
              cp->BindLiterals(*query.conjuncts[ci].expr);
          if (lits.ok()) {
            cp->FilterBatch(t.columns().data(), t.num_rows(), *lits, &keep);
            evaluated = true;
          }
        }
        if (!evaluated) {
          // Interpreted fallback (not compilable, or an instance whose
          // literal shape diverged): rebind against the current layout
          // and tree-walk the surviving rows.
          if (fallback_mapping.empty()) {
            fallback_mapping.insert(prog.layout_pairs.begin(),
                                    prog.layout_pairs.end());
          }
          ExprPtr rebound =
              RebindColumns(query.conjuncts[ci].expr, fallback_mapping);
          if (!rebound) {
            return Status::Internal("rebind failed for conjunct " +
                                    query.conjuncts[ci].ToString());
          }
          for (size_t r = 0; r < t.num_rows(); ++r) {
            if (!keep[r]) continue;
            BEAS_ASSIGN_OR_RETURN(bool pass,
                                  EvalPredicate(*rebound, t.GetRow(r)));
            if (!pass) keep[r] = 0;
          }
        }
      }
      t.Filter(keep);
    }

    // --- Weighted dedup on precomputed row hashes. ---
    t.DedupMergeWeights();

    if (options.collect_stats) {
      step_stats.rows_out = t.num_rows();
      step_stats.tuples_accessed = fetched_this_step;
      step_stats.self_millis = MillisSince(step_start);
      step_stats.total_millis = step_stats.self_millis;
      fragment.stats.root.children.push_back(std::move(step_stats));
    }
  }

  fragment.batch = std::move(t);
  fragment.stats.timed_out = expired;
  for (const auto& child : fragment.stats.root.children) {
    fragment.stats.root.total_millis += child.total_millis;
  }
  fragment.stats.root.tuples_accessed = fragment.stats.tuples_fetched;
  fragment.stats.root.rows_out = fragment.batch.num_rows();
  return fragment;
}

Result<BoundedExecutor::BatchFragment> BoundedExecutor::ExecuteBatchFragment(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options) const {
  const CompiledPlan* compiled = options.compiled;
  CompiledPlan local;
  if (compiled == nullptr || compiled->steps.size() != plan.steps.size()) {
    Result<CompiledPlan> built = CompileBoundedPlan(query, plan, *catalog_);
    if (!built.ok()) return built.status();
    local = std::move(*built);
    compiled = &local;
  }
  return ExecuteFragmentVectorized(query, plan, *compiled, options);
}

Result<BoundedExecutor::Fragment> BoundedExecutor::ExecuteFragment(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options) const {
  if (!options.use_vectorized) {
    return ExecuteFragmentScalar(query, plan, options);
  }
  BEAS_ASSIGN_OR_RETURN(BatchFragment bf,
                        ExecuteBatchFragment(query, plan, options));
  Fragment fragment;
  fragment.layout = std::move(bf.layout);
  fragment.stats = std::move(bf.stats);
  fragment.rows = bf.batch.ToRows();
  fragment.weights = std::move(bf.batch.weights());
  return fragment;
}

// ---------------------------------------------------------------------------
// Relational tail. On the vectorized path the tail consumes the columnar
// T directly (bounded/columnar_tail.h): compiled key/output programs,
// code-aware grouping, encoded-key sorts — no Row materialization. The
// scalar tail below remains both the fallback for non-compilable tail
// expressions and the differential reference the columnar tail is tested
// bit-identical against (weighted grouping / DISTINCT over ValueVecGrouper
// group indices).
// ---------------------------------------------------------------------------

Result<QueryResult> BoundedExecutor::Execute(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options, BoundedExecStats* stats_out) const {
  auto start = std::chrono::steady_clock::now();

  // Fetch chain: columnar batch on the vectorized path (so the tail can
  // consume it without materializing rows), Fragment on the scalar one.
  bool have_batch = options.use_vectorized;
  BatchFragment bf;
  Fragment fragment;
  if (have_batch) {
    BEAS_ASSIGN_OR_RETURN(bf, ExecuteBatchFragment(query, plan, options));
  } else {
    BEAS_ASSIGN_OR_RETURN(fragment,
                          ExecuteFragmentScalar(query, plan, options));
  }
  BoundedExecStats& stats = have_batch ? bf.stats : fragment.stats;
  const std::vector<AttrRef>& layout = have_batch ? bf.layout : fragment.layout;

  QueryResult result;
  result.engine = "BEAS (bounded)";
  for (const OutputItem& out : query.outputs) {
    result.column_names.push_back(out.name);
    result.column_types.push_back(out.type);
  }

  auto tail_start = std::chrono::steady_clock::now();
  bool unsatisfiable = plan.steps.empty() && !query.atoms.empty();
  bool columnar_done = false;
  if (!unsatisfiable && have_batch && options.use_columnar_tail) {
    std::vector<int64_t> slot_of_column(query.total_columns, -1);
    for (size_t p = 0; p < layout.size(); ++p) {
      slot_of_column[query.GlobalIndex(layout[p])] =
          static_cast<int64_t>(p);
    }
    // The tail never truncates — its input T is final and dropping tail
    // work would make the reported η dishonest — but an expired query
    // sheds the fan-out: it has no claim on workers other queries need.
    TaskPool* tail_pool = stats.timed_out ? nullptr : options.probe_pool;
    BEAS_ASSIGN_OR_RETURN(
        columnar_done, RunColumnarTail(query, bf.batch, slot_of_column,
                                       tail_pool, &result));
  }
  if (!unsatisfiable && !columnar_done && have_batch) {
    // Scalar-tail fallback (non-compilable tail expression, or the tail
    // ablation knob): materialize the batch into the row Fragment the
    // reference tail consumes.
    fragment.layout = bf.layout;
    fragment.rows = bf.batch.ToRows();
    fragment.weights = std::move(bf.batch.weights());
  }

  // Rebuild the global -> T position mapping (scalar tail only).
  std::unordered_map<size_t, size_t> layout_pos;
  if (!columnar_done) {
    for (size_t p = 0; p < fragment.layout.size(); ++p) {
      layout_pos[query.GlobalIndex(fragment.layout[p])] = p;
    }
  }

  if (columnar_done) {
    // Tail complete, ORDER BY and LIMIT included.
  } else if (unsatisfiable) {
    // Unsatisfiable equality predicates: T is empty and the layout holds no
    // columns, so skip rebinding. Global aggregates still produce their
    // one empty-input row (COUNT(*) = 0).
    if (query.HasAggregates() && query.group_by.empty()) {
      Row agg_row;
      for (const AggSpec& spec : query.aggregates) {
        BEAS_ASSIGN_OR_RETURN(Value v,
                              FinalizeWeighted(spec, WeightedAggState{}));
        agg_row.push_back(std::move(v));
      }
      bool pass = true;
      if (query.having) {
        BEAS_ASSIGN_OR_RETURN(pass, EvalPredicate(*query.having, agg_row));
      }
      if (pass) {
        Row out_row;
        for (const OutputItem& out : query.outputs) {
          out_row.push_back(agg_row[out.slot]);
        }
        result.rows.push_back(std::move(out_row));
      }
    }
  } else if (query.HasAggregates()) {
    // Weighted grouping over T.
    std::vector<ExprPtr> groups;
    for (const ExprPtr& g : query.group_by) {
      ExprPtr rebound = RebindColumns(g, layout_pos);
      if (!rebound) return Status::Internal("rebind failed for GROUP BY");
      groups.push_back(std::move(rebound));
    }
    std::vector<AggSpec> aggs;
    for (const AggSpec& spec : query.aggregates) {
      AggSpec copy = spec;
      if (copy.arg) {
        copy.arg = RebindColumns(copy.arg, layout_pos);
        if (!copy.arg) return Status::Internal("rebind failed for aggregate");
      }
      aggs.push_back(std::move(copy));
    }

    ValueVecGrouper grouper;
    std::vector<std::vector<WeightedAggState>> group_states;
    for (size_t r = 0; r < fragment.rows.size(); ++r) {
      const Row& row = fragment.rows[r];
      uint64_t weight = fragment.weights[r];
      ValueVec key;
      key.reserve(groups.size());
      for (const ExprPtr& g : groups) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*g, row));
        key.push_back(std::move(v));
      }
      size_t gid = grouper.IdFor(std::move(key));
      if (gid == group_states.size()) {
        group_states.emplace_back(aggs.size());
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        Value v;
        if (aggs[i].fn != AggFn::kCountStar) {
          BEAS_ASSIGN_OR_RETURN(v, Eval(*aggs[i].arg, row));
        }
        BEAS_RETURN_NOT_OK(
            AccumulateWeighted(aggs[i], v, weight, &group_states[gid][i]));
      }
    }
    if (groups.empty() && grouper.size() == 0) {
      grouper.IdFor(ValueVec{});
      group_states.emplace_back(aggs.size());
    }

    for (size_t gid = 0; gid < grouper.size(); ++gid) {
      const std::vector<WeightedAggState>& states = group_states[gid];
      Row agg_row = grouper.key(gid);
      for (size_t i = 0; i < aggs.size(); ++i) {
        BEAS_ASSIGN_OR_RETURN(Value v, FinalizeWeighted(aggs[i], states[i]));
        agg_row.push_back(std::move(v));
      }
      if (query.having) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*query.having, agg_row));
        if (!pass) continue;
      }
      Row out_row;
      out_row.reserve(query.outputs.size());
      size_t num_groups = groups.size();
      for (const OutputItem& out : query.outputs) {
        size_t pos = out.agg == AggFn::kNone ? out.slot : num_groups + out.slot;
        out_row.push_back(agg_row[pos]);
      }
      result.rows.push_back(std::move(out_row));
    }
  } else {
    // Scalar projection with bag expansion by weight.
    std::vector<ExprPtr> outputs;
    for (const OutputItem& out : query.outputs) {
      ExprPtr rebound = RebindColumns(out.expr, layout_pos);
      if (!rebound) return Status::Internal("rebind failed for output");
      outputs.push_back(std::move(rebound));
    }
    for (size_t r = 0; r < fragment.rows.size(); ++r) {
      Row out_row;
      out_row.reserve(outputs.size());
      for (const ExprPtr& e : outputs) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*e, fragment.rows[r]));
        out_row.push_back(std::move(v));
      }
      if (query.distinct) {
        result.rows.push_back(std::move(out_row));
      } else {
        for (uint64_t w = 0; w < fragment.weights[r]; ++w) {
          result.rows.push_back(out_row);
        }
      }
    }
    if (query.distinct) {
      ValueVecGrouper seen;
      for (Row& row : result.rows) seen.IdFor(std::move(row));
      result.rows = std::move(seen).ReleaseKeys();
    }
  }

  // ORDER BY over output positions, then LIMIT (the columnar tail has
  // already applied its own — on encoded sort keys).
  if (!columnar_done) SortRowsAndLimit(query, &result.rows);

  // Assemble telemetry.
  if (options.collect_stats) {
    OperatorStats tail;
    tail.label = columnar_done
                     ? "RelationalTail(columnar group/sort/limit)"
                     : "RelationalTail(project/aggregate/sort/limit)";
    tail.rows_out = result.rows.size();
    tail.self_millis = MillisSince(tail_start);
    tail.total_millis = tail.self_millis;

    result.stats = stats.root;
    result.stats.label = "BEAS BoundedPlan";
    result.stats.children.push_back(std::move(tail));
    result.stats.rows_out = result.rows.size();
    result.plan_text = plan.ToString(query);
  }
  result.tuples_accessed = stats.tuples_fetched;
  result.millis = MillisSince(start);

  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace beas
