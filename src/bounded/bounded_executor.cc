#include "bounded/bounded_executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "expr/evaluator.h"

namespace beas {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Weighted aggregate accumulation state (bag semantics via weights).
struct WeightedAggState {
  uint64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0;
  Value min_max;
  bool has_value = false;
  std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> distinct;
};

Status AccumulateWeighted(const AggSpec& spec, const Value& v, uint64_t weight,
                          WeightedAggState* state) {
  if (spec.fn == AggFn::kCountStar) {
    state->count += weight;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  if (spec.distinct) {
    // DISTINCT aggregates ignore multiplicity by definition.
    if (!state->distinct.insert(ValueVec{v}).second) return Status::OK();
    weight = 1;
  }
  switch (spec.fn) {
    case AggFn::kCount:
      state->count += weight;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      state->count += weight;
      state->sum_i += static_cast<int64_t>(weight) *
                      (v.type() == TypeId::kDouble ? 0 : v.AsInt64());
      state->sum_d += static_cast<double>(weight) * v.AsDouble();
      break;
    case AggFn::kMin:
      if (!state->has_value || v.Compare(state->min_max) < 0) state->min_max = v;
      state->has_value = true;
      break;
    case AggFn::kMax:
      if (!state->has_value || v.Compare(state->min_max) > 0) state->min_max = v;
      state->has_value = true;
      break;
    default:
      return Status::Internal("bad aggregate function");
  }
  return Status::OK();
}

Result<Value> FinalizeWeighted(const AggSpec& spec,
                               const WeightedAggState& state) {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return Value::Int64(static_cast<int64_t>(state.count));
    case AggFn::kSum:
      if (state.count == 0) return Value::Null();
      return spec.result_type == TypeId::kDouble ? Value::Double(state.sum_d)
                                                 : Value::Int64(state.sum_i);
    case AggFn::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.sum_d / static_cast<double>(state.count));
    case AggFn::kMin:
    case AggFn::kMax:
      return state.has_value ? state.min_max : Value::Null();
    case AggFn::kNone:
      break;
  }
  return Status::Internal("bad aggregate function");
}

}  // namespace

Result<BoundedExecutor::Fragment> BoundedExecutor::ExecuteFragment(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options) const {
  Fragment fragment;
  fragment.layout = plan.layout;
  fragment.stats.root.label = "BoundedFetchChain";

  // Initial conjuncts (literal-only predicates).
  Row empty_row;
  for (size_t ci : plan.initial_conjuncts) {
    BEAS_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(*query.conjuncts[ci].expr, empty_row));
    if (!pass) return fragment;  // empty result
  }

  // Unsatisfiable equality predicates -> empty T (plan has no steps but the
  // query has atoms).
  if (plan.steps.empty() && !query.atoms.empty()) return fragment;

  // T starts as a single empty row of weight 1.
  std::vector<Row> t_rows(1);
  std::vector<uint64_t> t_weights(1, 1);

  // Mapping from global column index to T position, grown per step.
  std::unordered_map<size_t, size_t> layout_pos;
  size_t t_width = 0;

  for (const FetchStep& step : plan.steps) {
    auto step_start = std::chrono::steady_clock::now();
    OperatorStats step_stats;
    if (options.collect_stats) {
      step_stats.label =
          "fetch[" + step.constraint.name + " on " +
          query.atoms[step.atom].alias + "]";
    }

    const AcIndex* index = catalog_->IndexFor(step.constraint.name);
    if (index == nullptr) {
      return Status::Internal("no index registered for constraint '" +
                              step.constraint.name + "'");
    }

    // Approximation: each step may consume whatever budget remains. This
    // greedy allocation serves every probe whenever the budget exceeds the
    // actual (not worst-case) need, and degrades later steps first when it
    // does not; eta accounts for the unserved fraction either way.
    uint64_t step_cap = 0;
    if (options.fetch_budget > 0) {
      step_cap = options.fetch_budget > fragment.stats.tuples_fetched
                     ? options.fetch_budget - fragment.stats.tuples_fetched
                     : 1;
    }

    // --- Phase A: distinct probe keys from T (expanding IN-lists). ---
    // Each T row yields one key per combination of IN-list values.
    size_t num_lists = 0;
    for (const KeySource& src : step.key_sources) {
      if (src.kind == KeySource::Kind::kConstantList) ++num_lists;
    }
    std::vector<size_t> list_sizes;
    std::vector<const std::vector<Value>*> lists;
    for (const KeySource& src : step.key_sources) {
      if (src.kind == KeySource::Kind::kConstantList) {
        lists.push_back(&src.list);
        list_sizes.push_back(src.list.size());
      }
    }
    size_t combos = 1;
    for (size_t s : list_sizes) combos *= s;

    auto key_of = [&](const Row& row, size_t combo) {
      ValueVec key;
      key.reserve(step.key_sources.size());
      size_t list_idx = 0;
      size_t rem = combo;
      for (const KeySource& src : step.key_sources) {
        switch (src.kind) {
          case KeySource::Kind::kConstant:
            key.push_back(src.constant);
            break;
          case KeySource::Kind::kConstantList: {
            size_t sz = list_sizes[list_idx];
            key.push_back((*lists[list_idx])[rem % sz]);
            rem /= sz;
            ++list_idx;
            break;
          }
          case KeySource::Kind::kFromT:
            key.push_back(row[src.t_column]);
            break;
        }
      }
      return key;
    };

    std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> distinct_keys;
    for (const Row& row : t_rows) {
      for (size_t combo = 0; combo < combos; ++combo) {
        distinct_keys.insert(key_of(row, combo));
      }
    }

    // --- Phase B: probe each distinct key once (budget-capped). ---
    std::unordered_map<ValueVec, AcIndex::BucketView, ValueVecHash, ValueVecEq>
        fetched;
    std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> unserved;
    uint64_t fetched_this_step = 0;
    size_t served = 0;
    for (const ValueVec& key : distinct_keys) {
      // NULL key components never match (SQL equality).
      bool has_null = false;
      for (const Value& v : key) has_null |= v.is_null();
      if (has_null) {
        fetched.emplace(key, AcIndex::BucketView{});
        ++served;
        continue;
      }
      if (step_cap > 0 && fetched_this_step >= step_cap) {
        unserved.insert(key);
        continue;
      }
      AcIndex::BucketView bucket = index->LookupWithCounts(key);
      ++fragment.stats.keys_probed;
      fetched_this_step += bucket.size();
      fragment.stats.tuples_fetched += bucket.size();
      fetched.emplace(key, bucket);
      ++served;
    }
    if (!distinct_keys.empty()) {
      fragment.stats.eta *= static_cast<double>(served) /
                            static_cast<double>(distinct_keys.size());
    }

    // --- Phase C: join T with the fetched partial tuples. ---
    // Column -> value source within the fetched data: X columns take the
    // key value (X has priority if a column is in both X and Y).
    std::unordered_map<size_t, size_t> x_pos;  // table col -> key position
    for (size_t i = 0; i < step.x_cols.size(); ++i) x_pos[step.x_cols[i]] = i;
    std::unordered_map<size_t, size_t> y_pos;  // table col -> y position
    for (size_t i = 0; i < step.y_cols.size(); ++i) {
      if (!x_pos.count(step.y_cols[i])) y_pos[step.y_cols[i]] = i;
    }

    std::vector<Row> new_rows;
    std::vector<uint64_t> new_weights;
    for (size_t r = 0; r < t_rows.size(); ++r) {
      for (size_t combo = 0; combo < combos; ++combo) {
        ValueVec key = key_of(t_rows[r], combo);
        auto it = fetched.find(key);
        if (it == fetched.end()) continue;  // unserved under budget: dropped
        const AcIndex::BucketView& bucket = it->second;
        for (size_t b = 0; b < bucket.size(); ++b) {
          Row out = t_rows[r];
          out.reserve(t_width + step.added_columns.size());
          for (const AttrRef& attr : step.added_columns) {
            auto xp = x_pos.find(attr.col);
            if (xp != x_pos.end()) {
              out.push_back(key[xp->second]);
            } else {
              out.push_back((*bucket.rows)[b][y_pos.at(attr.col)]);
            }
          }
          new_rows.push_back(std::move(out));
          new_weights.push_back(t_weights[r] * (*bucket.multiplicities)[b]);
        }
      }
    }

    // Extend the layout mapping.
    for (const AttrRef& attr : step.added_columns) {
      layout_pos[query.GlobalIndex(attr)] = t_width++;
    }

    // Apply the conjuncts that just became evaluable.
    for (size_t ci : step.conjuncts_after) {
      ExprPtr rebound = RebindColumns(query.conjuncts[ci].expr, layout_pos);
      if (!rebound) {
        return Status::Internal("rebind failed for conjunct " +
                                query.conjuncts[ci].ToString());
      }
      std::vector<Row> kept_rows;
      std::vector<uint64_t> kept_weights;
      for (size_t r = 0; r < new_rows.size(); ++r) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*rebound, new_rows[r]));
        if (pass) {
          kept_rows.push_back(std::move(new_rows[r]));
          kept_weights.push_back(new_weights[r]);
        }
      }
      new_rows = std::move(kept_rows);
      new_weights = std::move(kept_weights);
    }

    // Deduplicate T, merging weights: BEAS manipulates distinct partial
    // tuples; multiplicities live in the weights.
    std::unordered_map<ValueVec, uint64_t, ValueVecHash, ValueVecEq> merged;
    std::vector<Row> dedup_rows;
    for (size_t r = 0; r < new_rows.size(); ++r) {
      auto [it2, inserted] = merged.try_emplace(new_rows[r], 0);
      if (inserted) dedup_rows.push_back(new_rows[r]);
      it2->second += new_weights[r];
    }
    t_rows = std::move(dedup_rows);
    t_weights.clear();
    t_weights.reserve(t_rows.size());
    for (const Row& row : t_rows) t_weights.push_back(merged.at(row));

    if (options.collect_stats) {
      step_stats.rows_out = t_rows.size();
      step_stats.tuples_accessed = fetched_this_step;
      step_stats.self_millis = MillisSince(step_start);
      step_stats.total_millis = step_stats.self_millis;
      fragment.stats.root.children.push_back(std::move(step_stats));
    }
  }

  fragment.rows = std::move(t_rows);
  fragment.weights = std::move(t_weights);
  for (const auto& child : fragment.stats.root.children) {
    fragment.stats.root.total_millis += child.total_millis;
  }
  fragment.stats.root.tuples_accessed = fragment.stats.tuples_fetched;
  fragment.stats.root.rows_out = fragment.rows.size();
  return fragment;
}

Result<QueryResult> BoundedExecutor::Execute(
    const BoundQuery& query, const BoundedPlan& plan,
    const BoundedExecOptions& options, BoundedExecStats* stats_out) const {
  auto start = std::chrono::steady_clock::now();
  BEAS_ASSIGN_OR_RETURN(Fragment fragment,
                        ExecuteFragment(query, plan, options));

  // Rebuild the global -> T position mapping.
  std::unordered_map<size_t, size_t> layout_pos;
  for (size_t p = 0; p < fragment.layout.size(); ++p) {
    layout_pos[query.GlobalIndex(fragment.layout[p])] = p;
  }

  QueryResult result;
  result.engine = "BEAS (bounded)";
  for (const OutputItem& out : query.outputs) {
    result.column_names.push_back(out.name);
    result.column_types.push_back(out.type);
  }

  auto tail_start = std::chrono::steady_clock::now();
  if (plan.steps.empty() && !query.atoms.empty()) {
    // Unsatisfiable equality predicates: T is empty and the layout holds no
    // columns, so skip rebinding. Global aggregates still produce their
    // one empty-input row (COUNT(*) = 0).
    if (query.HasAggregates() && query.group_by.empty()) {
      Row agg_row;
      for (const AggSpec& spec : query.aggregates) {
        BEAS_ASSIGN_OR_RETURN(Value v,
                              FinalizeWeighted(spec, WeightedAggState{}));
        agg_row.push_back(std::move(v));
      }
      bool pass = true;
      if (query.having) {
        BEAS_ASSIGN_OR_RETURN(pass, EvalPredicate(*query.having, agg_row));
      }
      if (pass) {
        Row out_row;
        for (const OutputItem& out : query.outputs) {
          out_row.push_back(agg_row[out.slot]);
        }
        result.rows.push_back(std::move(out_row));
      }
    }
  } else if (query.HasAggregates()) {
    // Weighted grouping over T.
    std::vector<ExprPtr> groups;
    for (const ExprPtr& g : query.group_by) {
      ExprPtr rebound = RebindColumns(g, layout_pos);
      if (!rebound) return Status::Internal("rebind failed for GROUP BY");
      groups.push_back(std::move(rebound));
    }
    std::vector<AggSpec> aggs;
    for (const AggSpec& spec : query.aggregates) {
      AggSpec copy = spec;
      if (copy.arg) {
        copy.arg = RebindColumns(copy.arg, layout_pos);
        if (!copy.arg) return Status::Internal("rebind failed for aggregate");
      }
      aggs.push_back(std::move(copy));
    }

    std::unordered_map<ValueVec, std::vector<WeightedAggState>, ValueVecHash,
                       ValueVecEq>
        group_states;
    std::vector<ValueVec> group_order;
    for (size_t r = 0; r < fragment.rows.size(); ++r) {
      const Row& row = fragment.rows[r];
      uint64_t weight = fragment.weights[r];
      ValueVec key;
      key.reserve(groups.size());
      for (const ExprPtr& g : groups) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*g, row));
        key.push_back(std::move(v));
      }
      auto [it, inserted] =
          group_states.try_emplace(key, aggs.size(), WeightedAggState{});
      if (inserted) group_order.push_back(key);
      for (size_t i = 0; i < aggs.size(); ++i) {
        Value v;
        if (aggs[i].fn != AggFn::kCountStar) {
          BEAS_ASSIGN_OR_RETURN(v, Eval(*aggs[i].arg, row));
        }
        BEAS_RETURN_NOT_OK(
            AccumulateWeighted(aggs[i], v, weight, &it->second[i]));
      }
    }
    if (groups.empty() && group_states.empty()) {
      ValueVec key;
      group_states.try_emplace(key, aggs.size(), WeightedAggState{});
      group_order.push_back(key);
    }

    for (const ValueVec& key : group_order) {
      const auto& states = group_states.at(key);
      Row agg_row = key;
      for (size_t i = 0; i < aggs.size(); ++i) {
        BEAS_ASSIGN_OR_RETURN(Value v, FinalizeWeighted(aggs[i], states[i]));
        agg_row.push_back(std::move(v));
      }
      if (query.having) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*query.having, agg_row));
        if (!pass) continue;
      }
      Row out_row;
      out_row.reserve(query.outputs.size());
      size_t num_groups = groups.size();
      for (const OutputItem& out : query.outputs) {
        size_t pos = out.agg == AggFn::kNone ? out.slot : num_groups + out.slot;
        out_row.push_back(agg_row[pos]);
      }
      result.rows.push_back(std::move(out_row));
    }
  } else {
    // Scalar projection with bag expansion by weight.
    std::vector<ExprPtr> outputs;
    for (const OutputItem& out : query.outputs) {
      ExprPtr rebound = RebindColumns(out.expr, layout_pos);
      if (!rebound) return Status::Internal("rebind failed for output");
      outputs.push_back(std::move(rebound));
    }
    for (size_t r = 0; r < fragment.rows.size(); ++r) {
      Row out_row;
      out_row.reserve(outputs.size());
      for (const ExprPtr& e : outputs) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*e, fragment.rows[r]));
        out_row.push_back(std::move(v));
      }
      if (query.distinct) {
        result.rows.push_back(std::move(out_row));
      } else {
        for (uint64_t w = 0; w < fragment.weights[r]; ++w) {
          result.rows.push_back(out_row);
        }
      }
    }
    if (query.distinct) {
      std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> seen;
      std::vector<Row> unique_rows;
      for (Row& row : result.rows) {
        if (seen.insert(row).second) unique_rows.push_back(std::move(row));
      }
      result.rows = std::move(unique_rows);
    }
  }

  // ORDER BY over output positions, then LIMIT.
  if (!query.order_by.empty()) {
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&query](const Row& a, const Row& b) {
                       for (const BoundOrderItem& item : query.order_by) {
                         int c = a[item.output_index].Compare(
                             b[item.output_index]);
                         if (c != 0) return item.asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (query.limit.has_value() &&
      result.rows.size() > static_cast<size_t>(*query.limit)) {
    result.rows.resize(static_cast<size_t>(*query.limit));
  }

  // Assemble telemetry.
  if (options.collect_stats) {
    OperatorStats tail;
    tail.label = "RelationalTail(project/aggregate/sort/limit)";
    tail.rows_out = result.rows.size();
    tail.self_millis = MillisSince(tail_start);
    tail.total_millis = tail.self_millis;

    result.stats = fragment.stats.root;
    result.stats.label = "BEAS BoundedPlan";
    result.stats.children.push_back(std::move(tail));
    result.stats.rows_out = result.rows.size();
    result.plan_text = plan.ToString(query);
  }
  result.tuples_accessed = fragment.stats.tuples_fetched;
  result.millis = MillisSince(start);

  if (stats_out != nullptr) *stats_out = fragment.stats;
  return result;
}

}  // namespace beas
