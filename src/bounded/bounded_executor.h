#ifndef BEAS_BOUNDED_BOUNDED_EXECUTOR_H_
#define BEAS_BOUNDED_BOUNDED_EXECUTOR_H_

#include <vector>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_plan.h"
#include "bounded/step_program.h"
#include "bounded/tuple_batch.h"
#include "common/exec_control.h"
#include "common/result.h"
#include "engine/query_result.h"

namespace beas {

class TaskPool;

/// \brief Execution knobs for bounded plans.
struct BoundedExecOptions {
  /// 0 = exact evaluation. When positive, resource-bounded approximation:
  /// each fetch step may consume whatever budget remains (in fetched
  /// tuples); once the budget is exhausted a step serves zero keys,
  /// unserved probe keys drop their rows, and the coverage lower bound η
  /// shrinks accordingly.
  uint64_t fetch_budget = 0;

  /// When false, skips the per-query diagnostic rendering — the plan text
  /// and the per-step operator breakdown with its labels and timers.
  /// Answers, counters (tuples_fetched / keys_probed / eta) and timings of
  /// the result itself are unaffected. The service layer's cached fast
  /// path uses this; the analysis UI and benches keep full telemetry.
  bool collect_stats = true;

  /// When true (default) the fetch chain runs the vectorized batch
  /// executor (columnar T, batched probes, compiled step programs). The
  /// row-at-a-time path is kept for differential testing; both produce
  /// bit-identical results (rows, weights, η) — probe keys are served in
  /// first-appearance order under a budget on either path.
  bool use_vectorized = true;

  /// When true (default, vectorized path only) the relational tail —
  /// GROUP BY aggregation, DISTINCT, projection, ORDER BY, LIMIT — also
  /// consumes the columnar T directly (see bounded/columnar_tail.h): no
  /// Row materialization, code-aware grouping, encoded-key sorts.
  /// Queries whose tail expressions are not soundly compilable fall back
  /// to the scalar tail automatically. False forces the scalar tail (the
  /// differential reference) after the vectorized fetch chain.
  bool use_columnar_tail = true;

  /// Optional precompiled step programs for `plan`'s template (cached by
  /// the service next to the plan skeleton). Null = compile on the fly.
  /// Must have been compiled from the same template as `plan`.
  const CompiledPlan* compiled = nullptr;

  /// Optional worker pool: large distinct-key sets of exact (un-budgeted)
  /// steps shard their index probes across it. Null = serial probes.
  /// Results are merged deterministically regardless.
  TaskPool* probe_pool = nullptr;

  /// Cooperative deadline/cancellation. When active, the fetch chain polls
  /// it at deterministic points (step boundaries and every
  /// ExecControl::kExpiryCheckInterval-th probe key, identical indices on
  /// both paths); observed expiry behaves exactly like budget exhaustion —
  /// unserved keys drop their rows, η shrinks, the partial answer stays
  /// well-formed and bit-identical scalar vs vectorized. An active control
  /// also forces sequential (un-fanned) probes so the check schedule is
  /// deterministic, and sheds TaskPool fan-out once expired.
  ExecControl control;
};

/// \brief Telemetry of a bounded execution.
struct BoundedExecStats {
  uint64_t tuples_fetched = 0;  ///< Σ bucket entries read (≤ deduced bound)
  uint64_t keys_probed = 0;     ///< distinct index probes
  double eta = 1.0;             ///< deterministic coverage lower bound
  bool timed_out = false;       ///< the ExecControl expired mid-chain
  OperatorStats root;           ///< per-fetch-step breakdown (Fig. 3)
};

/// \brief Executes bounded plans (paper §3, BE Plan Executor): each
/// fetch(X ∈ T, Y, R) probes the modified hash index of its access
/// constraint once per distinct X-value in the intermediate relation T,
/// joins the distinct Y-projections back into T, and applies every
/// selection that has just become evaluable.
///
/// Bag-semantics note: T rows carry weights (products of the per-Y
/// multiplicities stored in the indices), so COUNT/SUM/AVG and non-DISTINCT
/// projections are exact even though only distinct partial tuples are
/// fetched (see AcIndex::BucketView).
///
/// Two fetch-chain implementations share this contract:
///  * the vectorized path (default): T is a columnar TupleBatch; probe
///    keys are deduplicated into first-appearance order, probed through
///    AcIndex::LookupBatch (sharded across a TaskPool when large), joined
///    by index-gather, filtered with compiled predicate programs, and
///    deduplicated by precomputed row hashes;
///  * the scalar row-at-a-time path (BoundedExecOptions::use_vectorized =
///    false), retained as the differential-testing reference.
class BoundedExecutor {
 public:
  explicit BoundedExecutor(const AsCatalog* catalog) : catalog_(catalog) {}

  /// Runs the plan and the query's relational tail (projection /
  /// aggregation / DISTINCT / ORDER BY / LIMIT). `stats_out` is optional.
  Result<QueryResult> Execute(const BoundQuery& query, const BoundedPlan& plan,
                              const BoundedExecOptions& options = {},
                              BoundedExecStats* stats_out = nullptr) const;

  /// \brief A materialized bounded fragment: the final intermediate
  /// relation T (used by the partial-plan optimizer as a temp table).
  struct Fragment {
    std::vector<Row> rows;
    std::vector<uint64_t> weights;   ///< parallel to rows
    std::vector<AttrRef> layout;     ///< T column -> query attribute
    BoundedExecStats stats;
  };

  /// Runs only the fetch chain, returning T.
  Result<Fragment> ExecuteFragment(const BoundQuery& query,
                                   const BoundedPlan& plan,
                                   const BoundedExecOptions& options = {}) const;

 private:
  /// The vectorized fetch chain's product before any materialization: T
  /// as a columnar batch (string columns still dictionary-encoded). The
  /// columnar tail consumes this directly; Fragment consumers get it
  /// materialized through ToRows.
  struct BatchFragment {
    TupleBatch batch;
    std::vector<AttrRef> layout;     ///< T column -> query attribute
    BoundedExecStats stats;
  };

  Result<Fragment> ExecuteFragmentScalar(const BoundQuery& query,
                                         const BoundedPlan& plan,
                                         const BoundedExecOptions& options) const;

  /// Vectorized chain with compile-on-the-fly when `options.compiled` is
  /// absent or stale.
  Result<BatchFragment> ExecuteBatchFragment(
      const BoundQuery& query, const BoundedPlan& plan,
      const BoundedExecOptions& options) const;

  Result<BatchFragment> ExecuteFragmentVectorized(
      const BoundQuery& query, const BoundedPlan& plan,
      const CompiledPlan& compiled, const BoundedExecOptions& options) const;

  const AsCatalog* catalog_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_BOUNDED_EXECUTOR_H_
