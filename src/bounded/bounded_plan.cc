#include "bounded/bounded_plan.h"

#include <set>

#include "bounded/attr_binding.h"
#include "common/string_util.h"

namespace beas {

std::string KeySource::ToString() const {
  switch (kind) {
    case Kind::kConstant:
      return constant.ToString();
    case Kind::kConstantList: {
      std::string out = "in{";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i].ToString();
      }
      return out + "}";
    }
    case Kind::kFromT:
      return "T[#" + std::to_string(t_column) + "]";
  }
  return "?";
}

size_t BoundedPlan::NumConstraintsUsed() const {
  std::set<std::string> names;
  for (const FetchStep& step : steps) names.insert(step.constraint.name);
  return names.size();
}

std::string BoundedPlan::ToString(const BoundQuery& query) const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const FetchStep& step = steps[i];
    const Schema& schema = query.atoms[step.atom].table->schema();
    out += StringPrintf("(%zu) fetch(X in T, Y, %s) via %s\n", i + 1,
                        query.atoms[step.atom].alias.c_str(),
                        step.constraint.ToString().c_str());
    out += "      keys: ";
    for (size_t k = 0; k < step.x_cols.size(); ++k) {
      if (k > 0) out += ", ";
      out += schema.ColumnAt(step.x_cols[k]).name + " <- " +
             step.key_sources[k].ToString();
    }
    out += "\n";
    out += "      fetch: {";
    for (size_t k = 0; k < step.y_cols.size(); ++k) {
      if (k > 0) out += ", ";
      out += schema.ColumnAt(step.y_cols[k]).name;
    }
    out += "}\n";
    for (size_t ci : step.conjuncts_after) {
      out += "      then select: " + query.conjuncts[ci].ToString() + "\n";
    }
    out += StringPrintf("      |T| <= %s\n",
                        WithCommas(step.step_bound).c_str());
  }
  out += StringPrintf(
      "total deduced access bound M = %s tuples (%zu constraints employed)\n",
      WithCommas(total_access_bound).c_str(), NumConstraintsUsed());
  return out;
}

Result<BoundedPlan> RebindPlanConstants(
    const BoundedPlan& plan, const BoundQuery& query,
    const std::vector<bool>& conjunct_enabled) {
  AttrBindingAnalysis binding(query, conjunct_enabled);
  BoundedPlan out = plan;
  for (FetchStep& step : out.steps) {
    if (step.atom >= query.atoms.size()) {
      return Status::Internal("cached plan references atom " +
                              std::to_string(step.atom) +
                              " beyond the query's atom list");
    }
    for (size_t i = 0; i < step.key_sources.size(); ++i) {
      KeySource& source = step.key_sources[i];
      if (source.kind == KeySource::Kind::kFromT) continue;
      size_t global = query.atom_offsets[step.atom] + step.x_cols[i];
      const std::vector<Value>* consts = binding.ConstantsOf(global);
      if (consts == nullptr) {
        return Status::Internal(
            "cached plan keys " + query.AttrName(AttrRef{step.atom,
                                                         step.x_cols[i]}) +
            " from a constant, but the query binds none there");
      }
      if (source.kind == KeySource::Kind::kConstant) {
        if (consts->size() != 1) {
          return Status::Internal(
              "cached plan expects a single constant for " +
              query.AttrName(AttrRef{step.atom, step.x_cols[i]}) + ", got " +
              std::to_string(consts->size()));
        }
        source.constant = (*consts)[0];
      } else {
        // kConstantList: the deduced bounds multiplied by the old arity,
        // so a different arity invalidates the skeleton.
        if (consts->size() != source.list.size()) {
          return Status::Internal(
              "cached plan IN-list arity mismatch for " +
              query.AttrName(AttrRef{step.atom, step.x_cols[i]}));
        }
        source.list = *consts;
      }
    }
  }
  return out;
}

}  // namespace beas
