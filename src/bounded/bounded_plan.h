#ifndef BEAS_BOUNDED_BOUNDED_PLAN_H_
#define BEAS_BOUNDED_BOUNDED_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asx/access_constraint.h"
#include "binder/bound_query.h"

namespace beas {

/// \brief How one X-attribute of a fetch obtains its key values.
struct KeySource {
  enum class Kind {
    kConstant,      ///< a single constant from an equality predicate
    kConstantList,  ///< an IN-list of constants (bound multiplier = list size)
    kFromT,         ///< values of a column already materialized in T
  };
  Kind kind = Kind::kConstant;
  Value constant;
  std::vector<Value> list;
  size_t t_column = 0;  ///< position in the T layout at the time of the step

  std::string ToString() const;
};

/// \brief One fetch(X ∈ T, Y, R) step of a bounded plan (paper §3).
///
/// Executing the step probes the access-constraint index once per distinct
/// key assembled from `key_sources`, unions the fetched distinct
/// Y-projections into T (a join with the current intermediate relation),
/// and then applies every WHERE conjunct that has just become evaluable.
struct FetchStep {
  size_t atom = 0;                 ///< which relation atom is fetched into
  AccessConstraint constraint;     ///< the controlling ψ = R(X → Y, N)
  std::vector<size_t> x_cols;      ///< X column indices in the table schema
  std::vector<size_t> y_cols;      ///< Y column indices in the table schema
  std::vector<KeySource> key_sources;  ///< parallel to x_cols
  std::vector<AttrRef> added_columns;  ///< columns appended to T's layout
  std::vector<size_t> conjuncts_after; ///< conjunct indices applied post-step

  /// Deduced worst-case size of T after this step (the paper's per-fetch
  /// annotation in Fig. 2(B)).
  uint64_t step_bound = 0;
};

/// \brief A complete bounded query plan: a chain of fetch steps plus the
/// relational tail (selections are embedded per-step; projection,
/// aggregation, ordering come from the BoundQuery).
struct BoundedPlan {
  std::vector<FetchStep> steps;

  /// Conjuncts with no column references (e.g. WHERE 1 = 0), evaluated
  /// once before any fetch.
  std::vector<size_t> initial_conjuncts;

  /// Layout of the final intermediate relation T: position -> attribute.
  std::vector<AttrRef> layout;

  /// Worst-case number of rows of the final T.
  uint64_t total_bound = 0;

  /// Deduced bound M on total tuples accessed: the sum of per-step bounds
  /// (Example 2: 2,000 + 24,000 + 12,000,000).
  uint64_t total_access_bound = 0;

  /// Number of distinct access constraints employed (Fig. 3 reports this).
  size_t NumConstraintsUsed() const;

  /// Pretty-prints the plan in the style of paper Example 2, each fetch
  /// annotated with its deduced upper bound.
  std::string ToString(const BoundQuery& query) const;
};

/// \brief Re-targets a cached plan skeleton at a new instance of the same
/// query template: every constant-seeded fetch key (kConstant /
/// kConstantList) is re-derived from `query`'s own predicates, while the
/// step order, layouts, conjunct schedule and deduced bounds are reused
/// verbatim.
///
/// Preconditions (enforced by the caller, i.e. the service plan cache):
/// `query` has the same bound template as the query the plan was generated
/// from — same atoms, conjunct structure, and IN-list arities — restricted
/// to `conjunct_enabled` (empty = all conjuncts; the partial-plan path
/// passes the fragment's enforced subset). Returns Internal if the
/// constant bindings do not line up (callers treat that as a cache miss).
Result<BoundedPlan> RebindPlanConstants(
    const BoundedPlan& plan, const BoundQuery& query,
    const std::vector<bool>& conjunct_enabled = {});

}  // namespace beas

#endif  // BEAS_BOUNDED_BOUNDED_PLAN_H_
