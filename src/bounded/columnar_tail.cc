#include "bounded/columnar_tail.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/hash.h"
#include "common/task_pool.h"
#include "exec/grouping.h"
#include "expr/evaluator.h"
#include "expr/expr_program.h"

namespace beas {

std::atomic<uint64_t>& TailBatchesTotal() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& TailRowsGrouped() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

namespace {

/// Row counts below this run the serial fold even with a pool: the chunk
/// dispatch and per-chunk group tables would cost more than they save.
constexpr size_t kParallelTailThreshold = 4096;

/// Target rows per parallel fold chunk.
constexpr size_t kTailChunk = 4096;

/// One tail input column: borrowed from the batch when the expression is
/// a plain column reference (the overwhelmingly common tail shape), or
/// computed once per batch through a compiled ExprProgram otherwise.
/// Borrowing keeps dictionary-encoded columns encoded — grouping and
/// sorting then work on raw uint32 codes.
struct TailColumn {
  int64_t slot = -1;  ///< >= 0: borrowed batch column
  BatchColumn owned;  ///< slot < 0: computed values

  const BatchColumn& of(const TupleBatch& t) const {
    return slot >= 0 ? t.column(static_cast<size_t>(slot)) : owned;
  }
};

/// Resolves `expr` against the batch layout. False = not soundly
/// compilable; the caller falls back to the scalar tail.
bool ResolveTailColumn(const Expression& expr, const TupleBatch& t,
                       const std::vector<int64_t>& slots, TailColumn* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    if (expr.column_index >= slots.size() || slots[expr.column_index] < 0) {
      return false;
    }
    out->slot = slots[expr.column_index];
    return true;
  }
  std::optional<ExprProgram> prog = ExprProgram::Compile(expr, slots);
  if (!prog.has_value()) return false;
  Result<std::vector<Value>> lits = prog->BindLiterals(expr);
  if (!lits.ok()) return false;
  out->slot = -1;
  out->owned.values.reserve(t.num_rows());
  std::vector<Value> stack;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    out->owned.values.push_back(
        prog->EvalRow(t.columns().data(), r, *lits, &stack));
  }
  return true;
}

/// Key-row hash over the key columns: encoded columns hash the raw code
/// (kNullCode hashes like any other sentinel — it only ever equals
/// itself), generic columns hash the Value in place. Internal to one
/// grouping pass, so it needs no agreement with ValueVecHash — equality
/// below is what decides groups, and it matches Value semantics exactly.
uint64_t HashKeyAt(const std::vector<const BatchColumn*>& keys, size_t r) {
  uint64_t h = kValueVecHashSeed;
  for (const BatchColumn* col : keys) {
    HashCombine(&h, col->encoded() ? HashInt64(col->codes[r])
                                   : col->values[r].Hash());
  }
  return h;
}

bool KeysEqualAt(const std::vector<const BatchColumn*>& keys, size_t a,
                 size_t b) {
  for (const BatchColumn* col : keys) {
    if (!col->RowsEqual(a, b)) return false;
  }
  return true;
}

/// Dense first-appearance group ids over a set of key columns — the
/// code-aware grouper. Keys are never materialized: a group is
/// represented by its first row index, hashing reads codes / unboxed
/// Values straight from the columns, and equality is a code compare on
/// encoded columns (equal codes <=> equal bytes, so groups and their
/// order are exactly those of the scalar tail's ValueVec grouper).
class BatchKeyGrouper {
 public:
  BatchKeyGrouper(const std::vector<const BatchColumn*>* keys,
                  size_t expected_rows)
      : keys_(keys) {
    size_t cap = HashTableCapacity(expected_rows * 2);
    mask_ = cap - 1;
    slots_.assign(cap, UINT32_MAX);
  }

  uint32_t IdFor(size_t row) {
    if ((first_rows_.size() + 1) * 2 > slots_.size()) Grow();
    uint64_t h = HashKeyAt(*keys_, row);
    size_t slot = static_cast<size_t>(h) & mask_;
    for (;;) {
      uint32_t id = slots_[slot];
      if (id == UINT32_MAX) {
        id = static_cast<uint32_t>(first_rows_.size());
        slots_[slot] = id;
        first_rows_.push_back(row);
        hashes_.push_back(h);
        return id;
      }
      if (hashes_[id] == h && KeysEqualAt(*keys_, first_rows_[id], row)) {
        return id;
      }
      slot = (slot + 1) & mask_;
    }
  }

  size_t size() const { return first_rows_.size(); }
  size_t first_row(uint32_t id) const { return first_rows_[id]; }

 private:
  void Grow() {
    size_t cap = slots_.size() * 2;
    mask_ = cap - 1;
    slots_.assign(cap, UINT32_MAX);
    for (uint32_t id = 0; id < first_rows_.size(); ++id) {
      size_t slot = static_cast<size_t>(hashes_[id]) & mask_;
      while (slots_[slot] != UINT32_MAX) slot = (slot + 1) & mask_;
      slots_[slot] = id;
    }
  }

  const std::vector<const BatchColumn*>* keys_;
  std::vector<size_t> first_rows_;  ///< group id -> representative row
  std::vector<uint64_t> hashes_;    ///< parallel to first_rows_
  std::vector<uint32_t> slots_;     ///< open addressing, UINT32_MAX free
  size_t mask_ = 0;
};

/// Three-way comparison of two rows within one column, matching
/// Value::Compare semantics (NULL first, NULL == NULL). On an encoded
/// column of a sorted dictionary this is a pure code compare — the
/// zero-decode ORDER BY promise; an unsorted dictionary decodes (and the
/// decode is counted, so tests can pin its absence).
int CompareColumnRows(const BatchColumn& col, size_t a, size_t b) {
  if (col.encoded()) {
    uint32_t ca = col.codes[a];
    uint32_t cb = col.codes[b];
    if (ca == cb) return 0;
    if (ca == StringDict::kNullCode) return -1;
    if (cb == StringDict::kNullCode) return 1;
    if (col.dict->is_sorted()) return ca < cb ? -1 : 1;
    ++tls_string_order_decodes;
    int c = col.dict->str(ca).compare(col.dict->str(cb));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return col.values[a].Compare(col.values[b]);
}

/// One chunk's private grouping + aggregation state (parallel fold).
struct ChunkFold {
  ChunkFold(const std::vector<const BatchColumn*>* keys, size_t expected)
      : grouper(keys, expected) {}
  BatchKeyGrouper grouper;
  std::vector<std::vector<WeightedAggState>> states;
  Status status;
};

Result<bool> RunAggregateTail(const BoundQuery& query, const TupleBatch& t,
                              const std::vector<int64_t>& slots,
                              TaskPool* pool, QueryResult* result) {
  size_t num_rows = t.num_rows();
  const std::vector<uint64_t>& weights = t.weights();
  size_t num_aggs = query.aggregates.size();

  std::vector<TailColumn> group_cols(query.group_by.size());
  for (size_t g = 0; g < query.group_by.size(); ++g) {
    if (!ResolveTailColumn(*query.group_by[g], t, slots, &group_cols[g])) {
      return false;
    }
  }
  std::vector<TailColumn> agg_cols(num_aggs);
  std::vector<const BatchColumn*> agg_ptrs(num_aggs, nullptr);
  for (size_t i = 0; i < num_aggs; ++i) {
    if (query.aggregates[i].fn == AggFn::kCountStar) continue;
    if (query.aggregates[i].arg == nullptr) return false;
    if (!ResolveTailColumn(*query.aggregates[i].arg, t, slots, &agg_cols[i])) {
      return false;
    }
    agg_ptrs[i] = &agg_cols[i].of(t);
  }
  std::vector<const BatchColumn*> key_ptrs;
  key_ptrs.reserve(group_cols.size());
  for (const TailColumn& col : group_cols) key_ptrs.push_back(&col.of(t));

  auto fold = [&](BatchKeyGrouper* grouper,
                  std::vector<std::vector<WeightedAggState>>* states,
                  size_t begin, size_t end) -> Status {
    for (size_t r = begin; r < end; ++r) {
      uint32_t gid = grouper->IdFor(r);
      if (gid == states->size()) states->emplace_back(num_aggs);
      std::vector<WeightedAggState>& gs = (*states)[gid];
      for (size_t i = 0; i < num_aggs; ++i) {
        Value v;
        if (agg_ptrs[i] != nullptr) v = agg_ptrs[i]->At(r);
        BEAS_RETURN_NOT_OK(
            AccumulateWeighted(query.aggregates[i], v, weights[r], &gs[i]));
      }
    }
    return Status::OK();
  };

  BatchKeyGrouper grouper(&key_ptrs, num_rows);
  std::vector<std::vector<WeightedAggState>> states;
  bool parallel = pool != nullptr && pool->num_threads() > 0 &&
                  num_rows >= kParallelTailThreshold &&
                  CanParallelFold(query.aggregates);
  if (!parallel) {
    BEAS_RETURN_NOT_OK(fold(&grouper, &states, 0, num_rows));
  } else {
    // Chunk-private folds run shard-parallel; the merge walks chunks in
    // row order, so global group ids appear in first-row order and the
    // result is bit-identical to the serial fold (CanParallelFold keeps
    // FP-accumulated aggregates off this path entirely).
    size_t chunks =
        std::min((num_rows + kTailChunk - 1) / kTailChunk,
                 4 * (pool->num_threads() + 1));
    size_t per = (num_rows + chunks - 1) / chunks;
    std::vector<std::unique_ptr<ChunkFold>> locals(chunks);
    pool->ParallelFor(chunks, [&](size_t c) {
      size_t begin = c * per;
      size_t end = std::min(num_rows, begin + per);
      if (begin >= end) return;
      locals[c] = std::make_unique<ChunkFold>(&key_ptrs, end - begin);
      locals[c]->status =
          fold(&locals[c]->grouper, &locals[c]->states, begin, end);
    });
    for (std::unique_ptr<ChunkFold>& local : locals) {
      if (local == nullptr) continue;
      BEAS_RETURN_NOT_OK(local->status);
      for (uint32_t g = 0; g < local->grouper.size(); ++g) {
        uint32_t gid = grouper.IdFor(local->grouper.first_row(g));
        if (gid == states.size()) states.emplace_back(num_aggs);
        for (size_t i = 0; i < num_aggs; ++i) {
          BEAS_RETURN_NOT_OK(MergeWeightedAggState(
              query.aggregates[i], std::move(local->states[g][i]),
              &states[gid][i]));
        }
      }
    }
  }
  TailRowsGrouped().fetch_add(num_rows, std::memory_order_relaxed);

  // Global aggregation over an empty T still yields one (empty-key) group.
  bool synthesized_group = false;
  if (query.group_by.empty() && grouper.size() == 0) {
    states.emplace_back(num_aggs);
    synthesized_group = true;
  }

  size_t num_groups = query.group_by.size();
  size_t total_groups = synthesized_group ? 1 : grouper.size();
  result->rows.reserve(total_groups);
  for (size_t gid = 0; gid < total_groups; ++gid) {
    Row agg_row;
    agg_row.reserve(num_groups + num_aggs);
    if (!synthesized_group) {
      size_t first = grouper.first_row(static_cast<uint32_t>(gid));
      for (const BatchColumn* col : key_ptrs) agg_row.push_back(col->At(first));
    }
    for (size_t i = 0; i < num_aggs; ++i) {
      BEAS_ASSIGN_OR_RETURN(
          Value v, FinalizeWeighted(query.aggregates[i], states[gid][i]));
      agg_row.push_back(std::move(v));
    }
    if (query.having) {
      BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*query.having, agg_row));
      if (!pass) continue;
    }
    Row out_row;
    out_row.reserve(query.outputs.size());
    for (const OutputItem& out : query.outputs) {
      size_t pos = out.agg == AggFn::kNone ? out.slot : num_groups + out.slot;
      out_row.push_back(agg_row[pos]);
    }
    result->rows.push_back(std::move(out_row));
  }
  SortRowsAndLimit(query, &result->rows);
  return true;
}

Result<bool> RunProjectionTail(const BoundQuery& query, const TupleBatch& t,
                               const std::vector<int64_t>& slots,
                               QueryResult* result) {
  size_t num_rows = t.num_rows();
  const std::vector<uint64_t>& weights = t.weights();

  std::vector<TailColumn> out_cols(query.outputs.size());
  std::vector<const BatchColumn*> out_ptrs;
  out_ptrs.reserve(query.outputs.size());
  for (size_t i = 0; i < query.outputs.size(); ++i) {
    if (query.outputs[i].expr == nullptr ||
        !ResolveTailColumn(*query.outputs[i].expr, t, slots, &out_cols[i])) {
      return false;
    }
    out_ptrs.push_back(&out_cols[i].of(t));
  }

  auto materialize = [&](size_t r) {
    Row row;
    row.reserve(out_ptrs.size());
    for (const BatchColumn* col : out_ptrs) row.push_back(col->At(r));
    return row;
  };

  if (query.distinct) {
    // DISTINCT ignores weights; dedup on the output columns in
    // first-appearance order, materializing one row per group.
    BatchKeyGrouper grouper(&out_ptrs, num_rows);
    for (size_t r = 0; r < num_rows; ++r) grouper.IdFor(r);
    TailRowsGrouped().fetch_add(num_rows, std::memory_order_relaxed);
    result->rows.reserve(grouper.size());
    for (uint32_t g = 0; g < grouper.size(); ++g) {
      result->rows.push_back(materialize(grouper.first_row(g)));
    }
    SortRowsAndLimit(query, &result->rows);
    return true;
  }

  // Bag expansion by weight, as row indices — rows materialize only after
  // the sort decided which of them survive the LIMIT.
  std::vector<uint32_t> idx;
  {
    size_t total = 0;
    for (size_t r = 0; r < num_rows; ++r) total += weights[r];
    idx.reserve(total);
  }
  for (size_t r = 0; r < num_rows; ++r) {
    for (uint64_t w = 0; w < weights[r]; ++w) {
      idx.push_back(static_cast<uint32_t>(r));
    }
  }
  if (!query.order_by.empty()) {
    std::stable_sort(idx.begin(), idx.end(),
                     [&](uint32_t a, uint32_t b) {
                       for (const BoundOrderItem& item : query.order_by) {
                         int c = CompareColumnRows(*out_ptrs[item.output_index],
                                                   a, b);
                         if (c != 0) return item.asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  size_t take = idx.size();
  if (query.limit.has_value() &&
      take > static_cast<size_t>(*query.limit)) {
    take = static_cast<size_t>(*query.limit);
  }
  result->rows.reserve(take);
  for (size_t i = 0; i < take; ++i) result->rows.push_back(materialize(idx[i]));
  return true;
}

}  // namespace

void SortRowsAndLimit(const BoundQuery& query, std::vector<Row>* rows) {
  if (!query.order_by.empty()) {
    std::stable_sort(rows->begin(), rows->end(),
                     [&query](const Row& a, const Row& b) {
                       for (const BoundOrderItem& item : query.order_by) {
                         int c = a[item.output_index].Compare(
                             b[item.output_index]);
                         if (c != 0) return item.asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (query.limit.has_value() &&
      rows->size() > static_cast<size_t>(*query.limit)) {
    rows->resize(static_cast<size_t>(*query.limit));
  }
}

Result<bool> RunColumnarTail(const BoundQuery& query, const TupleBatch& t,
                             const std::vector<int64_t>& slot_of_column,
                             TaskPool* pool, QueryResult* result) {
  Result<bool> handled =
      query.HasAggregates()
          ? RunAggregateTail(query, t, slot_of_column, pool, result)
          : RunProjectionTail(query, t, slot_of_column, result);
  if (handled.ok() && *handled) {
    TailBatchesTotal().fetch_add(1, std::memory_order_relaxed);
  }
  return handled;
}

}  // namespace beas
