#ifndef BEAS_BOUNDED_COLUMNAR_TAIL_H_
#define BEAS_BOUNDED_COLUMNAR_TAIL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "binder/bound_query.h"
#include "bounded/tuple_batch.h"
#include "common/result.h"
#include "engine/query_result.h"

namespace beas {

class TaskPool;

/// \name Tail telemetry (process-wide, queryable via beas_stats).
/// @{
/// Batches the columnar tail consumed (one per bounded execution whose
/// tail ran columnar end to end).
std::atomic<uint64_t>& TailBatchesTotal();
/// Rows fed through the code-aware grouper (GROUP BY keys + DISTINCT
/// dedup), the unit of work the columnar tail saves a Row materialization
/// and a ValueVec allocation on.
std::atomic<uint64_t>& TailRowsGrouped();
/// @}

/// \brief ORDER BY over output positions (stable, Value::Compare — which
/// fast-paths to code comparisons on sorted dictionaries), then LIMIT.
/// The one definition both tails share: the scalar reference tail sorts
/// its materialized rows with exactly the comparator the columnar tail
/// uses for its grouped/DISTINCT outputs, so the bit-identical-tails
/// invariant cannot be broken by fixing ordering semantics in one place.
void SortRowsAndLimit(const BoundQuery& query, std::vector<Row>* rows);

/// \brief Runs a bounded query's relational tail — projection, weighted
/// GROUP BY aggregation, DISTINCT, HAVING, ORDER BY, LIMIT — directly
/// over the fetch chain's columnar TupleBatch, with no intermediate Row
/// materialization:
///
///  * GROUP BY keys, aggregate inputs and outputs resolve to batch
///    columns — borrowed directly for plain column references (the
///    overwhelmingly common shape), or computed once per batch through a
///    compiled ExprProgram for anything else;
///  * grouping runs on a code-aware grouper: dictionary-encoded key
///    columns hash and compare raw uint32 codes, generic columns hash
///    unboxed Values in place — no per-row ValueVec keys, no Row copies;
///  * weighted aggregate states fold per chunk and, when a TaskPool is
///    provided, the batch is large and every aggregate merges exactly
///    (CanParallelFold), chunks fold shard-parallel with a deterministic
///    in-order merge — group ids still appear in first-row order, so
///    results are bit-identical to the serial fold;
///  * ORDER BY on the bag-expansion path sorts row *indices* by column
///    comparators — dictionary-encoded keys of a sorted dictionary
///    compare codes with zero byte decodes (pinned via
///    tls_string_order_decodes) — and only the post-LIMIT survivors
///    materialize.
///
/// `slot_of_column` maps every global column index of `query` to its T
/// slot (-1 = not produced). Returns false — with `result` untouched —
/// when some tail expression is not soundly compilable against the batch
/// layout; the caller then falls back to the scalar row-at-a-time tail,
/// which remains the differential reference. On true, `result->rows` is
/// complete (including ORDER BY and LIMIT) and bit-identical to the
/// scalar tail's output, weights and all.
Result<bool> RunColumnarTail(const BoundQuery& query, const TupleBatch& t,
                             const std::vector<int64_t>& slot_of_column,
                             TaskPool* pool, QueryResult* result);

}  // namespace beas

#endif  // BEAS_BOUNDED_COLUMNAR_TAIL_H_
