#include "bounded/plan_generator.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "bounded/attr_binding.h"
#include "common/hash.h"

namespace beas {

namespace {

constexpr uint64_t kBoundCap = 1ull << 60;  // saturation for bound arithmetic

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kBoundCap / b) return kBoundCap;
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return (s < a || s > kBoundCap) ? kBoundCap : s;
}

/// A constraint resolved against its atom's schema.
struct ResolvedConstraint {
  const AccessConstraint* constraint;
  std::vector<size_t> x_cols;
  std::vector<size_t> y_cols;
  uint64_t x_mask = 0;
  uint64_t y_mask = 0;
};

struct SearchAtom {
  TableInfo* table;
  uint64_t needed = 0;
  std::vector<ResolvedConstraint> constraints;
};

struct MaskVecHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    uint64_t seed = 0x8f3a1c95d27b60e1ULL;
    for (uint64_t m : v) HashCombine(&seed, HashInt64(m));
    return static_cast<size_t>(seed);
  }
};

struct StepChoice {
  size_t atom_pos;        // index into enabled-atom vector
  size_t constraint_idx;  // index into SearchAtom::constraints
};

}  // namespace

Result<GenerationResult> BoundedPlanGenerator::Generate(
    const BoundQuery& query) const {
  CoverageRequest request;
  request.query = &query;
  return Generate(request);
}

Result<GenerationResult> BoundedPlanGenerator::Generate(
    const CoverageRequest& request) const {
  const BoundQuery& query = *request.query;
  GenerationResult result;

  std::vector<bool> atom_enabled = request.atom_enabled;
  if (atom_enabled.empty()) atom_enabled.assign(query.atoms.size(), true);
  std::vector<bool> conjunct_enabled = request.conjunct_enabled;
  if (conjunct_enabled.empty()) {
    conjunct_enabled.assign(query.conjuncts.size(), true);
  }

  // Enabled atoms, in query order; positions index the search state.
  std::vector<size_t> atom_ids;
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    if (atom_enabled[a]) atom_ids.push_back(a);
  }
  if (atom_ids.empty()) {
    result.covered = false;
    result.reason = "no atoms to cover";
    return result;
  }

  AttrBindingAnalysis binding(query, conjunct_enabled);
  if (binding.unsatisfiable()) {
    // Contradictory equality predicates: the answer is empty on every
    // instance; an empty plan (fetch nothing) is trivially bounded.
    result.covered = true;
    result.unsatisfiable = true;
    result.plan.total_bound = 0;
    result.plan.total_access_bound = 0;
    return result;
  }

  // Per-atom needed column masks: every referenced attribute of the query
  // restricted to this atom (the partial optimizer needs cross-fragment
  // join attributes too; AttrsUsed covers them since join conjuncts are
  // part of the query).
  std::vector<SearchAtom> atoms(atom_ids.size());
  for (size_t p = 0; p < atom_ids.size(); ++p) {
    size_t a = atom_ids[p];
    atoms[p].table = query.atoms[a].table;
    if (atoms[p].table->schema().NumColumns() > 64) {
      result.covered = false;
      result.reason = "table " + atoms[p].table->name() +
                      " has more than 64 columns (checker limit)";
      return result;
    }
  }
  for (const AttrRef& attr : query.AttrsUsed()) {
    for (size_t p = 0; p < atom_ids.size(); ++p) {
      if (atom_ids[p] == attr.atom) {
        atoms[p].needed |= (1ull << attr.col);
      }
    }
  }

  // Resolve the applicable constraints per atom.
  for (size_t p = 0; p < atoms.size(); ++p) {
    const Schema& schema = atoms[p].table->schema();
    for (const AccessConstraint* c : schema_->ForTable(atoms[p].table->name())) {
      ResolvedConstraint rc;
      rc.constraint = c;
      auto x = c->ResolveX(schema);
      auto y = c->ResolveY(schema);
      if (!x.ok() || !y.ok()) continue;  // stale constraint; skip
      rc.x_cols = std::move(x).ValueOrDie();
      rc.y_cols = std::move(y).ValueOrDie();
      for (size_t col : rc.x_cols) rc.x_mask |= (1ull << col);
      for (size_t col : rc.y_cols) rc.y_mask |= (1ull << col);
      atoms[p].constraints.push_back(std::move(rc));
    }
  }

  // Position lookup: atom id -> enabled position.
  std::unordered_map<size_t, size_t> atom_pos;
  for (size_t p = 0; p < atom_ids.size(); ++p) atom_pos[atom_ids[p]] = p;

  // --- Availability helpers over a state (fetched masks per atom). ---
  auto class_materialized = [&](size_t global,
                                const std::vector<uint64_t>& masks) {
    for (size_t member : binding.MembersOf(global)) {
      AttrRef ref = query.AttrOfGlobal(member);
      auto it = atom_pos.find(ref.atom);
      if (it == atom_pos.end()) continue;
      if (masks[it->second] & (1ull << ref.col)) return true;
    }
    return false;
  };

  // Multiplier the step contributes per X attribute (0 = unavailable,
  // otherwise the IN-list factor or 1).
  auto key_factor = [&](size_t atom_id, size_t col,
                        const std::vector<uint64_t>& masks) -> uint64_t {
    size_t global = query.atom_offsets[atom_id] + col;
    const std::vector<Value>* consts = binding.ConstantsOf(global);
    if (consts != nullptr && consts->size() == 1) return 1;
    if (class_materialized(global, masks)) return 1;
    if (consts != nullptr && consts->size() > 1) {
      return static_cast<uint64_t>(consts->size());
    }
    return 0;  // unavailable
  };

  // --- Branch-and-bound DFS with memoization. ---
  struct Best {
    bool found = false;
    uint64_t cost = std::numeric_limits<uint64_t>::max();
    std::vector<StepChoice> steps;
  } best;
  std::unordered_map<std::vector<uint64_t>, uint64_t, MaskVecHash> visited;
  uint64_t nodes = 0;
  // Track the most-covered state for diagnostics.
  size_t best_covered_atoms = 0;

  auto goal = [&](const std::vector<uint64_t>& masks) {
    for (size_t p = 0; p < atoms.size(); ++p) {
      if (masks[p] == 0) return false;  // atom must be anchored by a fetch
      if (atoms[p].needed & ~masks[p]) return false;
    }
    return true;
  };

  std::vector<StepChoice> current;
  auto dfs = [&](auto&& self, std::vector<uint64_t>& masks, uint64_t bound,
                 uint64_t cost) -> void {
    if (nodes++ > options_.max_nodes) return;
    if (cost >= best.cost) return;
    auto [it, inserted] = visited.try_emplace(masks, cost);
    if (!inserted) {
      if (it->second <= cost) return;
      it->second = cost;
    }
    size_t covered = 0;
    for (size_t p = 0; p < atoms.size(); ++p) {
      if (masks[p] != 0 && !(atoms[p].needed & ~masks[p])) ++covered;
    }
    best_covered_atoms = std::max(best_covered_atoms, covered);
    if (goal(masks)) {
      best.found = true;
      best.cost = cost;
      best.steps = current;
      return;
    }

    // Enumerate applicable steps, cheapest projected bound first.
    struct Branch {
      StepChoice choice;
      uint64_t new_bound;
      uint64_t new_cost;
    };
    std::vector<Branch> branches;
    for (size_t p = 0; p < atoms.size(); ++p) {
      // One fetch per atom: joining two Y-projections of the same relation
      // on the key alone is not equivalent to projecting the relation (it
      // can fabricate attribute combinations that never co-occur in one
      // tuple), so a single constraint must cover all of the atom's needed
      // columns. This matches the plan shapes of paper Example 2.
      if (masks[p] != 0) continue;
      for (size_t k = 0; k < atoms[p].constraints.size(); ++k) {
        const ResolvedConstraint& rc = atoms[p].constraints[k];
        if (atoms[p].needed & ~(rc.x_mask | rc.y_mask)) continue;
        uint64_t factor = 1;
        bool applicable = true;
        for (size_t col : rc.x_cols) {
          uint64_t f = key_factor(atom_ids[p], col, masks);
          if (f == 0) {
            applicable = false;
            break;
          }
          factor = SatMul(factor, f);
        }
        if (!applicable) continue;
        uint64_t nb = SatMul(SatMul(bound, factor), rc.constraint->limit_n);
        uint64_t nc = SatAdd(cost, nb);
        if (nc >= best.cost) continue;
        branches.push_back({{p, k}, nb, nc});
      }
    }
    std::sort(branches.begin(), branches.end(),
              [](const Branch& a, const Branch& b) {
                return a.new_cost < b.new_cost;
              });
    for (const Branch& br : branches) {
      const ResolvedConstraint& rc =
          atoms[br.choice.atom_pos].constraints[br.choice.constraint_idx];
      uint64_t saved = masks[br.choice.atom_pos];
      masks[br.choice.atom_pos] |= rc.x_mask | rc.y_mask;
      current.push_back(br.choice);
      self(self, masks, br.new_bound, br.new_cost);
      current.pop_back();
      masks[br.choice.atom_pos] = saved;
    }
  };

  std::vector<uint64_t> init(atoms.size(), 0);
  dfs(dfs, init, 1, 0);
  result.nodes_explored = nodes;

  if (!best.found) {
    result.covered = false;
    result.reason =
        "not covered by the access schema: " +
        std::to_string(best_covered_atoms) + "/" +
        std::to_string(atoms.size()) +
        " atoms coverable; no fetch sequence binds every referenced "
        "attribute";
    return result;
  }

  // --- Replay the winning step sequence into a BoundedPlan. ---
  BoundedPlan plan;
  std::vector<uint64_t> masks(atoms.size(), 0);
  std::unordered_map<size_t, size_t> layout_pos;  // global idx -> T position
  std::vector<bool> conjunct_done(query.conjuncts.size(), false);
  uint64_t bound = 1;

  // Literal-only conjuncts (no column references) are evaluated up front.
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (conjunct_enabled[ci] && query.conjuncts[ci].attrs.empty()) {
      plan.initial_conjuncts.push_back(ci);
      conjunct_done[ci] = true;
    }
  }

  auto find_from_t = [&](size_t global) -> int64_t {
    for (size_t member : binding.MembersOf(global)) {
      auto it = layout_pos.find(member);
      if (it != layout_pos.end()) return static_cast<int64_t>(it->second);
    }
    return -1;
  };

  for (const StepChoice& choice : best.steps) {
    const SearchAtom& atom = atoms[choice.atom_pos];
    const ResolvedConstraint& rc = atom.constraints[choice.constraint_idx];
    size_t atom_id = atom_ids[choice.atom_pos];

    FetchStep step;
    step.atom = atom_id;
    step.constraint = *rc.constraint;
    step.x_cols = rc.x_cols;
    step.y_cols = rc.y_cols;

    uint64_t factor = 1;
    for (size_t col : rc.x_cols) {
      size_t global = query.atom_offsets[atom_id] + col;
      const std::vector<Value>* consts = binding.ConstantsOf(global);
      KeySource source;
      if (consts != nullptr && consts->size() == 1) {
        source.kind = KeySource::Kind::kConstant;
        source.constant = (*consts)[0];
      } else {
        int64_t pos = find_from_t(global);
        if (pos >= 0) {
          source.kind = KeySource::Kind::kFromT;
          source.t_column = static_cast<size_t>(pos);
        } else {
          source.kind = KeySource::Kind::kConstantList;
          source.list = *consts;
          factor = SatMul(factor, consts->size());
        }
      }
      step.key_sources.push_back(std::move(source));
    }

    // Columns this step adds to T (X first, then Y).
    auto add_col = [&](size_t col) {
      size_t global = query.atom_offsets[atom_id] + col;
      if (layout_pos.count(global)) return;
      layout_pos[global] = plan.layout.size();
      plan.layout.push_back(AttrRef{atom_id, col});
      step.added_columns.push_back(AttrRef{atom_id, col});
    };
    for (size_t col : rc.x_cols) add_col(col);
    for (size_t col : rc.y_cols) add_col(col);
    masks[choice.atom_pos] |= rc.x_mask | rc.y_mask;

    bound = SatMul(SatMul(bound, factor), rc.constraint->limit_n);
    step.step_bound = bound;
    plan.total_access_bound = SatAdd(plan.total_access_bound, bound);

    // Conjuncts that become evaluable after this step.
    for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
      if (conjunct_done[ci] || !conjunct_enabled[ci]) continue;
      const Conjunct& c = query.conjuncts[ci];
      bool evaluable = !c.attrs.empty();
      for (const AttrRef& attr : c.attrs) {
        if (!layout_pos.count(query.GlobalIndex(attr))) {
          evaluable = false;
          break;
        }
      }
      if (evaluable) {
        step.conjuncts_after.push_back(ci);
        conjunct_done[ci] = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }
  plan.total_bound = bound;

  result.covered = true;
  result.plan = std::move(plan);
  return result;
}

}  // namespace beas
