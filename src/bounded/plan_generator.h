#ifndef BEAS_BOUNDED_PLAN_GENERATOR_H_
#define BEAS_BOUNDED_PLAN_GENERATOR_H_

#include <string>
#include <vector>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_plan.h"
#include "common/result.h"

namespace beas {

/// \brief What to cover. The default (empty vectors) is the whole query;
/// the partial-plan optimizer restricts to an atom subset and to the
/// conjuncts the bounded fragment can enforce.
struct CoverageRequest {
  const BoundQuery* query = nullptr;
  std::vector<bool> atom_enabled;      ///< empty = all atoms
  std::vector<bool> conjunct_enabled;  ///< empty = all conjuncts
};

/// \brief Outcome of the bounded-plan search.
struct GenerationResult {
  bool covered = false;
  BoundedPlan plan;        ///< valid iff covered
  std::string reason;      ///< diagnosis when not covered
  uint64_t nodes_explored = 0;
  /// True when equality predicates are contradictory (query is empty on
  /// every instance); `covered` is true with an empty plan.
  bool unsatisfiable = false;
};

/// \brief Generates bounded query plans (paper §3, BE Plan Generator) and,
/// by deciding plan existence, implements the BE Checker's coverage test.
///
/// The search explores sequences of applicable fetch steps. State = the
/// set of columns fetched per atom. A constraint ψ = R(X → Y, N) on atom
/// `a` is applicable when every X-attribute is *available*: its equality
/// class holds constants, or some class member was fetched earlier (it can
/// be keyed from the intermediate relation T). Applying ψ fetches X ∪ Y
/// into `a`. Soundness requires ONE fetch per atom covering all of the
/// atom's referenced columns (joining two Y-projections of the same
/// relation on the key alone could fabricate attribute combinations that
/// never co-occur in one tuple). The query is covered iff an order exists
/// in which every atom is fetched through one constraint whose X is
/// available at its turn and whose X ∪ Y covers the atom's needs.
///
/// Bound deduction: the running bound on |T| starts at 1 and multiplies by
/// N per fetch (and by the IN-list size when a key is seeded from a
/// not-yet-materialized constant list). The deduced total access bound is
/// the sum of per-step bounds — exactly the arithmetic of paper Example 2
/// (2,000 + 2,000·12 + 2,000·12·500).
///
/// The search is exhaustive with branch-and-bound pruning and memoization,
/// minimizing the total access bound; `options.max_nodes` caps the
/// exploration (beyond it, the best plan found so far is returned).
class BoundedPlanGenerator {
 public:
  struct Options {
    uint64_t max_nodes = 200000;
  };

  explicit BoundedPlanGenerator(const AccessSchema* schema)
      : schema_(schema) {}
  BoundedPlanGenerator(const AccessSchema* schema, Options options)
      : schema_(schema), options_(options) {}

  /// Searches for the minimum-bound bounded plan for the request.
  Result<GenerationResult> Generate(const CoverageRequest& request) const;

  /// Convenience for whole-query coverage.
  Result<GenerationResult> Generate(const BoundQuery& query) const;

 private:
  const AccessSchema* schema_;
  Options options_{};
};

}  // namespace beas

#endif  // BEAS_BOUNDED_PLAN_GENERATOR_H_
