#include "bounded/plan_optimizer.h"

#include <algorithm>

#include "common/string_util.h"
#include "plan/planner.h"

namespace beas {

namespace {

int Popcount(uint32_t mask) { return __builtin_popcount(mask); }

}  // namespace

Result<PartialPlanResult> BePlanOptimizer::ExecutePartiallyBounded(
    const BoundQuery& query, const EngineProfile& profile) const {
  BEAS_ASSIGN_OR_RETURN(PartialPlanChoice choice, ChoosePlan(query));
  return ExecuteChoice(query, choice, profile);
}

Result<PartialPlanChoice> BePlanOptimizer::ChoosePlan(
    const BoundQuery& query) const {
  size_t n = query.atoms.size();
  if (n > 16) {
    return Status::NotImplemented(
        "partial-plan search supports at most 16 atoms");
  }

  // Candidate subsets in descending size; among equal sizes, pick the
  // fragment with the smallest deduced bound.
  std::vector<uint32_t> subsets;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) subsets.push_back(mask);
  std::sort(subsets.begin(), subsets.end(), [](uint32_t a, uint32_t b) {
    int pa = Popcount(a);
    int pb = Popcount(b);
    return pa != pb ? pa > pb : a < b;
  });

  PartialPlanChoice choice;
  GenerationResult best_gen;
  int best_size = -1;
  for (uint32_t mask : subsets) {
    int size = Popcount(mask);
    if (choice.found && size < best_size) break;  // no larger subset left
    CoverageRequest request;
    request.query = &query;
    request.atom_enabled.assign(n, false);
    for (size_t a = 0; a < n; ++a) {
      if (mask & (1u << a)) request.atom_enabled[a] = true;
    }
    // A conjunct is enforceable inside the fragment iff all its attributes
    // are inside; literal-only conjuncts are enforceable anywhere.
    request.conjunct_enabled.assign(query.conjuncts.size(), false);
    for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
      bool inside = true;
      for (const AttrRef& attr : query.conjuncts[ci].attrs) {
        if (!request.atom_enabled[attr.atom]) inside = false;
      }
      request.conjunct_enabled[ci] = inside;
    }
    auto gen = generator_.Generate(request);
    if (!gen.ok()) continue;
    if (!gen->covered) continue;
    if (!choice.found || gen->plan.total_access_bound <
                             best_gen.plan.total_access_bound) {
      choice.found = true;
      choice.atom_enabled = request.atom_enabled;
      choice.conjunct_enabled = request.conjunct_enabled;
      best_gen = std::move(*gen);
      best_size = size;
    }
  }
  if (choice.found) choice.plan = std::move(best_gen.plan);
  return choice;
}

Result<PartialPlanResult> BePlanOptimizer::ExecuteChoice(
    const BoundQuery& query, const PartialPlanChoice& choice,
    const EngineProfile& profile,
    const BoundedExecOptions& exec_options) const {
  PartialPlanResult out;
  size_t n = query.atoms.size();

  if (!choice.found) {
    // Fully conventional execution.
    Planner planner(profile);
    BEAS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                          planner.Plan(query));
    BEAS_ASSIGN_OR_RETURN(
        out.result,
        db_->ExecutePlan(*plan, query, profile.name + " (no bounded part)"));
    out.any_bounded = false;
    out.description = "no sub-query is covered; fully conventional plan";
    return out;
  }

  // Execute the bounded fragment.
  BoundedExecutor executor(catalog_);
  BEAS_ASSIGN_OR_RETURN(
      BoundedExecutor::Fragment fragment,
      executor.ExecuteFragment(query, choice.plan, exec_options));
  out.fragment_access_bound = choice.plan.total_access_bound;
  out.fragment_tuples_fetched = fragment.stats.tuples_fetched;
  bool all_atoms = true;
  for (size_t a = 0; a < n; ++a) {
    if (choice.atom_enabled[a]) {
      out.covered_atoms.push_back(a);
    } else {
      all_atoms = false;
    }
  }

  if (all_atoms) {
    // The whole query was covered after all: finish with the tail only.
    BEAS_ASSIGN_OR_RETURN(out.result,
                          executor.Execute(query, choice.plan, exec_options));
    out.any_bounded = true;
    out.description = "entire query covered; fully bounded plan";
    return out;
  }

  // Materialize the fragment as a Values seed (bag semantics: expand rows
  // by weight so conventional executors see correct multiplicities).
  auto seed_rows = std::make_shared<std::vector<Row>>();
  for (size_t r = 0; r < fragment.rows.size(); ++r) {
    for (uint64_t w = 0; w < fragment.weights[r]; ++w) {
      seed_rows->push_back(fragment.rows[r]);
    }
  }
  auto seed = std::make_unique<PlanNode>();
  seed->type = PlanNodeType::kValues;
  seed->rows = seed_rows;
  seed->values_arity = fragment.layout.size();

  // Conjuncts the fragment enforced (everything its generator enabled and
  // scheduled; by construction that is: literal-only + fully-inside ones).
  std::vector<bool> applied(query.conjuncts.size(), false);
  for (size_t ci : choice.plan.initial_conjuncts) applied[ci] = true;
  for (const FetchStep& step : choice.plan.steps) {
    for (size_t ci : step.conjuncts_after) applied[ci] = true;
  }
  std::vector<bool> atom_in_seed(n, false);
  for (size_t a : out.covered_atoms) atom_in_seed[a] = true;

  Planner planner(profile);
  BEAS_ASSIGN_OR_RETURN(
      std::unique_ptr<PlanNode> plan,
      planner.PlanWithSeed(query, std::move(seed), fragment.layout,
                           applied, atom_in_seed));
  BEAS_ASSIGN_OR_RETURN(
      out.result,
      db_->ExecutePlan(*plan, query, "BEAS (partially bounded, tail: " +
                                         profile.name + ")"));
  out.any_bounded = true;
  out.result.tuples_accessed += fragment.stats.tuples_fetched;
  // Surface the fetch chain in the breakdown.
  out.result.stats.children.insert(out.result.stats.children.begin(),
                                   fragment.stats.root);

  std::string atom_names;
  for (size_t a : out.covered_atoms) {
    if (!atom_names.empty()) atom_names += ", ";
    atom_names += query.atoms[a].alias;
  }
  out.description = StringPrintf(
      "bounded fragment over {%s} (deduced bound %s, fetched %s tuples); "
      "remaining atoms joined conventionally",
      atom_names.c_str(), WithCommas(out.fragment_access_bound).c_str(),
      WithCommas(out.fragment_tuples_fetched).c_str());
  return out;
}

}  // namespace beas
