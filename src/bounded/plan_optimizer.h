#ifndef BEAS_BOUNDED_PLAN_OPTIMIZER_H_
#define BEAS_BOUNDED_PLAN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_executor.h"
#include "bounded/plan_generator.h"
#include "engine/database.h"

namespace beas {

/// \brief Result of (partially) bounded execution of a non-covered query.
struct PartialPlanResult {
  /// True if some non-empty atom subset was evaluated via fetches.
  bool any_bounded = false;
  std::vector<size_t> covered_atoms;
  uint64_t fragment_access_bound = 0;   ///< deduced bound of the fragment
  uint64_t fragment_tuples_fetched = 0; ///< actual fetches of the fragment
  QueryResult result;
  std::string description;  ///< what was bounded, what ran conventionally
};

/// \brief The BE Plan Optimizer (paper §3): when a query is not covered by
/// the access schema, it "identifies sub-queries of Q that are boundedly
/// evaluable under A and speeds up the evaluation of Q by capitalizing on
/// the indices of A".
///
/// Strategy: find the largest atom subset whose induced sub-query
/// (conjuncts fully inside the subset) is covered; evaluate that fragment
/// through fetch steps into a materialized seed relation; then join the
/// remaining atoms with the conventional planner and apply the pending
/// conjuncts and the relational tail.
class BePlanOptimizer {
 public:
  BePlanOptimizer(Database* db, const AsCatalog* catalog)
      : db_(db), catalog_(catalog), generator_(&catalog->schema()) {}

  /// Executes `query` with the best partially bounded plan (falling back
  /// to fully conventional execution when no fragment is coverable).
  Result<PartialPlanResult> ExecutePartiallyBounded(
      const BoundQuery& query,
      const EngineProfile& profile = EngineProfile::PostgresLike()) const;

 private:
  Database* db_;
  const AsCatalog* catalog_;
  BoundedPlanGenerator generator_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_PLAN_OPTIMIZER_H_
