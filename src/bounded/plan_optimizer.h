#ifndef BEAS_BOUNDED_PLAN_OPTIMIZER_H_
#define BEAS_BOUNDED_PLAN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_executor.h"
#include "bounded/plan_generator.h"
#include "engine/database.h"

namespace beas {

/// \brief Result of (partially) bounded execution of a non-covered query.
struct PartialPlanResult {
  /// True if some non-empty atom subset was evaluated via fetches.
  bool any_bounded = false;
  std::vector<size_t> covered_atoms;
  uint64_t fragment_access_bound = 0;   ///< deduced bound of the fragment
  uint64_t fragment_tuples_fetched = 0; ///< actual fetches of the fragment
  QueryResult result;
  std::string description;  ///< what was bounded, what ran conventionally
};

/// \brief The outcome of the partial-plan *search*, separated from
/// execution so the service layer can cache it per query template: the
/// atom subset chosen, the conjuncts its fragment enforces, and the
/// fragment's bounded-plan skeleton. Re-used on a new template instance by
/// rebinding the skeleton's constants (RebindPlanConstants) and calling
/// ExecuteChoice — skipping the exponential subset search entirely.
struct PartialPlanChoice {
  /// True if some non-empty atom subset's induced sub-query is covered.
  bool found = false;
  std::vector<bool> atom_enabled;      ///< fragment atoms (size = #atoms)
  std::vector<bool> conjunct_enabled;  ///< conjuncts the fragment enforces
  BoundedPlan plan;                    ///< fragment plan; valid iff found
};

/// \brief The BE Plan Optimizer (paper §3): when a query is not covered by
/// the access schema, it "identifies sub-queries of Q that are boundedly
/// evaluable under A and speeds up the evaluation of Q by capitalizing on
/// the indices of A".
///
/// Strategy: find the largest atom subset whose induced sub-query
/// (conjuncts fully inside the subset) is covered; evaluate that fragment
/// through fetch steps into a materialized seed relation; then join the
/// remaining atoms with the conventional planner and apply the pending
/// conjuncts and the relational tail.
class BePlanOptimizer {
 public:
  BePlanOptimizer(Database* db, const AsCatalog* catalog)
      : db_(db), catalog_(catalog), generator_(&catalog->schema()) {}

  /// Executes `query` with the best partially bounded plan (falling back
  /// to fully conventional execution when no fragment is coverable).
  /// Equivalent to ChoosePlan + ExecuteChoice.
  Result<PartialPlanResult> ExecutePartiallyBounded(
      const BoundQuery& query,
      const EngineProfile& profile = EngineProfile::PostgresLike()) const;

  /// The search half: picks the largest / cheapest covered fragment.
  Result<PartialPlanChoice> ChoosePlan(const BoundQuery& query) const;

  /// The execution half: runs a previously chosen (possibly cached and
  /// constant-rebound) fragment plan, then the conventional tail.
  /// `exec_options` reaches the bounded fragment executor (the service's
  /// cached fast path disables per-step telemetry with it).
  Result<PartialPlanResult> ExecuteChoice(
      const BoundQuery& query, const PartialPlanChoice& choice,
      const EngineProfile& profile = EngineProfile::PostgresLike(),
      const BoundedExecOptions& exec_options = {}) const;

 private:
  Database* db_;
  const AsCatalog* catalog_;
  BoundedPlanGenerator generator_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_PLAN_OPTIMIZER_H_
