#include "bounded/step_program.h"

namespace beas {

Result<CompiledPlan> CompileBoundedPlan(const BoundQuery& query,
                                        const BoundedPlan& plan,
                                        const AsCatalog& catalog) {
  CompiledPlan compiled;
  compiled.steps.reserve(plan.steps.size());

  // slot_of_global mirrors the executor's growing layout mapping.
  std::vector<int64_t> slot_of_global(query.total_columns, -1);
  size_t width = 0;

  for (const FetchStep& step : plan.steps) {
    StepProgram program;
    program.index = catalog.IndexFor(step.constraint.name);
    if (program.index == nullptr) {
      return Status::Internal("no index registered for constraint '" +
                              step.constraint.name + "'");
    }
    program.dict = program.index->dict();
    program.index_shards = program.index->num_shards();
    if (step.atom >= query.atoms.size()) {
      return Status::Internal("fetch step references an unknown atom");
    }
    const Schema& atom_schema = query.atoms[step.atom].table->schema();

    // X-position per table column (X wins over Y, as in the scalar path).
    std::unordered_map<size_t, size_t> x_pos;
    for (size_t i = 0; i < step.x_cols.size(); ++i) x_pos[step.x_cols[i]] = i;
    std::unordered_map<size_t, size_t> y_pos;
    for (size_t i = 0; i < step.y_cols.size(); ++i) {
      if (!x_pos.count(step.y_cols[i])) y_pos[step.y_cols[i]] = i;
    }
    program.out_sources.reserve(step.added_columns.size());
    for (const AttrRef& attr : step.added_columns) {
      StepProgram::OutSource src;
      auto xp = x_pos.find(attr.col);
      if (xp != x_pos.end()) {
        src.from_key = true;
        src.pos = xp->second;
      } else {
        auto yp = y_pos.find(attr.col);
        if (yp == y_pos.end()) {
          return Status::Internal(
              "fetch step adds a column that is neither in X nor Y");
        }
        src.from_key = false;
        src.pos = yp->second;
      }
      // STRING columns of a dictionary-backed table gather as code
      // columns: the executor moves uint32 codes instead of Values.
      if (program.dict != nullptr && attr.col < atom_schema.NumColumns() &&
          atom_schema.ColumnAt(attr.col).type == TypeId::kString) {
        src.out_dict = program.dict;
      }
      program.out_sources.push_back(src);
    }

    // Extend the layout, then compile the conjuncts that become evaluable.
    for (const AttrRef& attr : step.added_columns) {
      size_t global = query.GlobalIndex(attr);
      if (global >= slot_of_global.size()) {
        return Status::Internal("fetch step column outside the query layout");
      }
      slot_of_global[global] = static_cast<int64_t>(width++);
    }
    program.width_after = width;
    for (size_t g = 0; g < slot_of_global.size(); ++g) {
      if (slot_of_global[g] >= 0) {
        program.layout_pairs.emplace_back(
            g, static_cast<size_t>(slot_of_global[g]));
      }
    }

    program.conjunct_programs.reserve(step.conjuncts_after.size());
    for (size_t ci : step.conjuncts_after) {
      if (ci >= query.conjuncts.size()) {
        return Status::Internal("fetch step references an unknown conjunct");
      }
      program.conjunct_programs.push_back(
          ExprProgram::Compile(*query.conjuncts[ci].expr, slot_of_global));
    }

    compiled.steps.push_back(std::move(program));
  }
  return compiled;
}

}  // namespace beas
