#ifndef BEAS_BOUNDED_STEP_PROGRAM_H_
#define BEAS_BOUNDED_STEP_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asx/access_schema.h"
#include "binder/bound_query.h"
#include "bounded/bounded_plan.h"
#include "common/result.h"
#include "expr/expr_program.h"

namespace beas {

/// \brief The per-template compiled artifacts of one fetch step: everything
/// `ExecuteFragment` used to re-derive per execution — resolved index,
/// X/Y output routing, flat layout arrays, and the post-step conjuncts
/// compiled to slot-addressed predicate programs.
///
/// Only *structure* lives here; per-instance constants (fetch-key values,
/// predicate literals) are read at execution time from the rebound plan
/// and the instance's conjunct expressions (ExprProgram::BindLiterals),
/// so one compiled program serves every instance of the template.
struct StepProgram {
  /// Resolved once; validity is guaranteed by the plan-cache invalidation
  /// bridge (constraint registration/unregistration/adjustment evicts the
  /// owning entry) plus the service's shared-lock execution contract.
  const AcIndex* index = nullptr;

  /// The probed table's string dictionary (nullptr when the table has no
  /// STRING columns or interning is off). The executor canonicalizes
  /// probe-key string constants into it once per step, so LookupBatch
  /// hashes string key components in O(1) — zero byte hashing per probe.
  const StringDict* dict = nullptr;

  /// Shard routing: the probed index's sub-index count, resolved at
  /// compile time. >1 switches the executor's step loop onto the
  /// shard-parallel paths (partitioned LookupBatch, chunked gather); 1
  /// keeps the exact pre-sharding execution.
  size_t index_shards = 1;

  /// Where each added T column comes from: the probe key (X wins when a
  /// column is in both X and Y) or the fetched Y-projection.
  struct OutSource {
    bool from_key = false;
    size_t pos = 0;  ///< key position or Y position
    /// Non-null for STRING columns of a dictionary-backed table: the
    /// gather emits a dictionary-encoded code column (4-byte codes)
    /// instead of a Value column.
    const StringDict* out_dict = nullptr;
  };
  std::vector<OutSource> out_sources;  ///< parallel to step.added_columns

  /// Compiled post-step conjuncts, parallel to step.conjuncts_after;
  /// nullopt = not compilable, executor falls back to the interpreted
  /// tree walk for that conjunct.
  std::vector<std::optional<ExprProgram>> conjunct_programs;

  /// Global column index -> T slot, as of *after* this step (flat pairs;
  /// the interpreted fallback builds its RebindColumns map from this).
  std::vector<std::pair<size_t, size_t>> layout_pairs;

  size_t width_after = 0;  ///< T arity after this step
};

/// \brief A bounded plan compiled for vectorized execution: one
/// StepProgram per fetch step. Cached per template in the service plan
/// cache (next to the plan skeleton) and shared across instances; also
/// built on the fly for uncached executions.
struct CompiledPlan {
  std::vector<StepProgram> steps;
};

/// Compiles `plan` (any instance of the template; only structure is read)
/// for `query` against the registered indices. Errors when an index is
/// missing or the plan references columns outside the query's layout.
Result<CompiledPlan> CompileBoundedPlan(const BoundQuery& query,
                                        const BoundedPlan& plan,
                                        const AsCatalog& catalog);

}  // namespace beas

#endif  // BEAS_BOUNDED_STEP_PROGRAM_H_
