#include "bounded/tuple_batch.h"

#include <limits>

#include "common/hash.h"

namespace beas {

namespace {

constexpr size_t kEmptySlot = std::numeric_limits<size_t>::max();

bool RowsEqual(const std::vector<BatchColumn>& cols, size_t a, size_t b) {
  for (const BatchColumn& col : cols) {
    if (!col.RowsEqual(a, b)) return false;
  }
  return true;
}

}  // namespace

void TupleBatch::ComputeHashes() {
  hashes_.assign(num_rows_, kHashSeed);
  for (const BatchColumn& col : columns_) {
    if (col.encoded()) {
      const StringDict* dict = col.dict;
      for (size_t r = 0; r < num_rows_; ++r) {
        uint32_t code = col.codes[r];
        HashCombine(&hashes_[r],
                    code == kNullCode ? kNullValueHash : dict->hash(code));
      }
    } else {
      for (size_t r = 0; r < num_rows_; ++r) {
        HashCombine(&hashes_[r], col.values[r].Hash());
      }
    }
  }
}

Row TupleBatch::GetRow(size_t r) const {
  Row row;
  row.reserve(columns_.size());
  for (const BatchColumn& col : columns_) row.push_back(col.At(r));
  return row;
}

std::vector<Row> TupleBatch::ToRows() const {
  std::vector<Row> rows(num_rows_);
  for (Row& row : rows) row.reserve(columns_.size());
  for (const BatchColumn& col : columns_) {
    for (size_t r = 0; r < num_rows_; ++r) rows[r].push_back(col.At(r));
  }
  return rows;
}

void TupleBatch::Filter(const std::vector<char>& keep) {
  bool with_hashes = hashes_valid();
  size_t out = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (!keep[r]) continue;
    if (out != r) {
      for (BatchColumn& col : columns_) {
        if (col.encoded()) {
          col.codes[out] = col.codes[r];
        } else {
          col.values[out] = std::move(col.values[r]);
        }
      }
      weights_[out] = weights_[r];
      if (with_hashes) hashes_[out] = hashes_[r];
    }
    ++out;
  }
  for (BatchColumn& col : columns_) {
    if (col.encoded()) {
      col.codes.resize(out);
    } else {
      col.values.resize(out);
    }
  }
  weights_.resize(out);
  if (with_hashes) {
    hashes_.resize(out);
  } else {
    hashes_.clear();
  }
  num_rows_ = out;
}

void TupleBatch::DedupMergeWeights() {
  if (num_rows_ == 0) return;
  if (!hashes_valid()) ComputeHashes();

  // Open addressing over row indices: slot -> first row index with that
  // content. first_of[r] = index of the first row equal to r.
  size_t capacity = HashTableCapacity(num_rows_ * 2);
  size_t mask = capacity - 1;
  std::vector<size_t> slots(capacity, kEmptySlot);
  std::vector<size_t> group_of(num_rows_);     // row -> dense group id
  std::vector<size_t> first_rows;              // group id -> first row
  std::vector<uint64_t> group_weights;         // merged weights per group
  first_rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t slot = static_cast<size_t>(hashes_[r]) & mask;
    for (;;) {
      size_t other = slots[slot];
      if (other == kEmptySlot) {
        slots[slot] = r;
        group_of[r] = first_rows.size();
        first_rows.push_back(r);
        group_weights.push_back(weights_[r]);
        break;
      }
      if (hashes_[other] == hashes_[r] && RowsEqual(columns_, other, r)) {
        size_t g = group_of[other];
        group_of[r] = g;
        group_weights[g] += weights_[r];
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
  if (first_rows.size() == num_rows_) {
    return;  // already distinct; weights unchanged
  }

  // Compact to first-occurrence order.
  for (BatchColumn& col : columns_) {
    if (col.encoded()) {
      for (size_t g = 0; g < first_rows.size(); ++g) {
        if (first_rows[g] != g) col.codes[g] = col.codes[first_rows[g]];
      }
      col.codes.resize(first_rows.size());
    } else {
      for (size_t g = 0; g < first_rows.size(); ++g) {
        if (first_rows[g] != g) {
          col.values[g] = std::move(col.values[first_rows[g]]);
        }
      }
      col.values.resize(first_rows.size());
    }
  }
  std::vector<uint64_t> new_hashes(first_rows.size());
  for (size_t g = 0; g < first_rows.size(); ++g) {
    new_hashes[g] = hashes_[first_rows[g]];
  }
  hashes_ = std::move(new_hashes);
  weights_ = std::move(group_weights);
  num_rows_ = first_rows.size();
}

}  // namespace beas
