#ifndef BEAS_BOUNDED_TUPLE_BATCH_H_
#define BEAS_BOUNDED_TUPLE_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/string_dict.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {

/// \brief Columnar representation of the intermediate relation T of a
/// bounded fetch chain: one column per T attribute plus a parallel weight
/// vector (bag multiplicities) and, on demand, precomputed 64-bit row
/// hashes.
///
/// Columns are BatchColumns and come in two representations: generic
/// (Value vectors) and dictionary-encoded (uint32 code vectors over a
/// table's StringDict). The vectorized executor keeps string columns
/// encoded end to end — gathers move 4-byte codes, the incremental row
/// hashes fold precomputed dictionary hashes, dedup compares codes — and
/// materializes dictionary-backed Values only at the fragment boundary
/// (ToRows/GetRow), which itself copies no bytes. Both representations
/// hash and compare identically, so mixed batches stay bit-compatible
/// with the row-at-a-time reference path.
class TupleBatch {
 public:
  /// Seed of the per-row hash fold — same as ValueVecHash, so batch hashes
  /// agree with the row-at-a-time containers.
  static constexpr uint64_t kHashSeed = kValueVecHashSeed;

  /// NULL sentinel of encoded columns.
  static constexpr uint32_t kNullCode = StringDict::kNullCode;

  TupleBatch() = default;

  /// A batch of `num_columns` empty generic columns (0 rows).
  explicit TupleBatch(size_t num_columns) : columns_(num_columns) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  BatchColumn& column(size_t c) { return columns_[c]; }
  const BatchColumn& column(size_t c) const { return columns_[c]; }
  std::vector<BatchColumn>& columns() { return columns_; }
  const std::vector<BatchColumn>& columns() const { return columns_; }

  std::vector<uint64_t>& weights() { return weights_; }
  const std::vector<uint64_t>& weights() const { return weights_; }

  const std::vector<uint64_t>& hashes() const { return hashes_; }
  std::vector<uint64_t>& mutable_hashes() { return hashes_; }

  /// True when every row has a precomputed hash (set by ComputeHashes or
  /// threaded incrementally through mutable_hashes during a gather).
  bool hashes_valid() const { return hashes_.size() == num_rows_; }

  /// Sets the logical row count. With zero columns the batch still carries
  /// `n` (empty) rows — the fetch chain's T starts as one empty row of
  /// weight 1.
  void set_num_rows(size_t n) { num_rows_ = n; }

  /// Appends an empty generic column; caller fills it to `num_rows`
  /// entries.
  void AddColumn() { columns_.emplace_back(); }

  /// Recomputes the per-row hashes over all columns, in column order —
  /// identical to ValueVecHash over the materialized row, so hash-based
  /// dedup groups exactly the rows ValueVecEq would.
  void ComputeHashes();

  /// Materializes row `r` (encoded cells become dictionary-backed Values).
  Row GetRow(size_t r) const;

  /// Materializes every row (Fragment interface / relational tail).
  std::vector<Row> ToRows() const;

  /// Drops every row whose `keep` flag is 0, preserving order; weights —
  /// and hashes, when valid — follow.
  void Filter(const std::vector<char>& keep);

  /// Deduplicates rows (Value equality, NULL == NULL), merging weights of
  /// equal rows and keeping first-occurrence order — the bag-semantics
  /// contract of BEAS's intermediate relations. Uses the precomputed
  /// hashes when valid, computing them otherwise.
  void DedupMergeWeights();

 private:
  size_t num_rows_ = 0;
  std::vector<BatchColumn> columns_;
  std::vector<uint64_t> weights_;
  std::vector<uint64_t> hashes_;
};

}  // namespace beas

#endif  // BEAS_BOUNDED_TUPLE_BATCH_H_
