#include "catalog/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace beas {

const TableStats& TableInfo::stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (!stats_valid_.load(std::memory_order_acquire) ||
      stats_slots_ != heap_.NumSlots()) {
    stats_ = ComputeTableStats(heap_);
    stats_valid_.store(true, std::memory_order_release);
    stats_slots_ = heap_.NumSlots();
  }
  return stats_;
}

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Result<TableInfo*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = Key(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto info = std::make_unique<TableInfo>(name, std::move(schema));
  TableInfo* ptr = info.get();
  tables_.emplace(std::move(key), std::move(info));
  return ptr;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, info] : tables_) names.push_back(info->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace beas
