#ifndef BEAS_CATALOG_CATALOG_H_
#define BEAS_CATALOG_CATALOG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/statistics.h"
#include "common/result.h"
#include "storage/table_heap.h"

namespace beas {

/// \brief A registered table: name, storage, and lazily computed stats.
class TableInfo {
 public:
  TableInfo(std::string name, Schema schema)
      : name_(std::move(name)), heap_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return heap_.schema(); }
  TableHeap* heap() { return &heap_; }
  const TableHeap& heap() const { return heap_; }

  /// Returns cached stats, recomputing if the heap changed since last time.
  ///
  /// Thread-safety: safe to call from concurrent *readers* (the lazy
  /// recomputation is serialized by an internal mutex); must not race with
  /// writes to the heap itself — the engine's single-writer contract (see
  /// Database) keeps writers exclusive.
  const TableStats& stats();

  /// Drops the stats cache (called on writes; atomic because writers to
  /// different shards of the heap may invalidate concurrently).
  void InvalidateStats() {
    stats_valid_.store(false, std::memory_order_release);
  }

 private:
  std::string name_;
  TableHeap heap_;
  std::mutex stats_mutex_;  ///< serializes lazy recomputation among readers
  TableStats stats_;
  std::atomic<bool> stats_valid_{false};
  size_t stats_slots_ = 0;
};

/// \brief Name → table registry; owns all table storage.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; errors if the name is taken.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table by (case-insensitive) name.
  Result<TableInfo*> GetTable(const std::string& name) const;

  /// Removes a table and its storage.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;

  /// Names of all registered tables (sorted).
  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(const std::string& name);
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace beas

#endif  // BEAS_CATALOG_CATALOG_H_
