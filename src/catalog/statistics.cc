#include "catalog/statistics.h"

#include <unordered_set>

namespace beas {

size_t TableStats::DistinctOf(const std::string& name) const {
  for (const auto& c : columns) {
    if (c.name == name) return c.distinct_count;
  }
  return 0;
}

TableStats ComputeTableStats(const TableHeap& heap) {
  TableStats stats;
  stats.row_count = heap.NumRows();
  const Schema& schema = heap.schema();
  stats.columns.resize(schema.NumColumns());

  struct ValueHashFn {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEqFn {
    bool operator()(const Value& a, const Value& b) const { return a == b; }
  };

  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    ColumnStats& cs = stats.columns[c];
    cs.name = schema.ColumnAt(c).name;
    std::unordered_set<Value, ValueHashFn, ValueEqFn> distinct;
    bool first = true;
    for (auto it = heap.Begin(); it.Valid(); it.Next()) {
      const Value& v = it.row()[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      distinct.insert(v);
      if (first) {
        cs.min = v;
        cs.max = v;
        first = false;
      } else {
        if (v.Compare(cs.min) < 0) cs.min = v;
        if (v.Compare(cs.max) > 0) cs.max = v;
      }
    }
    cs.distinct_count = distinct.size();
  }
  return stats;
}

}  // namespace beas
