#ifndef BEAS_CATALOG_STATISTICS_H_
#define BEAS_CATALOG_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table_heap.h"

namespace beas {

/// \brief Per-column statistics computed from a table snapshot.
struct ColumnStats {
  std::string name;
  size_t distinct_count = 0;
  size_t null_count = 0;
  Value min;  ///< NULL when the column is all-NULL or table empty.
  Value max;
};

/// \brief Table-level statistics used by the conventional planner (join
/// ordering) and the AS Catalog metadata module (paper §3: "statistics
/// including the index size in a system table as catalog").
struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;

  /// Distinct count of column `name`, or 0 if unknown.
  size_t DistinctOf(const std::string& name) const;
};

/// \brief Computes full statistics with one pass per column.
TableStats ComputeTableStats(const TableHeap& heap);

}  // namespace beas

#endif  // BEAS_CATALOG_STATISTICS_H_
