#include "common/crc32.h"

namespace beas {

namespace {

/// CRC-32C polynomial (reflected): 0x82F63B78.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  static const Crc32cTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace beas
