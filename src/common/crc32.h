#ifndef BEAS_COMMON_CRC32_H_
#define BEAS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace beas {

/// \brief CRC-32C (Castagnoli) over a byte range. The durability layer
/// stamps every WAL record and segment payload with it so recovery can
/// tell a torn or bit-rotted tail from valid data. Table-driven, no
/// hardware dependence — recovery must compute the same checksum on any
/// machine the data directory migrates to.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace beas

#endif  // BEAS_COMMON_CRC32_H_
