#include "common/env.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/file_util.h"

namespace beas {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Env::Default(): delegates to the file_util primitives, so the posix
/// behavior of the durability protocol is byte-identical to the
/// pre-seam code paths.
class PosixWritableFile : public WritableFile {
 public:
  Status Append(const void* data, size_t len) override {
    return file_.Append(data, len);
  }
  Status Sync() override { return file_.Sync(); }
  Status Truncate(uint64_t size) override { return file_.Truncate(size); }
  uint64_t size() const override { return file_.size(); }

  AppendFile file_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  const char* data() const override { return file_.data(); }
  size_t size() const override { return file_.size(); }

  MmapFile file_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    auto file = std::make_unique<PosixWritableFile>();
    BEAS_RETURN_NOT_OK(file->file_.Open(path));
    return std::unique_ptr<WritableFile>(std::move(file));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    auto file = std::make_unique<PosixRandomAccessFile>();
    BEAS_RETURN_NOT_OK(file->file_.Open(path));
    return std::unique_ptr<RandomAccessFile>(std::move(file));
  }

  bool FileExists(const std::string& path) override {
    return PathExists(path);
  }

  bool IsDirectory(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return ::beas::ListDir(path);
  }

  Status CreateDir(const std::string& path) override {
    return EnsureDir(path);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status RemoveDir(const std::string& path) override {
    if (::rmdir(path.c_str()) != 0) return Errno("rmdir", path);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    return ::beas::SyncDir(path);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status Env::SyncParentDir(const std::string& path) {
  size_t end = path.find_last_not_of('/');
  if (end == std::string::npos) return SyncDir("/");
  size_t slash = path.find_last_of('/', end);
  if (slash == std::string::npos) return SyncDir(".");
  return SyncDir(slash == 0 ? "/" : path.substr(0, slash));
}

Status Env::WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  {
    BEAS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                          NewWritableFile(tmp));
    BEAS_RETURN_NOT_OK(f->Truncate(0));
    BEAS_RETURN_NOT_OK(f->Append(data.data(), data.size()));
    BEAS_RETURN_NOT_OK(f->Sync());
  }
  BEAS_RETURN_NOT_OK(RenameFile(tmp, path));
  return SyncParentDir(path);
}

void Env::RemoveAll(const std::string& path) {
  if (IsDirectory(path)) {
    Result<std::vector<std::string>> names = ListDir(path);
    if (names.ok()) {
      for (const std::string& name : *names) RemoveAll(path + "/" + name);
    }
    (void)RemoveDir(path);
  } else if (FileExists(path)) {
    (void)RemoveFile(path);
  }
}

}  // namespace beas
