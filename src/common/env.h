#ifndef BEAS_COMMON_ENV_H_
#define BEAS_COMMON_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace beas {

/// \brief An append-only file handle (the WAL/segment write surface).
///
/// Same contract as file_util's AppendFile: Append puts bytes where a
/// process kill cannot lose them (kernel page cache for the posix
/// implementation), Sync marks the machine-crash durability boundary, and
/// Truncate repositions the append offset (WAL reset / torn-tail repair).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `len` bytes; loops over partial writes.
  virtual Status Append(const void* data, size_t len) = 0;

  /// Everything appended so far is durable when this returns OK.
  virtual Status Sync() = 0;

  /// Truncates to `size` bytes and repositions the append offset there.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current file size (== append offset).
  virtual uint64_t size() const = 0;
};

/// \brief A whole-file read view (the WAL/segment read surface).
///
/// The durability read paths validate CRC'd framing against the view and
/// parse payloads in place, so the view is the full file contents — the
/// posix implementation backs it with a read-only mmap (no copy, lazy
/// paging), a fault-injecting one with an in-memory snapshot.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual const char* data() const = 0;
  virtual size_t size() const = 0;
};

/// \brief The I/O environment seam (RocksDB-style).
///
/// Every byte the durability subsystem reads or writes — WAL records,
/// checkpoint segments, manifests, directory fsyncs — flows through an
/// Env, so a test environment can model real disk behavior (torn sector
/// writes at power cut, dropped unsynced data, bit rot, short reads)
/// without touching a device. Env::Default() is the posix filesystem and
/// is used whenever DurabilityOptions does not inject one.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if needed) `path` for appending; positions at the
  /// current end of file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for reading as a whole-file view. Errors if absent.
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// True if `path` exists (any file type).
  virtual bool FileExists(const std::string& path) = 0;

  virtual bool IsDirectory(const std::string& path) = 0;

  /// Names of entries in `path` (not "."/".."), unsorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// Creates `path` (one level); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Atomically renames `from` over `to` (replacing it if present). The
  /// rename is durable only after SyncDir on the containing directory.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Removes an (empty) directory.
  virtual Status RemoveDir(const std::string& path) = 0;

  /// Makes creates/renames/removes inside `path` durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Faults this environment has injected so far (0 for real
  /// environments; exported as the `env_injected_faults` gauge).
  virtual uint64_t injected_faults() const { return 0; }

  /// The process-wide posix environment.
  static Env* Default();

  /// \name Helpers composed from the primitives (work on any Env).
  /// @{

  /// SyncDir on the directory containing `path` (trailing slashes
  /// ignored; "." when `path` has no directory component).
  Status SyncParentDir(const std::string& path);

  /// Writes `data` to `path` atomically: write `path`.tmp, sync, rename
  /// over `path`, sync the parent directory. Readers see old or new
  /// content, never a torn mix.
  Status WriteFileAtomic(const std::string& path, const std::string& data);

  /// Best-effort recursive removal of `path`.
  void RemoveAll(const std::string& path);
  /// @}
};

}  // namespace beas

#endif  // BEAS_COMMON_ENV_H_
