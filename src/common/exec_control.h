#ifndef BEAS_COMMON_EXEC_CONTROL_H_
#define BEAS_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>

namespace beas {

/// \brief Cooperative deadline + cancellation control for a bounded
/// execution, threaded through BoundedExecOptions.
///
/// The executors poll Expired() at *deterministic* points only — each
/// fetch-step boundary and every kExpiryCheckInterval-th probe key, at
/// identical key indices on the scalar and vectorized paths (both serve
/// probe keys in first-appearance order). Once expiry is observed the
/// execution behaves exactly like budget exhaustion from that key onward:
/// the current step stops serving keys, later steps serve zero keys, the
/// coverage bound η shrinks for every unserved key, and the query still
/// returns a well-formed partial answer (never an error). Because the
/// check schedule is identical across paths, two runs that observe expiry
/// at the same check index produce bit-identical partial answers.
///
/// The relational tail never truncates — its input T is already final
/// when expiry can be observed there, and dropping tail work would make
/// the reported η dishonest. An expired control only sheds the tail's
/// (and the fetch chain's) optional TaskPool fan-out: a dying query has
/// no business fanning out over workers other queries need.
struct ExecControl {
  /// Absolute deadline; meaningful only when has_deadline is set.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  /// Optional external cancellation token (client disconnect, admission
  /// revoke). Checked at the same deterministic points as the deadline.
  /// Must outlive the execution. Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;

  /// Probe keys between two expiry checks inside one step (checks also
  /// run at every step boundary). Small enough to bound overshoot past a
  /// deadline, large enough that the steady_clock read is amortized away.
  static constexpr size_t kExpiryCheckInterval = 1024;

  bool active() const { return has_deadline || cancel != nullptr; }

  /// One poll: true when cancelled or past the deadline. Monotone for the
  /// deadline half (steady_clock never goes back); callers latch the
  /// verdict anyway so a racing cancel-reset cannot un-expire a query.
  bool Expired() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Builds a control whose deadline is `timeout` from now (zero or
  /// negative = already expired).
  static ExecControl After(std::chrono::milliseconds timeout) {
    ExecControl control;
    control.has_deadline = true;
    control.deadline = std::chrono::steady_clock::now() + timeout;
    return control;
  }
};

}  // namespace beas

#endif  // BEAS_COMMON_EXEC_CONTROL_H_
