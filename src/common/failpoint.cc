#include "common/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace beas {
namespace fail {

namespace {

enum class Action { kCrash, kError, kErrorNoSpace, kSleep, kOff };

enum class Trigger { kNth, kEvery, kProbability };

struct ArmedPoint {
  std::string site;
  Action action = Action::kCrash;
  Trigger trigger = Trigger::kNth;
  unsigned long nth = 1;       ///< kNth: fire exactly once, on this hit
  double probability = 0.0;    ///< kProbability: chance per hit
  uint64_t sleep_millis = 0;   ///< kSleep payload
  std::atomic<unsigned long> hits{0};
  /// Per-point LCG stream for probability triggers: deterministic per
  /// process, independent of how other points are hit.
  std::atomic<uint64_t> rng{0x9e3779b97f4a7c15ull};
};

struct Config {
  /// unique_ptr because the atomic counters are not movable.
  std::vector<std::unique_ptr<ArmedPoint>> points;
};

/// One entry of the BEAS_FAIL_POINTS syntax: site=action[(arg)][@trigger].
/// Malformed entries are dropped (fault injection must never take down a
/// production process that exported a typo).
void ParseEntry(Config* config, const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return;
  auto armed = std::make_unique<ArmedPoint>();
  armed->site = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  std::string action = rest;
  size_t at = rest.rfind('@');
  if (at != std::string::npos) {
    action = rest.substr(0, at);
    std::string trig = rest.substr(at + 1);
    if (trig == "*") {
      armed->trigger = Trigger::kEvery;
    } else if (!trig.empty() && trig[0] == 'p') {
      armed->trigger = Trigger::kProbability;
      armed->probability = std::strtod(trig.c_str() + 1, nullptr);
    } else {
      armed->nth = std::strtoul(trig.c_str(), nullptr, 10);
      if (armed->nth == 0) armed->nth = 1;
    }
  }
  if (action == "crash") {
    armed->action = Action::kCrash;
  } else if (action == "error") {
    armed->action = Action::kError;
  } else if (action == "error(enospc)") {
    armed->action = Action::kErrorNoSpace;
  } else if (action.rfind("sleep(", 0) == 0 && action.back() == ')') {
    armed->action = Action::kSleep;
    armed->sleep_millis = std::strtoul(action.c_str() + 6, nullptr, 10);
  } else if (action == "off") {
    armed->action = Action::kOff;
  } else {
    return;  // unknown action: drop the entry
  }
  config->points.push_back(std::move(armed));
}

void ParseSpec(Config* config, const char* spec) {
  config->points.clear();
  if (spec == nullptr || *spec == '\0') return;
  std::string s = spec;
  size_t start = 0;
  while (start <= s.size()) {
    size_t sep = s.find(';', start);
    std::string entry = s.substr(
        start, sep == std::string::npos ? std::string::npos : sep - start);
    if (!entry.empty()) ParseEntry(config, entry);
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
}

/// Legacy BEAS_CRASH_POINT syntax: `<site>[:N]`, comma-separated, firing
/// once at the N-th hit. The two historical IO-fault sites keep their
/// error action; everything else is a kill point.
void ParseLegacySpec(Config* config, const char* spec) {
  config->points.clear();
  if (spec == nullptr || *spec == '\0') return;
  std::string s = spec;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    std::string entry = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!entry.empty()) {
      auto armed = std::make_unique<ArmedPoint>();
      size_t colon = entry.find(':');
      if (colon == std::string::npos) {
        armed->site = entry;
      } else {
        armed->site = entry.substr(0, colon);
        armed->nth = std::strtoul(entry.c_str() + colon + 1, nullptr, 10);
        if (armed->nth == 0) armed->nth = 1;
      }
      armed->action = (armed->site == "wal_group_io" ||
                       armed->site == "wal_repair_fail")
                          ? Action::kError
                          : Action::kCrash;
      config->points.push_back(std::move(armed));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

/// Parsed once per process, BEAS_FAIL_POINTS taking precedence over the
/// legacy variable when both are set.
Config& GlobalConfig() {
  static Config config;
  static bool parsed = [] {
    const char* spec = std::getenv("BEAS_FAIL_POINTS");
    if (spec != nullptr && *spec != '\0') {
      ParseSpec(&config, spec);
    } else {
      ParseLegacySpec(&config, std::getenv("BEAS_CRASH_POINT"));
    }
    return true;
  }();
  (void)parsed;
  return config;
}

/// Whether this hit of `armed` fires, advancing its trigger state.
bool Fires(ArmedPoint* armed) {
  switch (armed->trigger) {
    case Trigger::kNth:
      return armed->hits.fetch_add(1) + 1 == armed->nth;
    case Trigger::kEvery:
      return true;
    case Trigger::kProbability: {
      // xorshift-free MCG step (Lehmer); the low bits are fine for a
      // coarse probability gate.
      uint64_t x = armed->rng.fetch_add(0xa0761d6478bd642full) + 1;
      x ^= x >> 32;
      x *= 0xe7037ed1a0b428dbull;
      x ^= x >> 29;
      double u = static_cast<double>(x >> 11) / 9007199254740992.0;  // 2^53
      return u < armed->probability;
    }
  }
  return false;
}

}  // namespace

void ArmForTesting(const char* spec) { ParseSpec(&GlobalConfig(), spec); }

void ArmLegacyCrashSpec(const char* spec) {
  ParseLegacySpec(&GlobalConfig(), spec);
}

Status Point(const char* site) {
  Config& config = GlobalConfig();
  if (config.points.empty()) return Status::OK();
  for (auto& armed : config.points) {
    if (armed->site != site) continue;
    if (!Fires(armed.get())) continue;
    switch (armed->action) {
      case Action::kCrash:
        _exit(kCrashExitCode);
      case Action::kError:
        return Status::IoError(std::string("injected failure at ") + site);
      case Action::kErrorNoSpace:
        // The strerror(ENOSPC) shape file_util errors carry, so
        // disk-full handling (IsNoSpace) triggers on injected faults too.
        return Status::IoError(std::string("injected failure at ") + site +
                               ": No space left on device");
      case Action::kSleep:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(armed->sleep_millis));
        return Status::OK();
      case Action::kOff:
        break;
    }
  }
  return Status::OK();
}

}  // namespace fail
}  // namespace beas
