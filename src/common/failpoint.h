#ifndef BEAS_COMMON_FAILPOINT_H_
#define BEAS_COMMON_FAILPOINT_H_

#include "common/status.h"

namespace beas {
namespace fail {

/// \brief General fault-injection fail points (grown out of the
/// durability layer's crash-only kill points; see README "Resilience").
///
/// Production code marks an interesting protocol boundary with
///
///     Status injected = fail::Point("site_name");
///     if (!injected.ok()) ...   // treat like the real failure
///
/// Normally Point() is a cheap no-op returning OK. When a site is armed —
/// via the environment or ArmForTesting() — the armed *action* fires at
/// the armed *trigger*:
///
///   crash        _exit(kCrashExitCode): no destructors, no flushes,
///                exactly like a kill — for crash-recovery testing.
///   error        returns an injected IoError ("injected failure at
///                <site>") the caller must handle like a real IO fault.
///   error(enospc) same, with a strerror(ENOSPC)-shaped message ("No
///                space left on device"), for disk-full simulations.
///   sleep(MS)    blocks MS milliseconds, then returns OK — for forcing
///                deadline/cancellation windows open deterministically.
///   off          never fires (placeholder while editing specs).
///
/// ## Env syntax (`BEAS_FAIL_POINTS`)
///
/// Semicolon-separated entries, each `site=action[@trigger]`:
///
///   BEAS_FAIL_POINTS="wal_append=error@2;ckpt_write=error(enospc)"
///
/// Triggers: `@N` fires exactly once, on the N-th hit (1-based; the
/// default is `@1`); `@*` fires on every hit; `@pP` fires on each hit
/// with probability P in [0,1] (deterministic per-process LCG stream, so
/// a seed-free sweep is still reproducible).
///
/// ## Legacy syntax (`BEAS_CRASH_POINT`)
///
/// The durability kill-point variable keeps working unchanged:
/// `<site>[:N]` entries, comma-separated, fire once at the N-th hit. The
/// two historical IO-fault sites (`wal_group_io`, `wal_repair_fail`) map
/// to the `error` action; every other name maps to `crash` — exactly the
/// pre-migration behavior of MaybeCrash/MaybeFail.
///
/// Both variables are parsed once per process, at the first Point() call.
/// A fork()ed test child inherits the parsed config; the harness re-arms
/// with ArmForTesting()/ArmLegacyCrashSpec() right after fork instead.
Status Point(const char* site);

/// Exit code used by injected crashes, distinguishable from aborts and
/// clean exits in a test parent's waitpid status.
constexpr int kCrashExitCode = 42;

/// Replaces the armed configuration in-process, `spec` in the
/// BEAS_FAIL_POINTS syntax above (null or "" disarms everything). Resets
/// every hit counter.
void ArmForTesting(const char* spec);

/// Replaces the armed configuration with a legacy BEAS_CRASH_POINT spec
/// (`<site>[:N]`, comma-separated; null or "" disarms). Used by the
/// fork-based recovery harness, which predates the general facility.
void ArmLegacyCrashSpec(const char* spec);

}  // namespace fail
}  // namespace beas

#endif  // BEAS_COMMON_FAILPOINT_H_
