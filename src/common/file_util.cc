#include "common/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace beas {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Status MmapFile::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      Status s = Errno("mmap", path);
      ::close(fd);
      size_ = 0;
      return s;
    }
    data_ = static_cast<char*>(p);
    mapped_ = true;
  }
  // The mapping keeps the pages alive; the fd is not needed afterwards.
  ::close(fd);
  return Status::OK();
}

void MmapFile::Close() {
  if (mapped_) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Status AppendFile::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return Errno("open", path);
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    Status s = Errno("lseek", path);
    ::close(fd);
    return s;
  }
  fd_ = fd;
  offset_ = static_cast<uint64_t>(end);
  path_ = path;
  return Status::OK();
}

void AppendFile::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  offset_ = 0;
}

Status AppendFile::Append(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  offset_ += len;
  return Status::OK();
}

Status AppendFile::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status AppendFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Errno("lseek", path_);
  }
  offset_ = size;
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", path);
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(dir);
  return names;
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", path);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync dir", path);
  ::close(fd);
  return s;
}

Status SyncParentDir(const std::string& path) {
  size_t end = path.find_last_not_of('/');
  if (end == std::string::npos) return SyncDir("/");
  size_t slash = path.find_last_of('/', end);
  if (slash == std::string::npos) return SyncDir(".");
  return SyncDir(slash == 0 ? "/" : path.substr(0, slash));
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  {
    AppendFile f;
    BEAS_RETURN_NOT_OK(f.Open(tmp));
    BEAS_RETURN_NOT_OK(f.Truncate(0));
    BEAS_RETURN_NOT_OK(f.Append(data.data(), data.size()));
    BEAS_RETURN_NOT_OK(f.Sync());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", tmp);
  }
  return SyncParentDir(path);
}

void RemoveAll(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) return;
  if (S_ISDIR(st.st_mode)) {
    auto names = ListDir(path);
    if (names.ok()) {
      for (const std::string& name : *names) RemoveAll(path + "/" + name);
    }
    ::rmdir(path.c_str());
  } else {
    ::unlink(path.c_str());
  }
}

}  // namespace beas
