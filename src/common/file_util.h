#ifndef BEAS_COMMON_FILE_UTIL_H_
#define BEAS_COMMON_FILE_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace beas {

/// \brief Read-only memory map of a whole file (RAII).
///
/// The durability layer reads checkpoint segments through this: open,
/// mmap, validate the CRC'd header against the mapped bytes, parse, done —
/// no read loop, no intermediate copy, and a segment larger than RAM pages
/// in lazily. An empty file maps to a valid object with size() == 0.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Close(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only. Any previously held mapping is released.
  Status Open(const std::string& path);
  void Close();

  bool valid() const { return data_ != nullptr || size_ == 0; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  ///< size 0 files hold no mapping
};

/// \brief An append-only file handle over a raw fd (RAII).
///
/// The WAL writes through this: raw write(2) so that bytes are in the
/// kernel page cache (and survive a process kill) the moment Append
/// returns, and an explicit Sync() marking the group-commit boundary.
/// No userspace buffering — a crash can tear at most the last write.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { Close(); }

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if needed) `path` for appending; positions at the
  /// current end of file.
  Status Open(const std::string& path);
  void Close();

  bool is_open() const { return fd_ >= 0; }

  /// Appends `len` bytes; loops over partial writes.
  Status Append(const void* data, size_t len);

  /// fsync(2): everything appended so far is durable when this returns.
  Status Sync();

  /// Truncates the file to `size` bytes and repositions the append offset
  /// there (WAL reset after a checkpoint, torn-tail repair on recovery).
  Status Truncate(uint64_t size);

  /// Current file size (== append offset).
  uint64_t size() const { return offset_; }

 private:
  int fd_ = -1;
  uint64_t offset_ = 0;
  std::string path_;
};

/// Creates `path` (one level) if it does not exist.
Status EnsureDir(const std::string& path);

/// True if `path` exists (any file type).
bool PathExists(const std::string& path);

/// Names of regular entries in `path` (not "."/".."), unsorted.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// fsync on a directory fd — makes renames/creates inside it durable.
Status SyncDir(const std::string& path);

/// SyncDir on the directory containing `path` (trailing slashes ignored;
/// "." when `path` has no directory component) — makes `path`'s own
/// directory entry durable after creating it.
Status SyncParentDir(const std::string& path);

/// Writes `data` to `path` atomically: write to `path`.tmp, fsync, rename
/// over `path`, fsync the parent directory. Readers see either the old
/// content or the new, never a torn mix — the commit-point primitive for
/// checkpoint manifests.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Best-effort recursive removal of `path` (files and subdirectories).
void RemoveAll(const std::string& path);

}  // namespace beas

#endif  // BEAS_COMMON_FILE_UTIL_H_
