#ifndef BEAS_COMMON_HASH_H_
#define BEAS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace beas {

/// \brief Mixes a new hash into a running seed (boost::hash_combine style,
/// widened to 64 bits).
inline void HashCombine(uint64_t* seed, uint64_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// \brief 64-bit finalizer from MurmurHash3; good avalanche for integers.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief MurmurHash64A-style 64-bit byte hash: 8 bytes per round plus a
/// finalizer, giving full-width avalanche (every input bit flips ~32
/// output bits). Shared by Value::Hash, ValueVecHash, the batch row hashes
/// of the vectorized executor, and the plan-cache template key.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xe17a1465f3c0b7a9ULL) {
  constexpr uint64_t m = 0xc6a4a7935bd1e995ULL;
  constexpr int r = 47;
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * m);
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + (len & ~static_cast<size_t>(7));
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, sizeof(k));
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }
  switch (len & 7) {
    case 7: h ^= static_cast<uint64_t>(p[6]) << 48; [[fallthrough]];
    case 6: h ^= static_cast<uint64_t>(p[5]) << 40; [[fallthrough]];
    case 5: h ^= static_cast<uint64_t>(p[4]) << 32; [[fallthrough]];
    case 4: h ^= static_cast<uint64_t>(p[3]) << 24; [[fallthrough]];
    case 3: h ^= static_cast<uint64_t>(p[2]) << 16; [[fallthrough]];
    case 2: h ^= static_cast<uint64_t>(p[1]) << 8; [[fallthrough]];
    case 1: h ^= static_cast<uint64_t>(p[0]); h *= m; [[fallthrough]];
    default: break;
  }
  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

/// \brief Byte-string hashes computed on the calling thread. The
/// dictionary-encoded string path promises *zero per-probe byte hashing*
/// (AcIndex::LookupBatch over dict-backed keys reads precomputed hashes
/// instead); tests pin that promise against this counter. A plain
/// thread_local increment — not atomic — so it never contends.
inline thread_local uint64_t tls_hash_string_calls = 0;

/// \brief Byte-level string *ordering* comparisons (ORDER BY, range
/// predicates, MIN/MAX) performed on the calling thread. The
/// order-preserving dictionary mode promises *zero per-comparison
/// decodes* once a dictionary is sorted — ordering consumers compare
/// uint32 codes instead of decoding bytes; tests pin that promise
/// against this counter, like tls_hash_string_calls pins zero per-probe
/// byte hashing. Plain thread_local increment — never contends.
inline thread_local uint64_t tls_string_order_decodes = 0;

/// \brief Cross-dictionary code translations performed on the calling
/// thread: one increment per *distinct* left-dictionary code a col = col
/// equality conjunct resolves against the other column's dictionary (via
/// the precomputed byte hash — no bytes are hashed; tests pin that with
/// tls_hash_string_calls). Distinct-code granularity makes the per-batch
/// translation cache observable: a batch with many repeats of few strings
/// must bump this by the distinct count, not the row count. Plain
/// thread_local increment — never contends.
inline thread_local uint64_t tls_cross_dict_translates = 0;

/// \brief Hashes a string with the shared 64-bit byte hash.
///
/// Dictionary-encoded values (see storage/string_dict.h) bypass this at
/// query time: the dictionary computes it once at intern time and serves
/// the stored hash by code thereafter. Both must agree byte-for-byte —
/// hash consistency between the inline and encoded representations of the
/// same string is what keeps the two interchangeable in every container.
inline uint64_t HashString(const std::string& s) {
  ++tls_hash_string_calls;
  return HashBytes(s.data(), s.size());
}

/// \brief Hash of the NULL value. Shared between Value::Hash and the
/// encoded-column hash fold (a kNullCode slot must hash exactly like the
/// NULL Value it stands for).
constexpr uint64_t kNullValueHash = 0xDEADBEEFCAFEF00DULL;

/// \brief Seed of the value-vector / row hash fold. ValueVecHash, the
/// TupleBatch row hashes, and the vectorized executor's probe-key dedup
/// must all fold from this same seed — their agreement is what lets batch
/// structures interoperate bit-for-bit with the row-at-a-time containers.
constexpr uint64_t kValueVecHashSeed = 0x2545F4914F6CDD1DULL;

/// \brief Smallest power of two >= max(n, 16): the open-addressing table
/// capacity used by the batch dedup/group structures.
inline size_t HashTableCapacity(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace beas

#endif  // BEAS_COMMON_HASH_H_
