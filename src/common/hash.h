#ifndef BEAS_COMMON_HASH_H_
#define BEAS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace beas {

/// \brief Mixes a new hash into a running seed (boost::hash_combine style,
/// widened to 64 bits).
inline void HashCombine(uint64_t* seed, uint64_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// \brief 64-bit finalizer from MurmurHash3; good avalanche for integers.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Hashes a string view with std::hash (adequate for hash maps here).
inline uint64_t HashString(const std::string& s) {
  return std::hash<std::string>{}(s);
}

}  // namespace beas

#endif  // BEAS_COMMON_HASH_H_
