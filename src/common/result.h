#ifndef BEAS_COMMON_RESULT_H_
#define BEAS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace beas {

/// \brief Either a value of type T or an error Status (Arrow-style).
///
/// A Result is in exactly one of two states: it holds a value (and an OK
/// status), or it holds a non-OK status. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out; requires ok().
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace beas

/// Evaluates an expression returning Result<T>; on error, propagates the
/// status; on success, assigns the value to `lhs`.
#define BEAS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define BEAS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define BEAS_ASSIGN_OR_RETURN_NAME(x, y) BEAS_ASSIGN_OR_RETURN_CONCAT(x, y)

#define BEAS_ASSIGN_OR_RETURN(lhs, expr) \
  BEAS_ASSIGN_OR_RETURN_IMPL(            \
      BEAS_ASSIGN_OR_RETURN_NAME(_beas_result_, __COUNTER__), lhs, expr)

#endif  // BEAS_COMMON_RESULT_H_
