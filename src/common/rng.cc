#include "common/rng.h"

#include <cmath>

namespace beas {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF sampling over a truncated power law. Accurate enough for
  // generating skewed workloads; not a statistically exact Zipf sampler.
  double u = UniformReal(1e-12, 1.0);
  double x = std::pow(u, 1.0 / (1.0 - s));  // heavy tail in [1, inf)
  size_t idx = static_cast<size_t>(x) - 1;
  return idx % n;
}

std::string Rng::Ident(size_t len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlpha[Uniform(0, 25)]);
  }
  return out;
}

}  // namespace beas
