#ifndef BEAS_COMMON_RNG_H_
#define BEAS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace beas {

/// \brief Deterministic pseudo-random generator used by the workload
/// generator and property tests.
///
/// All randomness in the repository flows through this class so that every
/// dataset, test input, and benchmark run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(gen_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(gen_);
  }

  /// Bernoulli trial with probability p of true.
  bool Chance(double p) { return UniformReal(0.0, 1.0) < p; }

  /// Zipf-like skewed pick in [0, n): favors small indices with exponent s.
  /// Used to give CDR data realistic heavy-hitter callers.
  size_t Zipf(size_t n, double s = 1.1);

  /// Picks a uniformly random element of `v` (v must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Random lowercase identifier of `len` characters.
  std::string Ident(size_t len);

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace beas

#endif  // BEAS_COMMON_RNG_H_
