#include "common/shard_config.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace beas {

namespace {

size_t ClampShards(long long n) {
  if (n < 1) return 1;
  if (n > static_cast<long long>(kMaxStorageShards)) return kMaxStorageShards;
  return static_cast<size_t>(n);
}

/// Env/hardware default, resolved once per process.
size_t EnvDefaultShardCount() {
  static const size_t resolved = [] {
    if (const char* env = std::getenv("BEAS_SHARDS")) {
      char* end = nullptr;
      long long parsed = std::strtoll(env, &end, 10);
      if (end != env && parsed > 0) return ClampShards(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return ClampShards(std::min<long long>(hw == 0 ? 1 : hw, 8));
  }();
  return resolved;
}

}  // namespace

size_t& ShardCountOverride() {
  static size_t override_count = 0;
  return override_count;
}

size_t ConfiguredShardCount() {
  size_t override_count = ShardCountOverride();
  if (override_count != 0) return ClampShards(static_cast<long long>(override_count));
  return EnvDefaultShardCount();
}

}  // namespace beas
