#ifndef BEAS_COMMON_SHARD_CONFIG_H_
#define BEAS_COMMON_SHARD_CONFIG_H_

#include <cstddef>

namespace beas {

/// \brief Process-wide storage shard-count configuration.
///
/// Each TableHeap (and every AcIndex built over it) is hash-partitioned
/// into this many shards; the per-shard write locks in Database and the
/// shard-parallel fetch paths of the bounded executor all key off the
/// same number. The value is resolved once, in this order:
///
///   1. `ShardCountOverride()` when non-zero (tests and benches sweep
///      shard counts in-process with it — set it *before* constructing
///      the heaps/databases it should affect);
///   2. the `BEAS_SHARDS` environment variable when set and positive;
///   3. `std::thread::hardware_concurrency()` clamped to 8.
///
/// Always clamped to [1, kMaxStorageShards]. Sharding never changes
/// answers — every layer merges shard results back into the global
/// insertion / first-appearance order — so any value is semantically
/// safe; it only moves the parallelism/locking granularity.
constexpr size_t kMaxStorageShards = 64;

/// The in-process override slot. 0 = no override (env/hardware default).
/// Not thread-safe: flip it only during single-threaded setup.
size_t& ShardCountOverride();

/// The shard count new heaps/databases pick up right now (see above).
size_t ConfiguredShardCount();

}  // namespace beas

#endif  // BEAS_COMMON_SHARD_CONFIG_H_
