#include "common/status.h"

namespace beas {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConformanceError:
      return "ConformanceError";
    case StatusCode::kNotCovered:
      return "NotCovered";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace beas
