#include "common/status.h"

namespace beas {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConformanceError:
      return "ConformanceError";
    case StatusCode::kNotCovered:
      return "NotCovered";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotImplemented:
      return "NOT_IMPLEMENTED";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kBindError:
      return "BIND_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kConformanceError:
      return "CONFORMANCE_ERROR";
    case StatusCode::kNotCovered:
      return "NOT_COVERED";
    case StatusCode::kBudgetExceeded:
      return "BUDGET_EXCEEDED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
  }
  return "UNKNOWN";
}

int StatusCodeToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kParseError:
    case StatusCode::kBindError:
    case StatusCode::kTypeError:
      return 400;  // the request itself is wrong; retrying cannot help
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kConformanceError:
      return 409;  // conflict with existing state / declared constraints
    case StatusCode::kNotCovered:
    case StatusCode::kBudgetExceeded:
      return 422;  // well-formed but unanswerable under the access schema
    case StatusCode::kResourceExhausted:
      return 429;  // admission/queue/quota: back off and retry later
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    case StatusCode::kCorruption:
      return 500;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;  // latched/quiesced subsystem: retryable elsewhere
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace beas
