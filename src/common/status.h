#ifndef BEAS_COMMON_STATUS_H_
#define BEAS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace beas {

/// \brief Error categories used across the BEAS code base.
///
/// Following the RocksDB/Arrow idiom, BEAS does not use C++ exceptions;
/// every fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kParseError,        ///< SQL lexing/parsing failed.
  kBindError,         ///< Semantic analysis (name/type resolution) failed.
  kTypeError,         ///< Runtime type mismatch in expression evaluation.
  kConformanceError,  ///< Data violates an access constraint.
  kNotCovered,        ///< Query is not covered by the access schema.
  kBudgetExceeded,    ///< Deduced access bound exceeds the user budget.
  kIoError,           ///< File/CSV I/O failure.
  kInternal,          ///< Invariant violation; indicates a bug.
  kDeadlineExceeded,  ///< Query deadline expired before completion.
  kResourceExhausted, ///< Admission control rejected, or disk/queue full.
  kUnavailable,       ///< Subsystem latched/refusing work (e.g. WAL shard).
  kCorruption,        ///< Stored bytes fail integrity checks (CRC, framing).
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Stable machine-readable token for a status code, as carried in
/// wire error bodies ("DEADLINE_EXCEEDED", "RESOURCE_EXHAUSTED", ...).
///
/// Unlike StatusCodeToString (a display name, free to change), these
/// tokens are part of the network protocol's error taxonomy: clients
/// dispatch on them, so they never change once shipped.
const char* StatusCodeName(StatusCode code);

/// \brief Maps a status code onto the HTTP status the JSON adapter
/// answers with — the third leg of the error taxonomy (enum value on the
/// binary wire, token in machine-readable bodies, HTTP code here).
///
/// Client errors (parse/bind/type/argument) map to 400-family codes so a
/// load balancer never retries them; overload and deadline verdicts map
/// to 429/504 so generic HTTP clients back off correctly; kUnavailable is
/// 503 (retryable) while kCorruption and internal faults are 500.
int StatusCodeToHttp(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConformanceError(std::string msg) {
    return Status(StatusCode::kConformanceError, std::move(msg));
  }
  static Status NotCovered(std::string msg) {
    return Status(StatusCode::kNotCovered, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "ParseError: unexpected token".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace beas

/// Propagates a non-OK Status to the caller.
#define BEAS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::beas::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // BEAS_COMMON_STATUS_H_
