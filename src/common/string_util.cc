#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace beas {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace beas
