#ifndef BEAS_COMMON_STRING_UTIL_H_
#define BEAS_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace beas {

/// \brief ASCII-lowercases a copy of `s`.
std::string ToLower(const std::string& s);

/// \brief ASCII-uppercases a copy of `s`.
std::string ToUpper(const std::string& s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Renders a count with thousands separators, e.g. 12000000 ->
/// "12,000,000" (used by plan annotations and bench tables).
std::string WithCommas(uint64_t n);

}  // namespace beas

#endif  // BEAS_COMMON_STRING_UTIL_H_
