#include "common/task_pool.h"

#include <atomic>
#include <memory>

namespace beas {

namespace {

/// Shared state of one ParallelFor: workers and the caller race on `next`
/// to claim indices; `completed` reaching `n` releases the caller.
struct ParallelJob {
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::mutex mutex;
  std::condition_variable done_cv;
};

void DrainJob(ParallelJob* job) {
  for (;;) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    (*job->fn)(i);
    if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->n) {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->done_cv.notify_all();
    }
  }
}

/// True while the current thread is inside a ParallelFor (prevents
/// re-entrant fan-out, which could starve the index race).
thread_local bool t_in_parallel_for = false;

}  // namespace

TaskPool::TaskPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool TaskPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers to drain the queue: run on the caller, preserving the
    // "submitted tasks always execute" contract.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return false;
    }
    task();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (t_in_parallel_for || workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<ParallelJob>();
  job->n = n;
  job->fn = &fn;
  // Helpers beyond n-1 would find the range drained immediately.
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    if (!Submit([job] { DrainJob(job.get()); })) break;
  }
  t_in_parallel_for = true;
  DrainJob(job.get());
  t_in_parallel_for = false;
  std::unique_lock<std::mutex> lock(job->mutex);
  job->done_cv.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->n;
  });
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace beas
