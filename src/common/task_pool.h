#ifndef BEAS_COMMON_TASK_POOL_H_
#define BEAS_COMMON_TASK_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace beas {

/// \brief A fixed worker pool serving two kinds of work:
///
///  * `Submit` enqueues an independent task (the service layer's query
///    dispatch), executed FIFO by the workers.
///  * `ParallelFor` fans one loop out across the workers AND the calling
///    thread. The caller participates in the index range, so the call
///    completes even when every worker is busy with long Submit tasks —
///    intra-query parallelism (the bounded executor's batched index
///    probes) can therefore safely share the pool with the query tasks
///    that spawned it, without a nested-wait deadlock.
///
/// Destruction drains the queue: tasks already submitted run to
/// completion before the workers join (Submit-ed promises always resolve).
class TaskPool {
 public:
  /// Creates `num_threads` workers (0 = everything runs on the caller).
  explicit TaskPool(size_t num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` (a zero-worker pool runs it synchronously on the
  /// caller instead). Returns false, without running the task, when the
  /// pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n calls finished.
  /// `fn` must not throw. Nested ParallelFor calls run serially on the
  /// caller (no re-entrant fan-out).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace beas

#endif  // BEAS_COMMON_TASK_POOL_H_
