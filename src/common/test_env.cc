#include "common/test_env.h"

#include <algorithm>
#include <cstring>

namespace beas {

namespace {
constexpr uint64_t kSector = FaultInjectingEnv::kSectorBytes;
}  // namespace

// ---------------------------------------------------------------------------
// File handles.
// ---------------------------------------------------------------------------

class FaultInjectingEnv::MemWritableFile : public WritableFile {
 public:
  MemWritableFile(FaultInjectingEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(const void* data, size_t len) override {
    std::lock_guard<std::mutex> lk(env_->mutex_);
    env_->AppendLocked(path_, static_cast<const char*>(data), len);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lk(env_->mutex_);
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::IoError("fsync on removed file: " + path_);
    }
    it->second.durable = it->second.current;
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lk(env_->mutex_);
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::IoError("ftruncate on removed file: " + path_);
    }
    it->second.current.resize(size, '\0');
    return Status::OK();
  }

  uint64_t size() const override {
    std::lock_guard<std::mutex> lk(env_->mutex_);
    auto it = env_->files_.find(path_);
    return it == env_->files_.end() ? 0 : it->second.current.size();
  }

 private:
  FaultInjectingEnv* env_;
  std::string path_;
};

class FaultInjectingEnv::MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::string content)
      : content_(std::move(content)) {}
  const char* data() const override { return content_.data(); }
  size_t size() const override { return content_.size(); }

 private:
  std::string content_;
};

// ---------------------------------------------------------------------------
// Path helpers.
// ---------------------------------------------------------------------------

std::string FaultInjectingEnv::Normalize(const std::string& path) {
  size_t end = path.find_last_not_of('/');
  if (end == std::string::npos) return "/";
  return path.substr(0, end + 1);
}

std::string FaultInjectingEnv::Parent(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Env interface.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  files_[p];  // creates with entry_durable = false when absent
  return std::unique_ptr<WritableFile>(new MemWritableFile(this, p));
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectingEnv::NewRandomAccessFile(
    const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = files_.find(p);
  if (it == files_.end()) return Status::IoError("open: no such file: " + p);
  std::string content = it->second.current;
  if (short_read_armed_.erase(p) > 0) {
    uint64_t cut =
        std::min<uint64_t>(content.size(),
                           static_cast<uint64_t>(rng_.Uniform(1, kSector)));
    content.resize(content.size() - cut);
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::unique_ptr<RandomAccessFile>(
      new MemRandomAccessFile(std::move(content)));
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  return files_.count(p) > 0 || dirs_.count(p) > 0;
}

bool FaultInjectingEnv::IsDirectory(const std::string& path) {
  std::lock_guard<std::mutex> lk(mutex_);
  return dirs_.count(Normalize(path)) > 0;
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  if (dirs_.count(p) == 0) return Status::IoError("opendir: not a dir: " + p);
  std::vector<std::string> names;
  const std::string prefix = p + "/";
  auto collect = [&](const std::string& entry) {
    if (entry.size() <= prefix.size() || entry.compare(0, prefix.size(), prefix))
      return;
    std::string rest = entry.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(std::move(rest));
  };
  for (const auto& f : files_) collect(f.first);
  for (const auto& d : dirs_) collect(d.first);
  return names;
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  dirs_.emplace(p, false);
  return Status::OK();
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::string f = Normalize(from), t = Normalize(to);
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = files_.find(f);
  if (it == files_.end()) return Status::IoError("rename: no such file: " + f);
  FileState moved = std::move(it->second);
  files_.erase(it);
  FileState next;
  next.durable = std::move(moved.durable);
  next.current = std::move(moved.current);
  next.entry_durable = false;
  // Crash alternatives until the directory sync lands: the bytes under
  // the old name (if that entry was durable), or the displaced target.
  if (moved.entry_durable) next.renamed_from = f;
  auto old = files_.find(t);
  if (old != files_.end() && old->second.entry_durable) {
    next.displaced_valid = true;
    next.displaced = old->second.durable;
  }
  files_[t] = std::move(next);
  return Status::OK();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  files_.erase(p);
  return Status::OK();
}

Status FaultInjectingEnv::RemoveDir(const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  dirs_.erase(p);
  return Status::OK();
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& f : files_) {
    if (Parent(f.first) != p) continue;
    f.second.entry_durable = true;
    f.second.renamed_from.clear();
    f.second.displaced_valid = false;
    f.second.displaced.clear();
  }
  for (auto& d : dirs_) {
    if (Parent(d.first) == p) d.second = true;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Power cut.
// ---------------------------------------------------------------------------

void FaultInjectingEnv::ScheduleCutAfterBytes(uint64_t bytes,
                                              TearPolicy policy) {
  std::lock_guard<std::mutex> lk(mutex_);
  cut_armed_ = true;
  cut_triggered_ = false;
  cut_at_bytes_ = appended_total_ + bytes;
  cut_policy_ = policy;
}

bool FaultInjectingEnv::CutTriggered() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return cut_triggered_;
}

uint64_t FaultInjectingEnv::bytes_appended() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return appended_total_;
}

void FaultInjectingEnv::CutNow(TearPolicy policy) {
  std::lock_guard<std::mutex> lk(mutex_);
  cut_triggered_ = true;
  cut_armed_ = false;
  LatchImageLocked(policy);
}

void FaultInjectingEnv::AppendLocked(const std::string& path, const char* data,
                                     size_t len) {
  FileState& f = files_[path];
  size_t pre = len;
  if (cut_armed_ && !cut_triggered_ && appended_total_ + len >= cut_at_bytes_) {
    pre = cut_at_bytes_ > appended_total_
              ? static_cast<size_t>(cut_at_bytes_ - appended_total_)
              : 0;
  }
  f.current.append(data, pre);
  appended_total_ += pre;
  if (pre < len || (cut_armed_ && !cut_triggered_ &&
                    appended_total_ == cut_at_bytes_)) {
    cut_triggered_ = true;
    cut_armed_ = false;
    LatchImageLocked(cut_policy_);
    f.current.append(data + pre, len - pre);
    appended_total_ += len - pre;
  }
}

std::string FaultInjectingEnv::CrashContentLocked(const FileState& f,
                                                  TearPolicy policy) {
  const std::string& dur = f.durable;
  const std::string& cur = f.current;
  if (policy == TearPolicy::kKeepAll) return cur;
  if (policy == TearPolicy::kDropAll) return dur;

  // Sector model: unsynced sectors independently reach the platter or
  // not; the size metadata races the data writeback. Synced bytes are
  // immutable.
  const size_t max_len = std::max(dur.size(), cur.size());
  std::string img(max_len, '\0');
  std::memcpy(&img[0], dur.data(), dur.size());
  for (size_t i = dur.size(); i < max_len; ++i) {
    img[i] = static_cast<char>(rng_.Uniform(0, 255));  // stale platter bytes
  }
  const size_t nsec = (max_len + kSector - 1) / kSector;
  for (size_t s = 0; s < nsec; ++s) {
    const size_t lo = s * kSector;
    const size_t hi = std::min(max_len, lo + kSector);
    const size_t cur_hi = std::min(cur.size(), hi);
    const size_t dur_hi = std::min(dur.size(), hi);
    bool dirty = cur_hi != dur_hi;
    if (!dirty && lo < cur_hi) {
      dirty = std::memcmp(cur.data() + lo, dur.data() + lo, cur_hi - lo) != 0;
    }
    if (!dirty) continue;
    if (rng_.Chance(0.5)) {
      if (lo < cur_hi) std::memcpy(&img[lo], cur.data() + lo, cur_hi - lo);
    } else {
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const size_t final_size = rng_.Chance(0.5) ? cur.size() : dur.size();
  img.resize(final_size, '\0');
  return img;
}

void FaultInjectingEnv::LatchImageLocked(TearPolicy policy) {
  image_.files.clear();
  image_.dirs.clear();

  // Directories first: a dir whose entry was never synced can vanish, and
  // takes everything under it along.
  for (const auto& d : dirs_) {
    bool keep = d.second || policy == TearPolicy::kKeepAll;
    if (!keep && policy == TearPolicy::kRandom) keep = rng_.Chance(0.5);
    if (!keep) {
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Prune under a dropped ancestor (map order visits parents first).
    std::string parent = Parent(d.first);
    if (dirs_.count(parent) > 0 && image_.dirs.count(parent) == 0) continue;
    image_.dirs.insert(d.first);
  }

  auto ancestors_alive = [&](const std::string& path) {
    for (std::string a = Parent(path); !a.empty() && a != "/"; a = Parent(a)) {
      if (dirs_.count(a) > 0 && image_.dirs.count(a) == 0) return false;
    }
    return true;
  };

  for (const auto& entry : files_) {
    const std::string& path = entry.first;
    const FileState& f = entry.second;
    if (!ancestors_alive(path)) continue;
    bool entry_ok = f.entry_durable || policy == TearPolicy::kKeepAll;
    if (!entry_ok && policy == TearPolicy::kRandom) entry_ok = rng_.Chance(0.5);
    if (entry_ok) {
      image_.files[path] = CrashContentLocked(f, policy);
      continue;
    }
    // The unsynced create/rename never made it: revert to the crash
    // alternatives (old name, displaced target), or lose the file.
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
    if (!f.renamed_from.empty() && ancestors_alive(f.renamed_from)) {
      image_.files[f.renamed_from] = f.durable;
    }
    if (f.displaced_valid) image_.files[path] = f.displaced;
  }
  image_valid_ = true;
}

void FaultInjectingEnv::InstallCrashImage() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (!image_valid_) LatchImageLocked(TearPolicy::kDropAll);
  files_.clear();
  dirs_.clear();
  for (const std::string& d : image_.dirs) dirs_[d] = true;
  for (auto& f : image_.files) {
    FileState state;
    state.durable = f.second;
    state.current = std::move(f.second);
    state.entry_durable = true;
    files_[f.first] = std::move(state);
  }
  image_.files.clear();
  image_.dirs.clear();
  image_valid_ = false;
  cut_armed_ = false;
  cut_triggered_ = false;
  short_read_armed_.clear();
}

// ---------------------------------------------------------------------------
// Deterministic corruption.
// ---------------------------------------------------------------------------

Status FaultInjectingEnv::FlipBit(const std::string& path, uint64_t offset,
                                  int bit) {
  std::string p = Normalize(path);
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = files_.find(p);
  if (it == files_.end()) return Status::IoError("flip: no such file: " + p);
  FileState& f = it->second;
  if (offset >= f.current.size()) {
    return Status::InvalidArgument("flip: offset past end of " + p);
  }
  f.current[offset] ^= static_cast<char>(1u << (bit & 7));
  if (offset < f.durable.size()) {
    f.durable[offset] ^= static_cast<char>(1u << (bit & 7));
  }
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjectingEnv::ArmShortRead(const std::string& path) {
  std::lock_guard<std::mutex> lk(mutex_);
  short_read_armed_.insert(Normalize(path));
}

}  // namespace beas
