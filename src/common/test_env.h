#ifndef BEAS_COMMON_TEST_ENV_H_
#define BEAS_COMMON_TEST_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"

namespace beas {

/// \brief An in-memory Env that models what real storage does to unsynced
/// bytes at power cut — the substrate of the crash-consistency harness.
///
/// ## Filesystem model
///
/// Every file holds two byte strings: `durable` (what the device is
/// guaranteed to return after a power cut) and `current` (what a live
/// reader sees). Append/Truncate mutate `current` only; Sync() promotes
/// `current` to `durable`. Directory entries are durable only after
/// SyncDir on the containing directory — a created (or renamed-in) file
/// whose entry was never synced can vanish wholesale at the cut, and an
/// unsynced rename can revert to the replaced content, exactly the
/// windows the WAL-init / atomic-manifest protocols must close.
///
/// ## Power-cut semantics
///
/// ScheduleCutAfterBytes(n) arms a cut: the Append call that crosses `n`
/// cumulative appended bytes (across all files) applies its bytes only up
/// to the threshold, latches a *crash image*, then continues normally —
/// the live environment keeps serving, so the workload driver can finish
/// its script and later "reboot" by calling InstallCrashImage(), which
/// replaces the live state with the image.
///
/// The image is computed per file at 512-byte sector granularity: the
/// unsynced suffix/diff is split into sectors, and the TearPolicy decides
/// which sectors reached the platter (kRandom keeps each independently —
/// modeling reordered writeback — so the tail can be torn mid-record;
/// kDropAll keeps none; kKeepAll keeps all). Sectors not kept read back
/// as the old durable bytes where those existed and as garbage beyond
/// them. The file size lands on either the durable or the in-flight
/// length (size metadata races data writeback). Acked (synced) bytes are
/// never altered.
///
/// ## Deterministic corruption
///
/// FlipBit() flips one stored bit (durable and current — modeling cold
/// bit rot under a valid CRC frame) and ArmShortRead() makes the next
/// whole-file read view of a path come up short. Both count into
/// injected_faults(), exported as the `env_injected_faults` gauge.
///
/// All decisions draw from an Rng seeded at construction, so every crash
/// image is reproducible from (seed, workload, cut threshold).
class FaultInjectingEnv : public Env {
 public:
  static constexpr uint64_t kSectorBytes = 512;

  enum class TearPolicy {
    kRandom,   ///< each unsynced sector independently survives or not
    kDropAll,  ///< no unsynced sector survives (clean revert to durable)
    kKeepAll,  ///< every unsynced byte written so far survives
  };

  explicit FaultInjectingEnv(uint64_t seed) : rng_(seed) {}

  /// \name Env interface.
  /// @{
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  uint64_t injected_faults() const override {
    return injected_faults_.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Power cut.
  /// @{

  /// Arms a power cut at `bytes` more appended bytes (cumulative over all
  /// files). Replaces any previously armed, untriggered cut.
  void ScheduleCutAfterBytes(uint64_t bytes,
                             TearPolicy policy = TearPolicy::kRandom);

  bool CutTriggered() const;

  /// Cumulative bytes appended through this env (all files, lifetime).
  uint64_t bytes_appended() const;

  /// Latches a crash image right now (as if the machine died between I/O
  /// calls) using `policy` for any unsynced state.
  void CutNow(TearPolicy policy = TearPolicy::kRandom);

  /// Replaces the live filesystem with the latched crash image ("reboot
  /// after the power cut"). Requires a triggered cut (or prior CutNow).
  /// Open WritableFile handles from before the install must not be used
  /// afterwards. Clears the armed/triggered cut state.
  void InstallCrashImage();
  /// @}

  /// \name Deterministic corruption.
  /// @{

  /// Flips bit `bit` (0-7) of byte `offset` in `path`, in both the live
  /// and the durable image. Errors if the file is absent or short.
  Status FlipBit(const std::string& path, uint64_t offset, int bit);

  /// The next NewRandomAccessFile(path) returns a view truncated by
  /// 1..kSectorBytes bytes (never below zero).
  void ArmShortRead(const std::string& path);
  /// @}

 private:
  struct FileState {
    std::string durable;
    std::string current;
    bool entry_durable = false;  ///< containing dir synced since create
    /// Set while a rename into this name awaits the directory sync: the
    /// name the bytes lived under before, and the durable content of the
    /// file this rename displaced (empty-flagged when none).
    std::string renamed_from;
    bool displaced_valid = false;
    std::string displaced;
  };

  struct Image {
    std::map<std::string, std::string> files;
    std::set<std::string> dirs;
  };

  class MemWritableFile;
  class MemRandomAccessFile;

  static std::string Normalize(const std::string& path);
  static std::string Parent(const std::string& path);

  void AppendLocked(const std::string& path, const char* data, size_t len);
  void LatchImageLocked(TearPolicy policy);
  std::string CrashContentLocked(const FileState& f, TearPolicy policy);

  mutable std::mutex mutex_;
  Rng rng_;
  std::map<std::string, FileState> files_;
  /// Live directories, with their own entry-durability flag.
  std::map<std::string, bool> dirs_;
  std::set<std::string> short_read_armed_;

  uint64_t appended_total_ = 0;
  bool cut_armed_ = false;
  bool cut_triggered_ = false;
  uint64_t cut_at_bytes_ = 0;
  TearPolicy cut_policy_ = TearPolicy::kRandom;
  Image image_;
  bool image_valid_ = false;

  std::atomic<uint64_t> injected_faults_{0};
};

}  // namespace beas

#endif  // BEAS_COMMON_TEST_ENV_H_
