#include "discovery/candidate_miner.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace beas {

std::string CandidatePattern::Key() const {
  return table + "|" + Join(x_attrs, ",") + "|" + Join(y_attrs, ",");
}

std::string CandidatePattern::ToString() const {
  return table + "({" + Join(x_attrs, ", ") + "} -> {" + Join(y_attrs, ", ") +
         "}, ?) weight=" + StringPrintf("%.1f", weight);
}

Result<std::vector<CandidatePattern>> MineCandidates(
    const Database& db, const std::vector<std::string>& workload_sql) {
  std::map<std::string, CandidatePattern> merged;

  for (const std::string& sql : workload_sql) {
    auto bound = db.Bind(sql);
    if (!bound.ok()) continue;  // skip unparsable/unbindable history entries
    const BoundQuery& query = *bound;

    std::vector<AttrRef> used = query.AttrsUsed();
    for (size_t a = 0; a < query.atoms.size(); ++a) {
      const Schema& schema = query.atoms[a].table->schema();
      std::set<std::string> const_bound;
      std::set<std::string> join_bound;
      for (const Conjunct& c : query.conjuncts) {
        if ((c.cls == ConjunctClass::kEqConst ||
             c.cls == ConjunctClass::kInConst) &&
            c.lhs.atom == a) {
          const_bound.insert(schema.ColumnAt(c.lhs.col).name);
        }
        if (c.cls == ConjunctClass::kEqAttr) {
          if (c.lhs.atom == a && c.rhs.atom != a) {
            join_bound.insert(schema.ColumnAt(c.lhs.col).name);
          }
          if (c.rhs.atom == a && c.lhs.atom != a) {
            join_bound.insert(schema.ColumnAt(c.rhs.col).name);
          }
        }
      }
      std::set<std::string> needed;
      for (const AttrRef& attr : used) {
        if (attr.atom == a) needed.insert(schema.ColumnAt(attr.col).name);
      }

      auto add_candidate = [&](const std::set<std::string>& x_set) {
        if (x_set.empty()) return;
        std::vector<std::string> x(x_set.begin(), x_set.end());
        std::vector<std::string> y;
        for (const std::string& attr : needed) {
          if (!x_set.count(attr)) y.push_back(attr);
        }
        if (y.empty()) return;
        CandidatePattern pattern;
        pattern.table = query.atoms[a].table->name();
        pattern.x_attrs = std::move(x);
        pattern.y_attrs = std::move(y);
        pattern.weight = 1.0;
        auto [it, inserted] = merged.emplace(pattern.Key(), pattern);
        if (!inserted) it->second.weight += 1.0;
      };

      add_candidate(const_bound);
      std::set<std::string> both = const_bound;
      both.insert(join_bound.begin(), join_bound.end());
      if (both != const_bound) add_candidate(both);
      if (join_bound != both && !join_bound.empty()) add_candidate(join_bound);
    }
  }

  std::vector<CandidatePattern> out;
  out.reserve(merged.size());
  for (auto& [key, pattern] : merged) out.push_back(std::move(pattern));
  return out;
}

}  // namespace beas
