#ifndef BEAS_DISCOVERY_CANDIDATE_MINER_H_
#define BEAS_DISCOVERY_CANDIDATE_MINER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"

namespace beas {

/// \brief A candidate access constraint shape R(X → Y, ?) mined from the
/// historical query load, before data profiling fixes its N.
struct CandidatePattern {
  std::string table;
  std::vector<std::string> x_attrs;
  std::vector<std::string> y_attrs;
  double weight = 1.0;  ///< how many workload queries exhibit this pattern

  /// Canonical key for deduplication ("table|x1,x2|y1,y2").
  std::string Key() const;
  std::string ToString() const;
};

/// \brief Mines candidate patterns from a workload of SQL queries
/// (paper §3: discovery considers "(c) historical query patterns").
///
/// For every relation atom of every query, two candidates are proposed:
///  1. X = the atom's constant-bound attributes (equality/IN predicates) —
///     the attributes a bounded plan could seed from constants;
///  2. X = constant-bound ∪ join-key attributes — the attributes that can
///     be bound by earlier fetches.
/// In both cases Y = the atom's remaining referenced attributes. Atoms
/// with empty X or empty Y yield no candidate. Identical patterns across
/// queries accumulate weight.
Result<std::vector<CandidatePattern>> MineCandidates(
    const Database& db, const std::vector<std::string>& workload_sql);

}  // namespace beas

#endif  // BEAS_DISCOVERY_CANDIDATE_MINER_H_
