#include "discovery/discovery.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace beas {

Result<DiscoveryResult> DiscoverAccessSchema(
    const Database& db, const std::vector<std::string>& workload_sql,
    const DiscoveryOptions& options) {
  BEAS_ASSIGN_OR_RETURN(std::vector<CandidatePattern> candidates,
                        MineCandidates(db, workload_sql));

  DiscoveryResult result;
  result.report += "discovery: " + std::to_string(candidates.size()) +
                   " candidate patterns from " +
                   std::to_string(workload_sql.size()) + " queries\n";

  struct Scored {
    CandidateProfile profile;
    double utility = 0;
  };
  std::vector<Scored> scored;
  for (const CandidatePattern& pattern : candidates) {
    auto table = db.catalog().GetTable(pattern.table);
    if (!table.ok()) continue;
    BEAS_ASSIGN_OR_RETURN(CandidateProfile profile,
                          ProfileCandidate(*(*table)->heap(), pattern));
    if (profile.num_keys == 0) {
      result.rejected.push_back(profile);
      result.report += "  reject (no keys): " + profile.ToString() + "\n";
      continue;
    }
    if (profile.observed_n > options.max_n) {
      result.rejected.push_back(profile);
      result.report += "  reject (N too large): " + profile.ToString() + "\n";
      continue;
    }
    Scored s;
    s.profile = std::move(profile);
    // Multi-criteria utility: query-load benefit (pattern weight) damped by
    // the bound size (large N = weaker pruning), per projected byte.
    double n_term =
        1.0 + options.n_penalty *
                  std::log2(1.0 + static_cast<double>(s.profile.observed_n));
    double bytes = std::max<double>(1.0, static_cast<double>(s.profile.approx_bytes));
    s.utility = s.profile.pattern.weight / n_term / bytes;
    scored.push_back(std::move(s));
  }

  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.utility > b.utility;
  });

  size_t counter = 0;
  for (Scored& s : scored) {
    if (result.bytes_used + s.profile.approx_bytes >
        options.storage_budget_bytes) {
      result.rejected.push_back(s.profile);
      result.report += "  reject (over budget): " + s.profile.ToString() + "\n";
      continue;
    }
    AccessConstraint constraint;
    constraint.name = "psi" + std::to_string(++counter);
    constraint.table = s.profile.pattern.table;
    constraint.x_attrs = s.profile.pattern.x_attrs;
    constraint.y_attrs = s.profile.pattern.y_attrs;
    constraint.limit_n = static_cast<uint64_t>(std::ceil(
        static_cast<double>(std::max<uint64_t>(s.profile.observed_n, 1)) *
        std::max(options.n_headroom, 1.0)));
    Status added = result.schema.Add(constraint);
    if (!added.ok()) continue;  // duplicate shape
    result.bytes_used += s.profile.approx_bytes;
    result.accepted.push_back(s.profile);
    result.report += "  accept " + constraint.ToString() +
                     StringPrintf(" (utility=%.3g, ~%llu bytes)\n", s.utility,
                                  static_cast<unsigned long long>(
                                      s.profile.approx_bytes));
  }
  result.report += StringPrintf(
      "selected %zu constraints, ~%llu of %llu budget bytes\n",
      result.schema.size(), static_cast<unsigned long long>(result.bytes_used),
      static_cast<unsigned long long>(options.storage_budget_bytes));
  return result;
}

}  // namespace beas
