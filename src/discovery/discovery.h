#ifndef BEAS_DISCOVERY_DISCOVERY_H_
#define BEAS_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "asx/access_schema.h"
#include "common/result.h"
#include "discovery/profiler.h"

namespace beas {

/// \brief Knobs of the discovery module's multi-criteria objective
/// (paper §3: "(a) performance of bounded evaluation of the query load,
/// (b) storage limit for indices, (c) historical query patterns, and
/// (d) statistics of datasets").
struct DiscoveryOptions {
  /// (b) Total index storage budget; candidates are greedily selected
  /// under this cap.
  uint64_t storage_budget_bytes = 256ull << 20;

  /// Candidates whose observed N exceeds this are rejected outright:
  /// a huge N gives useless bounds. (a): small N = fast bounded plans.
  uint64_t max_n = 1u << 20;

  /// Declared N = observed N rounded up by this headroom factor, so the
  /// constraint survives modest data growth before readjustment.
  double n_headroom = 1.0;

  /// Relative weight of the N-penalty in the utility score.
  double n_penalty = 0.25;
};

/// \brief Output of discovery: the selected access schema plus the
/// accept/reject trail for the demo walkthrough (Fig. 2(D/E)).
struct DiscoveryResult {
  AccessSchema schema;
  std::vector<CandidateProfile> accepted;
  std::vector<CandidateProfile> rejected;
  uint64_t bytes_used = 0;
  std::string report;  ///< human-readable selection log
};

/// \brief Discovers an access schema from a dataset and a historical
/// query workload under a storage budget.
///
/// Pipeline: mine candidate (X → Y) patterns from the workload, profile
/// each against the data (observed N, index size), score by
/// utility = weight / (1 + penalty·log2(1+N)) per byte, then select
/// greedily under the storage budget. Names constraints "psi1", "psi2"...
Result<DiscoveryResult> DiscoverAccessSchema(
    const Database& db, const std::vector<std::string>& workload_sql,
    const DiscoveryOptions& options = DiscoveryOptions());

}  // namespace beas

#endif  // BEAS_DISCOVERY_DISCOVERY_H_
