#include "discovery/profiler.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace beas {

std::string CandidateProfile::ToString() const {
  return pattern.ToString() +
         StringPrintf(" | observed_n=%llu keys=%llu entries=%llu ~%llu bytes",
                      static_cast<unsigned long long>(observed_n),
                      static_cast<unsigned long long>(num_keys),
                      static_cast<unsigned long long>(index_entries),
                      static_cast<unsigned long long>(approx_bytes));
}

Result<CandidateProfile> ProfileCandidate(const TableHeap& heap,
                                          const CandidatePattern& pattern) {
  const Schema& schema = heap.schema();
  std::vector<size_t> x_cols;
  std::vector<size_t> y_cols;
  for (const std::string& attr : pattern.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attr));
    x_cols.push_back(idx);
  }
  for (const std::string& attr : pattern.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attr));
    y_cols.push_back(idx);
  }

  std::unordered_map<ValueVec,
                     std::unordered_set<ValueVec, ValueVecHash, ValueVecEq>,
                     ValueVecHash, ValueVecEq>
      groups;
  for (auto it = heap.Begin(); it.Valid(); it.Next()) {
    const Row& row = it.row();
    ValueVec key;
    key.reserve(x_cols.size());
    bool null_key = false;
    for (size_t c : x_cols) {
      if (row[c].is_null()) null_key = true;
      key.push_back(row[c]);
    }
    if (null_key) continue;
    ValueVec y;
    y.reserve(y_cols.size());
    for (size_t c : y_cols) y.push_back(row[c]);
    groups[std::move(key)].insert(std::move(y));
  }

  CandidateProfile profile;
  profile.pattern = pattern;
  profile.num_keys = groups.size();
  for (const auto& [key, ys] : groups) {
    profile.observed_n = std::max<uint64_t>(profile.observed_n, ys.size());
    profile.index_entries += ys.size();
  }
  constexpr uint64_t kValueBytes = 32;
  constexpr uint64_t kBucketOverhead = 64;
  profile.approx_bytes =
      profile.num_keys * (x_cols.size() * kValueBytes + kBucketOverhead) +
      profile.index_entries * (y_cols.size() * kValueBytes + 16);
  return profile;
}

}  // namespace beas
