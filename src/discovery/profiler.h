#ifndef BEAS_DISCOVERY_PROFILER_H_
#define BEAS_DISCOVERY_PROFILER_H_

#include "common/result.h"
#include "discovery/candidate_miner.h"
#include "storage/table_heap.h"

namespace beas {

/// \brief A candidate pattern after profiling against the actual data:
/// the observed cardinality bound and the projected index cost.
struct CandidateProfile {
  CandidatePattern pattern;
  uint64_t observed_n = 0;     ///< max distinct Y per X-value in the data
  uint64_t num_keys = 0;       ///< distinct X-values
  uint64_t index_entries = 0;  ///< total distinct (X, Y) pairs
  uint64_t approx_bytes = 0;   ///< projected index footprint

  std::string ToString() const;
};

/// \brief Profiles a candidate with one grouping pass over the table
/// (paper §3: discovery considers "(d) statistics of datasets").
Result<CandidateProfile> ProfileCandidate(const TableHeap& heap,
                                          const CandidatePattern& pattern);

}  // namespace beas

#endif  // BEAS_DISCOVERY_PROFILER_H_
