#include "durability/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace beas {
namespace durability {

namespace {

struct CrashConfig {
  std::string point;       ///< empty = disabled
  unsigned long nth = 1;   ///< crash on the nth hit (1-based)
  std::atomic<unsigned long> hits{0};
};

void ParseSpec(CrashConfig* config, const char* spec) {
  config->point.clear();
  config->nth = 1;
  config->hits.store(0);
  if (spec == nullptr || *spec == '\0') return;
  std::string s = spec;
  size_t colon = s.find(':');
  if (colon == std::string::npos) {
    config->point = s;
  } else {
    config->point = s.substr(0, colon);
    config->nth = std::strtoul(s.c_str() + colon + 1, nullptr, 10);
    if (config->nth == 0) config->nth = 1;
  }
}

/// Parsed once per process: the harness sets the variable in the child
/// between fork and the first durability call (or overrides it with
/// SetCrashPointForTesting when the parse already happened pre-fork).
CrashConfig& Config() {
  static CrashConfig config;
  static bool parsed = [] {
    ParseSpec(&config, std::getenv("BEAS_CRASH_POINT"));
    return true;
  }();
  (void)parsed;
  return config;
}

}  // namespace

void SetCrashPointForTesting(const char* spec) { ParseSpec(&Config(), spec); }

void MaybeCrash(const char* point) {
  CrashConfig& config = Config();
  if (config.point.empty() || config.point != point) return;
  if (config.hits.fetch_add(1) + 1 == config.nth) {
    _exit(kCrashExitCode);
  }
}

}  // namespace durability
}  // namespace beas
