#include "durability/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace beas {
namespace durability {

namespace {

struct ArmedPoint {
  std::string point;
  unsigned long nth = 1;  ///< fire on the nth hit (1-based)
  std::atomic<unsigned long> hits{0};
};

struct CrashConfig {
  /// unique_ptr because the atomic hit counter is not movable.
  std::vector<std::unique_ptr<ArmedPoint>> points;
};

void ParseSpec(CrashConfig* config, const char* spec) {
  config->points.clear();
  if (spec == nullptr || *spec == '\0') return;
  std::string s = spec;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    std::string entry = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!entry.empty()) {
      auto armed = std::make_unique<ArmedPoint>();
      size_t colon = entry.find(':');
      if (colon == std::string::npos) {
        armed->point = entry;
      } else {
        armed->point = entry.substr(0, colon);
        armed->nth = std::strtoul(entry.c_str() + colon + 1, nullptr, 10);
        if (armed->nth == 0) armed->nth = 1;
      }
      config->points.push_back(std::move(armed));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

/// Parsed once per process: the harness sets the variable in the child
/// between fork and the first durability call (or overrides it with
/// SetCrashPointForTesting when the parse already happened pre-fork).
CrashConfig& Config() {
  static CrashConfig config;
  static bool parsed = [] {
    ParseSpec(&config, std::getenv("BEAS_CRASH_POINT"));
    return true;
  }();
  (void)parsed;
  return config;
}

/// True iff `point` is armed and this call is its nth hit.
bool Hit(const char* point) {
  for (auto& armed : Config().points) {
    if (armed->point != point) continue;
    if (armed->hits.fetch_add(1) + 1 == armed->nth) return true;
  }
  return false;
}

}  // namespace

void SetCrashPointForTesting(const char* spec) { ParseSpec(&Config(), spec); }

void MaybeCrash(const char* point) {
  if (Hit(point)) _exit(kCrashExitCode);
}

bool MaybeFail(const char* point) { return Hit(point); }

}  // namespace durability
}  // namespace beas
