#ifndef BEAS_DURABILITY_CRASH_POINT_H_
#define BEAS_DURABILITY_CRASH_POINT_H_

namespace beas {
namespace durability {

/// \brief Kill-point fault injection for the recovery test harness.
///
/// The durability layer calls MaybeCrash("<point>") at every crash-window
/// boundary of interest. Normally a no-op; when the environment variable
/// `BEAS_CRASH_POINT` is set to `<point>` (or `<point>:N` for the N-th
/// hit, 1-based; several points comma-separated), the process dies with
/// `_exit(kCrashExitCode)` at that site — no destructors, no stream
/// flushes, exactly like a kill — so the fault-injection tests can fork a
/// child, let it die mid-protocol, and assert that recovery restores the
/// committed prefix bit-identically.
///
/// Named points (in protocol order):
///   wal_append          after a group's bytes are appended, before fsync
///   wal_pre_fsync       immediately before the group fsync
///   wal_post_fsync      after fsync, before the group is applied
///   ckpt_mid            after segments are written, before the manifest
///                       rename commits the checkpoint
///   ckpt_post_truncate  after the WALs are truncated, before old-segment
///                       garbage collection
void MaybeCrash(const char* point);

/// Non-fatal variant for IO fault injection: true exactly at the armed
/// hit of `point` (same `BEAS_CRASH_POINT` syntax), false otherwise. The
/// caller turns a true into a synthetic IO error, so tests can exercise
/// the error-handling paths a real disk fault would take.
///
/// Named points:
///   wal_group_io     fails a group commit after its bytes were appended
///                    (CRC-valid but never fsynced — the nacked-group
///                    shape a failed fsync leaves behind)
///   wal_repair_fail  fails the truncate-repair of a failed group,
///                    latching that shard's WAL
bool MaybeFail(const char* point);

/// Exit code used by injected crashes, distinguishable from aborts and
/// clean exits in the parent's waitpid status.
constexpr int kCrashExitCode = 42;

/// Overrides the armed crash point in-process, `spec` in the same
/// `<point>[:N]` syntax as the environment variable (null or "" disarms).
/// The env var is parsed once per process, which a fork()ed test child
/// inherits already-parsed — the harness calls this right after fork
/// instead. Resets the hit counter.
void SetCrashPointForTesting(const char* spec);

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_CRASH_POINT_H_
