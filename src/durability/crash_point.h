#ifndef BEAS_DURABILITY_CRASH_POINT_H_
#define BEAS_DURABILITY_CRASH_POINT_H_

namespace beas {
namespace durability {

/// \brief Kill-point fault injection for the recovery test harness.
///
/// The durability layer calls MaybeCrash("<point>") at every crash-window
/// boundary of interest. Normally a no-op; when the environment variable
/// `BEAS_CRASH_POINT` is set to `<point>` (or `<point>:N` for the N-th
/// hit, 1-based), the process dies with `_exit(kCrashExitCode)` at that
/// site — no destructors, no stream flushes, exactly like a kill — so the
/// fault-injection tests can fork a child, let it die mid-protocol, and
/// assert that recovery restores the committed prefix bit-identically.
///
/// Named points (in protocol order):
///   wal_append          after a group's bytes are appended, before fsync
///   wal_pre_fsync       immediately before the group fsync
///   wal_post_fsync      after fsync, before the group is applied
///   ckpt_mid            after segments are written, before the manifest
///                       rename commits the checkpoint
///   ckpt_post_truncate  after the WALs are truncated, before old-segment
///                       garbage collection
void MaybeCrash(const char* point);

/// Exit code used by injected crashes, distinguishable from aborts and
/// clean exits in the parent's waitpid status.
constexpr int kCrashExitCode = 42;

/// Overrides the armed crash point in-process, `spec` in the same
/// `<point>[:N]` syntax as the environment variable (null or "" disarms).
/// The env var is parsed once per process, which a fork()ed test child
/// inherits already-parsed — the harness calls this right after fork
/// instead. Resets the hit counter.
void SetCrashPointForTesting(const char* spec);

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_CRASH_POINT_H_
