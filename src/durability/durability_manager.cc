#include "durability/durability_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "durability/segment.h"

namespace beas {
namespace durability {

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kCkMetaName = "CKMETA";

Status MetaLogFailedError() {
  return Status::Unavailable(
      "durability: a structural change could not be logged; the in-memory "
      "state is ahead of the WAL, refusing further durable writes");
}

Status WalLatchedError() {
  return Status::Unavailable(
      "durability: shard WAL latched after an unrepairable group-commit "
      "failure; refusing further durable writes on this shard");
}

/// Disk-full detection by message shape: the posix Env renders every IO
/// error through std::strerror, so ENOSPC always carries this text (and
/// the fail-point `error(enospc)` action injects the same shape).
bool IsNoSpaceError(const Status& st) {
  return st.code() == StatusCode::kIoError &&
         st.message().find("No space left on device") != std::string::npos;
}

/// Merges an injected fail-point status into a protocol status: crash
/// actions never return, sleep/off return OK, error actions surface as
/// the fault `st` would have been.
Status MergePoint(Status st, const char* site) {
  Status injected = fail::Point(site);
  return st.ok() ? injected : st;
}

bool IsTransientTable(const DurabilityOptions& options,
                      const std::string& table) {
  for (const std::string& t : options.transient_tables) {
    if (EqualsIgnoreCase(t, table)) return true;
  }
  return false;
}

/// Parses "ck<digits>" into the checkpoint id; 0 when malformed.
uint64_t ParseCkDirName(const std::string& name) {
  if (name.size() < 3 || name.compare(0, 2, "ck") != 0) return 0;
  uint64_t id = 0;
  for (size_t i = 2; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

DurabilityManager::DurabilityManager(Database* db, AsCatalog* catalog,
                                     DurabilityOptions opts)
    : db_(db),
      catalog_(catalog),
      options_(std::move(opts)),
      env_(options_.env != nullptr ? options_.env : Env::Default()) {}

DurabilityManager::~DurabilityManager() {
  stop_.store(true, std::memory_order_release);
  for (auto& wal : shard_wals_) {
    { std::lock_guard<std::mutex> lk(wal->wake_mutex); }
    wal->wake.notify_all();
  }
  for (auto& wal : shard_wals_) {
    if (wal->drainer.joinable()) wal->drainer.join();
  }
  // The drainers flush their queues before exiting; anything still here
  // means a producer raced shutdown. Fail its ack rather than hang it.
  for (auto& wal : shard_wals_) {
    Pending* p = wal->head.exchange(nullptr, std::memory_order_acq_rel);
    while (p != nullptr) {
      Pending* next = p->next;
      p->ack.set_value(Status::Internal("durability manager shut down"));
      delete p;
      p = next;
    }
  }
}

std::string DurabilityManager::WalPath(size_t wal_shard) const {
  return options_.dir + "/wal/shard_" + std::to_string(wal_shard) + ".wal";
}

std::string DurabilityManager::MetaWalPath() const {
  return options_.dir + "/wal/meta.wal";
}

std::string DurabilityManager::SegDir(uint64_t checkpoint_id) const {
  return options_.dir + "/seg/ck" + std::to_string(checkpoint_id);
}

Status DurabilityManager::Open() {
  open_status_ = [&]() -> Status {
    if (options_.dir.empty()) {
      return Status::InvalidArgument("durability dir must be non-empty");
    }
    BEAS_RETURN_NOT_OK(Recover());

    wal_shard_count_ = db_->num_shard_locks();
    for (size_t k = 0; k < wal_shard_count_; ++k) {
      auto wal = std::make_unique<ShardWal>();
      BEAS_RETURN_NOT_OK(InitWalFile(env_, WalPath(k)));
      BEAS_ASSIGN_OR_RETURN(wal->file, env_->NewWritableFile(WalPath(k)));
      shard_wals_.push_back(std::move(wal));
    }
    BEAS_RETURN_NOT_OK(InitWalFile(env_, MetaWalPath()));
    BEAS_ASSIGN_OR_RETURN(meta_wal_, env_->NewWritableFile(MetaWalPath()));

    // Structural-op logging hooks. Registered after recovery, so replayed
    // operations were never at risk of being re-logged; from here on,
    // every DDL / constraint change / dict rebuild that reaches the
    // engine gets a meta record.
    db_->RegisterDdlHook([this](const std::string& table) { OnDdl(table); });
    catalog_->AddChangeListener(
        [this](AsCatalog::ChangeKind kind, const std::string& table,
               const std::string& name) { OnCatalogChange(kind, table, name); });

    for (size_t k = 0; k < wal_shard_count_; ++k) {
      shard_wals_[k]->drainer = std::thread([this, k] { DrainerLoop(k); });
    }
    opened_ = true;
    return Status::OK();
  }();
  return open_status_;
}

// ---------------------------------------------------------------------------
// Durable write paths.
// ---------------------------------------------------------------------------

std::future<Status> DurabilityManager::Enqueue(size_t wal_shard,
                                               WalRecordType type,
                                               std::string payload) {
  ShardWal& wal = *shard_wals_[wal_shard];
  Pending* p = new Pending;
  p->record.type = type;
  p->record.payload = std::move(payload);
  std::future<Status> ack = p->ack.get_future();
  // A latched shard fast-fails here; a racing latch is caught by the
  // drainer, which nacks everything it pops from a latched shard.
  if (wal.io_failed.load(std::memory_order_acquire)) {
    p->ack.set_value(WalLatchedError());
    delete p;
    return ack;
  }
  wal.enqueued.fetch_add(1, std::memory_order_relaxed);
  Pending* head = wal.head.load(std::memory_order_relaxed);
  do {
    p->next = head;
  } while (!wal.head.compare_exchange_weak(head, p, std::memory_order_release,
                                           std::memory_order_relaxed));
  // Empty critical section: pairs the notify with the drainer's wait so a
  // wakeup between its predicate check and its sleep cannot be lost.
  { std::lock_guard<std::mutex> lk(wal.wake_mutex); }
  wal.wake.notify_one();
  return ack;
}

Status DurabilityManager::Insert(const std::string& table, Row row) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  // Validate + coerce before logging: doomed rows are rejected without
  // burning WAL bytes, and the record routes to the queue of the shard it
  // will apply to (its drainer's apply blocks only on that shard's lock).
  size_t shard = 0;
  BEAS_RETURN_NOT_OK(db_->ValidateForInsert(table, &row, &shard));
  BEAS_RETURN_NOT_OK(CheckQuarantine(table, static_cast<int64_t>(shard)));
  ByteSink payload;
  payload.PutString(table);
  WriteRow(&payload, row);
  return Enqueue(shard % wal_shard_count_, WalRecordType::kInsert,
                 payload.Take())
      .get();
}

Status DurabilityManager::InsertBatch(const std::string& table,
                                      std::vector<Row> rows) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  if (rows.empty()) return Status::OK();
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  // A batch can land in any heap shard, so any quarantined shard of the
  // table refuses it.
  BEAS_RETURN_NOT_OK(CheckQuarantine(table, -1));
  // Route by the first row only; the batch is logged whole and applied
  // through Database::InsertBatch, whose validate-then-commit (including
  // the partial commit before a bad row) is deterministic — replay
  // reproduces exactly what the live apply did, error and all.
  size_t shard = 0;
  {
    Row probe = rows.front();
    if (!db_->ValidateForInsert(table, &probe, &shard).ok()) shard = 0;
  }
  ByteSink payload;
  payload.PutString(table);
  payload.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) WriteRow(&payload, row);
  return Enqueue(shard % wal_shard_count_, WalRecordType::kInsertBatch,
                 payload.Take())
      .get();
}

Status DurabilityManager::Delete(const std::string& table, const Row& row) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  // A delete scans every shard of the table.
  BEAS_RETURN_NOT_OK(CheckQuarantine(table, -1));
  ByteSink payload;
  payload.PutString(table);
  WriteRow(&payload, row);
  // A delete scans every shard, so it has no natural home queue; spread
  // by content hash. Sequencing against the inserts it targets is by
  // LSN: a caller that deletes only after its insert acked enqueues
  // strictly later, so the delete is stamped (and replayed) later.
  size_t wal_shard =
      Crc32c(payload.str().data(), payload.size()) % wal_shard_count_;
  return Enqueue(wal_shard, WalRecordType::kDelete, payload.Take()).get();
}

Result<TableInfo*> DurabilityManager::CreateTable(const std::string& name,
                                                  const Schema& schema) {
  if (!open_status_.ok()) return open_status_;
  StructuralGate gate(this);
  // Apply-then-log: the DDL hook fires inside CreateTable (on success
  // only) and writes the meta record under this gate.
  Result<TableInfo*> info = db_->CreateTable(name, schema);
  if (info.ok() && meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  return info;
}

Status DurabilityManager::CheckQuarantine(const std::string& table,
                                          int64_t shard) const {
  if (quarantined_count_.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lk(quarantine_mutex_);
  const std::string key = ToLower(table);
  bool hit = false;
  if (shard >= 0) {
    hit = quarantined_.count({key, static_cast<size_t>(shard)}) != 0;
  } else {
    for (const auto& q : quarantined_) {
      if (q.first == key) {
        hit = true;
        break;
      }
    }
  }
  if (!hit) return Status::OK();
  return Status::Unavailable(
      "durability: table '" + table +
      "' has a shard quarantined by the scrubber pending repair; durable "
      "writes refused (reads still serve)");
}

bool DurabilityManager::IsShardQuarantined(const std::string& table,
                                           size_t shard) const {
  std::lock_guard<std::mutex> lk(quarantine_mutex_);
  return quarantined_.count({ToLower(table), shard}) != 0;
}

// ---------------------------------------------------------------------------
// Commit gate.
// ---------------------------------------------------------------------------

void DurabilityManager::EnterStructural() {
  commit_mutex_.lock();
  Barrier();
}

void DurabilityManager::LeaveStructural() { commit_mutex_.unlock(); }

void DurabilityManager::Barrier() {
  // Data writers hold the gate shared from enqueue to ack, so by the time
  // the exclusive lock is ours the queues are normally already drained;
  // the wait below is the formal guarantee, not the common path.
  for (auto& wal : shard_wals_) {
    auto drained = [&] {
      return wal->applied.load(std::memory_order_acquire) >=
             wal->enqueued.load(std::memory_order_acquire);
    };
    if (drained()) continue;
    // The drainer bumps applied before taking wake_mutex to notify, so a
    // bump concurrent with this locked predicate check either is seen
    // here or its notify lands after the wait begins — never lost.
    std::unique_lock<std::mutex> lk(wal->wake_mutex);
    wal->wake.notify_one();
    wal->applied_cv.wait(lk, drained);
  }
}

// ---------------------------------------------------------------------------
// Group-commit drainer.
// ---------------------------------------------------------------------------

void DurabilityManager::DrainerLoop(size_t wal_shard) {
  ShardWal& wal = *shard_wals_[wal_shard];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wal.wake_mutex);
      wal.wake.wait_for(lk, std::chrono::milliseconds(50), [&] {
        return wal.head.load(std::memory_order_acquire) != nullptr ||
               stop_.load(std::memory_order_acquire);
      });
    }
    Pending* batch = wal.head.exchange(nullptr, std::memory_order_acq_rel);
    if (batch == nullptr) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    // The stack pops newest-first; reverse to FIFO so apply order is
    // enqueue order.
    Pending* fifo = nullptr;
    while (batch != nullptr) {
      Pending* next = batch->next;
      batch->next = fifo;
      fifo = batch;
      batch = next;
    }
    // A latched shard nacks everything it pops: its file may end in bytes
    // the accounting cannot vouch for, and appending past them would let
    // recovery (which stops at the first invalid record) silently drop
    // the new records despite their acks.
    Status io = wal.io_failed.load(std::memory_order_acquire)
                    ? WalLatchedError()
                    : Status::OK();
    ByteSink group;
    if (io.ok()) {
      const uint64_t good_offset = wal.file->size();
      // Stamp LSNs at pop time: per-queue apply order equals LSN order by
      // construction, and an op enqueued after another op's ack is
      // stamped strictly later even across queues.
      uint64_t count = 0;
      for (Pending* p = fifo; p != nullptr; p = p->next) {
        p->record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
        EncodeWalRecord(&group, p->record);
        ++count;
      }
      // Commit with bounded retry: a transient append/fsync fault is
      // repaired (truncate back to the acked prefix, so nothing torn or
      // nacked can sit mid-file), backed off, and re-attempted — the
      // group's writers see a slow ack instead of a spurious nack. Only
      // when retries exhaust (a hard fault) or the repair itself fails
      // (the file can no longer be vouched for) does the shard latch.
      uint64_t attempt = 0;
      for (;;) {
        Status commit =
            wal.file->Append(group.str().data(), group.size());
        commit = MergePoint(std::move(commit), "wal_append");
        if (commit.ok()) commit = fail::Point("wal_group_io");
        if (commit.ok()) commit = fail::Point("wal_pre_fsync");
        if (commit.ok() && options_.fsync) {
          commit = wal.file->Sync();
          wal_fsyncs_total_.fetch_add(1, std::memory_order_relaxed);
        }
        if (commit.ok()) commit = fail::Point("wal_post_fsync");
        if (commit.ok()) {
          wal_bytes_total_.fetch_add(group.size(), std::memory_order_relaxed);
          wal_records_total_.fetch_add(count, std::memory_order_relaxed);
          wal_group_commits_total_.fetch_add(1, std::memory_order_relaxed);
          wal_bytes_since_checkpoint_.fetch_add(group.size(),
                                                std::memory_order_relaxed);
          break;
        }
        // Repair before deciding anything. A partial append leaves a
        // torn record (possibly preceded by whole CRC-valid records of
        // this uncommitted group) past the acked prefix; a failed fsync
        // leaves the whole group CRC-valid in the page cache. Either way
        // the file must end at the last acked byte: cut it back and
        // persist the cut, so the bytes can neither shadow later acked
        // groups at recovery nor be replayed themselves.
        Status repair = wal.file->Truncate(good_offset);
        if (repair.ok() && options_.fsync) repair = wal.file->Sync();
        repair = MergePoint(std::move(repair), "wal_repair_fail");
        if (!repair.ok()) {
          wal.io_failed.store(true, std::memory_order_release);
          io = WalLatchedError();
          break;
        }
        if (attempt >= options_.wal_retry_limit) {
          // Hard fault: the file is repaired (ends at the acked prefix)
          // but the device keeps refusing the group. Latch and surface a
          // typed refusal — "acked but unrecoverable" stays impossible.
          wal.io_failed.store(true, std::memory_order_release);
          io = Status::Unavailable(
              "durability: WAL group commit failed after " +
              std::to_string(attempt) + " retries, shard latched: " +
              commit.message());
          break;
        }
        ++attempt;
        wal_retries_total_.fetch_add(1, std::memory_order_relaxed);
        uint64_t backoff = options_.wal_retry_backoff_ms << (attempt - 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min<uint64_t>(backoff, 100)));
      }
    }
    // Apply in FIFO order, then ack. On an IO failure nothing applies:
    // the group was cut back out of the log (or the shard latched) —
    // acking (or applying) would promise more than the log holds.
    for (Pending* p = fifo; p != nullptr;) {
      Pending* next = p->next;
      Status st = io.ok() ? ApplyRecord(p->record) : io;
      p->ack.set_value(std::move(st));
      wal.applied.fetch_add(1, std::memory_order_release);
      delete p;
      p = next;
    }
    // Pairs with Barrier(): applied is published above, the empty
    // critical section orders this notify after its locked check.
    { std::lock_guard<std::mutex> lk(wal.wake_mutex); }
    wal.applied_cv.notify_all();
  }
}

void DurabilityManager::MarkTableDirty(const std::string& table) {
  std::lock_guard<std::mutex> lk(dirty_mutex_);
  dirty_tables_.insert(ToLower(table));
}

void DurabilityManager::MarkStructuralDirty() {
  std::lock_guard<std::mutex> lk(dirty_mutex_);
  structural_dirty_ = true;
}

Status DurabilityManager::ApplyRecord(const WalRecord& record) {
  ByteReader r(record.payload.data(), record.payload.size());
  switch (record.type) {
    case WalRecordType::kInsert: {
      std::string table = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
      if (!r.ok()) return Status::IoError("bad insert record");
      MarkTableDirty(table);
      return db_->Insert(table, std::move(row));
    }
    case WalRecordType::kInsertBatch: {
      std::string table = r.GetString();
      uint32_t count = r.GetU32();
      if (!r.ok() || count > r.remaining()) {
        return Status::IoError("bad insert-batch record");
      }
      std::vector<Row> rows;
      rows.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
        rows.push_back(std::move(row));
      }
      MarkTableDirty(table);
      return db_->InsertBatch(table, std::move(rows));
    }
    case WalRecordType::kDelete: {
      std::string table = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
      if (!r.ok()) return Status::IoError("bad delete record");
      MarkTableDirty(table);
      return db_->DeleteWhereEquals(table, row);
    }
    // Structural records never flow through the shard queues; they are
    // applied here only during recovery replay (single-threaded).
    case WalRecordType::kCreateTable: {
      std::string name = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
      MarkStructuralDirty();
      return db_->CreateTable(name, schema).status();
    }
    case WalRecordType::kRegisterConstraint: {
      BEAS_ASSIGN_OR_RETURN(AccessConstraint constraint, ReadConstraint(&r));
      MarkStructuralDirty();
      Database::StructuralScope lock(db_);
      return catalog_->Register(std::move(constraint));
    }
    case WalRecordType::kUnregisterConstraint: {
      std::string name = r.GetString();
      if (!r.ok()) return Status::IoError("bad unregister record");
      MarkStructuralDirty();
      Database::StructuralScope lock(db_);
      return catalog_->Unregister(name);
    }
    case WalRecordType::kAdjustLimit: {
      std::string name = r.GetString();
      uint64_t limit = r.GetU64();
      if (!r.ok()) return Status::IoError("bad adjust-limit record");
      MarkStructuralDirty();
      Database::StructuralScope lock(db_);
      return catalog_->AdjustLimit(name, limit);
    }
    case WalRecordType::kDictRebuild: {
      std::string table = r.GetString();
      if (!r.ok()) return Status::IoError("bad dict-rebuild record");
      MarkStructuralDirty();
      Database::StructuralScope lock(db_);
      return catalog_->RebuildTableDictSorted(table).status();
    }
  }
  return Status::IoError("unknown WAL record type");
}

// ---------------------------------------------------------------------------
// Structural-op logging (meta WAL).
// ---------------------------------------------------------------------------

Status DurabilityManager::LogMeta(WalRecordType type, std::string payload) {
  // Any structural change invalidates the checkpoint-time memory
  // baselines (conservatively: the next checkpoint re-arms the scrubber).
  MarkStructuralDirty();
  WalRecord record;
  record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  record.type = type;
  record.payload = std::move(payload);
  ByteSink frame;
  EncodeWalRecord(&frame, record);
  std::lock_guard<std::mutex> lk(meta_mutex_);
  if (meta_wal_ == nullptr) {
    return Status::Unavailable("durability: meta WAL unavailable");
  }
  BEAS_RETURN_NOT_OK(meta_wal_->Append(frame.str().data(), frame.size()));
  if (options_.fsync) {
    BEAS_RETURN_NOT_OK(meta_wal_->Sync());
    wal_fsyncs_total_.fetch_add(1, std::memory_order_relaxed);
  }
  wal_bytes_total_.fetch_add(frame.size(), std::memory_order_relaxed);
  wal_records_total_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_since_checkpoint_.fetch_add(frame.size(),
                                        std::memory_order_relaxed);
  return Status::OK();
}

void DurabilityManager::OnDdl(const std::string& table) {
  if (replaying_ || IsTransientTable(options_, table)) return;
  Result<TableInfo*> info = db_->catalog()->GetTable(table);
  if (!info.ok()) return;
  ByteSink payload;
  payload.PutString((*info)->name());
  WriteSchema(&payload, (*info)->schema());
  if (!LogMeta(WalRecordType::kCreateTable, payload.Take()).ok()) {
    meta_log_failed_.store(true, std::memory_order_release);
  }
}

void DurabilityManager::OnCatalogChange(AsCatalog::ChangeKind kind,
                                        const std::string& table,
                                        const std::string& name) {
  if (replaying_ || IsTransientTable(options_, table)) return;
  Status logged = Status::OK();
  switch (kind) {
    case AsCatalog::ChangeKind::kConstraintRegistered: {
      Result<const AccessConstraint*> c = catalog_->schema().Find(name);
      if (!c.ok()) return;
      ByteSink payload;
      WriteConstraint(&payload, **c);
      logged = LogMeta(WalRecordType::kRegisterConstraint, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kConstraintUnregistered: {
      ByteSink payload;
      payload.PutString(name);
      logged = LogMeta(WalRecordType::kUnregisterConstraint, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kLimitAdjusted: {
      Result<const AccessConstraint*> c = catalog_->schema().Find(name);
      if (!c.ok()) return;
      ByteSink payload;
      payload.PutString(name);
      payload.PutU64((*c)->limit_n);
      logged = LogMeta(WalRecordType::kAdjustLimit, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kDictRebuilt: {
      ByteSink payload;
      payload.PutString(table);
      logged = LogMeta(WalRecordType::kDictRebuild, payload.Take());
      break;
    }
  }
  if (!logged.ok()) meta_log_failed_.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Checkpoints.
// ---------------------------------------------------------------------------

Status DurabilityManager::Checkpoint() {
  if (!open_status_.ok()) return open_status_;
  StructuralGate gate(this);
  Database::StructuralScope lock(db_);
  return CheckpointLocked();
}

Status DurabilityManager::MaybeCheckpointLocked(bool* did_out) {
  if (did_out != nullptr) *did_out = false;
  if (!opened_) return Status::OK();
  if (wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) <
      options_.checkpoint_min_wal_bytes) {
    return Status::OK();
  }
  if (did_out != nullptr) *did_out = true;
  return CheckpointLocked();
}

Status DurabilityManager::WriteCheckpointSegments(
    const std::string& seg_dir, ByteSink* manifest,
    std::vector<SegmentRecord>* segments,
    std::map<std::string, TableBaseline>* tables_out,
    std::map<std::string, uint32_t>* indexes_out) {
  // Every segment write shares the ckpt_write fail-point site so the
  // error sweep (including the error(enospc) disk-full simulation) can
  // fault any file of the set.
  auto write_segment = [&](SegmentRecord rec, std::string payload,
                           uint32_t* crc_out) -> Status {
    BEAS_RETURN_NOT_OK(fail::Point("ckpt_write"));
    uint32_t crc = 0;
    BEAS_RETURN_NOT_OK(
        WriteSegmentFile(env_, rec.path, rec.kind, payload, &crc));
    rec.crc = crc;
    if (crc_out != nullptr) *crc_out = crc;
    segments->push_back(std::move(rec));
    return Status::OK();
  };

  std::vector<std::string> tables;
  for (const std::string& name : db_->catalog()->TableNames()) {
    if (IsTransientTable(options_, name)) continue;
    tables.push_back(name);
  }
  manifest->PutU32(static_cast<uint32_t>(tables.size()));
  for (const std::string& name : tables) {
    BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->GetTable(name));
    manifest->PutString(info->name());
    const std::string base = seg_dir + "/t_" + info->name();
    SegmentRecord meta_rec;
    meta_rec.path = base + ".meta.seg";
    meta_rec.kind = SegmentKind::kTableMeta;
    meta_rec.table = info->name();
    BEAS_RETURN_NOT_OK(write_segment(std::move(meta_rec),
                                     BuildTableMetaPayload(*info), nullptr));
    const TableHeap& heap = *info->heap();
    TableBaseline baseline;
    if (heap.dict() != nullptr) {
      SegmentRecord rec;
      rec.path = base + ".dict.seg";
      rec.kind = SegmentKind::kDict;
      rec.table = info->name();
      baseline.has_dict = true;
      BEAS_RETURN_NOT_OK(write_segment(
          std::move(rec), BuildDictPayload(*heap.dict()), &baseline.dict_crc));
    }
    baseline.shard_crcs.resize(heap.num_shards(), 0);
    for (size_t s = 0; s < heap.num_shards(); ++s) {
      SegmentRecord rec;
      rec.path = base + ".s" + std::to_string(s) + ".seg";
      rec.kind = SegmentKind::kShardRows;
      rec.table = info->name();
      rec.shard = s;
      BEAS_RETURN_NOT_OK(write_segment(std::move(rec),
                                       BuildShardRowsPayload(heap, s),
                                       &baseline.shard_crcs[s]));
    }
    (*tables_out)[info->name()] = std::move(baseline);
  }

  // Constraints in registration order: restore re-adopts them in the same
  // order, so auto-naming and index slots line up with the live catalog.
  const std::vector<AccessConstraint>& constraints =
      catalog_->schema().constraints();
  manifest->PutU32(static_cast<uint32_t>(constraints.size()));
  for (const AccessConstraint& c : constraints) {
    manifest->PutString(c.name);
    const AcIndex* index = catalog_->IndexFor(c.name);
    if (index == nullptr) {
      return Status::Internal("no index for constraint '" + c.name + "'");
    }
    SegmentRecord rec;
    rec.path = seg_dir + "/c_" + c.name + ".idx.seg";
    rec.kind = SegmentKind::kIndex;
    rec.constraint = c.name;
    BEAS_RETURN_NOT_OK(write_segment(std::move(rec), BuildIndexPayload(*index),
                                     &(*indexes_out)[c.name]));
  }

  // CKMETA: a copy of the manifest payload inside the directory itself,
  // making ck<N> self-describing — recovery can fall back to it when a
  // newer checkpoint's segments fail verification.
  {
    SegmentRecord rec;
    rec.path = seg_dir + "/" + kCkMetaName;
    rec.kind = SegmentKind::kManifest;
    BEAS_RETURN_NOT_OK(write_segment(std::move(rec), manifest->str(), nullptr));
  }

  BEAS_RETURN_NOT_OK(env_->SyncDir(seg_dir));
  // ck<N>'s own entry in seg/ must be durable before the manifest can
  // point at it, or a crash leaves a manifest referencing a directory
  // that no longer exists.
  BEAS_RETURN_NOT_OK(env_->SyncDir(options_.dir + "/seg"));
  return fail::Point("ckpt_mid");
}

Status DurabilityManager::RotateWals() {
  auto rotate = [&]() -> Status {
    // Close the live handles first: a posix fd follows its file through
    // the rename, so appends would land in the archived epoch.
    for (auto& wal : shard_wals_) wal->file.reset();
    {
      std::lock_guard<std::mutex> lk(meta_mutex_);
      meta_wal_.reset();
    }
    // wal/prev currently holds the epoch before last — every record in it
    // is covered by both retained checkpoints, so it can go.
    env_->RemoveAll(WalPrevDir());
    BEAS_RETURN_NOT_OK(env_->CreateDir(WalPrevDir()));
    BEAS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                          env_->ListDir(WalDir()));
    for (const std::string& entry : entries) {
      if (entry == "prev") continue;
      BEAS_RETURN_NOT_OK(
          env_->RenameFile(WalDir() + "/" + entry, WalPrevDir() + "/" + entry));
    }
    BEAS_RETURN_NOT_OK(env_->SyncDir(WalDir()));
    BEAS_RETURN_NOT_OK(env_->SyncDir(WalPrevDir()));
    // Fresh epoch.
    for (size_t k = 0; k < wal_shard_count_; ++k) {
      BEAS_RETURN_NOT_OK(InitWalFile(env_, WalPath(k)));
      BEAS_ASSIGN_OR_RETURN(shard_wals_[k]->file,
                            env_->NewWritableFile(WalPath(k)));
    }
    BEAS_RETURN_NOT_OK(InitWalFile(env_, MetaWalPath()));
    std::lock_guard<std::mutex> lk(meta_mutex_);
    BEAS_ASSIGN_OR_RETURN(meta_wal_, env_->NewWritableFile(MetaWalPath()));
    return Status::OK();
  };
  Status st = rotate();
  if (st.ok()) return st;
  // A handle that could not be reopened must not dangle null under the
  // drainers: reopen best-effort, latch what stays closed.
  for (size_t k = 0; k < shard_wals_.size(); ++k) {
    if (shard_wals_[k]->file != nullptr) continue;
    Status reopen = InitWalFile(env_, WalPath(k));
    if (reopen.ok()) {
      Result<std::unique_ptr<WritableFile>> f =
          env_->NewWritableFile(WalPath(k));
      if (f.ok()) shard_wals_[k]->file = std::move(*f);
    }
    if (shard_wals_[k]->file == nullptr) {
      shard_wals_[k]->io_failed.store(true, std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lk(meta_mutex_);
    if (meta_wal_ == nullptr) {
      Status reopen = InitWalFile(env_, MetaWalPath());
      if (reopen.ok()) {
        Result<std::unique_ptr<WritableFile>> f =
            env_->NewWritableFile(MetaWalPath());
        if (f.ok()) meta_wal_ = std::move(*f);
      }
      if (meta_wal_ == nullptr) {
        meta_log_failed_.store(true, std::memory_order_release);
      }
    }
  }
  return st;
}

void DurabilityManager::GcCheckpointDirs(uint64_t keep_id) {
  Result<std::vector<std::string>> entries = env_->ListDir(options_.dir +
                                                           "/seg");
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    uint64_t id = ParseCkDirName(entry);
    // Two generations stay: the live checkpoint and its fallback.
    bool keep = keep_id != 0 &&
                (id == keep_id || (keep_id > 1 && id == keep_id - 1));
    if (!keep) env_->RemoveAll(options_.dir + "/seg/" + entry);
  }
}

Status DurabilityManager::CheckpointLocked() {
  uint64_t id = last_checkpoint_id_ + 1;
  std::string seg_dir = SegDir(id);
  env_->RemoveAll(seg_dir);  // a crash mid-checkpoint may have left a stale try
  BEAS_RETURN_NOT_OK(env_->CreateDir(seg_dir));

  ByteSink manifest;
  manifest.PutU64(id);
  // Every record stamped so far is applied (the gate's barrier ran), so
  // the segments capture exactly the history below this LSN; replay
  // resumes here.
  manifest.PutU64(next_lsn_.load(std::memory_order_relaxed));

  std::vector<SegmentRecord> segments;
  std::map<std::string, TableBaseline> table_baselines;
  std::map<std::string, uint32_t> index_baselines;
  Status wrote = WriteCheckpointSegments(seg_dir, &manifest, &segments,
                                         &table_baselines, &index_baselines);

  // Verify-then-commit: read every written segment back through the Env
  // and check its CRC against the write-time value. A bad read-back means
  // this checkpoint must never be pointed at — the previous one (plus the
  // retained WALs) is still fully intact.
  if (wrote.ok()) {
    Status verified = Status::OK();
    for (const SegmentRecord& rec : segments) {
      uint32_t crc = 0;
      Result<SegmentKind> kind = VerifySegmentFile(env_, rec.path, &crc);
      if (!kind.ok()) {
        verified = kind.status();
        break;
      }
      if (*kind != rec.kind || crc != rec.crc) {
        verified =
            Status::Corruption("checkpoint read-back mismatch: " + rec.path);
        break;
      }
    }
    wrote = MergePoint(std::move(verified), "ckpt_verify");
  }

  if (!wrote.ok()) {
    // Pressure relief: nothing is committed (recovery still reads the
    // previous checkpoint + WAL tail), so the half-written try is pure
    // debt — drop it, and sweep any orphaned older tries while at it
    // (keeping the live checkpoint and its fallback). On a full disk that
    // frees space instead of compounding the stall, and the caller gets
    // the typed capacity verdict.
    env_->RemoveAll(seg_dir);
    GcCheckpointDirs(last_checkpoint_id_);
    if (IsNoSpaceError(wrote)) {
      return Status::ResourceExhausted(
          "checkpoint aborted, segment space reclaimed: " + wrote.message());
    }
    return wrote;
  }

  // Commit point: the manifest (segment-framed, atomically renamed in)
  // flips recovery from the old checkpoint + long WAL to the new one.
  {
    const std::string payload = manifest.Take();
    ByteSink file;
    file.PutU32(kSegMagic);
    file.PutU32(kSegVersion);
    file.PutU8(static_cast<uint8_t>(SegmentKind::kManifest));
    file.PutU32(Crc32c(payload.data(), payload.size()));
    file.PutU64(payload.size());
    file.PutRaw(payload.data(), payload.size());
    BEAS_RETURN_NOT_OK(
        env_->WriteFileAtomic(options_.dir + "/" + kManifestName, file.str()));
  }

  // Rotate the WALs instead of truncating: the outgoing epoch (records
  // since ck<N-1>) moves to wal/prev so a later recovery can still fall
  // back to ck<N-1> and replay it if ck<N>'s segments rot. This also
  // sweeps WAL files of a previous, larger BEAS_SHARDS configuration —
  // their records are covered by this checkpoint too.
  Status rotated = RotateWals();

  // The manifest is committed: bookkeeping must move to the new id even
  // when rotation or the post-truncate fail point injects an error, or
  // the next checkpoint would RemoveAll() the directory the manifest
  // points at.
  Status injected = fail::Point("ckpt_post_truncate");
  last_checkpoint_id_ = id;
  wal_bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
  checkpoints_total_.fetch_add(1, std::memory_order_relaxed);
  current_segments_ = std::move(segments);
  table_baselines_ = std::move(table_baselines);
  index_baselines_ = std::move(index_baselines);
  {
    // The scrubber's memory baselines are valid from this instant.
    std::lock_guard<std::mutex> lk(dirty_mutex_);
    dirty_tables_.clear();
    structural_dirty_ = false;
  }
  BEAS_RETURN_NOT_OK(rotated);
  BEAS_RETURN_NOT_OK(injected);  // old dirs GC'd by the next ckpt/recovery
  GcCheckpointDirs(id);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

Status DurabilityManager::RestoreTable(const std::string& seg_dir,
                                       const std::string& table) {
  const std::string base = seg_dir + "/t_" + table;
  BEAS_ASSIGN_OR_RETURN(
      SegmentView meta_view,
      OpenSegment(env_, base + ".meta.seg", SegmentKind::kTableMeta));
  BEAS_ASSIGN_OR_RETURN(TableMetaRestore meta,
                        ParseTableMetaPayload(meta_view.reader()));
  // Callers (Recover's restore section, scrub repair) hold the structural
  // lock exclusively; the self-locking CreateTable would deadlock here.
  BEAS_ASSIGN_OR_RETURN(TableInfo * info,
                        db_->CreateTableLocked(table, meta.schema));
  TableHeap* heap = info->heap();
  if (meta.dict_enabled) {
    BEAS_ASSIGN_OR_RETURN(
        SegmentView dict_view,
        OpenSegment(env_, base + ".dict.seg", SegmentKind::kDict));
    BEAS_ASSIGN_OR_RETURN(DictRestore dict,
                          ParseDictPayload(dict_view.reader()));
    BEAS_RETURN_NOT_OK(heap->RestoreDict(std::move(dict.strings), dict.sorted,
                                         dict.out_of_order, dict.rebuilds));
  } else {
    heap->set_dict_enabled(false);
  }
  std::vector<std::vector<Row>> rows(meta.num_shards);
  std::vector<std::vector<uint8_t>> live(meta.num_shards);
  for (uint32_t s = 0; s < meta.num_shards; ++s) {
    BEAS_ASSIGN_OR_RETURN(
        SegmentView view,
        OpenSegment(env_, base + ".s" + std::to_string(s) + ".seg",
                    SegmentKind::kShardRows));
    BEAS_ASSIGN_OR_RETURN(ShardRowsRestore restore,
                          ParseShardRowsPayload(view.reader()));
    // The segment stores string bytes; swap back to dictionary codes now
    // that the dictionary holds every string these rows ever interned.
    for (Row& row : restore.rows) CanonicalizeRow(&row, heap->dict());
    rows[s] = std::move(restore.rows);
    live[s] = std::move(restore.live);
  }
  return heap->RestoreContent(std::move(rows), std::move(live), meta.directory,
                              meta.shard_key_col);
}

Status DurabilityManager::RestoreIndex(const std::string& seg_dir,
                                       const std::string& name) {
  BEAS_ASSIGN_OR_RETURN(
      SegmentView view,
      OpenSegment(env_, seg_dir + "/c_" + name + ".idx.seg",
                  SegmentKind::kIndex));
  BEAS_ASSIGN_OR_RETURN(IndexRestore restore, ParseIndexPayload(view.reader()));
  BEAS_ASSIGN_OR_RETURN(TableInfo * info,
                        db_->catalog()->GetTable(restore.constraint.table));
  const TableHeap& heap = *info->heap();
  std::vector<AcIndex::RestoredBucket> buckets;
  buckets.reserve(restore.buckets.size());
  for (IndexBucketRestore& bucket : restore.buckets) {
    CanonicalizeRow(&bucket.key, heap.dict());
    for (Row& y : bucket.ys) CanonicalizeRow(&y, heap.dict());
    buckets.push_back(AcIndex::RestoredBucket{std::move(bucket.key),
                                              std::move(bucket.ys),
                                              std::move(bucket.mults)});
  }
  AccessConstraint constraint = restore.constraint;
  BEAS_ASSIGN_OR_RETURN(
      std::unique_ptr<AcIndex> index,
      AcIndex::Restore(std::move(restore.constraint), heap,
                       std::move(buckets)));
  // The heap predates this constraint's shard-key declaration or not — we
  // cannot tell from here, but it does not matter: RestoreContent already
  // reinstated the recorded shard_key_col, and placement is historical.
  return catalog_->AdoptRestored(std::move(constraint), std::move(index));
}

Result<DurabilityManager::CheckpointMeta> DurabilityManager::LoadCheckpointMeta(
    const std::string& path) {
  BEAS_ASSIGN_OR_RETURN(SegmentView view,
                        OpenSegment(env_, path, SegmentKind::kManifest));
  ByteReader r = view.reader();
  CheckpointMeta meta;
  meta.id = r.GetU64();
  meta.replay_from = r.GetU64();
  uint32_t num_tables = r.GetU32();
  if (!r.ok() || num_tables > r.remaining()) {
    return Status::Corruption("truncated manifest: " + path);
  }
  meta.tables.reserve(num_tables);
  for (uint32_t i = 0; i < num_tables; ++i) meta.tables.push_back(r.GetString());
  uint32_t num_constraints = r.GetU32();
  if (!r.ok() || num_constraints > r.remaining()) {
    return Status::Corruption("truncated manifest: " + path);
  }
  meta.constraints.reserve(num_constraints);
  for (uint32_t i = 0; i < num_constraints; ++i) {
    meta.constraints.push_back(r.GetString());
  }
  if (!r.ok()) return Status::Corruption("truncated manifest: " + path);
  return meta;
}

Status DurabilityManager::VerifyCheckpoint(
    const std::string& seg_dir, const CheckpointMeta& meta,
    std::vector<SegmentRecord>* segments,
    std::map<std::string, TableBaseline>* tables_out,
    std::map<std::string, uint32_t>* indexes_out) {
  auto note = [&](std::string path, SegmentKind kind, uint32_t crc,
                  std::string table, size_t shard, std::string constraint) {
    if (segments == nullptr) return;
    SegmentRecord rec;
    rec.path = std::move(path);
    rec.kind = kind;
    rec.crc = crc;
    rec.table = std::move(table);
    rec.shard = shard;
    rec.constraint = std::move(constraint);
    segments->push_back(std::move(rec));
  };
  auto check = [&](const std::string& path, SegmentKind want,
                   uint32_t* crc_out) -> Status {
    BEAS_ASSIGN_OR_RETURN(SegmentKind kind,
                          VerifySegmentFile(env_, path, crc_out));
    if (kind != want) {
      return Status::Corruption("segment kind mismatch: " + path);
    }
    return Status::OK();
  };
  for (const std::string& table : meta.tables) {
    const std::string base = seg_dir + "/t_" + table;
    // The table meta segment is parsed (not just CRC'd): the shard count
    // and dict flag decide which further files the checkpoint must hold.
    BEAS_ASSIGN_OR_RETURN(
        SegmentView view,
        OpenSegment(env_, base + ".meta.seg", SegmentKind::kTableMeta));
    note(base + ".meta.seg", SegmentKind::kTableMeta,
         Crc32c(view.payload, view.payload_len), table, 0, "");
    BEAS_ASSIGN_OR_RETURN(TableMetaRestore tm,
                          ParseTableMetaPayload(view.reader()));
    TableBaseline baseline;
    if (tm.dict_enabled) {
      uint32_t crc = 0;
      BEAS_RETURN_NOT_OK(check(base + ".dict.seg", SegmentKind::kDict, &crc));
      baseline.has_dict = true;
      baseline.dict_crc = crc;
      note(base + ".dict.seg", SegmentKind::kDict, crc, table, 0, "");
    }
    baseline.shard_crcs.resize(tm.num_shards, 0);
    for (uint32_t s = 0; s < tm.num_shards; ++s) {
      const std::string path = base + ".s" + std::to_string(s) + ".seg";
      BEAS_RETURN_NOT_OK(
          check(path, SegmentKind::kShardRows, &baseline.shard_crcs[s]));
      note(path, SegmentKind::kShardRows, baseline.shard_crcs[s], table, s,
           "");
    }
    if (tables_out != nullptr) (*tables_out)[table] = std::move(baseline);
  }
  for (const std::string& name : meta.constraints) {
    const std::string path = seg_dir + "/c_" + name + ".idx.seg";
    uint32_t crc = 0;
    BEAS_RETURN_NOT_OK(check(path, SegmentKind::kIndex, &crc));
    if (indexes_out != nullptr) (*indexes_out)[name] = crc;
    note(path, SegmentKind::kIndex, crc, "", 0, name);
  }
  const std::string ckmeta = seg_dir + "/" + kCkMetaName;
  if (env_->FileExists(ckmeta)) {
    uint32_t crc = 0;
    BEAS_RETURN_NOT_OK(check(ckmeta, SegmentKind::kManifest, &crc));
    note(ckmeta, SegmentKind::kManifest, crc, "", 0, "");
  }
  return Status::OK();
}

Status DurabilityManager::Recover() {
  BEAS_RETURN_NOT_OK(env_->CreateDir(options_.dir));
  BEAS_RETURN_NOT_OK(env_->CreateDir(WalDir()));
  BEAS_RETURN_NOT_OK(env_->CreateDir(options_.dir + "/seg"));
  // Persist the directory entries themselves: the manifest rename fsyncs
  // options_.dir later, but nothing else would cover the creation of the
  // data dir or of wal/ and seg/ inside it — a machine crash could
  // otherwise forget whole directories of acked state.
  BEAS_RETURN_NOT_OK(env_->SyncParentDir(options_.dir));
  BEAS_RETURN_NOT_OK(env_->SyncDir(options_.dir));
  replaying_ = true;

  // Candidate checkpoints, best first: the manifest's, then every
  // self-describing ck directory (CKMETA present) in descending id order.
  // A candidate counts only if every segment it references passes its CRC
  // check — verification runs BEFORE any restore touches the database, so
  // falling past a rotten newest checkpoint is safe.
  std::vector<std::string> candidates;
  const std::string manifest_path = options_.dir + "/" + kManifestName;
  const bool manifest_present = env_->FileExists(manifest_path);
  if (manifest_present) candidates.push_back(manifest_path);
  {
    std::vector<uint64_t> ck_ids;
    if (Result<std::vector<std::string>> entries =
            env_->ListDir(options_.dir + "/seg");
        entries.ok()) {
      for (const std::string& entry : *entries) {
        uint64_t id = ParseCkDirName(entry);
        if (id != 0) ck_ids.push_back(id);
      }
    }
    std::sort(ck_ids.rbegin(), ck_ids.rend());
    for (uint64_t id : ck_ids) {
      const std::string ckmeta = SegDir(id) + "/" + kCkMetaName;
      if (env_->FileExists(ckmeta)) candidates.push_back(ckmeta);
    }
  }

  bool restored = false;
  CheckpointMeta chosen;
  Status first_fail = Status::OK();
  for (const std::string& path : candidates) {
    Result<CheckpointMeta> meta = LoadCheckpointMeta(path);
    if (!meta.ok()) {
      if (first_fail.ok()) first_fail = meta.status();
      continue;
    }
    std::vector<SegmentRecord> segments;
    std::map<std::string, TableBaseline> table_baselines;
    std::map<std::string, uint32_t> index_baselines;
    Status verified = VerifyCheckpoint(SegDir(meta->id), *meta, &segments,
                                       &table_baselines, &index_baselines);
    if (!verified.ok()) {
      if (first_fail.ok()) first_fail = verified;
      continue;
    }
    // Verified: commit to this candidate. A restore failure past this
    // point is a real error (the database is partially populated), not a
    // fallback trigger. RestoreTable/RestoreIndex expect the structural
    // lock held exclusively (shared invariant with the scrub repair
    // path); nothing else runs at Open time, but the scope keeps the
    // contract uniform.
    Database::StructuralScope restore_lock(db_);
    for (const std::string& table : meta->tables) {
      Status st = RestoreTable(SegDir(meta->id), table);
      if (!st.ok()) {
        replaying_ = false;
        return st;
      }
    }
    for (const std::string& name : meta->constraints) {
      Status st = RestoreIndex(SegDir(meta->id), name);
      if (!st.ok()) {
        replaying_ = false;
        return st;
      }
    }
    chosen = std::move(*meta);
    current_segments_ = std::move(segments);
    table_baselines_ = std::move(table_baselines);
    index_baselines_ = std::move(index_baselines);
    restored = true;
    break;
  }
  // Fatal only when a checkpoint provably *committed* (a MANIFEST exists)
  // and nothing recovers it: acked state may have rotated out of wal/ by
  // then, so restoring empty would silently lose it. Without a MANIFEST
  // no checkpoint ever committed (the commit rename is durable before
  // Checkpoint returns) — stray half-written ck dirs from a crash mid
  // first checkpoint are just reclaimed, and the full WAL replays.
  if (!restored && manifest_present) {
    replaying_ = false;
    return Status::Corruption(
        "no recoverable checkpoint: every candidate failed verification; "
        "first failure: " + first_fail.message());
  }

  uint64_t replay_from = 0;  // first LSN not captured by the checkpoint
  if (restored) {
    last_checkpoint_id_ = chosen.id;
    replay_from = chosen.replay_from;
  }

  // GC checkpoint directories beyond the retained pair (crash between
  // manifest commit and old-dir removal, abandoned tries, or a fallback
  // that obsoleted a corrupt newer directory).
  GcCheckpointDirs(last_checkpoint_id_);

  // Merge every WAL — the live epoch in wal/ plus the retained previous
  // epoch in wal/prev (all shard files present: the shard count may have
  // changed across restarts — plus the meta WALs), keep the tail past the
  // chosen checkpoint, and replay globally in LSN order.
  std::vector<WalRecord> tail;
  uint64_t max_lsn = replay_from > 0 ? replay_from - 1 : 0;
  for (const std::string& dir : {WalDir(), WalPrevDir()}) {
    Result<std::vector<std::string>> entries = env_->ListDir(dir);
    if (!entries.ok()) continue;  // wal/prev may not exist yet
    for (const std::string& entry : *entries) {
      const std::string path = dir + "/" + entry;
      if (env_->IsDirectory(path)) continue;  // skips prev/ under wal/
      Result<WalReadResult> read = ReadWalFile(env_, path);
      if (!read.ok()) {
        // Garbage magic can be a crash image's torn, never-synced header
        // (a power cut inside InitWalFile's 8-byte append): an acked
        // record in this file would imply an fsync that also made the
        // header durable, so an invalid magic proves nothing acked ever
        // lived here — reset the file to empty, like the short-header
        // case inside ReadWalFile. A readable BWAL magic with a foreign
        // version is real foreign data and stays fatal.
        bool bwal_magic = false;
        if (Result<std::unique_ptr<RandomAccessFile>> view =
                env_->NewRandomAccessFile(path);
            view.ok() && (*view)->size() >= 4) {
          ByteReader r((*view)->data(), 4);
          bwal_magic = r.GetU32() == kWalMagic;
        }
        if (bwal_magic) {
          replaying_ = false;
          return read.status();
        }
        if (Result<std::unique_ptr<WritableFile>> repair =
                env_->NewWritableFile(path);
            repair.ok()) {
          (void)(*repair)->Truncate(0);
          (void)(*repair)->Sync();
        }
        continue;
      }
      for (WalRecord& record : read->records) {
        max_lsn = std::max(max_lsn, record.lsn);
        if (record.lsn >= replay_from) tail.push_back(std::move(record));
      }
      // Torn-tail repair: drop the invalid suffix a kill mid-append left,
      // so post-recovery appends extend a clean prefix.
      if (Result<std::unique_ptr<WritableFile>> repair =
              env_->NewWritableFile(path);
          repair.ok()) {
        uint64_t keep = std::max(read->valid_bytes, kWalHeaderBytes);
        if ((*repair)->size() < kWalHeaderBytes) {
          (void)(*repair)->Truncate(0);  // InitWalFile re-headers it
        } else if ((*repair)->size() > keep) {
          (void)(*repair)->Truncate(keep);
          (void)(*repair)->Sync();
        }
      }
    }
  }
  std::sort(tail.begin(), tail.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.lsn < b.lsn; });
  for (const WalRecord& record : tail) {
    // Apply statuses are deliberately ignored: a record whose live apply
    // failed (e.g. the partial-commit error of a batch with a bad row)
    // fails identically here — that IS the faithful replay.
    (void)ApplyRecord(record);
    recovery_replayed_records_.fetch_add(1, std::memory_order_relaxed);
  }
  next_lsn_.store(max_lsn + 1, std::memory_order_relaxed);
  replaying_ = false;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scrub and repair.
// ---------------------------------------------------------------------------

Status DurabilityManager::ReloadTableFromCheckpoint(const std::string& table) {
  const std::string seg_dir = SegDir(last_checkpoint_id_);
  // The table's constraints, in registration order, so RestoreIndex
  // re-adopts them deterministically.
  std::vector<std::string> names;
  for (const AccessConstraint& c : catalog_->schema().constraints()) {
    if (EqualsIgnoreCase(c.table, table)) names.push_back(c.name);
  }
  replaying_ = true;  // suppress the logging hooks: this is a reload, not
                      // new history
  auto finish = [&](Status st) {
    replaying_ = false;
    return st;
  };
  for (const std::string& name : names) {
    BEAS_RETURN_NOT_OK(finish(catalog_->Unregister(name)));
    replaying_ = true;
  }
  BEAS_RETURN_NOT_OK(finish(db_->catalog()->DropTable(table)));
  replaying_ = true;
  BEAS_RETURN_NOT_OK(finish(RestoreTable(seg_dir, table)));
  replaying_ = true;
  for (const std::string& name : names) {
    BEAS_RETURN_NOT_OK(finish(RestoreIndex(seg_dir, name)));
    replaying_ = true;
  }
  replaying_ = false;

  // Confirm the reload actually matches the checkpoint fingerprints.
  auto it = table_baselines_.find(table);
  if (it != table_baselines_.end()) {
    BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->GetTable(table));
    const TableHeap& heap = *info->heap();
    if (heap.num_shards() != it->second.shard_crcs.size()) {
      return Status::Corruption("scrub repair: shard count mismatch after "
                                "reloading '" + table + "'");
    }
    for (size_t s = 0; s < heap.num_shards(); ++s) {
      std::string payload = BuildShardRowsPayload(heap, s);
      if (Crc32c(payload.data(), payload.size()) != it->second.shard_crcs[s]) {
        return Status::Corruption("scrub repair: shard " + std::to_string(s) +
                                  " of '" + table +
                                  "' still mismatches after reload");
      }
    }
    if (it->second.has_dict && heap.dict() != nullptr) {
      std::string payload = BuildDictPayload(*heap.dict());
      if (Crc32c(payload.data(), payload.size()) != it->second.dict_crc) {
        return Status::Corruption("scrub repair: dict of '" + table +
                                  "' still mismatches after reload");
      }
    }
  }
  return Status::OK();
}

Status DurabilityManager::Scrub(ScrubReport* report) {
  if (!open_status_.ok()) return open_status_;
  StructuralGate gate(this);
  Database::StructuralScope lock(db_);
  return ScrubLocked(report);
}

Status DurabilityManager::ScrubLocked(ScrubReport* report) {
  if (!opened_) return Status::OK();
  scrub_cycles_total_.fetch_add(1, std::memory_order_relaxed);
  ScrubReport local;
  if (report == nullptr) report = &local;
  *report = ScrubReport{};
  if (last_checkpoint_id_ == 0) return Status::OK();  // nothing persisted yet

  std::set<std::string> dirty;
  bool structural_dirty = false;
  {
    std::lock_guard<std::mutex> lk(dirty_mutex_);
    dirty = dirty_tables_;
    structural_dirty = structural_dirty_;
  }

  auto count_corruption = [&] {
    report->corruptions_found++;
    scrub_corruptions_found_.fetch_add(1, std::memory_order_relaxed);
  };

  // ---- Disk pass: re-validate every current-checkpoint segment CRC. ----
  std::set<std::pair<std::string, size_t>> disk_bad_shards;
  std::set<std::string> disk_bad_tables;   // meta/dict file rot
  std::set<std::string> disk_bad_indexes;
  bool disk_bad_other = false;             // CKMETA rot
  for (const SegmentRecord& rec : current_segments_) {
    report->segments_checked++;
    uint32_t crc = 0;
    Result<SegmentKind> kind = VerifySegmentFile(env_, rec.path, &crc);
    if (kind.ok() && *kind == rec.kind && crc == rec.crc) continue;
    count_corruption();
    switch (rec.kind) {
      case SegmentKind::kShardRows:
        disk_bad_shards.insert({rec.table, rec.shard});
        break;
      case SegmentKind::kTableMeta:
      case SegmentKind::kDict:
        disk_bad_tables.insert(rec.table);
        break;
      case SegmentKind::kIndex:
        disk_bad_indexes.insert(rec.constraint);
        break;
      case SegmentKind::kManifest:
        disk_bad_other = true;
        break;
    }
  }

  // ---- Memory pass: cross-check live state against checkpoint-time
  // fingerprints. Only meaningful for tables untouched since the
  // checkpoint (a write legitimately changes the bytes). ----
  std::set<std::pair<std::string, size_t>> mem_bad_shards;
  std::set<std::string> mem_bad_tables;    // dict / layout divergence
  std::set<std::string> mem_bad_indexes;
  if (!structural_dirty) {
    for (const auto& [table, baseline] : table_baselines_) {
      if (dirty.count(ToLower(table)) != 0) continue;
      Result<TableInfo*> info = db_->catalog()->GetTable(table);
      if (!info.ok()) continue;
      const TableHeap& heap = *(*info)->heap();
      if (heap.num_shards() != baseline.shard_crcs.size()) {
        mem_bad_tables.insert(table);
        count_corruption();
        continue;
      }
      for (size_t s = 0; s < heap.num_shards(); ++s) {
        std::string payload = BuildShardRowsPayload(heap, s);
        if (Crc32c(payload.data(), payload.size()) != baseline.shard_crcs[s]) {
          mem_bad_shards.insert({table, s});
          count_corruption();
        }
      }
      if (baseline.has_dict && heap.dict() != nullptr) {
        std::string payload = BuildDictPayload(*heap.dict());
        if (Crc32c(payload.data(), payload.size()) != baseline.dict_crc) {
          mem_bad_tables.insert(table);
          count_corruption();
        }
      }
    }
    for (const auto& [name, baseline_crc] : index_baselines_) {
      Result<const AccessConstraint*> c = catalog_->schema().Find(name);
      if (!c.ok()) continue;
      if (dirty.count(ToLower((*c)->table)) != 0) continue;
      const AcIndex* index = catalog_->IndexFor(name);
      if (index == nullptr) continue;
      std::string payload = BuildIndexPayload(*index);
      if (Crc32c(payload.data(), payload.size()) != baseline_crc) {
        mem_bad_indexes.insert(name);
        count_corruption();
      }
    }
  }

  auto table_of_constraint = [&](const std::string& name) -> std::string {
    Result<const AccessConstraint*> c = catalog_->schema().Find(name);
    return c.ok() ? (*c)->table : std::string();
  };

  // ---- Quarantine every implicated (table, heap shard). ----
  std::set<std::pair<std::string, size_t>> implicated;
  auto implicate_all_shards = [&](const std::string& table) {
    if (table.empty()) return;
    Result<TableInfo*> info = db_->catalog()->GetTable(table);
    size_t n = info.ok() ? (*info)->heap()->num_shards() : 1;
    for (size_t s = 0; s < n; ++s) implicated.insert({ToLower(table), s});
  };
  for (const auto& p : disk_bad_shards) implicated.insert({ToLower(p.first),
                                                           p.second});
  for (const auto& p : mem_bad_shards) implicated.insert({ToLower(p.first),
                                                          p.second});
  for (const std::string& t : disk_bad_tables) implicate_all_shards(t);
  for (const std::string& t : mem_bad_tables) implicate_all_shards(t);
  for (const std::string& ix : disk_bad_indexes) {
    implicate_all_shards(table_of_constraint(ix));
  }
  for (const std::string& ix : mem_bad_indexes) {
    implicate_all_shards(table_of_constraint(ix));
  }
  if (!implicated.empty()) {
    std::lock_guard<std::mutex> lk(quarantine_mutex_);
    quarantined_.insert(implicated.begin(), implicated.end());
    quarantined_count_.store(quarantined_.size(), std::memory_order_release);
  }

  // ---- Repair. ----
  // Memory corruption with clean segments: reload the table (and its
  // indexes) from the checkpoint — sound because the memory pass only ran
  // for tables with zero writes since the checkpoint, so the segments ARE
  // the authoritative bytes.
  std::set<std::string> mem_tables;
  for (const std::string& t : mem_bad_tables) mem_tables.insert(t);
  for (const auto& p : mem_bad_shards) mem_tables.insert(p.first);
  for (const std::string& ix : mem_bad_indexes) {
    std::string t = table_of_constraint(ix);
    if (!t.empty()) mem_tables.insert(t);
  }
  bool any_unrepairable = false;
  std::set<std::string> repaired_tables;  // lowercased
  for (const std::string& t : mem_tables) {
    bool disk_clean = disk_bad_tables.count(t) == 0;
    for (const auto& p : disk_bad_shards) {
      if (p.first == t) disk_clean = false;
    }
    for (const AccessConstraint& c : catalog_->schema().constraints()) {
      if (EqualsIgnoreCase(c.table, t) && disk_bad_indexes.count(c.name) != 0) {
        disk_clean = false;
      }
    }
    if (!disk_clean) {
      // Corrupt in memory AND its only durable copy is corrupt too:
      // nothing trustworthy to restore from. Stays quarantined.
      any_unrepairable = true;
      report->unrepairable++;
      continue;
    }
    Status reloaded = ReloadTableFromCheckpoint(t);
    if (!reloaded.ok()) {
      any_unrepairable = true;
      report->unrepairable++;
      continue;
    }
    repaired_tables.insert(ToLower(t));
    report->repairs++;
    scrub_repairs_total_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!repaired_tables.empty()) {
    std::lock_guard<std::mutex> lk(quarantine_mutex_);
    for (auto it = quarantined_.begin(); it != quarantined_.end();) {
      it = repaired_tables.count(it->first) != 0 ? quarantined_.erase(it)
                                                 : std::next(it);
    }
    quarantined_count_.store(quarantined_.size(), std::memory_order_release);
  }

  // Disk corruption with trustworthy memory: the live state is the
  // database of record — rewrite a fresh, read-back-verified checkpoint,
  // which supersedes every rotten segment at once. Skipped while any
  // unrepairable unit exists: checkpointing would persist its corrupt
  // in-memory bytes over the last good (if any) copy.
  bool disk_any = disk_bad_other || !disk_bad_shards.empty() ||
                  !disk_bad_tables.empty() || !disk_bad_indexes.empty();
  if (disk_any && !any_unrepairable) {
    BEAS_RETURN_NOT_OK(CheckpointLocked());
    uint64_t fixed = disk_bad_shards.size() + disk_bad_tables.size() +
                     disk_bad_indexes.size() + (disk_bad_other ? 1 : 0);
    report->repairs += fixed;
    scrub_repairs_total_.fetch_add(fixed, std::memory_order_relaxed);
    // Everything verified fresh end-to-end; nothing left to quarantine.
    std::lock_guard<std::mutex> lk(quarantine_mutex_);
    quarantined_.clear();
    quarantined_count_.store(0, std::memory_order_release);
  }

  if (any_unrepairable) {
    return Status::Corruption(
        "scrub: corruption present in both memory and its checkpoint "
        "segments; affected shards stay quarantined");
  }
  return Status::OK();
}

DurabilityCounters DurabilityManager::counters() const {
  DurabilityCounters out;
  out.wal_bytes_total = wal_bytes_total_.load(std::memory_order_relaxed);
  out.wal_records_total = wal_records_total_.load(std::memory_order_relaxed);
  out.wal_group_commits_total =
      wal_group_commits_total_.load(std::memory_order_relaxed);
  out.wal_fsyncs_total = wal_fsyncs_total_.load(std::memory_order_relaxed);
  out.checkpoints_total = checkpoints_total_.load(std::memory_order_relaxed);
  out.recovery_replayed_records =
      recovery_replayed_records_.load(std::memory_order_relaxed);
  out.wal_retries_total = wal_retries_total_.load(std::memory_order_relaxed);
  for (const auto& wal : shard_wals_) {
    if (wal->io_failed.load(std::memory_order_acquire)) {
      ++out.wal_latched_shards;
    }
  }
  out.scrub_cycles_total =
      scrub_cycles_total_.load(std::memory_order_relaxed);
  out.scrub_corruptions_found =
      scrub_corruptions_found_.load(std::memory_order_relaxed);
  out.scrub_repairs_total =
      scrub_repairs_total_.load(std::memory_order_relaxed);
  out.quarantined_shards =
      quarantined_count_.load(std::memory_order_relaxed);
  out.env_injected_faults = env_->injected_faults();
  return out;
}

}  // namespace durability
}  // namespace beas
