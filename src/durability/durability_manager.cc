#include "durability/durability_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "durability/segment.h"

namespace beas {
namespace durability {

namespace {

constexpr const char* kManifestName = "MANIFEST";

Status MetaLogFailedError() {
  return Status::Unavailable(
      "durability: a structural change could not be logged; the in-memory "
      "state is ahead of the WAL, refusing further durable writes");
}

Status WalLatchedError() {
  return Status::Unavailable(
      "durability: shard WAL latched after an unrepairable group-commit "
      "failure; refusing further durable writes on this shard");
}

/// Disk-full detection by message shape: file_util renders every IO error
/// through std::strerror, so ENOSPC always carries this text (and the
/// fail-point `error(enospc)` action injects the same shape).
bool IsNoSpaceError(const Status& st) {
  return st.code() == StatusCode::kIoError &&
         st.message().find("No space left on device") != std::string::npos;
}

/// Merges an injected fail-point status into a protocol status: crash
/// actions never return, sleep/off return OK, error actions surface as
/// the fault `st` would have been.
Status MergePoint(Status st, const char* site) {
  Status injected = fail::Point(site);
  return st.ok() ? injected : st;
}

bool IsTransientTable(const DurabilityOptions& options,
                      const std::string& table) {
  for (const std::string& t : options.transient_tables) {
    if (EqualsIgnoreCase(t, table)) return true;
  }
  return false;
}

}  // namespace

DurabilityManager::DurabilityManager(Database* db, AsCatalog* catalog,
                                     DurabilityOptions opts)
    : db_(db), catalog_(catalog), options_(std::move(opts)) {}

DurabilityManager::~DurabilityManager() {
  stop_.store(true, std::memory_order_release);
  for (auto& wal : shard_wals_) {
    { std::lock_guard<std::mutex> lk(wal->wake_mutex); }
    wal->wake.notify_all();
  }
  for (auto& wal : shard_wals_) {
    if (wal->drainer.joinable()) wal->drainer.join();
  }
  // The drainers flush their queues before exiting; anything still here
  // means a producer raced shutdown. Fail its ack rather than hang it.
  for (auto& wal : shard_wals_) {
    Pending* p = wal->head.exchange(nullptr, std::memory_order_acq_rel);
    while (p != nullptr) {
      Pending* next = p->next;
      p->ack.set_value(Status::Internal("durability manager shut down"));
      delete p;
      p = next;
    }
  }
}

std::string DurabilityManager::WalPath(size_t wal_shard) const {
  return options_.dir + "/wal/shard_" + std::to_string(wal_shard) + ".wal";
}

std::string DurabilityManager::MetaWalPath() const {
  return options_.dir + "/wal/meta.wal";
}

std::string DurabilityManager::SegDir(uint64_t checkpoint_id) const {
  return options_.dir + "/seg/ck" + std::to_string(checkpoint_id);
}

Status DurabilityManager::Open() {
  open_status_ = [&]() -> Status {
    if (options_.dir.empty()) {
      return Status::InvalidArgument("durability dir must be non-empty");
    }
    BEAS_RETURN_NOT_OK(Recover());

    wal_shard_count_ = db_->num_shard_locks();
    for (size_t k = 0; k < wal_shard_count_; ++k) {
      auto wal = std::make_unique<ShardWal>();
      BEAS_RETURN_NOT_OK(InitWalFile(WalPath(k)));
      BEAS_RETURN_NOT_OK(wal->file.Open(WalPath(k)));
      shard_wals_.push_back(std::move(wal));
    }
    BEAS_RETURN_NOT_OK(InitWalFile(MetaWalPath()));
    BEAS_RETURN_NOT_OK(meta_wal_.Open(MetaWalPath()));

    // Structural-op logging hooks. Registered after recovery, so replayed
    // operations were never at risk of being re-logged; from here on,
    // every DDL / constraint change / dict rebuild that reaches the
    // engine gets a meta record.
    db_->RegisterDdlHook([this](const std::string& table) { OnDdl(table); });
    catalog_->AddChangeListener(
        [this](AsCatalog::ChangeKind kind, const std::string& table,
               const std::string& name) { OnCatalogChange(kind, table, name); });

    for (size_t k = 0; k < wal_shard_count_; ++k) {
      shard_wals_[k]->drainer = std::thread([this, k] { DrainerLoop(k); });
    }
    opened_ = true;
    return Status::OK();
  }();
  return open_status_;
}

// ---------------------------------------------------------------------------
// Durable write paths.
// ---------------------------------------------------------------------------

std::future<Status> DurabilityManager::Enqueue(size_t wal_shard,
                                               WalRecordType type,
                                               std::string payload) {
  ShardWal& wal = *shard_wals_[wal_shard];
  Pending* p = new Pending;
  p->record.type = type;
  p->record.payload = std::move(payload);
  std::future<Status> ack = p->ack.get_future();
  // A latched shard fast-fails here; a racing latch is caught by the
  // drainer, which nacks everything it pops from a latched shard.
  if (wal.io_failed.load(std::memory_order_acquire)) {
    p->ack.set_value(WalLatchedError());
    delete p;
    return ack;
  }
  wal.enqueued.fetch_add(1, std::memory_order_relaxed);
  Pending* head = wal.head.load(std::memory_order_relaxed);
  do {
    p->next = head;
  } while (!wal.head.compare_exchange_weak(head, p, std::memory_order_release,
                                           std::memory_order_relaxed));
  // Empty critical section: pairs the notify with the drainer's wait so a
  // wakeup between its predicate check and its sleep cannot be lost.
  { std::lock_guard<std::mutex> lk(wal.wake_mutex); }
  wal.wake.notify_one();
  return ack;
}

Status DurabilityManager::Insert(const std::string& table, Row row) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  // Validate + coerce before logging: doomed rows are rejected without
  // burning WAL bytes, and the record routes to the queue of the shard it
  // will apply to (its drainer's apply blocks only on that shard's lock).
  size_t shard = 0;
  BEAS_RETURN_NOT_OK(db_->ValidateForInsert(table, &row, &shard));
  ByteSink payload;
  payload.PutString(table);
  WriteRow(&payload, row);
  return Enqueue(shard % wal_shard_count_, WalRecordType::kInsert,
                 payload.Take())
      .get();
}

Status DurabilityManager::InsertBatch(const std::string& table,
                                      std::vector<Row> rows) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  if (rows.empty()) return Status::OK();
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  // Route by the first row only; the batch is logged whole and applied
  // through Database::InsertBatch, whose validate-then-commit (including
  // the partial commit before a bad row) is deterministic — replay
  // reproduces exactly what the live apply did, error and all.
  size_t shard = 0;
  {
    Row probe = rows.front();
    if (!db_->ValidateForInsert(table, &probe, &shard).ok()) shard = 0;
  }
  ByteSink payload;
  payload.PutString(table);
  payload.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) WriteRow(&payload, row);
  return Enqueue(shard % wal_shard_count_, WalRecordType::kInsertBatch,
                 payload.Take())
      .get();
}

Status DurabilityManager::Delete(const std::string& table, const Row& row) {
  if (!open_status_.ok()) return open_status_;
  if (meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  std::shared_lock<std::shared_mutex> gate(commit_mutex_);
  ByteSink payload;
  payload.PutString(table);
  WriteRow(&payload, row);
  // A delete scans every shard, so it has no natural home queue; spread
  // by content hash. Sequencing against the inserts it targets is by
  // LSN: a caller that deletes only after its insert acked enqueues
  // strictly later, so the delete is stamped (and replayed) later.
  size_t wal_shard =
      Crc32c(payload.str().data(), payload.size()) % wal_shard_count_;
  return Enqueue(wal_shard, WalRecordType::kDelete, payload.Take()).get();
}

Result<TableInfo*> DurabilityManager::CreateTable(const std::string& name,
                                                  const Schema& schema) {
  if (!open_status_.ok()) return open_status_;
  StructuralGate gate(this);
  // Apply-then-log: the DDL hook fires inside CreateTable (on success
  // only) and writes the meta record under this gate.
  Result<TableInfo*> info = db_->CreateTable(name, schema);
  if (info.ok() && meta_log_failed_.load(std::memory_order_acquire)) {
    return MetaLogFailedError();
  }
  return info;
}

// ---------------------------------------------------------------------------
// Commit gate.
// ---------------------------------------------------------------------------

void DurabilityManager::EnterStructural() {
  commit_mutex_.lock();
  Barrier();
}

void DurabilityManager::LeaveStructural() { commit_mutex_.unlock(); }

void DurabilityManager::Barrier() {
  // Data writers hold the gate shared from enqueue to ack, so by the time
  // the exclusive lock is ours the queues are normally already drained;
  // the wait below is the formal guarantee, not the common path.
  for (auto& wal : shard_wals_) {
    auto drained = [&] {
      return wal->applied.load(std::memory_order_acquire) >=
             wal->enqueued.load(std::memory_order_acquire);
    };
    if (drained()) continue;
    // The drainer bumps applied before taking wake_mutex to notify, so a
    // bump concurrent with this locked predicate check either is seen
    // here or its notify lands after the wait begins — never lost.
    std::unique_lock<std::mutex> lk(wal->wake_mutex);
    wal->wake.notify_one();
    wal->applied_cv.wait(lk, drained);
  }
}

// ---------------------------------------------------------------------------
// Group-commit drainer.
// ---------------------------------------------------------------------------

void DurabilityManager::DrainerLoop(size_t wal_shard) {
  ShardWal& wal = *shard_wals_[wal_shard];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wal.wake_mutex);
      wal.wake.wait_for(lk, std::chrono::milliseconds(50), [&] {
        return wal.head.load(std::memory_order_acquire) != nullptr ||
               stop_.load(std::memory_order_acquire);
      });
    }
    Pending* batch = wal.head.exchange(nullptr, std::memory_order_acq_rel);
    if (batch == nullptr) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    // The stack pops newest-first; reverse to FIFO so apply order is
    // enqueue order.
    Pending* fifo = nullptr;
    while (batch != nullptr) {
      Pending* next = batch->next;
      batch->next = fifo;
      fifo = batch;
      batch = next;
    }
    // A latched shard nacks everything it pops: its file may end in bytes
    // the accounting cannot vouch for, and appending past them would let
    // recovery (which stops at the first invalid record) silently drop
    // the new records despite their acks.
    Status io = wal.io_failed.load(std::memory_order_acquire)
                    ? WalLatchedError()
                    : Status::OK();
    ByteSink group;
    const uint64_t good_offset = wal.file.size();
    if (io.ok()) {
      // Stamp LSNs at pop time: per-queue apply order equals LSN order by
      // construction, and an op enqueued after another op's ack is
      // stamped strictly later even across queues.
      uint64_t count = 0;
      for (Pending* p = fifo; p != nullptr; p = p->next) {
        p->record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
        EncodeWalRecord(&group, p->record);
        ++count;
      }
      // Commit with bounded retry: a transient append/fsync fault is
      // repaired (truncate back to the acked prefix, so nothing torn or
      // nacked can sit mid-file), backed off, and re-attempted — the
      // group's writers see a slow ack instead of a spurious nack. Only
      // when retries exhaust (a hard fault) or the repair itself fails
      // (the file can no longer be vouched for) does the shard latch.
      uint64_t attempt = 0;
      for (;;) {
        Status commit =
            wal.file.Append(group.str().data(), group.size());
        commit = MergePoint(std::move(commit), "wal_append");
        if (commit.ok()) commit = fail::Point("wal_group_io");
        if (commit.ok()) commit = fail::Point("wal_pre_fsync");
        if (commit.ok() && options_.fsync) {
          commit = wal.file.Sync();
          wal_fsyncs_total_.fetch_add(1, std::memory_order_relaxed);
        }
        if (commit.ok()) commit = fail::Point("wal_post_fsync");
        if (commit.ok()) {
          wal_bytes_total_.fetch_add(group.size(), std::memory_order_relaxed);
          wal_records_total_.fetch_add(count, std::memory_order_relaxed);
          wal_group_commits_total_.fetch_add(1, std::memory_order_relaxed);
          wal_bytes_since_checkpoint_.fetch_add(group.size(),
                                                std::memory_order_relaxed);
          break;
        }
        // Repair before deciding anything. A partial append leaves a
        // torn record (possibly preceded by whole CRC-valid records of
        // this uncommitted group) past the acked prefix; a failed fsync
        // leaves the whole group CRC-valid in the page cache. Either way
        // the file must end at the last acked byte: cut it back and
        // persist the cut, so the bytes can neither shadow later acked
        // groups at recovery nor be replayed themselves.
        Status repair = wal.file.Truncate(good_offset);
        if (repair.ok() && options_.fsync) repair = wal.file.Sync();
        repair = MergePoint(std::move(repair), "wal_repair_fail");
        if (!repair.ok()) {
          wal.io_failed.store(true, std::memory_order_release);
          io = WalLatchedError();
          break;
        }
        if (attempt >= options_.wal_retry_limit) {
          // Hard fault: the file is repaired (ends at the acked prefix)
          // but the device keeps refusing the group. Latch and surface a
          // typed refusal — "acked but unrecoverable" stays impossible.
          wal.io_failed.store(true, std::memory_order_release);
          io = Status::Unavailable(
              "durability: WAL group commit failed after " +
              std::to_string(attempt) + " retries, shard latched: " +
              commit.message());
          break;
        }
        ++attempt;
        wal_retries_total_.fetch_add(1, std::memory_order_relaxed);
        uint64_t backoff = options_.wal_retry_backoff_ms << (attempt - 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min<uint64_t>(backoff, 100)));
      }
    }
    // Apply in FIFO order, then ack. On an IO failure nothing applies:
    // the group was cut back out of the log (or the shard latched) —
    // acking (or applying) would promise more than the log holds.
    for (Pending* p = fifo; p != nullptr;) {
      Pending* next = p->next;
      Status st = io.ok() ? ApplyRecord(p->record) : io;
      p->ack.set_value(std::move(st));
      wal.applied.fetch_add(1, std::memory_order_release);
      delete p;
      p = next;
    }
    // Pairs with Barrier(): applied is published above, the empty
    // critical section orders this notify after its locked check.
    { std::lock_guard<std::mutex> lk(wal.wake_mutex); }
    wal.applied_cv.notify_all();
  }
}

Status DurabilityManager::ApplyRecord(const WalRecord& record) {
  ByteReader r(record.payload.data(), record.payload.size());
  switch (record.type) {
    case WalRecordType::kInsert: {
      std::string table = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
      if (!r.ok()) return Status::IoError("bad insert record");
      return db_->Insert(table, std::move(row));
    }
    case WalRecordType::kInsertBatch: {
      std::string table = r.GetString();
      uint32_t count = r.GetU32();
      if (!r.ok() || count > r.remaining()) {
        return Status::IoError("bad insert-batch record");
      }
      std::vector<Row> rows;
      rows.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
        rows.push_back(std::move(row));
      }
      return db_->InsertBatch(table, std::move(rows));
    }
    case WalRecordType::kDelete: {
      std::string table = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
      if (!r.ok()) return Status::IoError("bad delete record");
      return db_->DeleteWhereEquals(table, row);
    }
    // Structural records never flow through the shard queues; they are
    // applied here only during recovery replay (single-threaded).
    case WalRecordType::kCreateTable: {
      std::string name = r.GetString();
      BEAS_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
      return db_->CreateTable(name, schema).status();
    }
    case WalRecordType::kRegisterConstraint: {
      BEAS_ASSIGN_OR_RETURN(AccessConstraint constraint, ReadConstraint(&r));
      Database::StructuralScope lock(db_);
      return catalog_->Register(std::move(constraint));
    }
    case WalRecordType::kUnregisterConstraint: {
      std::string name = r.GetString();
      if (!r.ok()) return Status::IoError("bad unregister record");
      Database::StructuralScope lock(db_);
      return catalog_->Unregister(name);
    }
    case WalRecordType::kAdjustLimit: {
      std::string name = r.GetString();
      uint64_t limit = r.GetU64();
      if (!r.ok()) return Status::IoError("bad adjust-limit record");
      Database::StructuralScope lock(db_);
      return catalog_->AdjustLimit(name, limit);
    }
    case WalRecordType::kDictRebuild: {
      std::string table = r.GetString();
      if (!r.ok()) return Status::IoError("bad dict-rebuild record");
      Database::StructuralScope lock(db_);
      return catalog_->RebuildTableDictSorted(table).status();
    }
  }
  return Status::IoError("unknown WAL record type");
}

// ---------------------------------------------------------------------------
// Structural-op logging (meta WAL).
// ---------------------------------------------------------------------------

Status DurabilityManager::LogMeta(WalRecordType type, std::string payload) {
  WalRecord record;
  record.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  record.type = type;
  record.payload = std::move(payload);
  ByteSink frame;
  EncodeWalRecord(&frame, record);
  std::lock_guard<std::mutex> lk(meta_mutex_);
  BEAS_RETURN_NOT_OK(meta_wal_.Append(frame.str().data(), frame.size()));
  if (options_.fsync) {
    BEAS_RETURN_NOT_OK(meta_wal_.Sync());
    wal_fsyncs_total_.fetch_add(1, std::memory_order_relaxed);
  }
  wal_bytes_total_.fetch_add(frame.size(), std::memory_order_relaxed);
  wal_records_total_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_since_checkpoint_.fetch_add(frame.size(),
                                        std::memory_order_relaxed);
  return Status::OK();
}

void DurabilityManager::OnDdl(const std::string& table) {
  if (replaying_ || IsTransientTable(options_, table)) return;
  Result<TableInfo*> info = db_->catalog()->GetTable(table);
  if (!info.ok()) return;
  ByteSink payload;
  payload.PutString((*info)->name());
  WriteSchema(&payload, (*info)->schema());
  if (!LogMeta(WalRecordType::kCreateTable, payload.Take()).ok()) {
    meta_log_failed_.store(true, std::memory_order_release);
  }
}

void DurabilityManager::OnCatalogChange(AsCatalog::ChangeKind kind,
                                        const std::string& table,
                                        const std::string& name) {
  if (replaying_ || IsTransientTable(options_, table)) return;
  Status logged = Status::OK();
  switch (kind) {
    case AsCatalog::ChangeKind::kConstraintRegistered: {
      Result<const AccessConstraint*> c = catalog_->schema().Find(name);
      if (!c.ok()) return;
      ByteSink payload;
      WriteConstraint(&payload, **c);
      logged = LogMeta(WalRecordType::kRegisterConstraint, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kConstraintUnregistered: {
      ByteSink payload;
      payload.PutString(name);
      logged = LogMeta(WalRecordType::kUnregisterConstraint, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kLimitAdjusted: {
      Result<const AccessConstraint*> c = catalog_->schema().Find(name);
      if (!c.ok()) return;
      ByteSink payload;
      payload.PutString(name);
      payload.PutU64((*c)->limit_n);
      logged = LogMeta(WalRecordType::kAdjustLimit, payload.Take());
      break;
    }
    case AsCatalog::ChangeKind::kDictRebuilt: {
      ByteSink payload;
      payload.PutString(table);
      logged = LogMeta(WalRecordType::kDictRebuild, payload.Take());
      break;
    }
  }
  if (!logged.ok()) meta_log_failed_.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Checkpoints.
// ---------------------------------------------------------------------------

Status DurabilityManager::Checkpoint() {
  if (!open_status_.ok()) return open_status_;
  StructuralGate gate(this);
  Database::StructuralScope lock(db_);
  return CheckpointLocked();
}

Status DurabilityManager::MaybeCheckpointLocked(bool* did_out) {
  if (did_out != nullptr) *did_out = false;
  if (!opened_) return Status::OK();
  if (wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) <
      options_.checkpoint_min_wal_bytes) {
    return Status::OK();
  }
  if (did_out != nullptr) *did_out = true;
  return CheckpointLocked();
}

Status DurabilityManager::WriteCheckpointSegments(const std::string& seg_dir,
                                                  ByteSink* manifest) {
  // Every segment write shares the ckpt_write fail-point site so the
  // error sweep (including the error(enospc) disk-full simulation) can
  // fault any file of the set.
  auto write_segment = [](const std::string& path, SegmentKind kind,
                          std::string payload) {
    BEAS_RETURN_NOT_OK(fail::Point("ckpt_write"));
    return WriteSegmentFile(path, kind, std::move(payload));
  };

  std::vector<std::string> tables;
  for (const std::string& name : db_->catalog()->TableNames()) {
    if (IsTransientTable(options_, name)) continue;
    tables.push_back(name);
  }
  manifest->PutU32(static_cast<uint32_t>(tables.size()));
  for (const std::string& name : tables) {
    BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->GetTable(name));
    manifest->PutString(info->name());
    const std::string base = seg_dir + "/t_" + info->name();
    BEAS_RETURN_NOT_OK(write_segment(base + ".meta.seg",
                                     SegmentKind::kTableMeta,
                                     BuildTableMetaPayload(*info)));
    const TableHeap& heap = *info->heap();
    if (heap.dict() != nullptr) {
      BEAS_RETURN_NOT_OK(write_segment(base + ".dict.seg",
                                       SegmentKind::kDict,
                                       BuildDictPayload(*heap.dict())));
    }
    for (size_t s = 0; s < heap.num_shards(); ++s) {
      BEAS_RETURN_NOT_OK(
          write_segment(base + ".s" + std::to_string(s) + ".seg",
                        SegmentKind::kShardRows,
                        BuildShardRowsPayload(heap, s)));
    }
  }

  // Constraints in registration order: restore re-adopts them in the same
  // order, so auto-naming and index slots line up with the live catalog.
  const std::vector<AccessConstraint>& constraints =
      catalog_->schema().constraints();
  manifest->PutU32(static_cast<uint32_t>(constraints.size()));
  for (const AccessConstraint& c : constraints) {
    manifest->PutString(c.name);
    const AcIndex* index = catalog_->IndexFor(c.name);
    if (index == nullptr) {
      return Status::Internal("no index for constraint '" + c.name + "'");
    }
    BEAS_RETURN_NOT_OK(write_segment(seg_dir + "/c_" + c.name + ".idx.seg",
                                     SegmentKind::kIndex,
                                     BuildIndexPayload(*index)));
  }
  BEAS_RETURN_NOT_OK(SyncDir(seg_dir));
  // ck<N>'s own entry in seg/ must be durable before the manifest can
  // point at it, or a crash leaves a manifest referencing a directory
  // that no longer exists.
  BEAS_RETURN_NOT_OK(SyncDir(options_.dir + "/seg"));
  return fail::Point("ckpt_mid");
}

Status DurabilityManager::CheckpointLocked() {
  uint64_t id = last_checkpoint_id_ + 1;
  std::string seg_dir = SegDir(id);
  RemoveAll(seg_dir);  // a crash mid-checkpoint may have left a stale try
  BEAS_RETURN_NOT_OK(EnsureDir(seg_dir));

  ByteSink manifest;
  manifest.PutU64(id);
  // Every record stamped so far is applied (the gate's barrier ran), so
  // the segments capture exactly the history below this LSN; replay
  // resumes here.
  manifest.PutU64(next_lsn_.load(std::memory_order_relaxed));

  if (Status wrote = WriteCheckpointSegments(seg_dir, &manifest);
      !wrote.ok()) {
    // Pressure relief: nothing is committed (recovery still reads the
    // previous checkpoint + WAL tail), so the half-written try is pure
    // debt — drop it, and sweep any orphaned older tries while at it.
    // On a full disk that frees space instead of compounding the stall,
    // and the caller gets the typed capacity verdict.
    RemoveAll(seg_dir);
    if (Result<std::vector<std::string>> entries =
            ListDir(options_.dir + "/seg");
        entries.ok()) {
      const std::string keep = "ck" + std::to_string(last_checkpoint_id_);
      for (const std::string& entry : *entries) {
        if (last_checkpoint_id_ == 0 || entry != keep) {
          RemoveAll(options_.dir + "/seg/" + entry);
        }
      }
    }
    if (IsNoSpaceError(wrote)) {
      return Status::ResourceExhausted(
          "checkpoint aborted, segment space reclaimed: " + wrote.message());
    }
    return wrote;
  }

  // Commit point: the manifest (segment-framed, atomically renamed in)
  // flips recovery from the old checkpoint + long WAL to the new one.
  {
    const std::string payload = manifest.Take();
    ByteSink file;
    file.PutU32(kSegMagic);
    file.PutU32(kSegVersion);
    file.PutU8(static_cast<uint8_t>(SegmentKind::kManifest));
    file.PutU32(Crc32c(payload.data(), payload.size()));
    file.PutU64(payload.size());
    file.PutRaw(payload.data(), payload.size());
    BEAS_RETURN_NOT_OK(
        WriteFileAtomic(options_.dir + "/" + kManifestName, file.str()));
  }

  // Every logged record is now captured by the segments; reset the WALs.
  for (auto& wal : shard_wals_) {
    BEAS_RETURN_NOT_OK(wal->file.Truncate(kWalHeaderBytes));
  }
  {
    std::lock_guard<std::mutex> lk(meta_mutex_);
    BEAS_RETURN_NOT_OK(meta_wal_.Truncate(kWalHeaderBytes));
  }
  // WAL files of a previous, larger BEAS_SHARDS configuration are not in
  // shard_wals_ but their records are covered by this checkpoint too.
  if (Result<std::vector<std::string>> entries =
          ListDir(options_.dir + "/wal");
      entries.ok()) {
    for (const std::string& entry : *entries) {
      const std::string path = options_.dir + "/wal/" + entry;
      bool ours = path == MetaWalPath();
      for (size_t k = 0; !ours && k < wal_shard_count_; ++k) {
        ours = path == WalPath(k);
      }
      if (ours) continue;
      AppendFile stale;
      if (stale.Open(path).ok() && stale.size() > kWalHeaderBytes) {
        (void)stale.Truncate(kWalHeaderBytes);
      }
    }
  }
  // The manifest is committed: bookkeeping must move to the new id even
  // when the post-truncate fail point injects an error, or the next
  // checkpoint would RemoveAll() the directory the manifest points at.
  Status injected = fail::Point("ckpt_post_truncate");
  uint64_t old_id = last_checkpoint_id_;
  last_checkpoint_id_ = id;
  wal_bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
  checkpoints_total_.fetch_add(1, std::memory_order_relaxed);
  BEAS_RETURN_NOT_OK(injected);  // old dir GC'd by the next ckpt/recovery
  if (old_id != 0) RemoveAll(SegDir(old_id));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

Status DurabilityManager::RestoreTable(const std::string& seg_dir,
                                       const std::string& table) {
  const std::string base = seg_dir + "/t_" + table;
  BEAS_ASSIGN_OR_RETURN(
      SegmentView meta_view,
      OpenSegment(base + ".meta.seg", SegmentKind::kTableMeta));
  BEAS_ASSIGN_OR_RETURN(TableMetaRestore meta,
                        ParseTableMetaPayload(meta_view.reader()));
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->CreateTable(table, meta.schema));
  TableHeap* heap = info->heap();
  if (meta.dict_enabled) {
    BEAS_ASSIGN_OR_RETURN(SegmentView dict_view,
                          OpenSegment(base + ".dict.seg", SegmentKind::kDict));
    BEAS_ASSIGN_OR_RETURN(DictRestore dict,
                          ParseDictPayload(dict_view.reader()));
    BEAS_RETURN_NOT_OK(heap->RestoreDict(std::move(dict.strings), dict.sorted,
                                         dict.out_of_order, dict.rebuilds));
  } else {
    heap->set_dict_enabled(false);
  }
  std::vector<std::vector<Row>> rows(meta.num_shards);
  std::vector<std::vector<uint8_t>> live(meta.num_shards);
  for (uint32_t s = 0; s < meta.num_shards; ++s) {
    BEAS_ASSIGN_OR_RETURN(
        SegmentView view,
        OpenSegment(base + ".s" + std::to_string(s) + ".seg",
                    SegmentKind::kShardRows));
    BEAS_ASSIGN_OR_RETURN(ShardRowsRestore restore,
                          ParseShardRowsPayload(view.reader()));
    // The segment stores string bytes; swap back to dictionary codes now
    // that the dictionary holds every string these rows ever interned.
    for (Row& row : restore.rows) CanonicalizeRow(&row, heap->dict());
    rows[s] = std::move(restore.rows);
    live[s] = std::move(restore.live);
  }
  return heap->RestoreContent(std::move(rows), std::move(live), meta.directory,
                              meta.shard_key_col);
}

Status DurabilityManager::RestoreIndex(const std::string& seg_dir,
                                       const std::string& name) {
  BEAS_ASSIGN_OR_RETURN(
      SegmentView view,
      OpenSegment(seg_dir + "/c_" + name + ".idx.seg", SegmentKind::kIndex));
  BEAS_ASSIGN_OR_RETURN(IndexRestore restore, ParseIndexPayload(view.reader()));
  BEAS_ASSIGN_OR_RETURN(TableInfo * info,
                        db_->catalog()->GetTable(restore.constraint.table));
  const TableHeap& heap = *info->heap();
  std::vector<AcIndex::RestoredBucket> buckets;
  buckets.reserve(restore.buckets.size());
  for (IndexBucketRestore& bucket : restore.buckets) {
    CanonicalizeRow(&bucket.key, heap.dict());
    for (Row& y : bucket.ys) CanonicalizeRow(&y, heap.dict());
    buckets.push_back(AcIndex::RestoredBucket{std::move(bucket.key),
                                              std::move(bucket.ys),
                                              std::move(bucket.mults)});
  }
  AccessConstraint constraint = restore.constraint;
  BEAS_ASSIGN_OR_RETURN(
      std::unique_ptr<AcIndex> index,
      AcIndex::Restore(std::move(restore.constraint), heap,
                       std::move(buckets)));
  // The heap predates this constraint's shard-key declaration or not — we
  // cannot tell from here, but it does not matter: RestoreContent already
  // reinstated the recorded shard_key_col, and placement is historical.
  return catalog_->AdoptRestored(std::move(constraint), std::move(index));
}

Status DurabilityManager::Recover() {
  BEAS_RETURN_NOT_OK(EnsureDir(options_.dir));
  BEAS_RETURN_NOT_OK(EnsureDir(options_.dir + "/wal"));
  BEAS_RETURN_NOT_OK(EnsureDir(options_.dir + "/seg"));
  // Persist the directory entries themselves: the manifest rename fsyncs
  // options_.dir later, but nothing else would cover the creation of the
  // data dir or of wal/ and seg/ inside it — a machine crash could
  // otherwise forget whole directories of acked state.
  BEAS_RETURN_NOT_OK(SyncParentDir(options_.dir));
  BEAS_RETURN_NOT_OK(SyncDir(options_.dir));
  replaying_ = true;

  uint64_t replay_from = 0;  // first LSN not captured by the checkpoint
  const std::string manifest_path = options_.dir + "/" + kManifestName;
  if (PathExists(manifest_path)) {
    BEAS_ASSIGN_OR_RETURN(SegmentView view,
                          OpenSegment(manifest_path, SegmentKind::kManifest));
    ByteReader r = view.reader();
    uint64_t id = r.GetU64();
    replay_from = r.GetU64();
    uint32_t num_tables = r.GetU32();
    if (!r.ok() || num_tables > r.remaining()) {
      replaying_ = false;
      return Status::IoError("truncated manifest");
    }
    std::vector<std::string> tables;
    tables.reserve(num_tables);
    for (uint32_t i = 0; i < num_tables; ++i) tables.push_back(r.GetString());
    uint32_t num_constraints = r.GetU32();
    if (!r.ok() || num_constraints > r.remaining()) {
      replaying_ = false;
      return Status::IoError("truncated manifest");
    }
    std::vector<std::string> constraint_names;
    constraint_names.reserve(num_constraints);
    for (uint32_t i = 0; i < num_constraints; ++i) {
      constraint_names.push_back(r.GetString());
    }
    if (!r.ok()) {
      replaying_ = false;
      return Status::IoError("truncated manifest");
    }
    const std::string seg_dir = SegDir(id);
    for (const std::string& table : tables) {
      Status st = RestoreTable(seg_dir, table);
      if (!st.ok()) {
        replaying_ = false;
        return st;
      }
    }
    for (const std::string& name : constraint_names) {
      Status st = RestoreIndex(seg_dir, name);
      if (!st.ok()) {
        replaying_ = false;
        return st;
      }
    }
    last_checkpoint_id_ = id;
  }

  // GC checkpoint directories the manifest does not reference (crash
  // between manifest commit and old-dir removal, or an abandoned try).
  if (Result<std::vector<std::string>> entries =
          ListDir(options_.dir + "/seg");
      entries.ok()) {
    const std::string keep = "ck" + std::to_string(last_checkpoint_id_);
    for (const std::string& entry : *entries) {
      if (last_checkpoint_id_ == 0 || entry != keep) {
        RemoveAll(options_.dir + "/seg/" + entry);
      }
    }
  }

  // Merge every WAL (all shard files present on disk — the shard count
  // may have changed across restarts — plus the meta WAL), keep the tail
  // past the checkpoint, and replay globally in LSN order.
  std::vector<WalRecord> tail;
  uint64_t max_lsn = replay_from > 0 ? replay_from - 1 : 0;
  if (Result<std::vector<std::string>> entries =
          ListDir(options_.dir + "/wal");
      entries.ok()) {
    for (const std::string& entry : *entries) {
      const std::string path = options_.dir + "/wal/" + entry;
      Result<WalReadResult> read = ReadWalFile(path);
      if (!read.ok()) {
        replaying_ = false;
        return read.status();
      }
      for (WalRecord& record : read->records) {
        max_lsn = std::max(max_lsn, record.lsn);
        if (record.lsn >= replay_from) tail.push_back(std::move(record));
      }
      // Torn-tail repair: drop the invalid suffix a kill mid-append left,
      // so post-recovery appends extend a clean prefix.
      AppendFile repair;
      if (repair.Open(path).ok()) {
        uint64_t keep = std::max(read->valid_bytes, kWalHeaderBytes);
        if (repair.size() < kWalHeaderBytes) {
          (void)repair.Truncate(0);  // InitWalFile re-headers it
        } else if (repair.size() > keep) {
          (void)repair.Truncate(keep);
        }
      }
    }
  }
  std::sort(tail.begin(), tail.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.lsn < b.lsn; });
  for (const WalRecord& record : tail) {
    // Apply statuses are deliberately ignored: a record whose live apply
    // failed (e.g. the partial-commit error of a batch with a bad row)
    // fails identically here — that IS the faithful replay.
    (void)ApplyRecord(record);
    recovery_replayed_records_.fetch_add(1, std::memory_order_relaxed);
  }
  next_lsn_.store(max_lsn + 1, std::memory_order_relaxed);
  replaying_ = false;
  return Status::OK();
}

DurabilityCounters DurabilityManager::counters() const {
  DurabilityCounters out;
  out.wal_bytes_total = wal_bytes_total_.load(std::memory_order_relaxed);
  out.wal_records_total = wal_records_total_.load(std::memory_order_relaxed);
  out.wal_group_commits_total =
      wal_group_commits_total_.load(std::memory_order_relaxed);
  out.wal_fsyncs_total = wal_fsyncs_total_.load(std::memory_order_relaxed);
  out.checkpoints_total = checkpoints_total_.load(std::memory_order_relaxed);
  out.recovery_replayed_records =
      recovery_replayed_records_.load(std::memory_order_relaxed);
  out.wal_retries_total = wal_retries_total_.load(std::memory_order_relaxed);
  for (const auto& wal : shard_wals_) {
    if (wal->io_failed.load(std::memory_order_acquire)) {
      ++out.wal_latched_shards;
    }
  }
  return out;
}

}  // namespace durability
}  // namespace beas
