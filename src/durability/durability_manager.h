#ifndef BEAS_DURABILITY_DURABILITY_MANAGER_H_
#define BEAS_DURABILITY_DURABILITY_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "asx/access_schema.h"
#include "common/env.h"
#include "common/result.h"
#include "durability/segment.h"
#include "durability/wal.h"
#include "engine/database.h"

namespace beas {
namespace durability {

/// \brief Durability tuning knobs (see README "Durability").
struct DurabilityOptions {
  /// Data directory. Empty disables durability entirely.
  std::string dir;

  /// fsync on every group commit (and every meta-WAL record). Turning
  /// this off trades the machine-crash guarantee for process-crash-only
  /// durability (the page cache still survives a kill).
  bool fsync = true;

  /// MaybeCheckpoint fires once this many WAL bytes accumulated since
  /// the last checkpoint.
  uint64_t checkpoint_min_wal_bytes = 1ull << 22;

  /// Tables excluded from logging and checkpoints (case-insensitive).
  /// The service puts `beas_stats` here: it is recomputed metadata that
  /// the service recycles with direct heap writes outside the hooked
  /// write path, so persisting it would only replay stale gauges.
  std::vector<std::string> transient_tables;

  /// Transient-fault tolerance: a failed WAL group commit is repaired
  /// (truncate back to the acked prefix) and re-attempted up to this many
  /// times before the shard latches. 0 = latch on the first failure.
  uint64_t wal_retry_limit = 3;

  /// Backoff before the first retry, doubling per attempt (capped at
  /// 100ms). Writers in the group wait through it — under a transient
  /// fault, a slow ack beats a spurious nack.
  uint64_t wal_retry_backoff_ms = 1;

  /// The I/O environment all durability reads and writes go through.
  /// nullptr selects Env::Default() (the posix filesystem); tests inject
  /// a FaultInjectingEnv to model power cuts and bit rot.
  Env* env = nullptr;
};

/// \brief Monotonic counters exported into `beas_stats`.
struct DurabilityCounters {
  uint64_t wal_bytes_total = 0;
  uint64_t wal_records_total = 0;
  uint64_t wal_group_commits_total = 0;
  uint64_t wal_fsyncs_total = 0;
  uint64_t checkpoints_total = 0;
  uint64_t recovery_replayed_records = 0;
  uint64_t wal_retries_total = 0;   ///< group commits re-attempted
  uint64_t wal_latched_shards = 0;  ///< shards refusing writes (gauge)
  uint64_t scrub_cycles_total = 0;
  uint64_t scrub_corruptions_found = 0;
  uint64_t scrub_repairs_total = 0;
  uint64_t quarantined_shards = 0;    ///< (table, shard) pairs (gauge)
  uint64_t env_injected_faults = 0;   ///< from the Env (0 on real disks)
};

/// \brief One scrub cycle's outcome.
struct ScrubReport {
  uint64_t segments_checked = 0;
  uint64_t corruptions_found = 0;   ///< disk + memory mismatches detected
  uint64_t repairs = 0;             ///< units restored to a verified state
  uint64_t unrepairable = 0;        ///< units corrupt on disk AND in memory
};

/// \brief The durability subsystem: per-shard write-ahead logs with group
/// commit, mmap'd segment checkpoints, crash recovery with checkpoint
/// fallback, and an online scrub-and-repair cycle.
///
/// ## Write protocol (data records)
///
/// A durable Insert/InsertBatch/Delete validates against the live schema,
/// serializes the operation, and pushes it onto the WAL queue of the
/// storage shard it routes to — a lock-free Treiber stack, one CAS per
/// producer. One *drainer* thread per WAL shard pops the whole stack at
/// once, stamps each record with a global LSN (pop order == apply order,
/// so per-shard LSNs are monotone by construction), appends the group as
/// one write, fsyncs ONCE for the whole group, and only then applies each
/// record through the normal Database write path (per-shard locks, write
/// hooks → AC-index maintenance). The producer's ack resolves after both
/// the fsync and the apply: an acked write is durable *and* visible.
/// Coalescing under load is automatic — every record enqueued while the
/// previous group was fsyncing rides the next group, so the fsync cost is
/// amortized across concurrent writers.
///
/// A failed group commit nacks every record in the group and truncates
/// the WAL back to the pre-group offset (fsyncing the cut), so the file
/// always ends at the last acked byte — a torn append can never sit
/// mid-file ahead of later acked groups, and a nacked group's CRC-valid
/// bytes can never be replayed. If the repair itself fails, the shard
/// latches (io_failed) and nacks everything from then on: the outcomes
/// of a bad write are "never happened" or "shard refuses writes", never
/// "acked but silently unrecoverable".
///
/// ## Structural operations (meta records)
///
/// DDL, constraint registration/unregistration, bound adjustments and
/// dictionary rebuilds are logged *after* they apply, synchronously, to a
/// dedicated meta WAL — hooked via Database's DDL hook and AsCatalog's
/// change listener, so the service layer cannot forget to log one. The
/// *commit gate* (a shared_mutex ordered before every Database lock)
/// keeps them strictly ordered against data records: data writers hold it
/// shared from enqueue to ack; structural sections take it exclusive and
/// then wait for the queues to drain. A crash between apply and log loses
/// only an un-acked structural change — consistent by definition.
///
/// ## Checkpoints (verify-then-truncate, two generations retained)
///
/// CheckpointLocked (quiesced: commit gate exclusive + structural lock)
/// writes every table's heap shards, dictionary and slot directory plus
/// every AC index into a fresh `seg/ck<N>/` directory of CRC'd segment
/// files — including a `CKMETA` copy of the manifest payload so the
/// directory is self-describing — then *reads the whole set back through
/// the Env and re-verifies every CRC* before committing anything. Only
/// after verification does the atomically renamed MANIFEST flip recovery
/// to ck<N>; the WALs are then *rotated*, not truncated: every WAL file
/// moves to `wal/prev/` (whose previous contents — records already
/// covered by ck<N-1>'s segments twice over — are reclaimed) and fresh
/// WAL files start the new epoch. ck<N-1> is retained; only ck<N-2> and
/// older are GC'd. The result: recovery always has a fallback — if
/// ck<N>'s segments fail their CRC check (bit rot, torn writeback),
/// recovery restores ck<N-1> from its CKMETA and replays the retained
/// `wal/prev` + `wal` tail, which still covers every record since N-1.
///
/// ## Recovery
///
/// Recovery verifies the manifest's checkpoint (every segment CRC,
/// through the Env) *before* restoring a byte of it; on failure it falls
/// back to the newest older ck directory whose CKMETA and segments
/// verify. Restore is bit-identical (exact slot placement, exact
/// dictionary codes, exact bucket order); then the merged `wal` +
/// `wal/prev` tail ≥ the chosen checkpoint's replay LSN is applied in
/// LSN order. All-candidates-corrupt surfaces a typed kCorruption.
///
/// ## Scrub and quarantine
///
/// ScrubLocked — driven by the MaintenanceManager cycle via the
/// service's scrub hook — re-validates every current-checkpoint segment
/// CRC on disk, and cross-checks in-memory state (per-shard heap rows,
/// dictionaries, AC-index buckets) against the checkpoint-time payload
/// CRCs for tables untouched since the checkpoint. A mismatch counts as
/// a kCorruption finding and quarantines the (table, shard): reads keep
/// serving, durable writes to it latch kUnavailable. Repair: corrupt
/// memory with clean segments reloads the table (+ its indexes) from the
/// checkpoint through the normal restore path; corrupt segments with
/// clean memory rewrites a fresh verified checkpoint. Corrupt on both
/// sides stays quarantined and surfaces kCorruption.
///
/// ## Fail points (fault-injection testing)
///
/// Every protocol boundary of interest is a fail::Point site (see
/// common/failpoint.h for the BEAS_FAIL_POINTS / legacy BEAS_CRASH_POINT
/// syntax): wal_append (group written, not fsynced), wal_group_io (the
/// failed-fsync shape), wal_pre_fsync, wal_post_fsync (durable, not
/// applied), wal_repair_fail (truncate-repair of a failed group),
/// ckpt_write (each segment file write — the ENOSPC simulation site),
/// ckpt_mid (segments written, manifest not committed), ckpt_verify (the
/// read-back verification pass) and ckpt_post_truncate (WALs rotated,
/// old segments not yet GC'd). Crash actions _exit(42); error actions
/// are handled exactly like the real fault: group-commit errors retry
/// with backoff then latch, checkpoint errors drop the partial segment
/// directory (pressure relief) and surface kResourceExhausted when the
/// fault is disk-full-shaped.
class DurabilityManager {
 public:
  /// The manager logs through `db`/`catalog` and replays into them; both
  /// must outlive it. Nothing is read or written until Open().
  DurabilityManager(Database* db, AsCatalog* catalog, DurabilityOptions opts);

  /// Flushes and joins the drainers; never blocks on new work (the owner
  /// must have stopped producing).
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Recovers `dir` (or initializes it when empty) into the attached
  /// database, then starts the drainer threads. Call once, before the
  /// service is shared across threads; `db` must be empty.
  Status Open();

  /// The Open() verdict, re-checkable later (durable write paths also
  /// return it when Open failed).
  Status open_status() const { return open_status_; }

  /// \name Durable data writes.
  /// Ack ⇒ fsynced and applied. Safe from concurrent threads. A write
  /// routed at a quarantined (table, shard) refuses with kUnavailable.
  /// @{
  Status Insert(const std::string& table, Row row);
  Status InsertBatch(const std::string& table, std::vector<Row> rows);
  Status Delete(const std::string& table, const Row& row);
  /// @}

  /// Durable DDL: applies through the database (which fires the logging
  /// hook) under the commit gate.
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// RAII bracket for a structural section (constraint changes,
  /// maintenance cycles, checkpoints): commit gate exclusive + WAL queue
  /// barrier. While held, no data record is in flight anywhere — meta
  /// records logged inside observe a strict LSN order against all data.
  class StructuralGate {
   public:
    explicit StructuralGate(DurabilityManager* mgr) : mgr_(mgr) {
      if (mgr_ != nullptr) mgr_->EnterStructural();
    }
    ~StructuralGate() {
      if (mgr_ != nullptr) mgr_->LeaveStructural();
    }
    StructuralGate(const StructuralGate&) = delete;
    StructuralGate& operator=(const StructuralGate&) = delete;

   private:
    DurabilityManager* mgr_;
  };

  /// Takes its own gate + structural scope, then checkpoints.
  Status Checkpoint();

  /// Checkpoint iff the WAL grew past checkpoint_min_wal_bytes since the
  /// last one. Caller holds a StructuralGate AND the database structural
  /// lock exclusively (the maintenance checkpoint hook's calling
  /// convention). `did_out` (optional) reports whether one ran.
  Status MaybeCheckpointLocked(bool* did_out = nullptr);

  /// Unconditional checkpoint under the caller's gate + structural lock.
  /// The new segment set is read back and CRC-verified through the Env
  /// before the manifest commits (and before any old state is
  /// reclaimed). A failure before the commit removes the partial segment
  /// directory (and any orphaned older tries beyond the retained
  /// fallback) so a full disk is relieved rather than compounded, and
  /// surfaces kResourceExhausted when the fault is disk-full-shaped.
  Status CheckpointLocked();

  /// Takes its own gate + structural scope, then scrubs (see class
  /// comment). Returns kCorruption when a unit is corrupt on both sides
  /// (it stays quarantined); OK otherwise, even when repairs ran.
  Status Scrub(ScrubReport* report = nullptr);

  /// Scrub under the caller's gate + structural lock (the maintenance
  /// scrub hook's calling convention).
  Status ScrubLocked(ScrubReport* report = nullptr);

  /// True if scrub quarantined heap shard `shard` of `table`.
  bool IsShardQuarantined(const std::string& table, size_t shard) const;

  DurabilityCounters counters() const;

 private:
  /// A producer-enqueued record awaiting group commit.
  struct Pending {
    WalRecord record;
    std::promise<Status> ack;
    Pending* next = nullptr;
  };

  /// One WAL shard: lock-free producer stack + drainer + log file.
  struct ShardWal {
    std::atomic<Pending*> head{nullptr};
    /// enqueued counts pushes; applied counts resolved acks. Equal ⇔ the
    /// queue is empty and every popped record finished applying — the
    /// StructuralGate barrier's condition.
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> applied{0};
    /// Latched when a failed group commit could not be repaired (the
    /// truncate back to the pre-group offset failed): the file may hold
    /// bytes the accounting cannot vouch for, so the shard refuses all
    /// further durable writes — acking past a torn record would let
    /// recovery silently drop the acked tail.
    std::atomic<bool> io_failed{false};
    std::unique_ptr<WritableFile> file;
    std::thread drainer;
    std::mutex wake_mutex;
    /// Producers / Barrier() -> drainer: work queued (or stop).
    std::condition_variable wake;
    /// Drainer -> Barrier(): applied advanced past another group.
    std::condition_variable applied_cv;
  };

  /// One file of the current checkpoint, as the scrubber sweeps it.
  struct SegmentRecord {
    std::string path;
    SegmentKind kind = SegmentKind::kManifest;
    uint32_t crc = 0;            ///< payload CRC recorded at write time
    std::string table;           ///< kTableMeta / kDict / kShardRows
    size_t shard = 0;            ///< kShardRows
    std::string constraint;      ///< kIndex
  };

  /// Checkpoint-time fingerprints of one table's in-memory state.
  struct TableBaseline {
    std::vector<uint32_t> shard_crcs;  ///< CRC of BuildShardRowsPayload
    bool has_dict = false;
    uint32_t dict_crc = 0;
  };

  /// A parsed manifest / CKMETA payload.
  struct CheckpointMeta {
    uint64_t id = 0;
    uint64_t replay_from = 0;
    std::vector<std::string> tables;
    std::vector<std::string> constraints;
  };

  void EnterStructural();
  void LeaveStructural();
  /// Blocks on each shard's applied_cv until every shard queue has fully
  /// applied. Caller holds the commit gate exclusively, so no new record
  /// can be enqueued while waiting.
  void Barrier();

  /// Pushes a serialized record onto shard queue `wal_shard` and returns
  /// the ack future. Caller holds the commit gate shared.
  std::future<Status> Enqueue(size_t wal_shard, WalRecordType type,
                              std::string payload);

  void DrainerLoop(size_t wal_shard);

  /// Applies one record through the normal engine write path. Used by the
  /// drainers (data records) and by recovery replay (all records).
  Status ApplyRecord(const WalRecord& record);

  /// Stamps an LSN and synchronously appends+fsyncs to the meta WAL.
  /// Called from the structural-logging hooks (commit gate held
  /// exclusively by the structural section that triggered them).
  Status LogMeta(WalRecordType type, std::string payload);

  /// Hook bodies (registered on `db_`/`catalog_` by Open()).
  void OnDdl(const std::string& table);
  void OnCatalogChange(AsCatalog::ChangeKind kind, const std::string& table,
                       const std::string& name);

  /// kUnavailable if (table, shard) — or any shard of `table` when
  /// `shard` < 0 — is quarantined.
  Status CheckQuarantine(const std::string& table, int64_t shard) const;

  /// Writes checkpoint `id`'s segment files (including the CKMETA
  /// manifest copy) into `seg_dir`, assembles the manifest payload, and
  /// collects the scrub baseline. The pre-commit half of
  /// CheckpointLocked, split out so every failure inside funnels through
  /// one pressure-relief path.
  Status WriteCheckpointSegments(const std::string& seg_dir,
                                 ByteSink* manifest,
                                 std::vector<SegmentRecord>* segments,
                                 std::map<std::string, TableBaseline>* tables,
                                 std::map<std::string, uint32_t>* indexes);

  /// Reads back and CRC-verifies every segment file `meta` references in
  /// `seg_dir` through the Env, without touching engine state. Collects
  /// the scrub baseline (optional outs).
  Status VerifyCheckpoint(const std::string& seg_dir,
                          const CheckpointMeta& meta,
                          std::vector<SegmentRecord>* segments,
                          std::map<std::string, TableBaseline>* tables,
                          std::map<std::string, uint32_t>* indexes);

  /// Parses a manifest / CKMETA file (segment-framed, kind kManifest).
  Result<CheckpointMeta> LoadCheckpointMeta(const std::string& path);

  /// Archives the current WAL epoch into wal/prev (reclaiming the epoch
  /// before it) and opens fresh WAL files. Caller holds the gate; the
  /// queues are drained. On failure, every handle it could not reopen
  /// latches its shard (or the meta log) rather than dangling.
  Status RotateWals();

  /// Removes seg/ck* directories other than `keep_id` and `keep_id - 1`.
  void GcCheckpointDirs(uint64_t keep_id);

  Status Recover();
  /// Restores one checkpointed table (meta + dict + shard segments).
  Status RestoreTable(const std::string& seg_dir, const std::string& table);
  /// Restores one checkpointed AC index.
  Status RestoreIndex(const std::string& seg_dir, const std::string& name);

  /// Drops `table` and reloads it (and its AC indexes) from the current
  /// checkpoint — the scrub repair for corrupt-in-memory, clean-on-disk.
  Status ReloadTableFromCheckpoint(const std::string& table);

  /// Marks `table` written-to since the last checkpoint (its memory
  /// baseline is stale until the next one).
  void MarkTableDirty(const std::string& table);
  void MarkStructuralDirty();

  std::string WalPath(size_t wal_shard) const;
  std::string MetaWalPath() const;
  std::string WalDir() const { return options_.dir + "/wal"; }
  std::string WalPrevDir() const { return options_.dir + "/wal/prev"; }
  std::string SegDir(uint64_t checkpoint_id) const;

  Database* db_;
  AsCatalog* catalog_;
  DurabilityOptions options_;
  Env* env_;  ///< options_.env or Env::Default(); never null after ctor
  Status open_status_ = Status::OK();
  bool opened_ = false;

  /// The commit gate. Lock order: commit gate, then any Database lock.
  std::shared_mutex commit_mutex_;

  /// Next LSN to hand out. Drainers stamp data records at pop time;
  /// LogMeta stamps meta records inline.
  std::atomic<uint64_t> next_lsn_{1};

  size_t wal_shard_count_ = 1;
  std::vector<std::unique_ptr<ShardWal>> shard_wals_;
  std::atomic<bool> stop_{false};

  /// Meta WAL: only structural sections (gate-exclusive) append, but the
  /// mutex keeps the file state well-defined regardless.
  std::mutex meta_mutex_;
  std::unique_ptr<WritableFile> meta_wal_;

  /// True while Recover() replays — the logging hooks no-op so replayed
  /// operations are not logged twice. (The hooks are also only registered
  /// after recovery; this is belt-and-braces.)
  bool replaying_ = false;

  /// Latched when a structural logging hook fails to persist its meta
  /// record (the void hook signature cannot propagate the status).
  /// Durable write paths refuse further work once set — the in-memory
  /// state is ahead of the log, so acking anything more would lie.
  std::atomic<bool> meta_log_failed_{false};

  uint64_t last_checkpoint_id_ = 0;
  std::atomic<uint64_t> wal_bytes_since_checkpoint_{0};

  /// \name Scrub state. The segment list and baselines are written under
  /// the structural gate (checkpoint / recovery / scrub) and read under
  /// it; the dirty set is additionally written by drainer threads, hence
  /// its own mutex.
  /// @{
  std::vector<SegmentRecord> current_segments_;
  std::map<std::string, TableBaseline> table_baselines_;
  std::map<std::string, uint32_t> index_baselines_;
  std::mutex dirty_mutex_;
  std::set<std::string> dirty_tables_;
  bool structural_dirty_ = false;

  mutable std::mutex quarantine_mutex_;
  std::set<std::pair<std::string, size_t>> quarantined_;
  std::atomic<uint64_t> quarantined_count_{0};
  /// @}

  std::atomic<uint64_t> wal_bytes_total_{0};
  std::atomic<uint64_t> wal_records_total_{0};
  std::atomic<uint64_t> wal_group_commits_total_{0};
  std::atomic<uint64_t> wal_fsyncs_total_{0};
  std::atomic<uint64_t> checkpoints_total_{0};
  std::atomic<uint64_t> recovery_replayed_records_{0};
  std::atomic<uint64_t> wal_retries_total_{0};
  std::atomic<uint64_t> scrub_cycles_total_{0};
  std::atomic<uint64_t> scrub_corruptions_found_{0};
  std::atomic<uint64_t> scrub_repairs_total_{0};
};

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_DURABILITY_MANAGER_H_
