#ifndef BEAS_DURABILITY_DURABILITY_MANAGER_H_
#define BEAS_DURABILITY_DURABILITY_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "asx/access_schema.h"
#include "common/file_util.h"
#include "common/result.h"
#include "durability/wal.h"
#include "engine/database.h"

namespace beas {
namespace durability {

/// \brief Durability tuning knobs (see README "Durability").
struct DurabilityOptions {
  /// Data directory. Empty disables durability entirely.
  std::string dir;

  /// fsync on every group commit (and every meta-WAL record). Turning
  /// this off trades the machine-crash guarantee for process-crash-only
  /// durability (the page cache still survives a kill).
  bool fsync = true;

  /// MaybeCheckpoint fires once this many WAL bytes accumulated since
  /// the last checkpoint.
  uint64_t checkpoint_min_wal_bytes = 1ull << 22;

  /// Tables excluded from logging and checkpoints (case-insensitive).
  /// The service puts `beas_stats` here: it is recomputed metadata that
  /// the service recycles with direct heap writes outside the hooked
  /// write path, so persisting it would only replay stale gauges.
  std::vector<std::string> transient_tables;

  /// Transient-fault tolerance: a failed WAL group commit is repaired
  /// (truncate back to the acked prefix) and re-attempted up to this many
  /// times before the shard latches. 0 = latch on the first failure.
  uint64_t wal_retry_limit = 3;

  /// Backoff before the first retry, doubling per attempt (capped at
  /// 100ms). Writers in the group wait through it — under a transient
  /// fault, a slow ack beats a spurious nack.
  uint64_t wal_retry_backoff_ms = 1;
};

/// \brief Monotonic counters exported into `beas_stats`.
struct DurabilityCounters {
  uint64_t wal_bytes_total = 0;
  uint64_t wal_records_total = 0;
  uint64_t wal_group_commits_total = 0;
  uint64_t wal_fsyncs_total = 0;
  uint64_t checkpoints_total = 0;
  uint64_t recovery_replayed_records = 0;
  uint64_t wal_retries_total = 0;   ///< group commits re-attempted
  uint64_t wal_latched_shards = 0;  ///< shards refusing writes (gauge)
};

/// \brief The durability subsystem: per-shard write-ahead logs with group
/// commit, mmap'd segment checkpoints, and crash recovery.
///
/// ## Write protocol (data records)
///
/// A durable Insert/InsertBatch/Delete validates against the live schema,
/// serializes the operation, and pushes it onto the WAL queue of the
/// storage shard it routes to — a lock-free Treiber stack, one CAS per
/// producer. One *drainer* thread per WAL shard pops the whole stack at
/// once, stamps each record with a global LSN (pop order == apply order,
/// so per-shard LSNs are monotone by construction), appends the group as
/// one write, fsyncs ONCE for the whole group, and only then applies each
/// record through the normal Database write path (per-shard locks, write
/// hooks → AC-index maintenance). The producer's ack resolves after both
/// the fsync and the apply: an acked write is durable *and* visible.
/// Coalescing under load is automatic — every record enqueued while the
/// previous group was fsyncing rides the next group, so the fsync cost is
/// amortized across concurrent writers.
///
/// A failed group commit nacks every record in the group and truncates
/// the WAL back to the pre-group offset (fsyncing the cut), so the file
/// always ends at the last acked byte — a torn append can never sit
/// mid-file ahead of later acked groups, and a nacked group's CRC-valid
/// bytes can never be replayed. If the repair itself fails, the shard
/// latches (io_failed) and nacks everything from then on: the outcomes
/// of a bad write are "never happened" or "shard refuses writes", never
/// "acked but silently unrecoverable".
///
/// ## Structural operations (meta records)
///
/// DDL, constraint registration/unregistration, bound adjustments and
/// dictionary rebuilds are logged *after* they apply, synchronously, to a
/// dedicated meta WAL — hooked via Database's DDL hook and AsCatalog's
/// change listener, so the service layer cannot forget to log one. The
/// *commit gate* (a shared_mutex ordered before every Database lock)
/// keeps them strictly ordered against data records: data writers hold it
/// shared from enqueue to ack; structural sections take it exclusive and
/// then wait for the queues to drain. A crash between apply and log loses
/// only an un-acked structural change — consistent by definition.
///
/// ## Checkpoints
///
/// CheckpointLocked (quiesced: commit gate exclusive + structural lock)
/// writes every table's heap shards, dictionary and slot directory plus
/// every AC index into a fresh `seg/ck<N>/` directory of CRC'd segment
/// files, then commits the set with an atomically renamed MANIFEST and
/// truncates all WALs. Recovery mmaps the newest manifest's segments,
/// restores heaps/dicts/indexes bit-identically (exact slot placement,
/// exact dictionary codes, exact bucket order), then replays the merged
/// WAL tail in LSN order. MaintenanceManager's adjustment cycle drives
/// periodic checkpoints through the service's checkpoint hook.
///
/// ## Fail points (fault-injection testing)
///
/// Every protocol boundary of interest is a fail::Point site (see
/// common/failpoint.h for the BEAS_FAIL_POINTS / legacy BEAS_CRASH_POINT
/// syntax): wal_append (group written, not fsynced), wal_group_io (the
/// failed-fsync shape), wal_pre_fsync, wal_post_fsync (durable, not
/// applied), wal_repair_fail (truncate-repair of a failed group),
/// ckpt_write (each segment file write — the ENOSPC simulation site),
/// ckpt_mid (segments written, manifest not committed) and
/// ckpt_post_truncate (WALs truncated, old segments not yet GC'd). Crash
/// actions _exit(42); error actions are handled exactly like the real
/// fault: group-commit errors retry with backoff then latch, checkpoint
/// errors drop the partial segment directory (pressure relief) and
/// surface kResourceExhausted when the fault is disk-full-shaped.
class DurabilityManager {
 public:
  /// The manager logs through `db`/`catalog` and replays into them; both
  /// must outlive it. Nothing is read or written until Open().
  DurabilityManager(Database* db, AsCatalog* catalog, DurabilityOptions opts);

  /// Flushes and joins the drainers; never blocks on new work (the owner
  /// must have stopped producing).
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Recovers `dir` (or initializes it when empty) into the attached
  /// database, then starts the drainer threads. Call once, before the
  /// service is shared across threads; `db` must be empty.
  Status Open();

  /// The Open() verdict, re-checkable later (durable write paths also
  /// return it when Open failed).
  Status open_status() const { return open_status_; }

  /// \name Durable data writes.
  /// Ack ⇒ fsynced and applied. Safe from concurrent threads.
  /// @{
  Status Insert(const std::string& table, Row row);
  Status InsertBatch(const std::string& table, std::vector<Row> rows);
  Status Delete(const std::string& table, const Row& row);
  /// @}

  /// Durable DDL: applies through the database (which fires the logging
  /// hook) under the commit gate.
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// RAII bracket for a structural section (constraint changes,
  /// maintenance cycles, checkpoints): commit gate exclusive + WAL queue
  /// barrier. While held, no data record is in flight anywhere — meta
  /// records logged inside observe a strict LSN order against all data.
  class StructuralGate {
   public:
    explicit StructuralGate(DurabilityManager* mgr) : mgr_(mgr) {
      if (mgr_ != nullptr) mgr_->EnterStructural();
    }
    ~StructuralGate() {
      if (mgr_ != nullptr) mgr_->LeaveStructural();
    }
    StructuralGate(const StructuralGate&) = delete;
    StructuralGate& operator=(const StructuralGate&) = delete;

   private:
    DurabilityManager* mgr_;
  };

  /// Takes its own gate + structural scope, then checkpoints.
  Status Checkpoint();

  /// Checkpoint iff the WAL grew past checkpoint_min_wal_bytes since the
  /// last one. Caller holds a StructuralGate AND the database structural
  /// lock exclusively (the maintenance checkpoint hook's calling
  /// convention). `did_out` (optional) reports whether one ran.
  Status MaybeCheckpointLocked(bool* did_out = nullptr);

  /// Unconditional checkpoint under the caller's gate + structural lock.
  /// A failure before the manifest commit removes the partial segment
  /// directory (and any orphaned older tries) so a full disk is relieved
  /// rather than compounded, and surfaces kResourceExhausted when the
  /// fault is disk-full-shaped.
  Status CheckpointLocked();

  DurabilityCounters counters() const;

 private:
  /// A producer-enqueued record awaiting group commit.
  struct Pending {
    WalRecord record;
    std::promise<Status> ack;
    Pending* next = nullptr;
  };

  /// One WAL shard: lock-free producer stack + drainer + log file.
  struct ShardWal {
    std::atomic<Pending*> head{nullptr};
    /// enqueued counts pushes; applied counts resolved acks. Equal ⇔ the
    /// queue is empty and every popped record finished applying — the
    /// StructuralGate barrier's condition.
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> applied{0};
    /// Latched when a failed group commit could not be repaired (the
    /// truncate back to the pre-group offset failed): the file may hold
    /// bytes the accounting cannot vouch for, so the shard refuses all
    /// further durable writes — acking past a torn record would let
    /// recovery silently drop the acked tail.
    std::atomic<bool> io_failed{false};
    AppendFile file;
    std::thread drainer;
    std::mutex wake_mutex;
    /// Producers / Barrier() -> drainer: work queued (or stop).
    std::condition_variable wake;
    /// Drainer -> Barrier(): applied advanced past another group.
    std::condition_variable applied_cv;
  };

  void EnterStructural();
  void LeaveStructural();
  /// Blocks on each shard's applied_cv until every shard queue has fully
  /// applied. Caller holds the commit gate exclusively, so no new record
  /// can be enqueued while waiting.
  void Barrier();

  /// Pushes a serialized record onto shard queue `wal_shard` and returns
  /// the ack future. Caller holds the commit gate shared.
  std::future<Status> Enqueue(size_t wal_shard, WalRecordType type,
                              std::string payload);

  void DrainerLoop(size_t wal_shard);

  /// Applies one record through the normal engine write path. Used by the
  /// drainers (data records) and by recovery replay (all records).
  Status ApplyRecord(const WalRecord& record);

  /// Stamps an LSN and synchronously appends+fsyncs to the meta WAL.
  /// Called from the structural-logging hooks (commit gate held
  /// exclusively by the structural section that triggered them).
  Status LogMeta(WalRecordType type, std::string payload);

  /// Hook bodies (registered on `db_`/`catalog_` by Open()).
  void OnDdl(const std::string& table);
  void OnCatalogChange(AsCatalog::ChangeKind kind, const std::string& table,
                       const std::string& name);

  /// Writes checkpoint `id`'s segment files into `seg_dir` and assembles
  /// the manifest payload. The pre-commit half of CheckpointLocked, split
  /// out so every failure inside funnels through one pressure-relief
  /// path.
  Status WriteCheckpointSegments(const std::string& seg_dir,
                                 ByteSink* manifest);

  Status Recover();
  /// Restores one checkpointed table (meta + dict + shard segments).
  Status RestoreTable(const std::string& seg_dir, const std::string& table);
  /// Restores one checkpointed AC index.
  Status RestoreIndex(const std::string& seg_dir, const std::string& name);

  std::string WalPath(size_t wal_shard) const;
  std::string MetaWalPath() const;
  std::string SegDir(uint64_t checkpoint_id) const;

  Database* db_;
  AsCatalog* catalog_;
  DurabilityOptions options_;
  Status open_status_ = Status::OK();
  bool opened_ = false;

  /// The commit gate. Lock order: commit gate, then any Database lock.
  std::shared_mutex commit_mutex_;

  /// Next LSN to hand out. Drainers stamp data records at pop time;
  /// LogMeta stamps meta records inline.
  std::atomic<uint64_t> next_lsn_{1};

  size_t wal_shard_count_ = 1;
  std::vector<std::unique_ptr<ShardWal>> shard_wals_;
  std::atomic<bool> stop_{false};

  /// Meta WAL: only structural sections (gate-exclusive) append, but the
  /// mutex keeps the file state well-defined regardless.
  std::mutex meta_mutex_;
  AppendFile meta_wal_;

  /// True while Recover() replays — the logging hooks no-op so replayed
  /// operations are not logged twice. (The hooks are also only registered
  /// after recovery; this is belt-and-braces.)
  bool replaying_ = false;

  /// Latched when a structural logging hook fails to persist its meta
  /// record (the void hook signature cannot propagate the status).
  /// Durable write paths refuse further work once set — the in-memory
  /// state is ahead of the log, so acking anything more would lie.
  std::atomic<bool> meta_log_failed_{false};

  uint64_t last_checkpoint_id_ = 0;
  std::atomic<uint64_t> wal_bytes_since_checkpoint_{0};

  std::atomic<uint64_t> wal_bytes_total_{0};
  std::atomic<uint64_t> wal_records_total_{0};
  std::atomic<uint64_t> wal_group_commits_total_{0};
  std::atomic<uint64_t> wal_fsyncs_total_{0};
  std::atomic<uint64_t> checkpoints_total_{0};
  std::atomic<uint64_t> recovery_replayed_records_{0};
  std::atomic<uint64_t> wal_retries_total_{0};
};

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_DURABILITY_MANAGER_H_
