#include "durability/segment.h"

#include "common/crc32.h"

namespace beas {
namespace durability {

Status WriteSegmentFile(Env* env, const std::string& path, SegmentKind kind,
                        const std::string& payload,
                        uint32_t* payload_crc_out) {
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  if (payload_crc_out != nullptr) *payload_crc_out = crc;
  ByteSink header;
  header.PutU32(kSegMagic);
  header.PutU32(kSegVersion);
  header.PutU8(static_cast<uint8_t>(kind));
  header.PutU32(crc);
  header.PutU64(payload.size());
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                        env->NewWritableFile(path));
  BEAS_RETURN_NOT_OK(f->Truncate(0));
  BEAS_RETURN_NOT_OK(f->Append(header.str().data(), header.str().size()));
  BEAS_RETURN_NOT_OK(f->Append(payload.data(), payload.size()));
  return f->Sync();
}

Result<SegmentView> OpenSegment(Env* env, const std::string& path,
                                SegmentKind kind) {
  SegmentView view;
  BEAS_ASSIGN_OR_RETURN(view.file, env->NewRandomAccessFile(path));
  if (view.file->size() < kSegHeaderBytes) {
    return Status::Corruption("segment too small: " + path);
  }
  ByteReader header(view.file->data(), kSegHeaderBytes);
  uint32_t magic = header.GetU32();
  uint32_t version = header.GetU32();
  uint8_t file_kind = header.GetU8();
  uint32_t crc = header.GetU32();
  uint64_t payload_len = header.GetU64();
  if (magic != kSegMagic) {
    return Status::Corruption("not a BEAS segment: " + path);
  }
  if (version != kSegVersion) {
    return Status::Corruption("unsupported segment version " +
                              std::to_string(version) + ": " + path);
  }
  if (file_kind != static_cast<uint8_t>(kind)) {
    return Status::Corruption("segment kind mismatch: " + path);
  }
  if (payload_len != view.file->size() - kSegHeaderBytes) {
    return Status::Corruption("segment length mismatch: " + path);
  }
  view.payload = view.file->data() + kSegHeaderBytes;
  view.payload_len = payload_len;
  if (Crc32c(view.payload, payload_len) != crc) {
    return Status::Corruption("segment CRC mismatch: " + path);
  }
  return view;
}

Result<SegmentKind> VerifySegmentFile(Env* env, const std::string& path,
                                      uint32_t* payload_crc_out) {
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->NewRandomAccessFile(path));
  if (file->size() < kSegHeaderBytes) {
    return Status::Corruption("segment too small: " + path);
  }
  ByteReader header(file->data(), kSegHeaderBytes);
  uint32_t magic = header.GetU32();
  uint32_t version = header.GetU32();
  uint8_t file_kind = header.GetU8();
  uint32_t crc = header.GetU32();
  uint64_t payload_len = header.GetU64();
  if (magic != kSegMagic) {
    return Status::Corruption("not a BEAS segment: " + path);
  }
  if (version != kSegVersion) {
    return Status::Corruption("unsupported segment version " +
                              std::to_string(version) + ": " + path);
  }
  if (payload_len != file->size() - kSegHeaderBytes) {
    return Status::Corruption("segment length mismatch: " + path);
  }
  if (Crc32c(file->data() + kSegHeaderBytes, payload_len) != crc) {
    return Status::Corruption("segment CRC mismatch: " + path);
  }
  if (payload_crc_out != nullptr) *payload_crc_out = crc;
  return static_cast<SegmentKind>(file_kind);
}

std::string BuildTableMetaPayload(const TableInfo& table) {
  const TableHeap& heap = table.heap();
  ByteSink sink;
  WriteSchema(&sink, heap.schema());
  sink.PutU8(heap.dict() != nullptr ? 1 : 0);
  sink.PutU32(static_cast<uint32_t>(heap.num_shards()));
  sink.PutI64(heap.shard_key_col());
  sink.PutU64(heap.NumSlots());
  for (size_t slot = 0; slot < heap.NumSlots(); ++slot) {
    auto ref = heap.DirectorySlot(slot);
    sink.PutU32(ref.first);
    sink.PutU32(ref.second);
  }
  return sink.Take();
}

Result<TableMetaRestore> ParseTableMetaPayload(ByteReader r) {
  TableMetaRestore out;
  BEAS_ASSIGN_OR_RETURN(out.schema, ReadSchema(&r));
  out.dict_enabled = r.GetU8() != 0;
  out.num_shards = r.GetU32();
  out.shard_key_col = r.GetI64();
  uint64_t slots = r.GetU64();
  if (!r.ok() || slots > r.remaining()) {
    return Status::IoError("truncated table meta");
  }
  out.directory.reserve(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    uint32_t shard = r.GetU32();
    uint32_t local = r.GetU32();
    out.directory.emplace_back(shard, local);
  }
  if (!r.ok()) return Status::IoError("truncated table meta directory");
  return out;
}

std::string BuildDictPayload(const StringDict& dict) {
  ByteSink sink;
  sink.PutU64(dict.size());
  for (uint32_t code = 0; code < dict.size(); ++code) {
    sink.PutString(dict.str(code));
  }
  sink.PutU8(dict.is_sorted() ? 1 : 0);
  sink.PutU64(dict.out_of_order_codes());
  sink.PutU64(dict.rebuilds());
  return sink.Take();
}

Result<DictRestore> ParseDictPayload(ByteReader r) {
  DictRestore out;
  uint64_t count = r.GetU64();
  if (!r.ok() || count > r.remaining()) {
    return Status::IoError("truncated dict segment");
  }
  out.strings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) out.strings.push_back(r.GetString());
  out.sorted = r.GetU8() != 0;
  out.out_of_order = r.GetU64();
  out.rebuilds = r.GetU64();
  if (!r.ok()) return Status::IoError("truncated dict segment");
  return out;
}

std::string BuildShardRowsPayload(const TableHeap& heap, size_t shard) {
  ByteSink sink;
  size_t count = heap.ShardRowCount(shard);
  sink.PutU64(count);
  for (size_t i = 0; i < count; ++i) {
    sink.PutU8(heap.ShardRowLive(shard, i) ? 1 : 0);
    WriteRow(&sink, heap.ShardRowAt(shard, i));
  }
  return sink.Take();
}

Result<ShardRowsRestore> ParseShardRowsPayload(ByteReader r) {
  ShardRowsRestore out;
  uint64_t count = r.GetU64();
  if (!r.ok() || count > r.remaining()) {
    return Status::IoError("truncated shard rows segment");
  }
  out.rows.reserve(count);
  out.live.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.live.push_back(r.GetU8());
    BEAS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::string BuildIndexPayload(const AcIndex& index) {
  ByteSink sink;
  WriteConstraint(&sink, index.constraint());
  ByteSink buckets;
  uint64_t num_buckets = 0;
  index.ForEachBucket([&](const ValueVec& key, const std::vector<Row>& ys,
                          const std::vector<size_t>& mults) {
    ++num_buckets;
    WriteRow(&buckets, key);
    buckets.PutU32(static_cast<uint32_t>(ys.size()));
    for (size_t i = 0; i < ys.size(); ++i) {
      WriteRow(&buckets, ys[i]);
      buckets.PutU64(mults[i]);
    }
  });
  sink.PutU64(num_buckets);
  sink.PutRaw(buckets.str().data(), buckets.str().size());
  return sink.Take();
}

Result<IndexRestore> ParseIndexPayload(ByteReader r) {
  IndexRestore out;
  BEAS_ASSIGN_OR_RETURN(out.constraint, ReadConstraint(&r));
  uint64_t num_buckets = r.GetU64();
  if (!r.ok() || num_buckets > r.remaining()) {
    return Status::IoError("truncated index segment");
  }
  out.buckets.reserve(num_buckets);
  for (uint64_t b = 0; b < num_buckets; ++b) {
    IndexBucketRestore bucket;
    BEAS_ASSIGN_OR_RETURN(bucket.key, ReadRow(&r));
    uint32_t ny = r.GetU32();
    if (!r.ok() || ny > r.remaining()) {
      return Status::IoError("truncated index bucket");
    }
    bucket.ys.reserve(ny);
    bucket.mults.reserve(ny);
    for (uint32_t i = 0; i < ny; ++i) {
      BEAS_ASSIGN_OR_RETURN(Row y, ReadRow(&r));
      bucket.ys.push_back(std::move(y));
      bucket.mults.push_back(static_cast<size_t>(r.GetU64()));
    }
    out.buckets.push_back(std::move(bucket));
  }
  if (!r.ok()) return Status::IoError("truncated index segment");
  return out;
}

}  // namespace durability
}  // namespace beas
