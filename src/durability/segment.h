#ifndef BEAS_DURABILITY_SEGMENT_H_
#define BEAS_DURABILITY_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asx/ac_index.h"
#include "catalog/catalog.h"
#include "common/env.h"
#include "common/result.h"
#include "durability/serde.h"

namespace beas {
namespace durability {

/// \brief What a segment file holds. Checkpoint `N` of a database is a
/// directory `seg/ck<N>/` of these plus a manifest committing the set.
enum class SegmentKind : uint8_t {
  kTableMeta = 1,  ///< schema, shard layout, global slot directory
  kDict = 2,       ///< string dictionary incl. sorted-rebuild state
  kShardRows = 3,  ///< one heap shard's rows + live flags
  kIndex = 4,      ///< one AC index's cells (keys, Y-sets, multiplicities)
  kManifest = 5,   ///< the checkpoint commit record
};

/// \name Segment file framing.
///
/// File := magic:u32 version:u32 kind:u8 crc:u32 payload_len:u64 payload
///
/// `crc` is CRC-32C of the payload. Readers mmap the file, validate the
/// header against the mapped bytes, and parse the payload in place.
/// @{
constexpr uint32_t kSegMagic = 0x47455342u;  // "BSEG"
constexpr uint32_t kSegVersion = 1;
constexpr uint64_t kSegHeaderBytes = 21;

/// Writes a complete segment file (truncate + append + fsync). Segment
/// files live in a fresh checkpoint directory referenced only by the
/// manifest written after all of them, so in-place write is crash-safe.
/// `payload_crc_out` (optional) receives the payload's CRC-32C — the
/// checkpoint records it as the scrubber's cross-check baseline.
Status WriteSegmentFile(Env* env, const std::string& path, SegmentKind kind,
                        const std::string& payload,
                        uint32_t* payload_crc_out = nullptr);

/// A validated whole-file segment view: `reader()` parses the payload in
/// place (no copy beyond what the Env's view itself holds).
struct SegmentView {
  std::unique_ptr<RandomAccessFile> file;
  const char* payload = nullptr;
  uint64_t payload_len = 0;

  ByteReader reader() const { return ByteReader(payload, payload_len); }
};

/// Opens and validates `path`; typed kCorruption on any magic / version /
/// kind / length / CRC mismatch.
Result<SegmentView> OpenSegment(Env* env, const std::string& path,
                                SegmentKind kind);

/// Validates `path`'s framing and payload CRC without pinning the kind —
/// the verify-before-commit and scrub passes sweep whole checkpoint
/// directories with it. Returns the file's kind; `payload_crc_out`
/// (optional) receives the validated payload CRC for baseline capture.
Result<SegmentKind> VerifySegmentFile(Env* env, const std::string& path,
                                      uint32_t* payload_crc_out = nullptr);
/// @}

/// \name Payload builders (checkpoint write path).
/// Caller holds the database structural lock exclusively; the builders
/// read heap/dict/index state without locking.
/// @{
std::string BuildTableMetaPayload(const TableInfo& table);
std::string BuildDictPayload(const StringDict& dict);
std::string BuildShardRowsPayload(const TableHeap& heap, size_t shard);
std::string BuildIndexPayload(const AcIndex& index);
/// @}

/// \name Payload parsers (recovery read path).
/// @{
struct TableMetaRestore {
  Schema schema;
  bool dict_enabled = true;
  uint32_t num_shards = 1;
  int64_t shard_key_col = -1;
  /// Global slot directory: (shard, local) per slot, insertion order.
  std::vector<std::pair<uint32_t, uint32_t>> directory;
};
Result<TableMetaRestore> ParseTableMetaPayload(ByteReader r);

struct DictRestore {
  std::vector<std::string> strings;  ///< code order
  bool sorted = true;
  uint64_t out_of_order = 0;
  uint64_t rebuilds = 0;
};
Result<DictRestore> ParseDictPayload(ByteReader r);

struct ShardRowsRestore {
  std::vector<Row> rows;          ///< strings inline; canonicalize after
  std::vector<uint8_t> live;      ///< parallel to rows
};
Result<ShardRowsRestore> ParseShardRowsPayload(ByteReader r);

struct IndexBucketRestore {
  ValueVec key;
  std::vector<Row> ys;
  std::vector<size_t> mults;
};
struct IndexRestore {
  AccessConstraint constraint;
  std::vector<IndexBucketRestore> buckets;
};
Result<IndexRestore> ParseIndexPayload(ByteReader r);
/// @}

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_SEGMENT_H_
