#include "durability/serde.h"

#include "common/hash.h"

namespace beas {
namespace durability {

namespace {

/// On-wire value tags. Deliberately not TypeId: the storage format must
/// stay stable even if the in-memory enum is reordered.
enum class ValueTag : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
};

}  // namespace

void WriteValue(ByteSink* sink, const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      sink->PutU8(static_cast<uint8_t>(ValueTag::kNull));
      return;
    case TypeId::kInt64:
      sink->PutU8(static_cast<uint8_t>(ValueTag::kInt64));
      sink->PutI64(v.AsInt64());
      return;
    case TypeId::kDouble:
      sink->PutU8(static_cast<uint8_t>(ValueTag::kDouble));
      sink->PutDouble(v.AsDouble());
      return;
    case TypeId::kString:
      // Raw bytes regardless of representation: AsString decodes
      // dictionary-backed values, so both representations serialize
      // identically (and deserialize inline, to be re-canonicalized).
      sink->PutU8(static_cast<uint8_t>(ValueTag::kString));
      sink->PutString(v.AsString());
      return;
    case TypeId::kDate:
      sink->PutU8(static_cast<uint8_t>(ValueTag::kDate));
      sink->PutI64(v.AsDate());
      return;
  }
  sink->PutU8(static_cast<uint8_t>(ValueTag::kNull));
}

Result<Value> ReadValue(ByteReader* r) {
  uint8_t tag = r->GetU8();
  Value v;
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      v = Value::Null();
      break;
    case ValueTag::kInt64:
      v = Value::Int64(r->GetI64());
      break;
    case ValueTag::kDouble:
      v = Value::Double(r->GetDouble());
      break;
    case ValueTag::kString:
      v = Value::String(r->GetString());
      break;
    case ValueTag::kDate:
      v = Value::Date(r->GetI64());
      break;
    default:
      return Status::IoError("unknown value tag " + std::to_string(tag));
  }
  if (!r->ok()) return Status::IoError("truncated value");
  return v;
}

void WriteRow(ByteSink* sink, const Row& row) {
  sink->PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) WriteValue(sink, v);
}

Result<Row> ReadRow(ByteReader* r) {
  uint32_t arity = r->GetU32();
  if (!r->ok() || arity > r->remaining()) {
    return Status::IoError("truncated row header");
  }
  Row row;
  row.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    BEAS_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    row.push_back(std::move(v));
  }
  return row;
}

void WriteSchema(ByteSink* sink, const Schema& schema) {
  sink->PutU32(static_cast<uint32_t>(schema.NumColumns()));
  for (const Column& c : schema.columns()) {
    sink->PutString(c.name);
    sink->PutU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> ReadSchema(ByteReader* r) {
  uint32_t ncols = r->GetU32();
  if (!r->ok() || ncols > r->remaining()) {
    return Status::IoError("truncated schema header");
  }
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name = r->GetString();
    TypeId type = static_cast<TypeId>(r->GetU8());
    if (!r->ok()) return Status::IoError("truncated schema column");
    cols.emplace_back(std::move(name), type);
  }
  return Schema(std::move(cols));
}

void WriteConstraint(ByteSink* sink, const AccessConstraint& c) {
  sink->PutString(c.name);
  sink->PutString(c.table);
  sink->PutU32(static_cast<uint32_t>(c.x_attrs.size()));
  for (const std::string& a : c.x_attrs) sink->PutString(a);
  sink->PutU32(static_cast<uint32_t>(c.y_attrs.size()));
  for (const std::string& a : c.y_attrs) sink->PutString(a);
  sink->PutU64(c.limit_n);
}

Result<AccessConstraint> ReadConstraint(ByteReader* r) {
  AccessConstraint c;
  c.name = r->GetString();
  c.table = r->GetString();
  uint32_t nx = r->GetU32();
  if (!r->ok() || nx > r->remaining()) {
    return Status::IoError("truncated constraint");
  }
  for (uint32_t i = 0; i < nx; ++i) c.x_attrs.push_back(r->GetString());
  uint32_t ny = r->GetU32();
  if (!r->ok() || ny > r->remaining()) {
    return Status::IoError("truncated constraint");
  }
  for (uint32_t i = 0; i < ny; ++i) c.y_attrs.push_back(r->GetString());
  c.limit_n = r->GetU64();
  if (!r->ok()) return Status::IoError("truncated constraint");
  return c;
}

void CanonicalizeRow(Row* row, const StringDict* dict) {
  if (dict == nullptr) return;
  for (Value& v : *row) {
    if (v.type() != TypeId::kString || v.dict() == dict) continue;
    int64_t code = dict->Find(v.AsString());
    if (code >= 0) {
      v = Value::DictString(dict, static_cast<uint32_t>(code));
    }
  }
}

}  // namespace durability
}  // namespace beas
