#ifndef BEAS_DURABILITY_SERDE_H_
#define BEAS_DURABILITY_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "asx/access_constraint.h"
#include "common/result.h"
#include "storage/string_dict.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {
namespace durability {

/// \brief Append-only little-endian byte sink for WAL records and segment
/// payloads. Fixed-width integers are written verbatim (the format is
/// little-endian; BEAS targets little-endian hosts only, like the rest of
/// the hashing code).
class ByteSink {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  /// Length-prefixed bytes (u32 length).
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutRaw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked reader over a byte range (e.g. a mapped segment
/// payload). Reads past the end latch `ok() == false` and return zeros;
/// callers check ok() once after a parse instead of per field.
class ByteReader {
 public:
  ByteReader(const char* data, size_t len) : p_(data), end_(data + len) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetDouble() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint32_t len = GetU32();
    if (!ok_ || static_cast<size_t>(end_ - p_) < len) {
      ok_ = false;
      return {};
    }
    std::string s(p_, len);
    p_ += len;
    return s;
  }
  void GetRaw(void* out, size_t len) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < len) {
      ok_ = false;
      return;
    }
    std::memcpy(out, p_, len);
    p_ += len;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

/// \name Value / row serde.
///
/// Strings are always serialized as raw bytes, never as dictionary codes —
/// a serialized row is self-contained and replayable into a dictionary in
/// any state (replay re-interns in LSN order, reproducing the original
/// first-appearance code assignment).
/// @{
void WriteValue(ByteSink* sink, const Value& v);
Result<Value> ReadValue(ByteReader* r);

void WriteRow(ByteSink* sink, const Row& row);
Result<Row> ReadRow(ByteReader* r);
/// @}

/// \name Schema / constraint serde (DDL records, segment headers).
/// @{
void WriteSchema(ByteSink* sink, const Schema& schema);
Result<Schema> ReadSchema(ByteReader* r);

void WriteConstraint(ByteSink* sink, const AccessConstraint& c);
Result<AccessConstraint> ReadConstraint(ByteReader* r);
/// @}

/// Replaces inline string values of `row` with dictionary-backed ones
/// when their bytes are already interned in `dict` (no mutation of the
/// dictionary — restore paths use this after the dictionary itself has
/// been restored, so every stored string must resolve). Leaves strings
/// alone when `dict` is null or the bytes are absent.
void CanonicalizeRow(Row* row, const StringDict* dict);

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_SERDE_H_
