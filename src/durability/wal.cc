#include "durability/wal.h"

#include <cstring>

#include "common/crc32.h"

namespace beas {
namespace durability {

void EncodeWalRecord(ByteSink* sink, const WalRecord& record) {
  ByteSink body;
  body.PutU64(record.lsn);
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutRaw(record.payload.data(), record.payload.size());
  const std::string& bytes = body.str();
  sink->PutU32(static_cast<uint32_t>(bytes.size()));
  sink->PutU32(Crc32c(bytes.data(), bytes.size()));
  sink->PutRaw(bytes.data(), bytes.size());
}

Result<WalReadResult> ReadWalFile(Env* env, const std::string& path) {
  WalReadResult out;
  if (!env->FileExists(path)) return out;
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> view,
                        env->NewRandomAccessFile(path));
  const RandomAccessFile& file = *view;
  if (file.size() == 0) return out;
  if (file.size() < kWalHeaderBytes) {
    // A torn header can only mean the file was killed during creation,
    // before any record landed: an empty log.
    return out;
  }
  ByteReader header(file.data(), kWalHeaderBytes);
  uint32_t magic = header.GetU32();
  uint32_t version = header.GetU32();
  if (magic != kWalMagic) {
    return Status::Corruption("not a BEAS WAL file: " + path);
  }
  if (version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(version) + ": " + path);
  }
  out.valid_bytes = kWalHeaderBytes;

  const char* base = file.data();
  uint64_t pos = kWalHeaderBytes;
  while (pos + 8 <= file.size()) {
    uint32_t len, crc;
    std::memcpy(&len, base + pos, 4);
    std::memcpy(&crc, base + pos + 4, 4);
    // lsn(8) + type(1) is the minimum body.
    if (len < 9 || pos + 8 + len > file.size()) break;
    const char* body = base + pos + 8;
    if (Crc32c(body, len) != crc) break;
    WalRecord record;
    ByteReader r(body, len);
    record.lsn = r.GetU64();
    record.type = static_cast<WalRecordType>(r.GetU8());
    record.payload.assign(body + 9, len - 9);
    out.records.push_back(std::move(record));
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  return out;
}

Status InitWalFile(Env* env, const std::string& path) {
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                        env->NewWritableFile(path));
  if (f->size() >= kWalHeaderBytes) return Status::OK();
  BEAS_RETURN_NOT_OK(f->Truncate(0));
  ByteSink header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalVersion);
  BEAS_RETURN_NOT_OK(f->Append(header.str().data(), header.str().size()));
  BEAS_RETURN_NOT_OK(f->Sync());
  // A fresh file's directory entry must be durable too, or a machine
  // crash can forget the file along with every record later acked into it.
  return env->SyncParentDir(path);
}

}  // namespace durability
}  // namespace beas
