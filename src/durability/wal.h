#ifndef BEAS_DURABILITY_WAL_H_
#define BEAS_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "durability/serde.h"

namespace beas {
namespace durability {

/// \brief Kinds of logged operations. Data records (insert/batch/delete)
/// flow through the per-shard group-commit queues; structural records
/// (DDL, constraint changes, dictionary rebuilds) go to the meta WAL,
/// logged synchronously under the commit gate.
enum class WalRecordType : uint8_t {
  kInsert = 1,
  kInsertBatch = 2,
  kDelete = 3,
  kCreateTable = 4,
  kRegisterConstraint = 5,
  kUnregisterConstraint = 6,
  kAdjustLimit = 7,
  kDictRebuild = 8,
};

/// \brief One logged operation. `lsn` is a database-global sequence
/// number: recovery merges every shard WAL plus the meta WAL and replays
/// in LSN order, which reproduces the pre-crash apply order for every
/// acked (and thus strictly ordered) operation.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::string payload;
};

/// \name WAL file framing.
///
/// File   := header record*
/// header := magic:u32 version:u32
/// record := len:u32 crc:u32 lsn:u64 type:u8 payload:bytes
///
/// `len` counts lsn+type+payload; `crc` is CRC-32C over those same bytes.
/// A record is valid iff it fits in the file and its CRC matches — the
/// read path stops at the first invalid record, treating everything after
/// as a torn tail (the only corruption a killed append can produce).
/// @{
constexpr uint32_t kWalMagic = 0x4C415742u;  // "BWAL"
constexpr uint32_t kWalVersion = 1;
constexpr uint64_t kWalHeaderBytes = 8;

/// Appends one framed record to `sink`.
void EncodeWalRecord(ByteSink* sink, const WalRecord& record);

/// Parse result of one WAL file: the valid records, and the byte offset
/// of the end of the valid prefix (recovery truncates the file there so
/// post-recovery appends never follow garbage).
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
};

/// Reads `path` through `env` (a whole-file view), validating the header
/// and every record CRC. A missing file yields an empty result; a file
/// with a foreign magic or version is a typed kCorruption error (never
/// silently replayed).
Result<WalReadResult> ReadWalFile(Env* env, const std::string& path);

/// Creates `path` with a fresh header if absent or empty. Leaves an
/// existing non-empty file untouched.
Status InitWalFile(Env* env, const std::string& path);
/// @}

}  // namespace durability
}  // namespace beas

#endif  // BEAS_DURABILITY_WAL_H_
