#include "engine/database.h"

#include <chrono>

namespace beas {

namespace {

Status ConcurrentWriteError(const char* op, const std::string& table) {
  return Status::Internal(
      std::string("concurrent write detected in ") + op + "('" + table +
      "'): Database requires a single writer at a time (and write hooks "
      "must not re-enter the write path); serialize writes, e.g. through "
      "BeasService");
}

}  // namespace

Result<TableInfo*> Database::CreateTable(const std::string& name,
                                         const Schema& schema) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("CreateTable", name);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.CreateTable(name, schema));
  for (const DdlHook& hook : ddl_hooks_) hook(info->name());
  return info;
}

Status Database::Insert(const std::string& table, Row row) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("Insert", table);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  BEAS_ASSIGN_OR_RETURN(SlotId slot, info->heap()->Insert(std::move(row)));
  info->InvalidateStats();
  const Row& stored = info->heap()->At(slot);
  for (const WriteHook& hook : hooks_) hook(info->name(), stored, true);
  return Status::OK();
}

Status Database::InsertBatch(const std::string& table, std::vector<Row> rows) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("InsertBatch", table);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  TableHeap* heap = info->heap();
  for (size_t r = 0; r < rows.size(); ++r) {
    Result<SlotId> slot = heap->Insert(std::move(rows[r]));
    if (!slot.ok()) {
      info->InvalidateStats();
      return Status::InvalidArgument(
          "InsertBatch('" + table + "') row " + std::to_string(r) + ": " +
          slot.status().message());
    }
    const Row& stored = heap->At(*slot);
    for (const WriteHook& hook : hooks_) hook(info->name(), stored, true);
  }
  info->InvalidateStats();
  return Status::OK();
}

Status Database::DeleteWhereEquals(const std::string& table, const Row& row) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("DeleteWhereEquals", table);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  TableHeap* heap = info->heap();
  for (auto it = heap->Begin(); it.Valid(); it.Next()) {
    const Row& candidate = it.row();
    if (candidate.size() != row.size()) continue;
    bool equal = true;
    for (size_t i = 0; i < row.size() && equal; ++i) {
      // NULL matches NULL here: deletion is by full-row identity.
      if (candidate[i].is_null() != row[i].is_null()) equal = false;
      if (!candidate[i].is_null() && candidate[i] != row[i]) equal = false;
    }
    if (equal) {
      Row copy = candidate;
      BEAS_RETURN_NOT_OK(heap->Delete(it.slot()));
      info->InvalidateStats();
      for (const WriteHook& hook : hooks_) hook(info->name(), copy, false);
      return Status::OK();
    }
  }
  return Status::NotFound("no matching row in '" + table + "'");
}

Result<BoundQuery> Database::Bind(const std::string& sql) const {
  Binder binder(&catalog_);
  return binder.BindSql(sql);
}

Result<std::unique_ptr<PlanNode>> Database::Plan(
    const BoundQuery& query, const EngineProfile& profile) const {
  Planner planner(profile);
  return planner.Plan(query);
}

Result<QueryResult> Database::ExecutePlan(const PlanNode& plan,
                                          const BoundQuery& query,
                                          const std::string& engine) const {
  ExecContext ctx;
  auto start = std::chrono::steady_clock::now();
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<Executor> executor,
                        BuildExecutor(plan, &ctx));
  QueryResult result;
  BEAS_ASSIGN_OR_RETURN(result.rows, DrainExecutor(executor.get()));
  auto end = std::chrono::steady_clock::now();

  result.millis = std::chrono::duration<double, std::milli>(end - start).count();
  result.tuples_accessed = ctx.base_tuples_read;
  result.stats = executor->CollectStats();
  result.plan_text = plan.ToString();
  result.engine = engine;
  for (const OutputItem& out : query.outputs) {
    result.column_names.push_back(out.name);
    result.column_types.push_back(out.type);
  }
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const EngineProfile& profile) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, Bind(sql));
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, Plan(query, profile));
  return ExecutePlan(*plan, query, profile.name);
}

}  // namespace beas
