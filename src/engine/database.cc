#include "engine/database.h"

#include <algorithm>
#include <chrono>

namespace beas {

namespace {

Status ConcurrentWriteError(const char* op, const std::string& table) {
  return Status::Internal(
      std::string("concurrent write detected in ") + op + "('" + table +
      "'): write hooks must not re-enter the write path of the database "
      "that invoked them; writes from other threads are serialized by the "
      "per-shard lock table (e.g. through BeasService)");
}

/// The database this thread is currently inside a write of (hook
/// re-entrancy detection; nesting across *different* databases is legal).
thread_local const Database* t_current_writer = nullptr;

}  // namespace

Database::WriteScope::WriteScope(const Database* db) : db_(db) {
  claimed_ = t_current_writer != db;
  if (claimed_) {
    prev_ = t_current_writer;
    t_current_writer = db;
  }
}

Database::WriteScope::~WriteScope() {
  if (claimed_) t_current_writer = prev_;
}

Result<TableInfo*> Database::CreateTable(const std::string& name,
                                         const Schema& schema) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("CreateTable", name);
  StructuralScope lock(this);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.CreateTable(name, schema));
  for (const DdlHook& hook : ddl_hooks_) hook(info->name());
  return info;
}

Result<TableInfo*> Database::CreateTableLocked(const std::string& name,
                                               const Schema& schema) {
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.CreateTable(name, schema));
  for (const DdlHook& hook : ddl_hooks_) hook(info->name());
  return info;
}

Status Database::Insert(const std::string& table, Row row) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("Insert", table);
  std::shared_lock<std::shared_mutex> structural(structural_mutex_);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  TableHeap* heap = info->heap();
  // Coerce before routing so the shard is computed on the stored
  // representation, then lock exactly that shard.
  BEAS_RETURN_NOT_OK(heap->ValidateAndCoerce(&row));
  size_t shard = heap->ShardOf(row);
  std::unique_lock<std::shared_mutex> lock(ShardMutex(shard));
  const Row* stored = nullptr;
  heap->InsertUnchecked(std::move(row), &stored, shard);
  info->InvalidateStats();
  for (const WriteHook& hook : hooks_) hook(info->name(), *stored, true);
  return Status::OK();
}

Status Database::InsertBatch(const std::string& table, std::vector<Row> rows) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("InsertBatch", table);
  std::shared_lock<std::shared_mutex> structural(structural_mutex_);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  TableHeap* heap = info->heap();

  // Validate/coerce up front; on the first bad row, commit what precedes
  // it (append semantics, matching the row-at-a-time path) and report the
  // failing index.
  size_t commit_count = rows.size();
  Status bad = Status::OK();
  for (size_t r = 0; r < rows.size(); ++r) {
    Status st = heap->ValidateAndCoerce(&rows[r]);
    if (!st.ok()) {
      commit_count = r;
      bad = Status::InvalidArgument("InsertBatch('" + table + "') row " +
                                    std::to_string(r) + ": " + st.message());
      break;
    }
  }

  // Route rows, then lock each touched shard exactly once, ascending.
  // Shards are cached so commit places each row exactly where its lock
  // was routed, not re-derived.
  std::vector<size_t> shards(commit_count);
  std::vector<size_t> touched;
  touched.reserve(std::min(commit_count, num_shard_locks_));
  {
    std::vector<char> seen(num_shard_locks_, 0);
    for (size_t r = 0; r < commit_count; ++r) {
      shards[r] = heap->ShardOf(rows[r]);
      size_t lock_id = shards[r] % num_shard_locks_;
      if (!seen[lock_id]) {
        seen[lock_id] = 1;
        touched.push_back(lock_id);
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(touched.size());
  for (size_t lock_id : touched) {
    locks.emplace_back(shard_mutexes_[lock_id]);
  }

  // Commit in batch order — bucket order (and thus answers) must match a
  // row-at-a-time history regardless of how rows spread across shards.
  for (size_t r = 0; r < commit_count; ++r) {
    const Row* stored = nullptr;
    heap->InsertUnchecked(std::move(rows[r]), &stored, shards[r]);
    for (const WriteHook& hook : hooks_) hook(info->name(), *stored, true);
  }
  info->InvalidateStats();
  return bad;
}

Status Database::DeleteWhereEquals(const std::string& table, const Row& row) {
  WriteScope scope(this);
  if (!scope.claimed()) return ConcurrentWriteError("DeleteWhereEquals", table);
  std::shared_lock<std::shared_mutex> structural(structural_mutex_);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  TableHeap* heap = info->heap();
  // Full-table scan: every shard, ascending.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(num_shard_locks_);
  for (size_t s = 0; s < num_shard_locks_; ++s) {
    locks.emplace_back(shard_mutexes_[s]);
  }
  for (auto it = heap->Begin(); it.Valid(); it.Next()) {
    const Row& candidate = it.row();
    if (candidate.size() != row.size()) continue;
    bool equal = true;
    for (size_t i = 0; i < row.size() && equal; ++i) {
      // NULL matches NULL here: deletion is by full-row identity.
      if (candidate[i].is_null() != row[i].is_null()) equal = false;
      if (!candidate[i].is_null() && candidate[i] != row[i]) equal = false;
    }
    if (equal) {
      Row copy = candidate;
      BEAS_RETURN_NOT_OK(heap->Delete(it.slot()));
      info->InvalidateStats();
      for (const WriteHook& hook : hooks_) hook(info->name(), copy, false);
      return Status::OK();
    }
  }
  return Status::NotFound("no matching row in '" + table + "'");
}

Status Database::ValidateForInsert(const std::string& table, Row* row,
                                   size_t* shard_out) const {
  std::shared_lock<std::shared_mutex> structural(structural_mutex_);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info, catalog_.GetTable(table));
  BEAS_RETURN_NOT_OK(info->heap()->ValidateAndCoerce(row));
  if (shard_out != nullptr) *shard_out = info->heap()->ShardOf(*row);
  return Status::OK();
}

Result<BoundQuery> Database::Bind(const std::string& sql) const {
  Binder binder(&catalog_);
  return binder.BindSql(sql);
}

Result<std::unique_ptr<PlanNode>> Database::Plan(
    const BoundQuery& query, const EngineProfile& profile) const {
  Planner planner(profile);
  return planner.Plan(query);
}

Result<QueryResult> Database::ExecutePlan(const PlanNode& plan,
                                          const BoundQuery& query,
                                          const std::string& engine) const {
  ExecContext ctx;
  auto start = std::chrono::steady_clock::now();
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<Executor> executor,
                        BuildExecutor(plan, &ctx));
  QueryResult result;
  BEAS_ASSIGN_OR_RETURN(result.rows, DrainExecutor(executor.get()));
  auto end = std::chrono::steady_clock::now();

  result.millis = std::chrono::duration<double, std::milli>(end - start).count();
  result.tuples_accessed = ctx.base_tuples_read;
  result.stats = executor->CollectStats();
  result.plan_text = plan.ToString();
  result.engine = engine;
  for (const OutputItem& out : query.outputs) {
    result.column_names.push_back(out.name);
    result.column_types.push_back(out.type);
  }
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const EngineProfile& profile) const {
  BEAS_ASSIGN_OR_RETURN(BoundQuery query, Bind(sql));
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, Plan(query, profile));
  return ExecutePlan(*plan, query, profile.name);
}

}  // namespace beas
