#ifndef BEAS_ENGINE_DATABASE_H_
#define BEAS_ENGINE_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/query_result.h"
#include "exec/executor.h"
#include "plan/engine_profile.h"
#include "plan/planner.h"

namespace beas {

/// \brief The conventional relational engine facade: catalog + parser +
/// binder + planner + executor.
///
/// BEAS "can be built on top of any conventional DBMS" (§1); this class is
/// that DBMS substrate. The bounded layer (src/bounded) attaches to it via
/// a BeasSession, which adds the access-schema catalog and the bounded
/// planner/executor on top.
///
/// ## Thread-safety contract (single writer / multiple readers)
///
/// Read paths (Bind / Plan / Query / ExecutePlan and everything reachable
/// from them) are safe to run from any number of threads concurrently, as
/// long as no write is in flight. Write paths (CreateTable / Insert /
/// DeleteWhereEquals) require *exclusive* access: exactly one writer and
/// no concurrent readers. RegisterWriteHook / RegisterDdlHook must be
/// called before the database is shared across threads. Hooks run on the
/// writer's thread, inside its exclusive section; they must not re-enter
/// the write path (re-entrant writes would mutate storage mid-hook).
///
/// The writer half of the contract is *enforced*, not implicit: each write
/// entry point atomically claims a writer slot and returns
/// Status::Internal("concurrent write ...") if another write is already in
/// flight (including re-entrant writes from hooks). Callers that need the
/// full contract — e.g. BeasService — add a shared/exclusive lock on top
/// to also keep readers out during writes.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table from (name, type) column declarations.
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// Inserts a row, running registered write hooks (index maintenance).
  Status Insert(const std::string& table, Row row);

  /// Inserts a batch of rows under one writer-slot claim: rows are
  /// validated and interned in one pass, write hooks still run per row
  /// (AC-index maintenance is inherently per-tuple) but the table's stats
  /// cache is invalidated once. On a validation error, rows preceding the
  /// bad one remain inserted (single-writer append semantics, no
  /// rollback); the error reports the failing row index.
  Status InsertBatch(const std::string& table, std::vector<Row> rows);

  /// Deletes one live row equal to `row` (all columns), running hooks.
  /// Returns NotFound if no such row exists.
  Status DeleteWhereEquals(const std::string& table, const Row& row);

  /// Registers a hook invoked after every Insert/Delete on `table`
  /// (used by the AS Catalog maintenance module). See the thread-safety
  /// contract above: registration must precede concurrent use, and hooks
  /// must not re-enter the write path.
  using WriteHook = std::function<void(const std::string& table,
                                       const Row& row, bool is_insert)>;
  void RegisterWriteHook(WriteHook hook) { hooks_.push_back(std::move(hook)); }

  /// Registers a hook invoked after every successful CreateTable (used by
  /// the service layer to invalidate plan-cache entries on DDL).
  using DdlHook = std::function<void(const std::string& table)>;
  void RegisterDdlHook(DdlHook hook) { ddl_hooks_.push_back(std::move(hook)); }

  /// Parses + binds a SQL string.
  Result<BoundQuery> Bind(const std::string& sql) const;

  /// Plans a bound query under a profile.
  Result<std::unique_ptr<PlanNode>> Plan(const BoundQuery& query,
                                         const EngineProfile& profile) const;

  /// Full pipeline: parse, bind, plan, execute.
  Result<QueryResult> Query(
      const std::string& sql,
      const EngineProfile& profile = EngineProfile::PostgresLike()) const;

  /// Executes an existing plan, labeling the result with `engine`.
  Result<QueryResult> ExecutePlan(const PlanNode& plan,
                                  const BoundQuery& query,
                                  const std::string& engine) const;

 private:
  /// RAII writer-slot claim enforcing the single-writer contract.
  class WriteScope {
   public:
    explicit WriteScope(const Database* db) : db_(db) {
      claimed_ = !db_->write_in_flight_.exchange(true,
                                                 std::memory_order_acquire);
    }
    ~WriteScope() {
      if (claimed_) {
        db_->write_in_flight_.store(false, std::memory_order_release);
      }
    }
    WriteScope(const WriteScope&) = delete;
    WriteScope& operator=(const WriteScope&) = delete;
    bool claimed() const { return claimed_; }

   private:
    const Database* db_;
    bool claimed_ = false;
  };

  Catalog catalog_;
  std::vector<WriteHook> hooks_;
  std::vector<DdlHook> ddl_hooks_;
  mutable std::atomic<bool> write_in_flight_{false};
};

}  // namespace beas

#endif  // BEAS_ENGINE_DATABASE_H_
