#ifndef BEAS_ENGINE_DATABASE_H_
#define BEAS_ENGINE_DATABASE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "common/shard_config.h"
#include "engine/query_result.h"
#include "exec/executor.h"
#include "plan/engine_profile.h"
#include "plan/planner.h"

namespace beas {

/// \brief The conventional relational engine facade: catalog + parser +
/// binder + planner + executor.
///
/// BEAS "can be built on top of any conventional DBMS" (§1); this class is
/// that DBMS substrate. The bounded layer (src/bounded) attaches to it via
/// a BeasSession, which adds the access-schema catalog and the bounded
/// planner/executor on top.
///
/// ## Thread-safety contract (per-shard single writer / multiple readers)
///
/// Storage is hash-partitioned (see TableHeap); the contract follows the
/// partitioning. The database owns two layers of locks:
///
///  * a *structural* shared_mutex — DDL (CreateTable), and every caller
///    that mutates the catalog, the access schema, or declared bounds,
///    takes it exclusively; readers and data writers take it shared;
///  * a table of `ConfiguredShardCount()` per-shard shared_mutexes — a
///    reader share-locks all of them (ReadScope), a data write
///    exclusively locks only the shards its rows hash to.
///
/// Consequences: readers run concurrently with each other; a data write
/// excludes readers (they hold every shard) but *not* writers to other
/// shards — concurrent InsertBatch calls whose rows land on disjoint
/// shards proceed in parallel, each locking its shards once. All locks
/// are acquired structural-first then shards in ascending order, so the
/// scheme is deadlock-free. Write paths self-lock; read paths do NOT —
/// a concurrent caller (e.g. BeasService) brackets its reads with
/// ReadScope. Hooks run on the writer's thread, inside its locked
/// section; they must not re-enter the write path (enforced: a
/// re-entrant write from a hook returns Status::Internal("concurrent
/// write ...")). RegisterWriteHook / RegisterDdlHook must be called
/// before the database is shared across threads.
class Database {
 public:
  Database()
      : num_shard_locks_(ConfiguredShardCount()),
        shard_mutexes_(new std::shared_mutex[num_shard_locks_]) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// \name Concurrency scopes (see the class contract).
  /// @{
  size_t num_shard_locks() const { return num_shard_locks_; }

  /// Reader bracket: structural shared + every shard shared. Hold it for
  /// the duration of any read that must not interleave with writes.
  class ReadScope {
   public:
    explicit ReadScope(const Database* db) : db_(db) {
      db_->structural_mutex_.lock_shared();
      for (size_t s = 0; s < db_->num_shard_locks_; ++s) {
        db_->shard_mutexes_[s].lock_shared();
      }
    }
    ~ReadScope() {
      for (size_t s = db_->num_shard_locks_; s > 0; --s) {
        db_->shard_mutexes_[s - 1].unlock_shared();
      }
      db_->structural_mutex_.unlock_shared();
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;

   private:
    const Database* db_;
  };

  /// Structural bracket: excludes every reader and every data writer
  /// (they all hold the structural lock shared). For catalog / access
  /// schema / declared-bound mutation and whole-table rebuilds.
  class StructuralScope {
   public:
    explicit StructuralScope(const Database* db) : db_(db) {
      db_->structural_mutex_.lock();
    }
    ~StructuralScope() { db_->structural_mutex_.unlock(); }
    StructuralScope(const StructuralScope&) = delete;
    StructuralScope& operator=(const StructuralScope&) = delete;

   private:
    const Database* db_;
  };

  /// One-shard reader bracket (plus structural shared): monitoring
  /// snapshots sample per-shard gauges one shard at a time with this,
  /// never holding two shard locks at once.
  class ShardReadScope {
   public:
    ShardReadScope(const Database* db, size_t shard)
        : db_(db), shard_(shard % db->num_shard_locks_) {
      db_->structural_mutex_.lock_shared();
      db_->shard_mutexes_[shard_].lock_shared();
    }
    ~ShardReadScope() {
      db_->shard_mutexes_[shard_].unlock_shared();
      db_->structural_mutex_.unlock_shared();
    }
    ShardReadScope(const ShardReadScope&) = delete;
    ShardReadScope& operator=(const ShardReadScope&) = delete;

   private:
    const Database* db_;
    size_t shard_;
  };
  /// @}

  /// Creates a table from (name, type) column declarations. Takes the
  /// structural lock exclusively (self-locking; do not hold a scope).
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// CreateTable for a caller that already holds a StructuralScope
  /// exclusively (recovery restore, scrub repair). Fires the same DDL
  /// hooks; the structural mutex is NOT recursive, so calling the
  /// self-locking variant from such a caller would deadlock.
  Result<TableInfo*> CreateTableLocked(const std::string& name,
                                       const Schema& schema);

  /// Inserts a row, running registered write hooks (index maintenance).
  /// Locks only the shard the row hashes to.
  Status Insert(const std::string& table, Row row);

  /// Inserts a batch of rows: rows are validated/coerced up front, the
  /// touched shards are locked once each (ascending), then rows are
  /// committed *in batch order* — so index bucket order, and therefore
  /// every downstream answer, is identical to row-at-a-time inserts and
  /// invariant across shard counts. Write hooks still run per row
  /// (AC-index maintenance is inherently per-tuple); the table's stats
  /// cache is invalidated once. On a validation error, rows preceding the
  /// bad one remain inserted (append semantics, no rollback); the error
  /// reports the failing row index.
  Status InsertBatch(const std::string& table, std::vector<Row> rows);

  /// Deletes one live row equal to `row` (all columns), running hooks.
  /// Returns NotFound if no such row exists. Scans the whole table, so it
  /// locks every shard.
  Status DeleteWhereEquals(const std::string& table, const Row& row);

  /// The validation/routing half of Insert without the insert: coerces
  /// `row` in place against `table`'s schema and reports the shard it
  /// would land on. The durability layer runs this before logging so (a)
  /// doomed rows are rejected without burning WAL bytes and (b) the
  /// record routes to the WAL queue of the shard it will apply to. Takes
  /// only the structural lock shared (catalog read; no data touched).
  Status ValidateForInsert(const std::string& table, Row* row,
                           size_t* shard_out) const;

  /// Registers a hook invoked after every Insert/Delete on `table`
  /// (used by the AS Catalog maintenance module). See the thread-safety
  /// contract above: registration must precede concurrent use, and hooks
  /// must not re-enter the write path.
  using WriteHook = std::function<void(const std::string& table,
                                       const Row& row, bool is_insert)>;
  void RegisterWriteHook(WriteHook hook) { hooks_.push_back(std::move(hook)); }

  /// Registers a hook invoked after every successful CreateTable (used by
  /// the service layer to invalidate plan-cache entries on DDL).
  using DdlHook = std::function<void(const std::string& table)>;
  void RegisterDdlHook(DdlHook hook) { ddl_hooks_.push_back(std::move(hook)); }

  /// Parses + binds a SQL string.
  Result<BoundQuery> Bind(const std::string& sql) const;

  /// Plans a bound query under a profile.
  Result<std::unique_ptr<PlanNode>> Plan(const BoundQuery& query,
                                         const EngineProfile& profile) const;

  /// Full pipeline: parse, bind, plan, execute.
  Result<QueryResult> Query(
      const std::string& sql,
      const EngineProfile& profile = EngineProfile::PostgresLike()) const;

  /// Executes an existing plan, labeling the result with `engine`.
  Result<QueryResult> ExecutePlan(const PlanNode& plan,
                                  const BoundQuery& query,
                                  const std::string& engine) const;

 private:
  /// RAII writer claim: catches a hook re-entering the write path of the
  /// database it was invoked from (the legal concurrency — two threads
  /// writing different shards — is arbitrated by the lock table instead).
  class WriteScope {
   public:
    explicit WriteScope(const Database* db);
    ~WriteScope();
    WriteScope(const WriteScope&) = delete;
    WriteScope& operator=(const WriteScope&) = delete;
    bool claimed() const { return claimed_; }

   private:
    const Database* db_;
    const Database* prev_ = nullptr;
    bool claimed_ = false;
  };

  std::shared_mutex& ShardMutex(size_t heap_shard) const {
    return shard_mutexes_[heap_shard % num_shard_locks_];
  }

  Catalog catalog_;
  std::vector<WriteHook> hooks_;
  std::vector<DdlHook> ddl_hooks_;

  size_t num_shard_locks_;
  mutable std::shared_mutex structural_mutex_;
  mutable std::unique_ptr<std::shared_mutex[]> shard_mutexes_;
};

}  // namespace beas

#endif  // BEAS_ENGINE_DATABASE_H_
