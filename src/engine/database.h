#ifndef BEAS_ENGINE_DATABASE_H_
#define BEAS_ENGINE_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/query_result.h"
#include "exec/executor.h"
#include "plan/engine_profile.h"
#include "plan/planner.h"

namespace beas {

/// \brief The conventional relational engine facade: catalog + parser +
/// binder + planner + executor.
///
/// BEAS "can be built on top of any conventional DBMS" (§1); this class is
/// that DBMS substrate. The bounded layer (src/bounded) attaches to it via
/// a BeasSession, which adds the access-schema catalog and the bounded
/// planner/executor on top.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table from (name, type) column declarations.
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// Inserts a row, running registered write hooks (index maintenance).
  Status Insert(const std::string& table, Row row);

  /// Deletes one live row equal to `row` (all columns), running hooks.
  /// Returns NotFound if no such row exists.
  Status DeleteWhereEquals(const std::string& table, const Row& row);

  /// Registers a hook invoked after every Insert/Delete on `table`
  /// (used by the AS Catalog maintenance module).
  using WriteHook = std::function<void(const std::string& table,
                                       const Row& row, bool is_insert)>;
  void RegisterWriteHook(WriteHook hook) { hooks_.push_back(std::move(hook)); }

  /// Parses + binds a SQL string.
  Result<BoundQuery> Bind(const std::string& sql) const;

  /// Plans a bound query under a profile.
  Result<std::unique_ptr<PlanNode>> Plan(const BoundQuery& query,
                                         const EngineProfile& profile) const;

  /// Full pipeline: parse, bind, plan, execute.
  Result<QueryResult> Query(
      const std::string& sql,
      const EngineProfile& profile = EngineProfile::PostgresLike()) const;

  /// Executes an existing plan, labeling the result with `engine`.
  Result<QueryResult> ExecutePlan(const PlanNode& plan,
                                  const BoundQuery& query,
                                  const std::string& engine) const;

 private:
  Catalog catalog_;
  std::vector<WriteHook> hooks_;
};

}  // namespace beas

#endif  // BEAS_ENGINE_DATABASE_H_
