#include "engine/query_result.h"

#include <algorithm>

namespace beas {

std::string QueryResult::ToTable(size_t max_rows) const {
  std::vector<size_t> widths;
  widths.reserve(column_names.size());
  for (const std::string& name : column_names) widths.push_back(name.size());
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::string text = rows[r][c].ToCsv();
      if (c < widths.size()) widths[c] = std::max(widths[c], text.size());
      cells[r].push_back(std::move(text));
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  std::string out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    if (c > 0) out += " | ";
    out += pad(column_names[c], widths[c]);
  }
  out += "\n";
  for (size_t c = 0; c < column_names.size(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(widths[c], '-');
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += pad(cells[r][c], c < widths.size() ? widths[c] : 0);
    }
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace beas
