#ifndef BEAS_ENGINE_QUERY_RESULT_H_
#define BEAS_ENGINE_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "types/data_type.h"
#include "types/tuple.h"

namespace beas {

/// \brief A materialized query answer plus the execution telemetry the
/// paper's performance analyzer displays (Fig. 3): wall time, tuples
/// accessed, and the per-operator breakdown.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  std::vector<Row> rows;

  double millis = 0;              ///< end-to-end wall time
  uint64_t tuples_accessed = 0;   ///< base tuples read during execution
  OperatorStats stats;            ///< per-operator breakdown
  std::string plan_text;          ///< pretty-printed physical plan
  std::string engine;             ///< profile or "BEAS (bounded)"

  /// Renders an aligned result table (up to `max_rows` rows).
  std::string ToTable(size_t max_rows = 20) const;
};

}  // namespace beas

#endif  // BEAS_ENGINE_QUERY_RESULT_H_
