#include "exec/aggregate_executor.h"

#include <map>

namespace beas {

Status AggregateExecutor::Init() {
  BEAS_RETURN_NOT_OK(children_[0]->Init());
  results_.clear();
  pos_ = 0;
  materialized_ = false;
  return Status::OK();
}

Status AggregateExecutor::Accumulate(const Row& input,
                                     std::vector<AggState>* states) {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    AggState& state = (*states)[i];
    if (spec.fn == AggFn::kCountStar) {
      ++state.count;
      continue;
    }
    auto value = Eval(*spec.arg, input);
    if (!value.ok()) return value.status();
    const Value& v = *value;
    if (v.is_null()) continue;  // SQL: aggregates skip NULLs
    if (spec.distinct) {
      if (!state.distinct.insert(v).second) continue;
    }
    switch (spec.fn) {
      case AggFn::kCount:
        ++state.count;
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        ++state.count;
        if (v.type() == TypeId::kDouble) {
          state.sum_d += v.AsDouble();
        } else {
          state.sum_i += v.AsInt64();
          state.sum_d += v.AsDouble();
        }
        break;
      case AggFn::kMin:
        if (!state.has_value || v.Compare(state.min_max) < 0) state.min_max = v;
        state.has_value = true;
        break;
      case AggFn::kMax:
        if (!state.has_value || v.Compare(state.min_max) > 0) state.min_max = v;
        state.has_value = true;
        break;
      default:
        return Status::Internal("bad aggregate function");
    }
  }
  return Status::OK();
}

Result<Value> AggregateExecutor::Finalize(const AggSpec& spec,
                                          const AggState& state) const {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return Value::Int64(state.count);
    case AggFn::kSum:
      if (state.count == 0) return Value::Null();
      return spec.result_type == TypeId::kDouble ? Value::Double(state.sum_d)
                                                 : Value::Int64(state.sum_i);
    case AggFn::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.sum_d / static_cast<double>(state.count));
    case AggFn::kMin:
    case AggFn::kMax:
      return state.has_value ? state.min_max : Value::Null();
    case AggFn::kNone:
      break;
  }
  return Status::Internal("bad aggregate function");
}

Result<bool> AggregateExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  if (!materialized_) {
    std::unordered_map<ValueVec, std::vector<AggState>, ValueVecHash,
                       ValueVecEq>
        groups;
    std::vector<ValueVec> group_order;  // deterministic output order
    Row input;
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(&input));
      if (!has) break;
      ValueVec key;
      key.reserve(group_by_.size());
      for (const ExprPtr& g : group_by_) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*g, input));
        key.push_back(std::move(v));
      }
      auto [it, inserted] =
          groups.try_emplace(key, aggregates_.size(), AggState{});
      if (inserted) group_order.push_back(key);
      BEAS_RETURN_NOT_OK(Accumulate(input, &it->second));
    }
    // Global aggregation over empty input still yields one row.
    if (group_by_.empty() && groups.empty()) {
      ValueVec key;
      groups.try_emplace(key, aggregates_.size(), AggState{});
      group_order.push_back(key);
    }
    for (const ValueVec& key : group_order) {
      const std::vector<AggState>& states = groups.at(key);
      Row row = key;  // group values first
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        BEAS_ASSIGN_OR_RETURN(Value v, Finalize(aggregates_[i], states[i]));
        row.push_back(std::move(v));
      }
      if (having_) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*having_, row));
        if (!pass) continue;
      }
      results_.push_back(std::move(row));
    }
    materialized_ = true;
  }
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  ++rows_out_;
  return true;
}

std::string AggregateExecutor::Label() const {
  std::string out = "Aggregate(groups=" + std::to_string(group_by_.size()) +
                    ", aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].name;
  }
  return out + "])";
}

}  // namespace beas
