#include "exec/aggregate_executor.h"

namespace beas {

Status AggregateExecutor::Init() {
  BEAS_RETURN_NOT_OK(children_[0]->Init());
  results_.clear();
  pos_ = 0;
  materialized_ = false;
  return Status::OK();
}

Status AggregateExecutor::Accumulate(const Row& input,
                                     std::vector<WeightedAggState>* states) {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    Value v;
    if (spec.fn != AggFn::kCountStar) {
      BEAS_ASSIGN_OR_RETURN(v, Eval(*spec.arg, input));
    }
    BEAS_RETURN_NOT_OK(AccumulateWeighted(spec, v, /*weight=*/1, &(*states)[i]));
  }
  return Status::OK();
}

Result<bool> AggregateExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  if (!materialized_) {
    ValueVecGrouper grouper;
    std::vector<std::vector<WeightedAggState>> group_states;
    Row input;
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(&input));
      if (!has) break;
      ValueVec key;
      key.reserve(group_by_.size());
      for (const ExprPtr& g : group_by_) {
        BEAS_ASSIGN_OR_RETURN(Value v, Eval(*g, input));
        key.push_back(std::move(v));
      }
      size_t gid = grouper.IdFor(std::move(key));
      if (gid == group_states.size()) {
        group_states.emplace_back(aggregates_.size());
      }
      BEAS_RETURN_NOT_OK(Accumulate(input, &group_states[gid]));
    }
    // Global aggregation over empty input still yields one row.
    if (group_by_.empty() && grouper.size() == 0) {
      grouper.IdFor(ValueVec{});
      group_states.emplace_back(aggregates_.size());
    }
    for (size_t gid = 0; gid < grouper.size(); ++gid) {
      Row row = grouper.key(gid);  // group values first
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        BEAS_ASSIGN_OR_RETURN(
            Value v, FinalizeWeighted(aggregates_[i], group_states[gid][i]));
        row.push_back(std::move(v));
      }
      if (having_) {
        BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*having_, row));
        if (!pass) continue;
      }
      results_.push_back(std::move(row));
    }
    materialized_ = true;
  }
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  ++rows_out_;
  return true;
}

std::string AggregateExecutor::Label() const {
  std::string out = "Aggregate(groups=" + std::to_string(group_by_.size()) +
                    ", aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].name;
  }
  return out + "])";
}

}  // namespace beas
