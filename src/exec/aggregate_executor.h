#ifndef BEAS_EXEC_AGGREGATE_EXECUTOR_H_
#define BEAS_EXEC_AGGREGATE_EXECUTOR_H_

#include "binder/bound_query.h"
#include "exec/executor.h"
#include "exec/grouping.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief Hash aggregation with optional grouping and HAVING.
///
/// Output layout: [group values..., aggregate values...]. With no GROUP BY,
/// exactly one row is produced (COUNT(*) of an empty input is 0).
/// Supports COUNT(*)/COUNT/SUM/AVG/MIN/MAX and DISTINCT arguments.
///
/// Grouping and accumulation run on the shared tail machinery
/// (exec/grouping.h): a ValueVecGrouper assigns dense group ids in
/// first-appearance order and the per-group states are WeightedAggStates
/// folded with weight 1 — the conventional engine's input is already
/// bag-expanded, so the weighted fold degenerates to plain accumulation
/// and both engines finalize through the same code.
class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
                    std::vector<ExprPtr> group_by,
                    std::vector<AggSpec> aggregates, ExprPtr having)
      : Executor(ctx),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        having_(std::move(having)) {
    children_.push_back(std::move(child));
  }

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override;

 private:
  Status Accumulate(const Row& input, std::vector<WeightedAggState>* states);

  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggregates_;
  ExprPtr having_;

  std::vector<Row> results_;
  size_t pos_ = 0;
  bool materialized_ = false;
};

}  // namespace beas

#endif  // BEAS_EXEC_AGGREGATE_EXECUTOR_H_
