#ifndef BEAS_EXEC_AGGREGATE_EXECUTOR_H_
#define BEAS_EXEC_AGGREGATE_EXECUTOR_H_

#include <unordered_map>
#include <unordered_set>

#include "binder/bound_query.h"
#include "exec/executor.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief Hash aggregation with optional grouping and HAVING.
///
/// Output layout: [group values..., aggregate values...]. With no GROUP BY,
/// exactly one row is produced (COUNT(*) of an empty input is 0).
/// Supports COUNT(*)/COUNT/SUM/AVG/MIN/MAX and DISTINCT arguments.
class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
                    std::vector<ExprPtr> group_by,
                    std::vector<AggSpec> aggregates, ExprPtr having)
      : Executor(ctx),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        having_(std::move(having)) {
    children_.push_back(std::move(child));
  }

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override;

 private:
  struct ValueHashFn {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEqFn {
    bool operator()(const Value& a, const Value& b) const { return a == b; }
  };

  /// Running state of one aggregate within one group.
  struct AggState {
    int64_t count = 0;
    int64_t sum_i = 0;
    double sum_d = 0;
    Value min_max;
    bool has_value = false;
    std::unordered_set<Value, ValueHashFn, ValueEqFn> distinct;
  };

  Status Accumulate(const Row& input, std::vector<AggState>* states);
  Result<Value> Finalize(const AggSpec& spec, const AggState& state) const;

  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggregates_;
  ExprPtr having_;

  std::vector<Row> results_;
  size_t pos_ = 0;
  bool materialized_ = false;
};

}  // namespace beas

#endif  // BEAS_EXEC_AGGREGATE_EXECUTOR_H_
