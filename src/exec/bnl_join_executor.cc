#include "exec/bnl_join_executor.h"

namespace beas {

namespace {

uint64_t SumTuples(const OperatorStats& stats) {
  uint64_t total = stats.tuples_accessed;
  for (const auto& child : stats.children) total += SumTuples(child);
  return total;
}

}  // namespace

Status BnlJoinExecutor::Init() {
  BEAS_RETURN_NOT_OK(children_[0]->Init());
  buffer_.clear();
  left_exhausted_ = false;
  inner_.reset();
  inner_row_valid_ = false;
  buffer_pos_ = 0;
  num_inner_passes_ = 0;
  return Status::OK();
}

Status BnlJoinExecutor::FillBuffer() {
  buffer_.clear();
  Row row;
  while (buffer_.size() < buffer_rows_) {
    auto has = children_[0]->Next(&row);
    if (!has.ok()) return has.status();
    if (!*has) {
      left_exhausted_ = true;
      break;
    }
    buffer_.push_back(row);
  }
  return Status::OK();
}

Status BnlJoinExecutor::StartInnerPass() {
  BEAS_ASSIGN_OR_RETURN(inner_, BuildExecutor(*right_plan_, ctx_));
  BEAS_RETURN_NOT_OK(inner_->Init());
  ++num_inner_passes_;
  inner_row_valid_ = false;
  buffer_pos_ = 0;
  return Status::OK();
}

Result<bool> BnlJoinExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  while (true) {
    if (buffer_.empty()) {
      if (left_exhausted_) return false;
      BEAS_RETURN_NOT_OK(FillBuffer());
      if (buffer_.empty()) return false;
      BEAS_RETURN_NOT_OK(StartInnerPass());
    }
    // Iterate (inner row) x (buffered outer rows).
    while (true) {
      if (!inner_row_valid_) {
        BEAS_ASSIGN_OR_RETURN(bool has, inner_->Next(&current_inner_));
        if (!has) {
          // Pass complete: fold inner access counts into this operator.
          tuples_accessed_ += SumTuples(inner_->CollectStats());
          inner_.reset();
          buffer_.clear();
          if (left_exhausted_) return false;
          BEAS_RETURN_NOT_OK(FillBuffer());
          if (buffer_.empty()) return false;
          BEAS_RETURN_NOT_OK(StartInnerPass());
          continue;
        }
        inner_row_valid_ = true;
        buffer_pos_ = 0;
      }
      while (buffer_pos_ < buffer_.size()) {
        const Row& outer = buffer_[buffer_pos_];
        ++buffer_pos_;
        Row joined = ConcatRows(outer, current_inner_);
        bool pass = true;
        if (predicate_) {
          BEAS_ASSIGN_OR_RETURN(pass, EvalPredicate(*predicate_, joined));
        }
        if (pass) {
          *out = std::move(joined);
          ++rows_out_;
          return true;
        }
      }
      inner_row_valid_ = false;
    }
  }
}

std::string BnlJoinExecutor::Label() const {
  std::string pred = predicate_ ? predicate_->ToString() : "true";
  return "BNLJoin(" + pred + ", buffer=" + std::to_string(buffer_rows_) +
         ", passes=" + std::to_string(num_inner_passes_) + ")";
}

OperatorStats BnlJoinExecutor::InnerStats() const {
  if (inner_) return inner_->CollectStats();
  return OperatorStats{};
}

}  // namespace beas
