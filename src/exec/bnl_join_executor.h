#ifndef BEAS_EXEC_BNL_JOIN_EXECUTOR_H_
#define BEAS_EXEC_BNL_JOIN_EXECUTOR_H_

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief Block nested-loop join (the MySQL/MariaDB-like join strategy).
///
/// Buffers `buffer_rows` outer (left) rows, then re-executes the inner
/// (right) plan subtree once per buffer, testing every (outer, inner)
/// pair against the predicate. Re-executing the inner subtree re-reads
/// its base tables, so small join buffers translate into many full
/// rescans — the behaviour that makes conventional engines access data
/// proportional to |D| (and that bounded evaluation avoids).
class BnlJoinExecutor : public Executor {
 public:
  BnlJoinExecutor(ExecContext* ctx, std::unique_ptr<Executor> left,
                  const PlanNode* right_plan, ExprPtr predicate,
                  size_t buffer_rows)
      : Executor(ctx),
        right_plan_(right_plan),
        predicate_(std::move(predicate)),
        buffer_rows_(buffer_rows == 0 ? 1 : buffer_rows) {
    children_.push_back(std::move(left));
  }

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override;

  /// Number of inner-plan executions so far (rescans; for tests/benches).
  size_t num_inner_passes() const { return num_inner_passes_; }

  /// Statistics must include the dynamically created inner executors;
  /// the last inner executor's stats are folded into tuples_accessed_
  /// as passes complete.
  OperatorStats InnerStats() const;

 private:
  Status FillBuffer();
  Status StartInnerPass();

  const PlanNode* right_plan_;
  ExprPtr predicate_;
  size_t buffer_rows_;

  std::vector<Row> buffer_;
  bool left_exhausted_ = false;
  std::unique_ptr<Executor> inner_;
  Row current_inner_;
  bool inner_row_valid_ = false;
  size_t buffer_pos_ = 0;
  size_t num_inner_passes_ = 0;
};

}  // namespace beas

#endif  // BEAS_EXEC_BNL_JOIN_EXECUTOR_H_
