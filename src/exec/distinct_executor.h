#ifndef BEAS_EXEC_DISTINCT_EXECUTOR_H_
#define BEAS_EXEC_DISTINCT_EXECUTOR_H_

#include <unordered_set>

#include "exec/executor.h"

namespace beas {

/// \brief Removes duplicate rows (hash-based, streaming).
class DistinctExecutor : public Executor {
 public:
  DistinctExecutor(ExecContext* ctx, std::unique_ptr<Executor> child)
      : Executor(ctx) {
    children_.push_back(std::move(child));
  }

  Status Init() override {
    seen_.clear();
    return children_[0]->Init();
  }

  Result<bool> Next(Row* out) override {
    ScopedTimer timer(&millis_, ctx_->collect_timing);
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(out));
      if (!has) return false;
      if (seen_.insert(*out).second) {
        ++rows_out_;
        return true;
      }
    }
  }

  std::string Label() const override { return "Distinct"; }

 private:
  std::unordered_set<ValueVec, ValueVecHash, ValueVecEq> seen_;
};

}  // namespace beas

#endif  // BEAS_EXEC_DISTINCT_EXECUTOR_H_
