#include "exec/exec_context.h"

#include "common/string_util.h"

namespace beas {

std::string OperatorStats::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += StringPrintf("%-28s rows=%-10llu tuples=%-12llu self=%.3fms\n",
                      label.c_str(), static_cast<unsigned long long>(rows_out),
                      static_cast<unsigned long long>(tuples_accessed),
                      self_millis);
  for (const auto& child : children) out += child.ToString(indent + 1);
  return out;
}

}  // namespace beas
