#ifndef BEAS_EXEC_EXEC_CONTEXT_H_
#define BEAS_EXEC_EXEC_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace beas {

/// \brief Shared execution state: access counters and timing switches.
///
/// `base_tuples_read` counts every tuple read from base-table storage —
/// the quantity the paper bounds. A conventional plan that rescans a
/// table (block nested-loop passes) counts every rescan; this is exactly
/// the "DBMS may access almost the entire database" effect of §4.
class ExecContext {
 public:
  uint64_t base_tuples_read = 0;
  bool collect_timing = true;

  void Reset() { base_tuples_read = 0; }
};

/// \brief Per-operator statistics snapshot for performance analysis
/// (Fig. 3's per-operation cost breakdown).
struct OperatorStats {
  std::string label;
  uint64_t rows_out = 0;
  uint64_t tuples_accessed = 0;  ///< base tuples this operator itself read
  double total_millis = 0;       ///< inclusive of children
  double self_millis = 0;        ///< exclusive
  std::vector<OperatorStats> children;

  /// Renders the stats subtree as an indented table.
  std::string ToString(int indent = 0) const;
};

/// \brief Accumulates wall time into `*acc_millis` while in scope.
class ScopedTimer {
 public:
  ScopedTimer(double* acc_millis, bool enabled)
      : acc_(enabled ? acc_millis : nullptr) {
    if (acc_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (acc_) {
      auto end = std::chrono::steady_clock::now();
      *acc_ += std::chrono::duration<double, std::milli>(end - start_).count();
    }
  }

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace beas

#endif  // BEAS_EXEC_EXEC_CONTEXT_H_
