#include "exec/executor.h"

#include "exec/aggregate_executor.h"
#include "exec/bnl_join_executor.h"
#include "exec/distinct_executor.h"
#include "exec/filter_executor.h"
#include "exec/hash_join_executor.h"
#include "exec/limit_executor.h"
#include "exec/project_executor.h"
#include "exec/seq_scan_executor.h"
#include "exec/sort_executor.h"
#include "exec/values_executor.h"

namespace beas {

OperatorStats Executor::CollectStats() const {
  OperatorStats stats;
  stats.label = Label();
  stats.rows_out = rows_out_;
  stats.tuples_accessed = tuples_accessed_;
  stats.total_millis = millis_;
  double child_total = 0;
  for (const auto& child : children_) {
    stats.children.push_back(child->CollectStats());
    child_total += stats.children.back().total_millis;
  }
  stats.self_millis = millis_ - child_total;
  if (stats.self_millis < 0) stats.self_millis = 0;
  return stats;
}

Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan,
                                                ExecContext* ctx) {
  switch (plan.type) {
    case PlanNodeType::kSeqScan:
      return std::unique_ptr<Executor>(new SeqScanExecutor(
          ctx, plan.table->heap(), "SeqScan(" + plan.table->name() + ")"));
    case PlanNodeType::kFilter: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new FilterExecutor(ctx, std::move(child), plan.predicate));
    }
    case PlanNodeType::kProject: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new ProjectExecutor(ctx, std::move(child), plan.projections));
    }
    case PlanNodeType::kHashJoin: {
      BEAS_ASSIGN_OR_RETURN(auto left, BuildExecutor(*plan.children[0], ctx));
      BEAS_ASSIGN_OR_RETURN(auto right, BuildExecutor(*plan.children[1], ctx));
      return std::unique_ptr<Executor>(
          new HashJoinExecutor(ctx, std::move(left), std::move(right),
                               plan.left_keys, plan.right_keys));
    }
    case PlanNodeType::kBnlJoin: {
      BEAS_ASSIGN_OR_RETURN(auto left, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new BnlJoinExecutor(ctx, std::move(left), plan.children[1].get(),
                              plan.predicate, plan.buffer_rows));
    }
    case PlanNodeType::kAggregate: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new AggregateExecutor(ctx, std::move(child), plan.group_by,
                                plan.aggregates, plan.having));
    }
    case PlanNodeType::kSort: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new SortExecutor(ctx, std::move(child), plan.sort_keys));
    }
    case PlanNodeType::kLimit: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new LimitExecutor(ctx, std::move(child), plan.limit));
    }
    case PlanNodeType::kDistinct: {
      BEAS_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Executor>(
          new DistinctExecutor(ctx, std::move(child)));
    }
    case PlanNodeType::kValues:
      return std::unique_ptr<Executor>(new ValuesExecutor(ctx, plan.rows));
  }
  return Status::Internal("bad plan node type");
}

Result<std::vector<Row>> DrainExecutor(Executor* executor) {
  BEAS_RETURN_NOT_OK(executor->Init());
  std::vector<Row> rows;
  Row row;
  while (true) {
    BEAS_ASSIGN_OR_RETURN(bool has, executor->Next(&row));
    if (!has) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace beas
