#ifndef BEAS_EXEC_EXECUTOR_H_
#define BEAS_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "plan/planner.h"
#include "types/tuple.h"

namespace beas {

/// \brief Volcano-style iterator executor.
///
/// Protocol: Init() once, then Next(&row) until it returns false. Each
/// executor owns its children and accumulates per-operator statistics.
class Executor {
 public:
  explicit Executor(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  virtual Status Init() = 0;

  /// Produces the next row into `*out`; returns false when exhausted.
  virtual Result<bool> Next(Row* out) = 0;

  virtual std::string Label() const = 0;

  /// Snapshot of this operator's (and children's) statistics.
  OperatorStats CollectStats() const;

  uint64_t rows_out() const { return rows_out_; }

 protected:
  ExecContext* ctx_;
  std::vector<std::unique_ptr<Executor>> children_;
  uint64_t rows_out_ = 0;
  uint64_t tuples_accessed_ = 0;
  double millis_ = 0;
};

/// \brief Builds an executor tree from a physical plan.
Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan,
                                                ExecContext* ctx);

/// \brief Runs an executor tree to completion, materializing all rows.
Result<std::vector<Row>> DrainExecutor(Executor* executor);

}  // namespace beas

#endif  // BEAS_EXEC_EXECUTOR_H_
