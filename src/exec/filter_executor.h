#ifndef BEAS_EXEC_FILTER_EXECUTOR_H_
#define BEAS_EXEC_FILTER_EXECUTOR_H_

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief Emits child rows satisfying a predicate.
class FilterExecutor : public Executor {
 public:
  FilterExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
                 ExprPtr predicate)
      : Executor(ctx), predicate_(std::move(predicate)) {
    children_.push_back(std::move(child));
  }

  Status Init() override { return children_[0]->Init(); }

  Result<bool> Next(Row* out) override {
    ScopedTimer timer(&millis_, ctx_->collect_timing);
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(out));
      if (!has) return false;
      BEAS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *out));
      if (pass) {
        ++rows_out_;
        return true;
      }
    }
  }

  std::string Label() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }

 private:
  ExprPtr predicate_;
};

}  // namespace beas

#endif  // BEAS_EXEC_FILTER_EXECUTOR_H_
