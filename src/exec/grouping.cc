#include "exec/grouping.h"

#include <limits>

#include "common/hash.h"

namespace beas {

namespace {

constexpr size_t kEmptySlot = std::numeric_limits<size_t>::max();

}  // namespace

ValueVecGrouper::ValueVecGrouper() : slots_(16, kEmptySlot), mask_(15) {}

size_t ValueVecGrouper::IdFor(ValueVec&& key) {
  if (keys_.size() * 2 >= slots_.size()) Grow();
  uint64_t h = ValueVecHash{}(key);
  size_t slot = static_cast<size_t>(h) & mask_;
  for (;;) {
    size_t id = slots_[slot];
    if (id == kEmptySlot) {
      slots_[slot] = keys_.size();
      keys_.push_back(std::move(key));
      key_hashes_.push_back(h);
      return keys_.size() - 1;
    }
    if (key_hashes_[id] == h && ValueVecEq{}(keys_[id], key)) return id;
    slot = (slot + 1) & mask_;
  }
}

std::vector<ValueVec> ValueVecGrouper::ReleaseKeys() && {
  std::vector<ValueVec> out = std::move(keys_);
  keys_.clear();
  key_hashes_.clear();
  slots_.assign(16, kEmptySlot);
  mask_ = 15;
  return out;
}

void ValueVecGrouper::Grow() {
  size_t capacity = slots_.size() * 2;
  mask_ = capacity - 1;
  slots_.assign(capacity, kEmptySlot);
  for (size_t id = 0; id < keys_.size(); ++id) {
    size_t slot = static_cast<size_t>(key_hashes_[id]) & mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    slots_[slot] = id;
  }
}

Status AccumulateWeighted(const AggSpec& spec, const Value& v, uint64_t weight,
                          WeightedAggState* state) {
  if (spec.fn == AggFn::kCountStar) {
    state->count += weight;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  if (spec.distinct) {
    // DISTINCT aggregates ignore multiplicity by definition.
    if (!state->distinct.insert(v).second) return Status::OK();
    weight = 1;
  }
  switch (spec.fn) {
    case AggFn::kCount:
      state->count += weight;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      state->count += weight;
      state->sum_i += static_cast<int64_t>(weight) *
                      (v.type() == TypeId::kDouble ? 0 : v.AsInt64());
      state->sum_d += static_cast<double>(weight) * v.AsDouble();
      break;
    case AggFn::kMin:
      if (!state->has_value || v.Compare(state->min_max) < 0) state->min_max = v;
      state->has_value = true;
      break;
    case AggFn::kMax:
      if (!state->has_value || v.Compare(state->min_max) > 0) state->min_max = v;
      state->has_value = true;
      break;
    default:
      return Status::Internal("bad aggregate function");
  }
  return Status::OK();
}

Result<Value> FinalizeWeighted(const AggSpec& spec,
                               const WeightedAggState& state) {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return Value::Int64(static_cast<int64_t>(state.count));
    case AggFn::kSum:
      if (state.count == 0) return Value::Null();
      return spec.result_type == TypeId::kDouble ? Value::Double(state.sum_d)
                                                 : Value::Int64(state.sum_i);
    case AggFn::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.sum_d / static_cast<double>(state.count));
    case AggFn::kMin:
    case AggFn::kMax:
      return state.has_value ? state.min_max : Value::Null();
    case AggFn::kNone:
      break;
  }
  return Status::Internal("bad aggregate function");
}

Status MergeWeightedAggState(const AggSpec& spec, WeightedAggState&& src,
                             WeightedAggState* dst) {
  if (spec.distinct) {
    // Re-accumulate src's distinct elements so dst's set (and the sums
    // derived from it) stays exact across the union. Set iteration order
    // cannot leak into results: counts and integer sums are
    // order-insensitive, and callers exclude FP-finalized aggregates
    // from parallel folds.
    for (const Value& elem : src.distinct) {
      BEAS_RETURN_NOT_OK(AccumulateWeighted(spec, elem, 1, dst));
    }
    return Status::OK();
  }
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      dst->count += src.count;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      dst->count += src.count;
      dst->sum_i += src.sum_i;
      dst->sum_d += src.sum_d;
      break;
    case AggFn::kMin:
      if (src.has_value &&
          (!dst->has_value || src.min_max.Compare(dst->min_max) < 0)) {
        dst->min_max = std::move(src.min_max);
      }
      dst->has_value |= src.has_value;
      break;
    case AggFn::kMax:
      if (src.has_value &&
          (!dst->has_value || src.min_max.Compare(dst->min_max) > 0)) {
        dst->min_max = std::move(src.min_max);
      }
      dst->has_value |= src.has_value;
      break;
    case AggFn::kNone:
      return Status::Internal("bad aggregate function");
  }
  return Status::OK();
}

bool CanParallelFold(const std::vector<AggSpec>& aggs) {
  for (const AggSpec& spec : aggs) {
    if (spec.fn == AggFn::kAvg) return false;
    if (spec.fn == AggFn::kSum && spec.result_type == TypeId::kDouble) {
      return false;
    }
  }
  return true;
}

}  // namespace beas
