#ifndef BEAS_EXEC_GROUPING_H_
#define BEAS_EXEC_GROUPING_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "binder/bound_query.h"
#include "common/result.h"
#include "types/value.h"

namespace beas {

/// \brief Incremental group index over ValueVec keys: assigns dense group
/// ids in first-appearance order using 64-bit hashes and open addressing.
/// Replaces unordered_map<ValueVec, ...> in every grouping tail — the
/// conventional AggregateExecutor, the bounded executor's scalar
/// reference tail, and DISTINCT projections (one hash per key, no rehash
/// on growth collisions, keys moved not copied).
class ValueVecGrouper {
 public:
  ValueVecGrouper();

  /// Returns the group id of `key` (existing or freshly assigned). The key
  /// is moved in only when new.
  size_t IdFor(ValueVec&& key);

  size_t size() const { return keys_.size(); }
  const std::vector<ValueVec>& keys() const { return keys_; }
  const ValueVec& key(size_t id) const { return keys_[id]; }

  /// Moves the keys out (first-appearance order); the grouper is reset.
  std::vector<ValueVec> ReleaseKeys() &&;

 private:
  void Grow();

  std::vector<ValueVec> keys_;         ///< group id -> key
  std::vector<uint64_t> key_hashes_;   ///< parallel to keys_
  std::vector<size_t> slots_;          ///< open-addressing table, kEmpty free
  size_t mask_ = 0;
};

/// \brief Hash/equality functors for single-Value keys in unordered
/// containers (DISTINCT-aggregate sets).
struct ValueHashFn {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEqFn {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

/// \brief Accumulation state of one aggregate within one group, carrying
/// bag multiplicities as weights. The conventional executor accumulates
/// with weight 1 (its input is already bag-expanded); the bounded tails
/// fold the distinct-tuple weights BEAS's fetch chain maintains, which is
/// what keeps COUNT/SUM/AVG exact over deduplicated partial tuples.
struct WeightedAggState {
  uint64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0;
  Value min_max;
  bool has_value = false;
  /// Aggregate arguments are single values, so the DISTINCT set is keyed
  /// on Value directly — probing allocates nothing for the common
  /// duplicate case.
  std::unordered_set<Value, ValueHashFn, ValueEqFn> distinct;
};

/// Folds `v` (weight `weight`) into `state`. DISTINCT aggregates ignore
/// multiplicity by definition; NULL inputs are skipped (SQL).
Status AccumulateWeighted(const AggSpec& spec, const Value& v, uint64_t weight,
                          WeightedAggState* state);

/// Finalizes `state` into the aggregate's result value.
Result<Value> FinalizeWeighted(const AggSpec& spec,
                               const WeightedAggState& state);

/// Merges `src` into `dst` — the combine step of a chunk-parallel fold,
/// where each chunk accumulated its rows independently. Exact for counts,
/// integer sums, MIN/MAX and DISTINCT aggregates; callers gate
/// parallelism on CanParallelFold so floating-point accumulation order
/// (kAvg, double kSum) never reassociates.
Status MergeWeightedAggState(const AggSpec& spec, WeightedAggState&& src,
                             WeightedAggState* dst);

/// True when chunk-partitioned accumulation followed by
/// MergeWeightedAggState is bit-identical to the serial row-order fold
/// for every aggregate in `aggs`. False whenever a result is finalized
/// from the double accumulator (kAvg always; kSum with a double result),
/// whose addition order a parallel fold would reassociate.
bool CanParallelFold(const std::vector<AggSpec>& aggs);

}  // namespace beas

#endif  // BEAS_EXEC_GROUPING_H_
