#include "exec/hash_join_executor.h"

namespace beas {

Result<ValueVec> HashJoinExecutor::EvalKeys(const std::vector<ExprPtr>& keys,
                                            const Row& row) {
  ValueVec out;
  out.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    BEAS_ASSIGN_OR_RETURN(Value v, Eval(*k, row));
    out.push_back(std::move(v));
  }
  return out;
}

Status HashJoinExecutor::Init() {
  BEAS_RETURN_NOT_OK(children_[0]->Init());
  BEAS_RETURN_NOT_OK(children_[1]->Init());
  table_.clear();
  built_ = false;
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  if (!built_) {
    Row row;
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[1]->Next(&row));
      if (!has) break;
      BEAS_ASSIGN_OR_RETURN(ValueVec key, EvalKeys(right_keys_, row));
      // SQL equality: NULL keys never join.
      bool has_null = false;
      for (const Value& v : key) has_null |= v.is_null();
      if (has_null) continue;
      table_[std::move(key)].push_back(row);
    }
    built_ = true;
  }
  while (true) {
    if (current_bucket_ != nullptr && bucket_pos_ < current_bucket_->size()) {
      *out = ConcatRows(current_left_, (*current_bucket_)[bucket_pos_]);
      ++bucket_pos_;
      ++rows_out_;
      return true;
    }
    BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(&current_left_));
    if (!has) return false;
    BEAS_ASSIGN_OR_RETURN(ValueVec key, EvalKeys(left_keys_, current_left_));
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) {
      current_bucket_ = nullptr;
      continue;
    }
    auto it = table_.find(key);
    current_bucket_ = it == table_.end() ? nullptr : &it->second;
    bucket_pos_ = 0;
  }
}

std::string HashJoinExecutor::Label() const {
  std::string out = "HashJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  return out + ")";
}

}  // namespace beas
