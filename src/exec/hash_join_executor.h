#ifndef BEAS_EXEC_HASH_JOIN_EXECUTOR_H_
#define BEAS_EXEC_HASH_JOIN_EXECUTOR_H_

#include <unordered_map>

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief In-memory equi hash join.
///
/// Builds a hash table on the right child's key values, then streams the
/// left child, probing per row. Output rows are concat(left, right).
class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(ExecContext* ctx, std::unique_ptr<Executor> left,
                   std::unique_ptr<Executor> right,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys)
      : Executor(ctx),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override;

 private:
  Result<ValueVec> EvalKeys(const std::vector<ExprPtr>& keys, const Row& row);

  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  std::unordered_map<ValueVec, std::vector<Row>, ValueVecHash, ValueVecEq>
      table_;
  Row current_left_;
  const std::vector<Row>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool built_ = false;
};

}  // namespace beas

#endif  // BEAS_EXEC_HASH_JOIN_EXECUTOR_H_
