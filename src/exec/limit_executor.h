#ifndef BEAS_EXEC_LIMIT_EXECUTOR_H_
#define BEAS_EXEC_LIMIT_EXECUTOR_H_

#include "exec/executor.h"

namespace beas {

/// \brief Emits at most `limit` child rows.
class LimitExecutor : public Executor {
 public:
  LimitExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
                int64_t limit)
      : Executor(ctx), limit_(limit) {
    children_.push_back(std::move(child));
  }

  Status Init() override {
    emitted_ = 0;
    return children_[0]->Init();
  }

  Result<bool> Next(Row* out) override {
    ScopedTimer timer(&millis_, ctx_->collect_timing);
    if (emitted_ >= limit_) return false;
    BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(out));
    if (!has) return false;
    ++emitted_;
    ++rows_out_;
    return true;
  }

  std::string Label() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  int64_t limit_;
  int64_t emitted_ = 0;
};

}  // namespace beas

#endif  // BEAS_EXEC_LIMIT_EXECUTOR_H_
