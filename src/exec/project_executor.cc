#include "exec/project_executor.h"

// Implementation is header-inline; this file anchors the translation unit.
