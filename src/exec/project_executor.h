#ifndef BEAS_EXEC_PROJECT_EXECUTOR_H_
#define BEAS_EXEC_PROJECT_EXECUTOR_H_

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace beas {

/// \brief Evaluates a list of expressions per child row.
class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
                  std::vector<ExprPtr> exprs)
      : Executor(ctx), exprs_(std::move(exprs)) {
    children_.push_back(std::move(child));
  }

  Status Init() override { return children_[0]->Init(); }

  Result<bool> Next(Row* out) override {
    ScopedTimer timer(&millis_, ctx_->collect_timing);
    Row input;
    BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(&input));
    if (!has) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*e, input));
      out->push_back(std::move(v));
    }
    ++rows_out_;
    return true;
  }

  std::string Label() const override {
    std::string out = "Project(";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += exprs_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<ExprPtr> exprs_;
};

}  // namespace beas

#endif  // BEAS_EXEC_PROJECT_EXECUTOR_H_
