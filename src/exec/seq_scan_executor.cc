#include "exec/seq_scan_executor.h"

namespace beas {

Status SeqScanExecutor::Init() {
  it_ = TableHeap::Iterator(heap_, 0);
  return Status::OK();
}

Result<bool> SeqScanExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  if (!it_.Valid()) return false;
  *out = it_.row();
  it_.Next();
  ++tuples_accessed_;
  ++ctx_->base_tuples_read;
  ++rows_out_;
  return true;
}

}  // namespace beas
