#ifndef BEAS_EXEC_SEQ_SCAN_EXECUTOR_H_
#define BEAS_EXEC_SEQ_SCAN_EXECUTOR_H_

#include "exec/executor.h"
#include "storage/table_heap.h"

namespace beas {

/// \brief Full sequential scan of a table heap. Every row read counts
/// against ExecContext::base_tuples_read.
class SeqScanExecutor : public Executor {
 public:
  SeqScanExecutor(ExecContext* ctx, const TableHeap* heap, std::string label)
      : Executor(ctx), heap_(heap), it_(heap, 0), label_(std::move(label)) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override { return label_; }

 private:
  const TableHeap* heap_;
  TableHeap::Iterator it_;
  std::string label_;
};

}  // namespace beas

#endif  // BEAS_EXEC_SEQ_SCAN_EXECUTOR_H_
