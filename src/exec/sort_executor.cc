#include "exec/sort_executor.h"

#include <algorithm>

namespace beas {

Status SortExecutor::Init() {
  BEAS_RETURN_NOT_OK(children_[0]->Init());
  rows_.clear();
  pos_ = 0;
  materialized_ = false;
  return Status::OK();
}

Result<bool> SortExecutor::Next(Row* out) {
  ScopedTimer timer(&millis_, ctx_->collect_timing);
  if (!materialized_) {
    Row row;
    while (true) {
      BEAS_ASSIGN_OR_RETURN(bool has, children_[0]->Next(&row));
      if (!has) break;
      rows_.push_back(std::move(row));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const auto& [idx, asc] : keys_) {
                         int c = a[idx].Compare(b[idx]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
    materialized_ = true;
  }
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  ++rows_out_;
  return true;
}

std::string SortExecutor::Label() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "#" + std::to_string(keys_[i].first) +
           (keys_[i].second ? " ASC" : " DESC");
  }
  return out + ")";
}

}  // namespace beas
