#ifndef BEAS_EXEC_SORT_EXECUTOR_H_
#define BEAS_EXEC_SORT_EXECUTOR_H_

#include "exec/executor.h"

namespace beas {

/// \brief Materializing sort on (column index, ascending) keys.
class SortExecutor : public Executor {
 public:
  SortExecutor(ExecContext* ctx, std::unique_ptr<Executor> child,
               std::vector<std::pair<size_t, bool>> keys)
      : Executor(ctx), keys_(std::move(keys)) {
    children_.push_back(std::move(child));
  }

  Status Init() override;
  Result<bool> Next(Row* out) override;
  std::string Label() const override;

 private:
  std::vector<std::pair<size_t, bool>> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  bool materialized_ = false;
};

}  // namespace beas

#endif  // BEAS_EXEC_SORT_EXECUTOR_H_
