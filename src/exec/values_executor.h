#ifndef BEAS_EXEC_VALUES_EXECUTOR_H_
#define BEAS_EXEC_VALUES_EXECUTOR_H_

#include <memory>

#include "exec/executor.h"

namespace beas {

/// \brief Emits a materialized row set. Used as the bridge from bounded
/// (fetch-based) evaluation into the conventional executor tail, and in
/// tests.
class ValuesExecutor : public Executor {
 public:
  ValuesExecutor(ExecContext* ctx,
                 std::shared_ptr<const std::vector<Row>> rows)
      : Executor(ctx), rows_(std::move(rows)) {}

  Status Init() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    ScopedTimer timer(&millis_, ctx_->collect_timing);
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    ++rows_out_;
    return true;
  }

  std::string Label() const override {
    return "Values(" + std::to_string(rows_->size()) + " rows)";
  }

 private:
  std::shared_ptr<const std::vector<Row>> rows_;
  size_t pos_ = 0;
};

}  // namespace beas

#endif  // BEAS_EXEC_VALUES_EXECUTOR_H_
