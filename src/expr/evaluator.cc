#include "expr/evaluator.h"

#include "expr/value_kernels.h"

namespace beas {

namespace {

Result<Value> EvalCompare(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!ComparableValues(l, r)) {
    return Status::TypeError(std::string("cannot compare ") +
                             TypeIdToString(l.type()) + " with " +
                             TypeIdToString(r.type()));
  }
  return CompareValuesTotal(op, l, r);
}

Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  if (!numeric(l.type()) || !numeric(r.type())) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  if (op == ArithOp::kMod &&
      (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble)) {
    return Status::TypeError("% requires integer operands");
  }
  return ArithValuesTotal(op, l, r);
}

}  // namespace

Result<Value> Eval(const Expression& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      if (expr.column_index >= row.size()) {
        return Status::Internal("column index " +
                                std::to_string(expr.column_index) +
                                " out of range for row of arity " +
                                std::to_string(row.size()));
      }
      return row[expr.column_index];
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kCompare: {
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      return EvalCompare(expr.cmp, l, r);
    }
    case ExprKind::kLogic: {
      // Three-valued AND/OR with short circuit where sound.
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      if (expr.logic == LogicOp::kAnd) {
        if (!l.is_null() && l.AsInt64() == 0) return BoolValueOf(false);
        BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
        if (!r.is_null() && r.AsInt64() == 0) return BoolValueOf(false);
        if (l.is_null() || r.is_null()) return Value::Null();
        return BoolValueOf(true);
      }
      if (!l.is_null() && l.AsInt64() != 0) return BoolValueOf(true);
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      if (!r.is_null() && r.AsInt64() != 0) return BoolValueOf(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return BoolValueOf(false);
    }
    case ExprKind::kNot: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      return BoolValueOf(v.AsInt64() == 0);
    }
    case ExprKind::kNeg: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt64) return Value::Int64(-v.AsInt64());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return Status::TypeError("unary minus requires a numeric operand");
    }
    case ExprKind::kArith: {
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      return EvalArith(expr.arith, l, r);
    }
    case ExprKind::kBetween: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value lo, Eval(*expr.children[1], row));
      BEAS_ASSIGN_OR_RETURN(Value hi, Eval(*expr.children[2], row));
      BEAS_ASSIGN_OR_RETURN(Value ge, EvalCompare(CompareOp::kGe, v, lo));
      BEAS_ASSIGN_OR_RETURN(Value le, EvalCompare(CompareOp::kLe, v, hi));
      if (ge.is_null() || le.is_null()) return Value::Null();
      return BoolValueOf(ge.AsInt64() != 0 && le.AsInt64() != 0);
    }
    case ExprKind::kInList: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      for (const Value& item : expr.in_values) {
        if (item.is_null()) continue;
        if (ComparableValues(v, item) && v.Compare(item) == 0) {
          return BoolValueOf(true);
        }
      }
      return BoolValueOf(false);
    }
    case ExprKind::kIsNull: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      bool is_null = v.is_null();
      return BoolValueOf(expr.negated ? !is_null : is_null);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalPredicate(const Expression& expr, const Row& row) {
  BEAS_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  return !v.is_null() && v.AsInt64() != 0;
}

}  // namespace beas
