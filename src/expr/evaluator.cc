#include "expr/evaluator.h"

namespace beas {

namespace {

/// Boolean Values are INT64 0/1 internally; NULL means SQL unknown.
Value BoolValue(bool b) { return Value::Int64(b ? 1 : 0); }

bool ComparableTypes(const Value& a, const Value& b) {
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
  };
  if (numeric(a.type()) && numeric(b.type())) return true;
  return a.type() == b.type();
}

Result<Value> EvalCompare(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!ComparableTypes(l, r)) {
    return Status::TypeError(std::string("cannot compare ") +
                             TypeIdToString(l.type()) + " with " +
                             TypeIdToString(r.type()));
  }
  int c = l.Compare(r);
  switch (op) {
    case CompareOp::kEq: return BoolValue(c == 0);
    case CompareOp::kNe: return BoolValue(c != 0);
    case CompareOp::kLt: return BoolValue(c < 0);
    case CompareOp::kLe: return BoolValue(c <= 0);
    case CompareOp::kGt: return BoolValue(c > 0);
    case CompareOp::kGe: return BoolValue(c >= 0);
  }
  return Status::Internal("bad compare op");
}

Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  if (!numeric(l.type()) || !numeric(r.type())) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  bool use_double = l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if (op == ArithOp::kMod) {
    if (use_double) return Status::TypeError("% requires integer operands");
    if (r.AsInt64() == 0) return Value::Null();  // SQL: NULL on mod-by-zero
    return Value::Int64(l.AsInt64() % r.AsInt64());
  }
  if (use_double) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case ArithOp::kAdd: return Value::Double(a + b);
      case ArithOp::kSub: return Value::Double(a - b);
      case ArithOp::kMul: return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null();  // SQL: NULL on div-by-zero
        return Value::Double(a / b);
      default: break;
    }
  } else {
    int64_t a = l.AsInt64();
    int64_t b = r.AsInt64();
    switch (op) {
      case ArithOp::kAdd: return Value::Int64(a + b);
      case ArithOp::kSub: return Value::Int64(a - b);
      case ArithOp::kMul: return Value::Int64(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null();
        return Value::Int64(a / b);
      default: break;
    }
  }
  return Status::Internal("bad arith op");
}

}  // namespace

Result<Value> Eval(const Expression& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      if (expr.column_index >= row.size()) {
        return Status::Internal("column index " +
                                std::to_string(expr.column_index) +
                                " out of range for row of arity " +
                                std::to_string(row.size()));
      }
      return row[expr.column_index];
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kCompare: {
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      return EvalCompare(expr.cmp, l, r);
    }
    case ExprKind::kLogic: {
      // Three-valued AND/OR with short circuit where sound.
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      if (expr.logic == LogicOp::kAnd) {
        if (!l.is_null() && l.AsInt64() == 0) return BoolValue(false);
        BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
        if (!r.is_null() && r.AsInt64() == 0) return BoolValue(false);
        if (l.is_null() || r.is_null()) return Value::Null();
        return BoolValue(true);
      }
      if (!l.is_null() && l.AsInt64() != 0) return BoolValue(true);
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      if (!r.is_null() && r.AsInt64() != 0) return BoolValue(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return BoolValue(false);
    }
    case ExprKind::kNot: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      return BoolValue(v.AsInt64() == 0);
    }
    case ExprKind::kNeg: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt64) return Value::Int64(-v.AsInt64());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return Status::TypeError("unary minus requires a numeric operand");
    }
    case ExprKind::kArith: {
      BEAS_ASSIGN_OR_RETURN(Value l, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value r, Eval(*expr.children[1], row));
      return EvalArith(expr.arith, l, r);
    }
    case ExprKind::kBetween: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      BEAS_ASSIGN_OR_RETURN(Value lo, Eval(*expr.children[1], row));
      BEAS_ASSIGN_OR_RETURN(Value hi, Eval(*expr.children[2], row));
      BEAS_ASSIGN_OR_RETURN(Value ge, EvalCompare(CompareOp::kGe, v, lo));
      BEAS_ASSIGN_OR_RETURN(Value le, EvalCompare(CompareOp::kLe, v, hi));
      if (ge.is_null() || le.is_null()) return Value::Null();
      return BoolValue(ge.AsInt64() != 0 && le.AsInt64() != 0);
    }
    case ExprKind::kInList: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      for (const Value& item : expr.in_values) {
        if (item.is_null()) continue;
        if (ComparableTypes(v, item) && v.Compare(item) == 0) {
          return BoolValue(true);
        }
      }
      return BoolValue(false);
    }
    case ExprKind::kIsNull: {
      BEAS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], row));
      bool is_null = v.is_null();
      return BoolValue(expr.negated ? !is_null : is_null);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalPredicate(const Expression& expr, const Row& row) {
  BEAS_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  return !v.is_null() && v.AsInt64() != 0;
}

}  // namespace beas
