#ifndef BEAS_EXPR_EVALUATOR_H_
#define BEAS_EXPR_EVALUATOR_H_

#include "common/result.h"
#include "expr/expression.h"
#include "types/tuple.h"

namespace beas {

/// \brief Evaluates a bound expression against a row.
///
/// SQL three-valued logic is implemented with NULL propagation:
/// any NULL operand makes comparisons/arithmetic yield NULL, and
/// EvalPredicate treats a NULL result as "not satisfied".
Result<Value> Eval(const Expression& expr, const Row& row);

/// \brief Evaluates `expr` as a predicate: true iff the result is a
/// non-NULL value that is "truthy" (non-zero).
Result<bool> EvalPredicate(const Expression& expr, const Row& row);

}  // namespace beas

#endif  // BEAS_EXPR_EVALUATOR_H_
