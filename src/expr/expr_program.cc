#include "expr/expr_program.h"

#include <algorithm>
#include <unordered_map>

#include "expr/value_kernels.h"

namespace beas {

namespace {

/// Static comparability: kNull operands always yield NULL at runtime, so
/// they are trivially sound.
bool StaticallyComparable(TypeId a, TypeId b) {
  if (a == TypeId::kNull || b == TypeId::kNull) return true;
  if (NumericFamilyType(a) && NumericFamilyType(b)) return true;
  return a == b;
}

bool StaticallyArithmetic(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kNull;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation. EmitExpr returns the static result type (kNull = provably
// always NULL) or nullopt when the subtree is not soundly compilable. The
// recursion visits children left-to-right and registers literals at the
// node that owns them — BindLiterals repeats exactly this traversal.
// ---------------------------------------------------------------------------

std::optional<ExprProgram> ExprProgram::Compile(
    const Expression& expr, const std::vector<int64_t>& slot_of_column) {
  ExprProgram program;
  size_t depth = 0;

  // Recursive lambda via explicit function object.
  struct Emitter {
    ExprProgram* p;
    const std::vector<int64_t>& slots;
    size_t* depth;
    bool failed = false;

    void Push() {
      ++*depth;
      if (*depth > p->max_stack_) p->max_stack_ = *depth;
    }
    void Pop(size_t n) { *depth -= n; }

    /// Returns the static type of the subtree (kNull = always NULL).
    TypeId Emit(const Expression& e) {
      if (failed) return TypeId::kNull;
      switch (e.kind) {
        case ExprKind::kColumnRef: {
          if (e.column_index >= slots.size() ||
              slots[e.column_index] < 0) {
            failed = true;
            return TypeId::kNull;
          }
          Op op;
          op.code = OpCode::kPushCol;
          op.slot = static_cast<uint32_t>(slots[e.column_index]);
          p->ops_.push_back(op);
          Push();
          return e.column_type;
        }
        case ExprKind::kLiteral: {
          Op op;
          op.code = OpCode::kPushLit;
          op.lit_index = static_cast<uint32_t>(p->literal_types_.size());
          p->literal_types_.push_back(e.literal.type());
          p->ops_.push_back(op);
          Push();
          return e.literal.type();
        }
        case ExprKind::kCompare: {
          TypeId l = Emit(*e.children[0]);
          TypeId r = Emit(*e.children[1]);
          if (failed || !StaticallyComparable(l, r)) {
            failed = true;
            return TypeId::kNull;
          }
          Op op;
          op.code = OpCode::kCompare;
          op.cmp = e.cmp;
          p->ops_.push_back(op);
          Pop(1);
          return TypeId::kInt64;
        }
        case ExprKind::kLogic: {
          Emit(*e.children[0]);
          Emit(*e.children[1]);
          if (failed) return TypeId::kNull;
          Op op;
          op.code = e.logic == LogicOp::kAnd ? OpCode::kAnd : OpCode::kOr;
          p->ops_.push_back(op);
          Pop(1);
          return TypeId::kInt64;
        }
        case ExprKind::kNot: {
          Emit(*e.children[0]);
          if (failed) return TypeId::kNull;
          p->ops_.push_back(Op{OpCode::kNot, CompareOp::kEq, ArithOp::kAdd,
                               false, 0, 0, 0});
          return TypeId::kInt64;
        }
        case ExprKind::kNeg: {
          TypeId t = Emit(*e.children[0]);
          if (failed || !StaticallyArithmetic(t)) {
            failed = true;
            return TypeId::kNull;
          }
          p->ops_.push_back(Op{OpCode::kNeg, CompareOp::kEq, ArithOp::kAdd,
                               false, 0, 0, 0});
          return t;
        }
        case ExprKind::kArith: {
          TypeId l = Emit(*e.children[0]);
          TypeId r = Emit(*e.children[1]);
          if (failed || !StaticallyArithmetic(l) ||
              !StaticallyArithmetic(r)) {
            failed = true;
            return TypeId::kNull;
          }
          if (e.arith == ArithOp::kMod &&
              (l == TypeId::kDouble || r == TypeId::kDouble)) {
            failed = true;  // evaluator raises "% requires integers"
            return TypeId::kNull;
          }
          Op op;
          op.code = OpCode::kArith;
          op.arith = e.arith;
          p->ops_.push_back(op);
          Pop(1);
          if (l == TypeId::kNull || r == TypeId::kNull) return TypeId::kNull;
          return l == TypeId::kDouble || r == TypeId::kDouble
                     ? TypeId::kDouble
                     : TypeId::kInt64;
        }
        case ExprKind::kBetween: {
          TypeId v = Emit(*e.children[0]);
          TypeId lo = Emit(*e.children[1]);
          TypeId hi = Emit(*e.children[2]);
          if (failed || !StaticallyComparable(v, lo) ||
              !StaticallyComparable(v, hi)) {
            failed = true;
            return TypeId::kNull;
          }
          p->ops_.push_back(Op{OpCode::kBetween, CompareOp::kEq,
                               ArithOp::kAdd, false, 0, 0, 0});
          Pop(2);
          return TypeId::kInt64;
        }
        case ExprKind::kInList: {
          Emit(*e.children[0]);
          if (failed) return TypeId::kNull;
          Op op;
          op.code = OpCode::kInList;
          op.lit_index = static_cast<uint32_t>(p->literal_types_.size());
          op.list_count = static_cast<uint32_t>(e.in_values.size());
          for (const Value& v : e.in_values) {
            p->literal_types_.push_back(v.type());
          }
          p->ops_.push_back(op);
          return TypeId::kInt64;
        }
        case ExprKind::kIsNull: {
          Emit(*e.children[0]);
          if (failed) return TypeId::kNull;
          Op op;
          op.code = OpCode::kIsNull;
          op.negated = e.negated;
          p->ops_.push_back(op);
          return TypeId::kInt64;
        }
      }
      failed = true;
      return TypeId::kNull;
    }
  };

  Emitter emitter{&program, slot_of_column, &depth};
  emitter.Emit(expr);
  if (emitter.failed) return std::nullopt;
  program.DetectFastPattern();
  return program;
}

void ExprProgram::DetectFastPattern() {
  fast_ = FastPattern::kNone;
  if (ops_.empty() || ops_[0].code != OpCode::kPushCol) return;
  if (ops_.size() == 3 && ops_[1].code == OpCode::kPushLit &&
      ops_[2].code == OpCode::kCompare) {
    fast_ = FastPattern::kColCmpLit;
  } else if (ops_.size() == 3 && ops_[1].code == OpCode::kPushCol &&
             ops_[2].code == OpCode::kCompare) {
    fast_ = FastPattern::kColCmpCol;
  } else if (ops_.size() == 4 && ops_[1].code == OpCode::kPushLit &&
             ops_[2].code == OpCode::kPushLit &&
             ops_[3].code == OpCode::kBetween) {
    fast_ = FastPattern::kColBetween;
  } else if (ops_.size() == 2 && ops_[1].code == OpCode::kInList) {
    fast_ = FastPattern::kColInList;
  } else if (ops_.size() == 2 && ops_[1].code == OpCode::kIsNull) {
    fast_ = FastPattern::kColIsNull;
  }
}

namespace {

/// Applies a three-way comparison result to a CompareOp.
bool CmpPasses(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

/// The code of `lit` in `dict`, or -1 when the string was never interned
/// (no stored value can equal it). Reuses the literal's own hash — a
/// dictionary-backed literal of another table costs zero byte hashing;
/// an inline literal is hashed once per batch, here.
int64_t LiteralCode(const StringDict& dict, const Value& lit) {
  if (lit.dict() == &dict) return lit.dict_code();
  return dict.FindWithHash(lit.AsString(), lit.Hash());
}

/// col-op-lit over an encoded column. Equality ops compare codes;
/// ordering ops compare codes against a binary-searched code bound when
/// the dictionary is sorted (zero byte decodes), and decode to bytes per
/// row otherwise.
void FilterEncodedCmp(const BatchColumn& col, CompareOp cmp, const Value& lit,
                      size_t num_rows, std::vector<char>* keep) {
  const StringDict& dict = *col.dict;
  if (lit.is_null()) {
    // compare-with-NULL is NULL: nothing passes.
    std::fill(keep->begin(), keep->begin() + num_rows, 0);
    return;
  }
  if (cmp == CompareOp::kEq || cmp == CompareOp::kNe) {
    int64_t code = LiteralCode(dict, lit);
    if (code < 0) {
      // Literal not in the dictionary: `=` folds to false for every row;
      // `<>` folds to true for every non-NULL row.
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        if (cmp == CompareOp::kEq || col.codes[r] == StringDict::kNullCode) {
          (*keep)[r] = 0;
        }
      }
      return;
    }
    uint32_t lit_code = static_cast<uint32_t>(code);
    for (size_t r = 0; r < num_rows; ++r) {
      if (!(*keep)[r]) continue;
      uint32_t c = col.codes[r];
      // kNullCode never equals a real code, so `=` rejects NULL for free.
      bool pass = cmp == CompareOp::kEq
                      ? c == lit_code
                      : c != lit_code && c != StringDict::kNullCode;
      if (!pass) (*keep)[r] = 0;
    }
    return;
  }
  const std::string& s = lit.AsString();
  if (dict.is_sorted()) {
    // Order-preserving codes: the literal becomes a code bound once per
    // batch, each row is a uint32 compare. kNullCode (0xFFFFFFFF) sits
    // above every real code, so the `<` forms exclude NULL for free; the
    // `>` forms exclude it explicitly.
    switch (cmp) {
      case CompareOp::kLt: {
        uint32_t bound = dict.LowerBoundCode(s);
        for (size_t r = 0; r < num_rows; ++r) {
          if ((*keep)[r] && col.codes[r] >= bound) (*keep)[r] = 0;
        }
        return;
      }
      case CompareOp::kLe: {
        uint32_t bound = dict.UpperBoundCode(s);
        for (size_t r = 0; r < num_rows; ++r) {
          if ((*keep)[r] && col.codes[r] >= bound) (*keep)[r] = 0;
        }
        return;
      }
      case CompareOp::kGt: {
        uint32_t bound = dict.UpperBoundCode(s);
        for (size_t r = 0; r < num_rows; ++r) {
          uint32_t c = col.codes[r];
          if ((*keep)[r] && (c < bound || c == StringDict::kNullCode)) {
            (*keep)[r] = 0;
          }
        }
        return;
      }
      case CompareOp::kGe: {
        uint32_t bound = dict.LowerBoundCode(s);
        for (size_t r = 0; r < num_rows; ++r) {
          uint32_t c = col.codes[r];
          if ((*keep)[r] && (c < bound || c == StringDict::kNullCode)) {
            (*keep)[r] = 0;
          }
        }
        return;
      }
      default:
        break;  // unreachable: equality handled above
    }
  }
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*keep)[r]) continue;
    uint32_t c = col.codes[r];
    if (c == StringDict::kNullCode) {
      (*keep)[r] = 0;
      continue;
    }
    ++tls_string_order_decodes;
    int three_way = dict.str(c).compare(s);
    three_way = three_way < 0 ? -1 : (three_way > 0 ? 1 : 0);
    if (!CmpPasses(cmp, three_way)) (*keep)[r] = 0;
  }
}

/// col-op-col over two encoded columns. Same dictionary: interning
/// deduplicates, so equality is a raw code compare, and ordering is too
/// once the dictionary is sorted. Different dictionaries: equality
/// conjuncts translate each *distinct* left code into the right
/// dictionary once per batch — FindWithHash with the left dictionary's
/// precomputed byte hash, so no bytes are hashed or decoded — and then
/// every row is a uint32 compare against the translated code. A left
/// string absent from the right dictionary can equal no right-column
/// value: `=` fails and `<>` passes for its rows. NULL on either side
/// yields SQL NULL, which a predicate drops, for `=` and `<>` alike.
/// Returns false for the shapes that still need bytes (ordering over an
/// unsorted or foreign dictionary); the caller falls back to the generic
/// row loop.
bool FilterEncodedColCmpCol(const BatchColumn& lhs, const BatchColumn& rhs,
                            CompareOp cmp, size_t num_rows,
                            std::vector<char>* keep) {
  const StringDict* left_dict = lhs.dict;
  const StringDict* right_dict = rhs.dict;
  bool equality = cmp == CompareOp::kEq || cmp == CompareOp::kNe;
  if (left_dict == right_dict) {
    if (!equality && !left_dict->is_sorted()) return false;
    for (size_t r = 0; r < num_rows; ++r) {
      if (!(*keep)[r]) continue;
      uint32_t a = lhs.codes[r];
      uint32_t b = rhs.codes[r];
      if (a == StringDict::kNullCode || b == StringDict::kNullCode) {
        (*keep)[r] = 0;
        continue;
      }
      int three_way = a < b ? -1 : (a > b ? 1 : 0);
      if (!CmpPasses(cmp, three_way)) (*keep)[r] = 0;
    }
    return true;
  }
  if (!equality) return false;
  // Lazily-filled translation table: left code -> right code, or -1 when
  // the left string was never interned on the right. Repeated codes — the
  // reason the column was dictionary-encoded — translate exactly once per
  // batch. A dense vector sized by the left dictionary is fastest when
  // the batch can plausibly touch most of it; when the dictionary dwarfs
  // the batch, its O(dict) zero-fill would dominate the rows actually
  // scanned, so a hash map bounded by distinct codes seen takes over.
  constexpr int64_t kUntranslated = -2;
  const bool dense = left_dict->size() <= 2 * num_rows + 64;
  std::vector<int64_t> dense_table;
  if (dense) dense_table.assign(left_dict->size(), kUntranslated);
  std::unordered_map<uint32_t, int64_t> sparse_table;
  auto translate = [&](uint32_t a) -> int64_t {
    int64_t* slot;
    if (dense) {
      slot = &dense_table[a];
    } else {
      slot = &sparse_table.emplace(a, kUntranslated).first->second;
    }
    if (*slot == kUntranslated) {
      ++tls_cross_dict_translates;
      *slot = right_dict->FindWithHash(left_dict->str(a), left_dict->hash(a));
    }
    return *slot;
  };
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*keep)[r]) continue;
    uint32_t a = lhs.codes[r];
    uint32_t b = rhs.codes[r];
    if (a == StringDict::kNullCode || b == StringDict::kNullCode) {
      (*keep)[r] = 0;
      continue;
    }
    int64_t t = translate(a);
    bool eq = t >= 0 && static_cast<uint32_t>(t) == b;
    if ((cmp == CompareOp::kEq ? eq : !eq) == false) (*keep)[r] = 0;
  }
  return true;
}

/// col BETWEEN lo AND hi over an encoded column: a code-interval test on
/// a sorted dictionary, byte order decoded per row otherwise.
void FilterEncodedBetween(const BatchColumn& col, const Value& lo,
                          const Value& hi, size_t num_rows,
                          std::vector<char>* keep) {
  const StringDict& dict = *col.dict;
  if (lo.is_null() || hi.is_null()) {
    std::fill(keep->begin(), keep->begin() + num_rows, 0);
    return;
  }
  const std::string& lo_s = lo.AsString();
  const std::string& hi_s = hi.AsString();
  if (dict.is_sorted()) {
    // Pass iff lb <= code < ub. kNullCode exceeds every real code, so
    // the upper bound rejects NULL rows for free.
    uint32_t lb = dict.LowerBoundCode(lo_s);
    uint32_t ub = dict.UpperBoundCode(hi_s);
    for (size_t r = 0; r < num_rows; ++r) {
      uint32_t c = col.codes[r];
      if ((*keep)[r] && (c < lb || c >= ub)) (*keep)[r] = 0;
    }
    return;
  }
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*keep)[r]) continue;
    uint32_t c = col.codes[r];
    if (c == StringDict::kNullCode) {
      (*keep)[r] = 0;
      continue;
    }
    tls_string_order_decodes += 2;
    const std::string& v = dict.str(c);
    if (v.compare(lo_s) < 0 || v.compare(hi_s) > 0) (*keep)[r] = 0;
  }
}

/// col IN (...) over an encoded column: the list becomes a code set once
/// per batch; items absent from the dictionary (or of other types) can
/// never match and drop out of the set.
void FilterEncodedInList(const BatchColumn& col, const Value* items,
                         size_t num_items, size_t num_rows,
                         std::vector<char>* keep) {
  const StringDict& dict = *col.dict;
  std::vector<uint32_t> codes;
  codes.reserve(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    const Value& item = items[i];
    if (item.is_null() || item.type() != TypeId::kString) continue;
    int64_t code = LiteralCode(dict, item);
    if (code >= 0) codes.push_back(static_cast<uint32_t>(code));
  }
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*keep)[r]) continue;
    uint32_t c = col.codes[r];
    bool found = false;
    if (c != StringDict::kNullCode) {
      for (uint32_t code : codes) {
        if (c == code) {
          found = true;
          break;
        }
      }
    }
    if (!found) (*keep)[r] = 0;
  }
}

/// The literal-collection twin of the compile traversal: children
/// left-to-right, literals registered at the owning node.
void CollectLiterals(const Expression& e, std::vector<Value>* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      out->push_back(e.literal);
      return;
    case ExprKind::kInList:
      CollectLiterals(*e.children[0], out);
      for (const Value& v : e.in_values) out->push_back(v);
      return;
    default:
      for (const ExprPtr& child : e.children) CollectLiterals(*child, out);
      return;
  }
}

}  // namespace

Result<std::vector<Value>> ExprProgram::BindLiterals(
    const Expression& expr) const {
  std::vector<Value> literals;
  literals.reserve(literal_types_.size());
  CollectLiterals(expr, &literals);
  if (literals.size() != literal_types_.size()) {
    return Status::Internal("literal arity diverged from compiled program");
  }
  for (size_t i = 0; i < literals.size(); ++i) {
    if (literals[i].type() != literal_types_[i]) {
      return Status::Internal("literal type diverged from compiled program");
    }
  }
  return literals;
}

Value ExprProgram::EvalRow(const BatchColumn* cols, size_t row,
                           const std::vector<Value>& literals,
                           std::vector<Value>* stack) const {
  stack->clear();
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushCol:
        stack->push_back(cols[op.slot].At(row));
        break;
      case OpCode::kPushLit:
        stack->push_back(literals[op.lit_index]);
        break;
      case OpCode::kCompare: {
        Value r = std::move(stack->back());
        stack->pop_back();
        stack->back() = CompareValuesTotal(op.cmp, stack->back(), r);
        break;
      }
      case OpCode::kAnd: {
        Value r = std::move(stack->back());
        stack->pop_back();
        const Value& l = stack->back();
        bool l_false = !l.is_null() && l.AsInt64() == 0;
        bool r_false = !r.is_null() && r.AsInt64() == 0;
        if (l_false || r_false) {
          stack->back() = BoolValueOf(false);
        } else if (l.is_null() || r.is_null()) {
          stack->back() = Value::Null();
        } else {
          stack->back() = BoolValueOf(true);
        }
        break;
      }
      case OpCode::kOr: {
        Value r = std::move(stack->back());
        stack->pop_back();
        const Value& l = stack->back();
        bool l_true = !l.is_null() && l.AsInt64() != 0;
        bool r_true = !r.is_null() && r.AsInt64() != 0;
        if (l_true || r_true) {
          stack->back() = BoolValueOf(true);
        } else if (l.is_null() || r.is_null()) {
          stack->back() = Value::Null();
        } else {
          stack->back() = BoolValueOf(false);
        }
        break;
      }
      case OpCode::kNot: {
        const Value& v = stack->back();
        stack->back() =
            v.is_null() ? Value::Null() : BoolValueOf(v.AsInt64() == 0);
        break;
      }
      case OpCode::kNeg: {
        const Value& v = stack->back();
        if (v.is_null()) {
          stack->back() = Value::Null();
        } else if (v.type() == TypeId::kInt64) {
          stack->back() = Value::Int64(-v.AsInt64());
        } else {
          stack->back() = Value::Double(-v.AsDouble());
        }
        break;
      }
      case OpCode::kArith: {
        Value r = std::move(stack->back());
        stack->pop_back();
        stack->back() = ArithValuesTotal(op.arith, stack->back(), r);
        break;
      }
      case OpCode::kBetween: {
        Value hi = std::move(stack->back());
        stack->pop_back();
        Value lo = std::move(stack->back());
        stack->pop_back();
        const Value& v = stack->back();
        Value ge = CompareValuesTotal(CompareOp::kGe, v, lo);
        Value le = CompareValuesTotal(CompareOp::kLe, v, hi);
        if (ge.is_null() || le.is_null()) {
          stack->back() = Value::Null();
        } else {
          stack->back() = BoolValueOf(ge.AsInt64() != 0 && le.AsInt64() != 0);
        }
        break;
      }
      case OpCode::kInList: {
        const Value& v = stack->back();
        if (v.is_null()) {
          stack->back() = Value::Null();
          break;
        }
        bool found = false;
        for (uint32_t i = 0; i < op.list_count && !found; ++i) {
          const Value& item = literals[op.lit_index + i];
          if (item.is_null()) continue;
          found = ComparableValues(v, item) && v.Compare(item) == 0;
        }
        stack->back() = BoolValueOf(found);
        break;
      }
      case OpCode::kIsNull: {
        bool is_null = stack->back().is_null();
        stack->back() = BoolValueOf(op.negated ? !is_null : is_null);
        break;
      }
    }
  }
  return std::move(stack->back());
}

void ExprProgram::FilterBatch(const BatchColumn* cols, size_t num_rows,
                              const std::vector<Value>& literals,
                              std::vector<char>* keep) const {
  switch (fast_) {
    case FastPattern::kColCmpLit: {
      const BatchColumn& col = cols[ops_[0].slot];
      const Value& lit = literals[ops_[1].lit_index];
      CompareOp cmp = ops_[2].cmp;
      if (col.encoded()) {
        FilterEncodedCmp(col, cmp, lit, num_rows, keep);
        return;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        Value v = CompareValuesTotal(cmp, col.values[r], lit);
        if (v.is_null() || v.AsInt64() == 0) (*keep)[r] = 0;
      }
      return;
    }
    case FastPattern::kColCmpCol: {
      const BatchColumn& lhs = cols[ops_[0].slot];
      const BatchColumn& rhs = cols[ops_[1].slot];
      CompareOp cmp = ops_[2].cmp;
      if (lhs.encoded() && rhs.encoded() &&
          FilterEncodedColCmpCol(lhs, rhs, cmp, num_rows, keep)) {
        return;
      }
      // Generic or mixed representations (or an ordering that needs
      // bytes): At() materializes dictionary-backed Values without byte
      // copies and CompareValuesTotal carries the three-valued logic.
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        Value v = CompareValuesTotal(cmp, lhs.At(r), rhs.At(r));
        if (v.is_null() || v.AsInt64() == 0) (*keep)[r] = 0;
      }
      return;
    }
    case FastPattern::kColBetween: {
      const BatchColumn& col = cols[ops_[0].slot];
      const Value& lo = literals[ops_[1].lit_index];
      const Value& hi = literals[ops_[2].lit_index];
      if (col.encoded()) {
        FilterEncodedBetween(col, lo, hi, num_rows, keep);
        return;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        Value ge = CompareValuesTotal(CompareOp::kGe, col.values[r], lo);
        Value le = CompareValuesTotal(CompareOp::kLe, col.values[r], hi);
        bool pass = !ge.is_null() && !le.is_null() && ge.AsInt64() != 0 &&
                    le.AsInt64() != 0;
        if (!pass) (*keep)[r] = 0;
      }
      return;
    }
    case FastPattern::kColInList: {
      const BatchColumn& col = cols[ops_[0].slot];
      const Op& in = ops_[1];
      if (col.encoded()) {
        FilterEncodedInList(col, literals.data() + in.lit_index,
                            in.list_count, num_rows, keep);
        return;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        const Value& v = col.values[r];
        if (v.is_null()) {
          (*keep)[r] = 0;
          continue;
        }
        bool found = false;
        for (uint32_t i = 0; i < in.list_count && !found; ++i) {
          const Value& item = literals[in.lit_index + i];
          if (item.is_null()) continue;
          found = ComparableValues(v, item) && v.Compare(item) == 0;
        }
        if (!found) (*keep)[r] = 0;
      }
      return;
    }
    case FastPattern::kColIsNull: {
      const BatchColumn& col = cols[ops_[0].slot];
      bool negated = ops_[1].negated;
      if (col.encoded()) {
        for (size_t r = 0; r < num_rows; ++r) {
          if (!(*keep)[r]) continue;
          bool is_null = col.codes[r] == StringDict::kNullCode;
          if ((negated ? !is_null : is_null) == false) (*keep)[r] = 0;
        }
        return;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        if (!(*keep)[r]) continue;
        bool is_null = col.values[r].is_null();
        if ((negated ? !is_null : is_null) == false) (*keep)[r] = 0;
      }
      return;
    }
    case FastPattern::kNone:
      break;
  }
  std::vector<Value> stack;
  stack.reserve(max_stack_);
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*keep)[r]) continue;
    Value v = EvalRow(cols, r, literals, &stack);
    if (v.is_null() || v.AsInt64() == 0) (*keep)[r] = 0;
  }
}

}  // namespace beas
