#ifndef BEAS_EXPR_EXPR_PROGRAM_H_
#define BEAS_EXPR_EXPR_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "expr/expression.h"
#include "storage/string_dict.h"

namespace beas {

/// \brief A bound expression compiled to a flat, slot-addressed postfix
/// program, evaluated over columnar batches without tree walks, per-node
/// Result allocations, or per-execution RebindColumns copies.
///
/// Compilation separates the *template-stable* structure (op sequence,
/// column slots, literal arity/types) from the *per-instance* literal
/// values: every literal — parameterized or not — is referenced through a
/// literal table that `BindLiterals` re-collects from the current
/// instance's expression tree in one cheap walk. A cached program is
/// therefore reused verbatim across all instances of a query template.
///
/// `Compile` refuses (returns nullopt) any expression whose evaluation
/// could raise a type error at runtime (e.g. comparing a string column
/// with a numeric literal): the tree evaluator's AND/OR short-circuit can
/// shield such subtrees, and the batch evaluator — which does not
/// short-circuit — must never surface an error the scalar path would
/// swallow. Callers fall back to the interpreted tree walk in that case.
/// For everything it accepts, evaluation is total and exactly mirrors
/// Eval()'s three-valued logic.
class ExprProgram {
 public:
  /// Compiles `expr` against `slot_of_column`: the row slot of every
  /// column index the expression references (-1 = not available, compile
  /// fails). Returns nullopt when the expression is not soundly
  /// compilable.
  static std::optional<ExprProgram> Compile(
      const Expression& expr, const std::vector<int64_t>& slot_of_column);

  /// Collects the literal values of `expr` — an instance of the same
  /// template this program was compiled from — in compile order,
  /// validating count and types. Errors mean "evaluate this instance with
  /// the interpreted path instead".
  Result<std::vector<Value>> BindLiterals(const Expression& expr) const;

  /// Evaluates the program for row `row` of the columnar data (generic or
  /// dictionary-encoded columns; encoded cells materialize as
  /// dictionary-backed Values, no byte copies). `stack` is caller-provided
  /// scratch reused across rows. Total: never errors for programs Compile
  /// accepted.
  Value EvalRow(const BatchColumn* cols, size_t row,
                const std::vector<Value>& literals,
                std::vector<Value>* stack) const;

  /// Predicate form over a whole batch: clears keep[r] when the result is
  /// NULL or falsy (EvalPredicate semantics). keep must have `num_rows`
  /// entries.
  ///
  /// On dictionary-encoded columns the fast patterns (col-op-lit, IN,
  /// BETWEEN, IS NULL) translate their string literals to codes once per
  /// batch — equality/IN then compare uint32 codes per row; a literal
  /// absent from the dictionary constant-folds the conjunct (= -> all
  /// false, <> / NOT IN -> non-NULL rows pass) since no stored string can
  /// match it. Ordering comparisons decode to bytes per row (codes are
  /// not order-preserving) without materializing Values.
  ///
  /// Column-to-column conjuncts (post-join equality between two string
  /// columns) also run encoded: same dictionary compares raw codes;
  /// *different* dictionaries compare codes through a per-batch left-code
  /// -> right-code translation table resolved via the right dictionary's
  /// hash table with the left dictionary's precomputed byte hashes — zero
  /// bytes hashed (tls_hash_string_calls) and zero decoded, one
  /// translation per distinct left code (tls_cross_dict_translates).
  void FilterBatch(const BatchColumn* cols, size_t num_rows,
                   const std::vector<Value>& literals,
                   std::vector<char>* keep) const;

  size_t num_literals() const { return literal_types_.size(); }

 private:
  enum class OpCode : uint8_t {
    kPushCol,
    kPushLit,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kArith,
    kBetween,
    kInList,
    kIsNull,
  };

  struct Op {
    OpCode code = OpCode::kPushCol;
    CompareOp cmp = CompareOp::kEq;
    ArithOp arith = ArithOp::kAdd;
    bool negated = false;          ///< kIsNull
    uint32_t slot = 0;             ///< kPushCol
    uint32_t lit_index = 0;        ///< kPushLit; kInList: first list value
    uint32_t list_count = 0;       ///< kInList
  };

  /// Specializations of the overwhelmingly common single-column predicate
  /// shapes, evaluated without touching the Value stack (no string copies).
  enum class FastPattern : uint8_t {
    kNone,
    kColCmpLit,   ///< [PushCol, PushLit, Compare]
    kColCmpCol,   ///< [PushCol, PushCol, Compare]
    kColBetween,  ///< [PushCol, PushLit, PushLit, Between]
    kColInList,   ///< [PushCol, InList]
    kColIsNull,   ///< [PushCol, IsNull]
  };

  void DetectFastPattern();

  std::vector<Op> ops_;
  std::vector<TypeId> literal_types_;  ///< literal table shape (validation)
  size_t max_stack_ = 0;
  FastPattern fast_ = FastPattern::kNone;
};

}  // namespace beas

#endif  // BEAS_EXPR_EXPR_PROGRAM_H_
