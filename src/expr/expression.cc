#include "expr/expression.h"

#include <algorithm>

namespace beas {

namespace {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
  }
  return "?";
}

std::shared_ptr<Expression> NewNode(ExprKind kind) {
  auto node = std::make_shared<Expression>();
  node->kind = kind;
  return node;
}

}  // namespace

ExprPtr Expression::Column(size_t index, TypeId type, std::string name) {
  auto n = NewNode(ExprKind::kColumnRef);
  n->column_index = index;
  n->column_type = type;
  n->column_name = std::move(name);
  return n;
}

ExprPtr Expression::Literal(Value v, int32_t literal_param) {
  auto n = NewNode(ExprKind::kLiteral);
  n->literal = std::move(v);
  n->literal_param = literal_param;
  return n;
}

ExprPtr Expression::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto n = NewNode(ExprKind::kCompare);
  n->cmp = op;
  n->children = {std::move(l), std::move(r)};
  return n;
}

ExprPtr Expression::Logic(LogicOp op, ExprPtr l, ExprPtr r) {
  auto n = NewNode(ExprKind::kLogic);
  n->logic = op;
  n->children = {std::move(l), std::move(r)};
  return n;
}

ExprPtr Expression::Not(ExprPtr child) {
  auto n = NewNode(ExprKind::kNot);
  n->children = {std::move(child)};
  return n;
}

ExprPtr Expression::Neg(ExprPtr child) {
  auto n = NewNode(ExprKind::kNeg);
  n->children = {std::move(child)};
  return n;
}

ExprPtr Expression::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto n = NewNode(ExprKind::kArith);
  n->arith = op;
  n->children = {std::move(l), std::move(r)};
  return n;
}

ExprPtr Expression::Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  auto n = NewNode(ExprKind::kBetween);
  n->children = {std::move(e), std::move(lo), std::move(hi)};
  return n;
}

ExprPtr Expression::InList(ExprPtr e, std::vector<Value> values) {
  auto n = NewNode(ExprKind::kInList);
  n->children = {std::move(e)};
  n->in_values = std::move(values);
  return n;
}

ExprPtr Expression::InList(ExprPtr e, std::vector<Value> values,
                           std::vector<int32_t> params) {
  auto n = NewNode(ExprKind::kInList);
  n->children = {std::move(e)};
  n->in_values = std::move(values);
  n->in_params = std::move(params);
  return n;
}

ExprPtr Expression::IsNull(ExprPtr e, bool negated) {
  auto n = NewNode(ExprKind::kIsNull);
  n->negated = negated;
  n->children = {std::move(e)};
  return n;
}

TypeId Expression::ResultType() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return column_type;
    case ExprKind::kLiteral:
      return literal.type();
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      return TypeId::kInt64;  // boolean as 0/1
    case ExprKind::kNeg:
      return children[0]->ResultType();
    case ExprKind::kArith: {
      TypeId l = children[0]->ResultType();
      TypeId r = children[1]->ResultType();
      if (l == TypeId::kDouble || r == TypeId::kDouble) return TypeId::kDouble;
      return TypeId::kInt64;
    }
  }
  return TypeId::kNull;
}

void Expression::CollectColumns(std::vector<size_t>* out) const {
  if (kind == ExprKind::kColumnRef) {
    out->push_back(column_index);
  }
  for (const auto& c : children) c->CollectColumns(out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool Expression::Equals(const Expression& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kColumnRef:
      return column_index == other.column_index;
    case ExprKind::kLiteral:
      return literal.type() == other.literal.type() && literal == other.literal;
    case ExprKind::kCompare:
      if (cmp != other.cmp) return false;
      break;
    case ExprKind::kLogic:
      if (logic != other.logic) return false;
      break;
    case ExprKind::kArith:
      if (arith != other.arith) return false;
      break;
    case ExprKind::kIsNull:
      if (negated != other.negated) return false;
      break;
    case ExprKind::kInList: {
      if (in_values.size() != other.in_values.size()) return false;
      for (size_t i = 0; i < in_values.size(); ++i) {
        if (in_values[i] != other.in_values[i]) return false;
      }
      break;
    }
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::string Expression::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return column_name.empty() ? "#" + std::to_string(column_index)
                                 : column_name;
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kCompare:
      return "(" + children[0]->ToString() + " " + CompareOpToString(cmp) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kLogic:
      return "(" + children[0]->ToString() +
             (logic == LogicOp::kAnd ? " AND " : " OR ") +
             children[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case ExprKind::kNeg:
      return "(-" + children[0]->ToString() + ")";
    case ExprKind::kArith:
      return "(" + children[0]->ToString() + " " + ArithOpToString(arith) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_values[i].ToString();
      }
      return out + "))";
    }
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
  }
  return "?";
}

bool HasParams(const ExprPtr& expr) {
  if (!expr) return false;
  if (expr->literal_param != 0) return true;
  for (int32_t p : expr->in_params) {
    if (p != 0) return true;
  }
  for (const ExprPtr& child : expr->children) {
    if (HasParams(child)) return true;
  }
  return false;
}

namespace {

/// Resolves one provenance slot against a new instance's literal values:
/// re-applies the parser's negation fold and the binder's implicit
/// coercion to the type the cached literal ended up with. A parameter
/// whose type is incompatible with the cached literal's comparison family
/// is an error — a fresh bind would reject the query (or bind it
/// differently), so the caller must fall back to the full front end.
Result<Value> ResolveParam(int32_t param, TypeId target_type,
                           const std::vector<Value>& params) {
  size_t idx = static_cast<size_t>(param > 0 ? param : -param) - 1;
  if (idx >= params.size()) {
    return Status::Internal("literal parameter index out of range");
  }
  Value v = params[idx];
  if (param < 0) {
    if (v.type() == TypeId::kInt64) {
      v = Value::Int64(-v.AsInt64());
    } else if (v.type() == TypeId::kDouble) {
      v = Value::Double(-v.AsDouble());
    } else {
      return Status::Internal("cannot negate a non-numeric parameter");
    }
  }
  if (!v.is_null() && v.type() != target_type) {
    if (IsImplicitlyCoercible(v.type(), target_type)) {
      BEAS_ASSIGN_OR_RETURN(v, v.CoerceTo(target_type));
    } else if (!IsComparableTypes(v.type(), target_type)) {
      return Status::Internal(
          "parameter type is incompatible with the template literal");
    }
  }
  return v;
}

}  // namespace

Result<ExprPtr> SubstituteParams(const ExprPtr& expr,
                                 const std::vector<Value>& params) {
  if (!expr || !HasParams(expr)) return expr;  // share unchanged subtrees
  if (expr->kind == ExprKind::kLiteral) {
    BEAS_ASSIGN_OR_RETURN(
        Value v, ResolveParam(expr->literal_param, expr->literal.type(),
                              params));
    return Expression::Literal(std::move(v), expr->literal_param);
  }
  auto copy = std::make_shared<Expression>(*expr);
  if (expr->kind == ExprKind::kInList) {
    for (size_t i = 0;
         i < copy->in_values.size() && i < copy->in_params.size(); ++i) {
      if (copy->in_params[i] == 0) continue;
      BEAS_ASSIGN_OR_RETURN(
          copy->in_values[i],
          ResolveParam(copy->in_params[i], expr->in_values[i].type(),
                       params));
    }
  }
  copy->children.clear();
  for (const ExprPtr& child : expr->children) {
    BEAS_ASSIGN_OR_RETURN(ExprPtr c, SubstituteParams(child, params));
    copy->children.push_back(std::move(c));
  }
  return ExprPtr(std::move(copy));
}

ExprPtr RebindColumns(const ExprPtr& expr,
                      const std::unordered_map<size_t, size_t>& mapping) {
  if (!expr) return nullptr;
  if (expr->kind == ExprKind::kColumnRef) {
    auto it = mapping.find(expr->column_index);
    if (it == mapping.end()) return nullptr;
    return Expression::Column(it->second, expr->column_type, expr->column_name);
  }
  auto copy = std::make_shared<Expression>(*expr);
  copy->children.clear();
  for (const auto& child : expr->children) {
    ExprPtr re = RebindColumns(child, mapping);
    if (!re) return nullptr;
    copy->children.push_back(std::move(re));
  }
  return copy;
}

}  // namespace beas
