#ifndef BEAS_EXPR_EXPRESSION_H_
#define BEAS_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace beas {

/// \brief Bound expression node kinds (post name resolution).
enum class ExprKind {
  kColumnRef,  ///< index into the row layout the expression is bound to
  kLiteral,
  kCompare,
  kLogic,   ///< AND/OR
  kNot,
  kNeg,
  kArith,
  kBetween,  ///< children: expr, lo, hi
  kInList,   ///< children: expr; values in `in_values`
  kIsNull,   ///< `negated` distinguishes IS NULL / IS NOT NULL
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

class Expression;
/// Shared immutable expression nodes: trees are freely shared between
/// plans; transforms (e.g. RebindColumns) build new trees.
using ExprPtr = std::shared_ptr<const Expression>;

/// \brief A bound, typed expression over a fixed row layout.
class Expression {
 public:
  ExprKind kind;

  // kColumnRef
  size_t column_index = 0;
  TypeId column_type = TypeId::kNull;
  std::string column_name;  ///< for display only, e.g. "call.region"

  // kLiteral
  Value literal;
  /// Literal provenance: 0 = none, +k = literal token #(k-1) of the source
  /// SQL, -k = its negation (see AstExpr::literal_param). Used by the
  /// service layer to re-instantiate cached bound queries with new
  /// parameters (SubstituteParams).
  int32_t literal_param = 0;

  // Operators.
  CompareOp cmp = CompareOp::kEq;
  LogicOp logic = LogicOp::kAnd;
  ArithOp arith = ArithOp::kAdd;
  bool negated = false;  ///< kIsNull

  // kInList
  std::vector<Value> in_values;
  /// Provenance per IN value, parallel to `in_values` (empty = none).
  std::vector<int32_t> in_params;

  std::vector<ExprPtr> children;

  static ExprPtr Column(size_t index, TypeId type, std::string name);
  static ExprPtr Literal(Value v, int32_t literal_param = 0);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Logic(LogicOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr Neg(ExprPtr child);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi);
  static ExprPtr InList(ExprPtr e, std::vector<Value> values);
  static ExprPtr InList(ExprPtr e, std::vector<Value> values,
                        std::vector<int32_t> params);
  static ExprPtr IsNull(ExprPtr e, bool negated);

  /// Static result type of the expression (predicates report kInt64 0/1).
  TypeId ResultType() const;

  /// Collects all column indices referenced, deduplicated, sorted.
  void CollectColumns(std::vector<size_t>* out) const;

  /// Structural equality (used to match GROUP BY with select items).
  bool Equals(const Expression& other) const;

  std::string ToString() const;
};

/// \brief Returns a copy of `expr` with every column index `i` replaced by
/// `mapping.at(i)`. Errors (returns nullptr) if a referenced index is
/// missing from the mapping; callers treat that as an internal bug.
ExprPtr RebindColumns(const ExprPtr& expr,
                      const std::unordered_map<size_t, size_t>& mapping);

/// \brief Returns `expr` with every provenance-tagged literal replaced by
/// the corresponding value from `params` (the literal values of a new
/// instance of the same query template, in token order): negation folds
/// are re-applied and the binder's implicit coercion to the cached
/// literal's type is reproduced. Subtrees without parameters are shared,
/// not copied. Errors if an index is out of range or a coercion fails
/// (e.g. a malformed date string) — callers fall back to a full re-bind.
Result<ExprPtr> SubstituteParams(const ExprPtr& expr,
                                 const std::vector<Value>& params);

/// \brief True if any literal in `expr` carries parameter provenance.
bool HasParams(const ExprPtr& expr);

}  // namespace beas

#endif  // BEAS_EXPR_EXPRESSION_H_
