#ifndef BEAS_EXPR_VALUE_KERNELS_H_
#define BEAS_EXPR_VALUE_KERNELS_H_

#include "expr/expression.h"
#include "types/value.h"

namespace beas {

/// \brief The scalar comparison/arithmetic kernels shared by the tree
/// evaluator (evaluator.cc) and the compiled batch programs
/// (expr_program.cc). Keeping them in one place is what makes the two
/// paths' bit-identical guarantee structural rather than a convention:
/// a semantics change lands in both automatically.
///
/// The kernels are *total* (never error): type errors are the callers'
/// concern — the tree evaluator checks operand types at runtime and
/// raises Status; ExprProgram::Compile proves them statically and
/// refuses to compile anything that could error.

/// INT64, DOUBLE and DATE compare with each other (DATE shares the int
/// encoding).
inline bool NumericFamilyType(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
}

/// Runtime comparability of two non-NULL values (IN-list items that fail
/// this are "no match", never an error).
inline bool ComparableValues(const Value& a, const Value& b) {
  if (NumericFamilyType(a.type()) && NumericFamilyType(b.type())) return true;
  return a.type() == b.type();
}

inline Value BoolValueOf(bool b) { return Value::Int64(b ? 1 : 0); }

/// NULL-propagating comparison; callers guarantee the operands are
/// comparable (or NULL).
inline Value CompareValuesTotal(CompareOp op, const Value& l,
                                const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  switch (op) {
    case CompareOp::kEq: return BoolValueOf(c == 0);
    case CompareOp::kNe: return BoolValueOf(c != 0);
    case CompareOp::kLt: return BoolValueOf(c < 0);
    case CompareOp::kLe: return BoolValueOf(c <= 0);
    case CompareOp::kGt: return BoolValueOf(c > 0);
    case CompareOp::kGe: return BoolValueOf(c >= 0);
  }
  return Value::Null();
}

/// NULL-propagating arithmetic; callers guarantee numeric operands
/// (INT64/DOUBLE) and, for kMod, integer operands. Division and modulo by
/// zero yield NULL (SQL).
inline Value ArithValuesTotal(ArithOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool use_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if (op == ArithOp::kMod) {
    if (r.AsInt64() == 0) return Value::Null();
    return Value::Int64(l.AsInt64() % r.AsInt64());
  }
  if (use_double) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case ArithOp::kAdd: return Value::Double(a + b);
      case ArithOp::kSub: return Value::Double(a - b);
      case ArithOp::kMul: return Value::Double(a * b);
      case ArithOp::kDiv:
        return b == 0 ? Value::Null() : Value::Double(a / b);
      default: break;
    }
    return Value::Null();
  }
  int64_t a = l.AsInt64();
  int64_t b = r.AsInt64();
  switch (op) {
    case ArithOp::kAdd: return Value::Int64(a + b);
    case ArithOp::kSub: return Value::Int64(a - b);
    case ArithOp::kMul: return Value::Int64(a * b);
    case ArithOp::kDiv: return b == 0 ? Value::Null() : Value::Int64(a / b);
    default: break;
  }
  return Value::Null();
}

}  // namespace beas

#endif  // BEAS_EXPR_VALUE_KERNELS_H_
