#include "maintenance/maintenance.h"

#include <cmath>

#include "common/string_util.h"

namespace beas {

void MaintenanceManager::Attach() {
  db_->RegisterWriteHook(
      [this](const std::string& table, const Row& row, bool is_insert) {
        for (AcIndex* index : catalog_->IndexesForTable(table)) {
          if (is_insert) {
            index->OnInsert(row);
          } else {
            index->OnDelete(row);
          }
          updates_applied_.fetch_add(1, std::memory_order_relaxed);
        }
      });
}

std::string MaintenanceManager::Adjustment::ToString() const {
  return StringPrintf("%s: declared N=%llu observed=%llu -> suggest N=%llu%s",
                      constraint_name.c_str(),
                      static_cast<unsigned long long>(declared_n),
                      static_cast<unsigned long long>(observed_max),
                      static_cast<unsigned long long>(suggested_n),
                      violated ? " [VIOLATED]" : "");
}

std::vector<MaintenanceManager::Adjustment>
MaintenanceManager::RevalidateAndSuggest(double headroom) const {
  std::vector<Adjustment> out;
  for (const AccessConstraint& c : catalog_->schema().constraints()) {
    const AcIndex* index = catalog_->IndexFor(c.name);
    if (index == nullptr) continue;
    Adjustment adj;
    adj.constraint_name = c.name;
    adj.declared_n = c.limit_n;
    adj.observed_max = index->MaxBucketSize();
    adj.suggested_n = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(
               static_cast<double>(adj.observed_max) * headroom)));
    adj.violated = adj.observed_max > adj.declared_n;
    out.push_back(std::move(adj));
  }
  return out;
}

Status MaintenanceManager::RunAdjustmentCycle(double headroom,
                                              size_t* changed_out,
                                              const DictRebuildPolicy& policy) {
  std::vector<Adjustment> changed;
  for (Adjustment& adj : RevalidateAndSuggest(headroom)) {
    if (adj.suggested_n != adj.declared_n) changed.push_back(std::move(adj));
  }
  if (changed_out != nullptr) *changed_out = changed.size();
  BEAS_RETURN_NOT_OK(ApplySuggestions(changed));
  BEAS_RETURN_NOT_OK(MaintainDictionaries(policy).status());
  // Scrub strictly before checkpoint: a failed scrub (unrepairable
  // corruption) must not be followed by a checkpoint that would replace
  // the last good on-disk copy with the rotted in-memory state.
  if (scrub_hook_) BEAS_RETURN_NOT_OK(scrub_hook_());
  if (checkpoint_hook_) return checkpoint_hook_();
  return Status::OK();
}

Result<size_t> MaintenanceManager::MaintainDictionaries(
    const DictRebuildPolicy& policy) {
  size_t rebuilt = 0;
  for (const std::string& table : db_->catalog()->TableNames()) {
    BEAS_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->GetTable(table));
    const StringDict* dict = info->heap()->dict();
    if (dict == nullptr || dict->is_sorted()) continue;
    if (dict->size() < policy.min_strings) continue;
    double fraction = static_cast<double>(dict->out_of_order_codes()) /
                      static_cast<double>(dict->size());
    if (fraction < policy.min_out_of_order_fraction) continue;
    BEAS_ASSIGN_OR_RETURN(bool did, catalog_->RebuildTableDictSorted(table));
    if (did) {
      ++rebuilt;
      dict_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return rebuilt;
}

Status MaintenanceManager::ApplySuggestions(
    const std::vector<Adjustment>& adjustments) {
  for (const Adjustment& adj : adjustments) {
    BEAS_RETURN_NOT_OK(
        catalog_->AdjustLimit(adj.constraint_name, adj.suggested_n));
  }
  return Status::OK();
}

}  // namespace beas
