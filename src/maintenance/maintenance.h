#ifndef BEAS_MAINTENANCE_MAINTENANCE_H_
#define BEAS_MAINTENANCE_MAINTENANCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asx/access_schema.h"
#include "engine/database.h"

namespace beas {

/// \brief The AS Catalog maintenance module (paper §3, Fig. 1).
///
/// Two duties:
///  (b) "incrementally updates the indices of A in response to changes to
///      the datasets": Attach() hooks into Database writes so every
///      insert/delete updates all affected AcIndex buckets in O(1)
///      expected time — no rebuild, cost independent of |D|;
///  (a) "periodically adjusts constraints in A based on changes":
///      RevalidateAndSuggest() compares declared bounds to observed
///      maxima and proposes tightened/loosened N values, which
///      ApplySuggestions() writes back to the catalog.
class MaintenanceManager {
 public:
  MaintenanceManager(Database* db, AsCatalog* catalog)
      : db_(db), catalog_(catalog) {}

  MaintenanceManager(const MaintenanceManager&) = delete;
  MaintenanceManager& operator=(const MaintenanceManager&) = delete;

  /// Registers the write hook. Call once after the catalog is populated;
  /// constraints registered later are also maintained (the hook resolves
  /// indices per write).
  void Attach();

  /// Number of index updates applied via the hook so far (atomic: hooks
  /// run on concurrent per-shard writers).
  uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }

  /// \brief A proposed bound adjustment for one constraint.
  struct Adjustment {
    std::string constraint_name;
    uint64_t declared_n = 0;
    uint64_t observed_max = 0;
    uint64_t suggested_n = 0;
    bool violated = false;  ///< observed exceeded the declared bound

    std::string ToString() const;
  };

  /// Scans all indices and suggests new bounds: observed maximum scaled by
  /// `headroom` (rounded up), never below 1. A constraint whose observed
  /// maximum exceeds the declared N is flagged `violated` — until adjusted,
  /// plans deduced from it under-estimate their access bound.
  std::vector<Adjustment> RevalidateAndSuggest(double headroom = 1.2) const;

  /// Applies the given adjustments to the catalog's declared bounds.
  /// Each applied adjustment fires the catalog's change listeners, which
  /// is how the service layer's plan cache learns that deduced bounds
  /// derived from the old N values are stale.
  Status ApplySuggestions(const std::vector<Adjustment>& adjustments);

  /// \brief When the adjustment cycle rebuilds a table's string
  /// dictionary into sorted order. Codes are handed out in
  /// first-appearance order, so a dictionary accumulates *out-of-order
  /// debt* as data arrives; once the debt passes these thresholds, string
  /// ORDER BY / range predicates on the table pay a byte decode per
  /// comparison that one renumbering pass would eliminate forever (until
  /// new out-of-order strings arrive).
  struct DictRebuildPolicy {
    /// Skip dictionaries below this size: tiny tables decode cheaply and
    /// the rebuild would churn caches for nothing.
    size_t min_strings = 64;
    /// Rebuild when out_of_order_codes / size exceeds this fraction.
    /// 0 rebuilds any unsorted dictionary that clears min_strings.
    double min_out_of_order_fraction = 0.05;
  };

  /// Scans every table and sorted-rebuilds each dictionary whose
  /// out-of-order debt exceeds `policy` (AsCatalog::RebuildTableDictSorted:
  /// renumber codes, remap heap rows and AC indexes, fire kDictRebuilt so
  /// cached plans for the table are evicted). Caller holds the Database
  /// structural lock exclusively — same contract as ApplySuggestions.
  /// Returns the number of dictionaries rebuilt.
  Result<size_t> MaintainDictionaries(const DictRebuildPolicy& policy);
  Result<size_t> MaintainDictionaries() {
    return MaintainDictionaries(DictRebuildPolicy{});
  }

  /// Lifetime count of dictionaries rebuilt through this manager.
  uint64_t dict_rebuilds() const {
    return dict_rebuilds_.load(std::memory_order_relaxed);
  }

  /// Invoked at the end of every RunAdjustmentCycle, under the same
  /// exclusive structural section the cycle itself runs in. The service
  /// layer points this at the durability subsystem's MaybeCheckpoint so
  /// checkpoints ride the existing periodic-maintenance cadence (the
  /// cycle is the one moment the engine is already quiesced — segments
  /// written here need no extra locking). Set before the manager is
  /// shared across threads.
  using CheckpointHook = std::function<Status()>;
  void SetCheckpointHook(CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Invoked right before the checkpoint hook, under the same exclusive
  /// structural section. The service layer points this at the durability
  /// subsystem's scrubber: the quiesced cycle is the one moment in-memory
  /// fingerprints can be recomputed and compared against the on-disk
  /// checkpoint without racing writers. Scrubbing before the checkpoint
  /// matters — a checkpoint taken first would overwrite the last good
  /// on-disk copy with whatever (possibly rotted) state memory holds.
  using ScrubHook = std::function<Status()>;
  void SetScrubHook(ScrubHook hook) { scrub_hook_ = std::move(hook); }

  /// One periodic maintenance round: revalidate, then apply only the
  /// suggestions that actually change a declared bound (no-op adjustments
  /// would needlessly invalidate cached plans), then run dictionary
  /// maintenance under `dict_policy` (order-preserving rebuilds), then
  /// fire the scrub hook followed by the checkpoint hook (if set).
  /// Returns the number of bounds changed via `changed_out` (optional).
  Status RunAdjustmentCycle(double headroom, size_t* changed_out,
                            const DictRebuildPolicy& dict_policy);
  Status RunAdjustmentCycle(double headroom = 1.2,
                            size_t* changed_out = nullptr) {
    return RunAdjustmentCycle(headroom, changed_out, DictRebuildPolicy{});
  }

 private:
  Database* db_;
  AsCatalog* catalog_;
  CheckpointHook checkpoint_hook_;
  ScrubHook scrub_hook_;
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> dict_rebuilds_{0};
};

}  // namespace beas

#endif  // BEAS_MAINTENANCE_MAINTENANCE_H_
