#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace beas {
namespace net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WriteAll(const std::string& bytes) {
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t r = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Client::ReadExactly(uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, buf + got, n - got, 0);
    if (r == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<std::pair<uint32_t, WireResponse>> Client::ReadResponse() {
  uint8_t header[kFrameHeaderSize];
  BEAS_RETURN_NOT_OK(ReadExactly(header, kFrameHeaderSize));
  BEAS_ASSIGN_OR_RETURN(FrameHeader frame,
                        DecodeFrameHeader(header, kFrameHeaderSize));
  if (frame.kind != FrameKind::kResponse) {
    return Status::Corruption("expected a response frame, got kind " +
                              std::to_string(static_cast<unsigned>(frame.kind)));
  }
  std::vector<uint8_t> payload(frame.payload_len);
  if (frame.payload_len > 0) {
    BEAS_RETURN_NOT_OK(ReadExactly(payload.data(), payload.size()));
  }
  BEAS_ASSIGN_OR_RETURN(WireResponse response,
                        DecodeResponse(payload.data(), payload.size()));
  return std::make_pair(frame.request_id, std::move(response));
}

Result<WireResponse> Client::AwaitResponse(uint32_t id) {
  for (;;) {
    BEAS_ASSIGN_OR_RETURN(auto reply, ReadResponse());
    if (reply.first == id) return std::move(reply.second);
    // A stale answer to an abandoned pipelined request: drop and keep
    // reading.
  }
}

Result<uint32_t> Client::SendQuery(const QueryRequest& request) {
  uint32_t id = next_id_++;
  BEAS_RETURN_NOT_OK(WriteAll(EncodeQueryRequestFrame(id, request)));
  return id;
}

Result<uint32_t> Client::SendInsert(const std::string& table,
                                    const std::vector<Row>& rows) {
  uint32_t id = next_id_++;
  InsertRequest insert;
  insert.table = table;
  insert.rows = rows;
  BEAS_RETURN_NOT_OK(WriteAll(EncodeInsertRequestFrame(id, insert)));
  return id;
}

Result<QueryResponse> Client::Query(const QueryRequest& request) {
  BEAS_ASSIGN_OR_RETURN(uint32_t id, SendQuery(request));
  BEAS_ASSIGN_OR_RETURN(WireResponse response, AwaitResponse(id));
  BEAS_RETURN_NOT_OK(response.status);
  return std::move(response.response);
}

Result<uint64_t> Client::Insert(const std::string& table,
                                const std::vector<Row>& rows) {
  BEAS_ASSIGN_OR_RETURN(uint32_t id, SendInsert(table, rows));
  BEAS_ASSIGN_OR_RETURN(WireResponse response, AwaitResponse(id));
  BEAS_RETURN_NOT_OK(response.status);
  return response.rows_inserted;
}

Status Client::Ping() {
  uint32_t id = next_id_++;
  BEAS_RETURN_NOT_OK(WriteAll(EncodePingFrame(id)));
  BEAS_ASSIGN_OR_RETURN(WireResponse response, AwaitResponse(id));
  return response.status;
}

}  // namespace net
}  // namespace beas
