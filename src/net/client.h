#ifndef BEAS_NET_CLIENT_H_
#define BEAS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/protocol.h"

namespace beas {
namespace net {

/// \brief A blocking BNW1 client: one TCP connection, synchronous
/// request/response plus an explicit pipelined mode (SendQuery /
/// ReadResponse) for drivers that keep several requests in flight.
///
/// Not thread-safe: one Client per thread (the driver bench opens one per
/// closed-loop worker, which is also the realistic serving shape).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), next_id_(other.next_id_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      next_id_ = other.next_id_;
      other.fd_ = -1;
    }
    return *this;
  }

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// \name Synchronous round trips.
  /// @{
  /// Runs one query; a typed server-side error (admission rejection,
  /// deadline, parse error, ...) comes back as that exact Status.
  Result<QueryResponse> Query(const QueryRequest& request);
  /// Inserts a batch; returns the number of rows acked.
  Result<uint64_t> Insert(const std::string& table,
                          const std::vector<Row>& rows);
  Status Ping();
  /// @}

  /// \name Pipelined mode: send without waiting, read in completion
  /// order. Response request-ids correlate answers to sends.
  /// @{
  Result<uint32_t> SendQuery(const QueryRequest& request);
  Result<uint32_t> SendInsert(const std::string& table,
                              const std::vector<Row>& rows);
  /// Blocks for the next response frame (any request id).
  Result<std::pair<uint32_t, WireResponse>> ReadResponse();
  /// @}

 private:
  Status WriteAll(const std::string& bytes);
  Status ReadExactly(uint8_t* buf, size_t n);
  /// Reads until the response for `id` arrives (single connection =>
  /// responses for a sync caller arrive in send order anyway).
  Result<WireResponse> AwaitResponse(uint32_t id);

  int fd_ = -1;
  uint32_t next_id_ = 1;
};

}  // namespace net
}  // namespace beas

#endif  // BEAS_NET_CLIENT_H_
