#include "net/protocol.h"

#include <cstring>

namespace beas {
namespace net {

const char kFrameMagic[4] = {'B', 'N', 'W', '1'};

namespace {

// ---------------------------------------------------------------------------
// Little-endian append/read primitives. Explicit byte shuffling (not
// memcpy of host integers) keeps the wire format host-independent.
// ---------------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over a payload. Every Read* returns
/// false once the payload is exhausted; callers surface one kCorruption.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > len_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    uint8_t a, b;
    if (!U8(&a) || !U8(&b)) return false;
    *v = static_cast<uint16_t>(a | (b << 8));
    return true;
  }
  bool U32(uint32_t* v) {
    uint16_t a, b;
    if (!U16(&a) || !U16(&b)) return false;
    *v = static_cast<uint32_t>(a) | (static_cast<uint32_t>(b) << 16);
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t a, b;
    if (!U32(&a) || !U32(&b)) return false;
    *v = static_cast<uint64_t>(a) | (static_cast<uint64_t>(b) << 32);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    // The length itself is attacker-controlled: check against what is
    // actually left, never allocate first.
    if (pos_ + n > len_) return false;
    v->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool Done() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::Corruption(std::string("truncated ") + what + " payload");
}

// ---------------------------------------------------------------------------
// Value codec: one type-tag byte, then the payload. Dictionary-backed
// strings encode as their bytes (the wire is always self-contained).
// ---------------------------------------------------------------------------

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;
constexpr uint8_t kTagDate = 4;

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      PutU8(out, kTagNull);
      return;
    case TypeId::kInt64:
      PutU8(out, kTagInt64);
      PutI64(out, v.AsInt64());
      return;
    case TypeId::kDouble:
      PutU8(out, kTagDouble);
      PutF64(out, v.AsDouble());
      return;
    case TypeId::kString:
      PutU8(out, kTagString);
      PutString(out, v.AsString());
      return;
    case TypeId::kDate:
      PutU8(out, kTagDate);
      PutI64(out, v.AsDate());
      return;
  }
  PutU8(out, kTagNull);  // unreachable; keep the frame well-formed
}

bool ReadValue(Reader* in, Value* out) {
  uint8_t tag;
  if (!in->U8(&tag)) return false;
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagInt64: {
      int64_t v;
      if (!in->I64(&v)) return false;
      *out = Value::Int64(v);
      return true;
    }
    case kTagDouble: {
      double v;
      if (!in->F64(&v)) return false;
      *out = Value::Double(v);
      return true;
    }
    case kTagString: {
      std::string v;
      if (!in->Str(&v)) return false;
      *out = Value::String(std::move(v));
      return true;
    }
    case kTagDate: {
      int64_t v;
      if (!in->I64(&v)) return false;
      *out = Value::Date(v);
      return true;
    }
    default:
      return false;  // unknown tag: corrupt frame
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU16(out, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

bool ReadRow(Reader* in, Row* out) {
  uint16_t n;
  if (!in->U16(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Value v;
    if (!ReadValue(in, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

std::string FinishFrame(FrameKind kind, uint32_t request_id,
                        std::string payload) {
  FrameHeader header;
  header.kind = kind;
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  uint8_t raw[kFrameHeaderSize];
  EncodeFrameHeader(header, raw);
  std::string frame(reinterpret_cast<const char*>(raw), kFrameHeaderSize);
  frame += payload;
  return frame;
}

// QueryResponse flag bits (response payload byte 1 when OK).
constexpr uint8_t kFlagCacheHit = 1u << 0;
constexpr uint8_t kFlagCacheable = 1u << 1;
constexpr uint8_t kFlagDegraded = 1u << 2;
constexpr uint8_t kFlagTimedOut = 1u << 3;
constexpr uint8_t kFlagCovered = 1u << 4;
constexpr uint8_t kFlagUnsatisfiable = 1u << 5;
constexpr uint8_t kFlagApproxExact = 1u << 6;
constexpr uint8_t kFlagResultCacheHit = 1u << 7;

}  // namespace

void EncodeFrameHeader(const FrameHeader& header,
                       uint8_t out[kFrameHeaderSize]) {
  std::memcpy(out, kFrameMagic, 4);
  out[4] = static_cast<uint8_t>(header.kind);
  out[5] = header.flags;
  out[6] = 0;
  out[7] = 0;
  out[8] = static_cast<uint8_t>(header.request_id);
  out[9] = static_cast<uint8_t>(header.request_id >> 8);
  out[10] = static_cast<uint8_t>(header.request_id >> 16);
  out[11] = static_cast<uint8_t>(header.request_id >> 24);
  out[12] = static_cast<uint8_t>(header.payload_len);
  out[13] = static_cast<uint8_t>(header.payload_len >> 8);
  out[14] = static_cast<uint8_t>(header.payload_len >> 16);
  out[15] = static_cast<uint8_t>(header.payload_len >> 24);
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len) {
  if (len < kFrameHeaderSize) {
    return Status::Corruption("short frame header");
  }
  if (std::memcmp(data, kFrameMagic, 4) != 0) {
    return Status::Corruption("bad frame magic");
  }
  FrameHeader header;
  header.kind = static_cast<FrameKind>(data[4]);
  header.flags = data[5];
  header.request_id = static_cast<uint32_t>(data[8]) |
                      (static_cast<uint32_t>(data[9]) << 8) |
                      (static_cast<uint32_t>(data[10]) << 16) |
                      (static_cast<uint32_t>(data[11]) << 24);
  header.payload_len = static_cast<uint32_t>(data[12]) |
                       (static_cast<uint32_t>(data[13]) << 8) |
                       (static_cast<uint32_t>(data[14]) << 16) |
                       (static_cast<uint32_t>(data[15]) << 24);
  if (header.payload_len > kMaxWirePayload) {
    return Status::Corruption("frame payload length " +
                              std::to_string(header.payload_len) +
                              " exceeds the protocol ceiling");
  }
  switch (header.kind) {
    case FrameKind::kQueryRequest:
    case FrameKind::kInsertRequest:
    case FrameKind::kPing:
    case FrameKind::kResponse:
      break;
    default:
      return Status::Corruption("unknown frame kind " +
                                std::to_string(data[4]));
  }
  return header;
}

std::string EncodeQueryRequestFrame(uint32_t request_id,
                                    const QueryRequest& request) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(request.mode));
  PutU64(&payload, request.approx_budget);
  PutI64(&payload, request.options.timeout_millis);
  PutU64(&payload, request.options.fetch_budget);
  PutF64(&payload, request.options.min_eta);
  PutString(&payload, request.tenant);
  PutString(&payload, request.sql);
  return FinishFrame(FrameKind::kQueryRequest, request_id,
                     std::move(payload));
}

Result<QueryRequest> DecodeQueryRequest(const uint8_t* payload, size_t len) {
  Reader in(payload, len);
  QueryRequest request;
  uint8_t mode;
  if (!in.U8(&mode) || !in.U64(&request.approx_budget) ||
      !in.I64(&request.options.timeout_millis) ||
      !in.U64(&request.options.fetch_budget) ||
      !in.F64(&request.options.min_eta) || !in.Str(&request.tenant) ||
      !in.Str(&request.sql) || !in.Done()) {
    return Truncated("query request");
  }
  if (mode > static_cast<uint8_t>(QueryMode::kCheckOnly)) {
    return Status::InvalidArgument("unknown query mode byte " +
                                   std::to_string(mode));
  }
  request.mode = static_cast<QueryMode>(mode);
  return request;
}

std::string EncodeInsertRequestFrame(uint32_t request_id,
                                     const InsertRequest& request) {
  std::string payload;
  PutString(&payload, request.table);
  PutU32(&payload, static_cast<uint32_t>(request.rows.size()));
  for (const Row& row : request.rows) PutRow(&payload, row);
  return FinishFrame(FrameKind::kInsertRequest, request_id,
                     std::move(payload));
}

Result<InsertRequest> DecodeInsertRequest(const uint8_t* payload, size_t len) {
  Reader in(payload, len);
  InsertRequest request;
  uint32_t nrows;
  if (!in.Str(&request.table) || !in.U32(&nrows)) {
    return Truncated("insert request");
  }
  // Reserve against the bytes actually present, not the claimed count: a
  // row is at least 2 bytes, so a count the payload cannot hold is lies.
  if (static_cast<uint64_t>(nrows) * 2 > len) {
    return Status::Corruption("insert row count exceeds payload size");
  }
  request.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row;
    if (!ReadRow(&in, &row)) return Truncated("insert request");
    request.rows.push_back(std::move(row));
  }
  if (!in.Done()) return Truncated("insert request");
  return request;
}

std::string EncodePingFrame(uint32_t request_id) {
  return FinishFrame(FrameKind::kPing, request_id, std::string());
}

std::string EncodeResponseFrame(uint32_t request_id,
                                const WireResponse& response) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(response.status.code()));
  if (!response.status.ok()) {
    PutString(&payload, response.status.message());
    return FinishFrame(FrameKind::kResponse, request_id, std::move(payload));
  }
  const QueryResponse& r = response.response;
  uint8_t flags = 0;
  if (r.cache_hit) flags |= kFlagCacheHit;
  if (r.cacheable) flags |= kFlagCacheable;
  if (r.degraded) flags |= kFlagDegraded;
  if (r.timed_out) flags |= kFlagTimedOut;
  if (r.covered) flags |= kFlagCovered;
  if (r.unsatisfiable) flags |= kFlagUnsatisfiable;
  if (r.approx_exact) flags |= kFlagApproxExact;
  if (r.result_cache_hit) flags |= kFlagResultCacheHit;
  PutU8(&payload, flags);
  PutF64(&payload, r.eta);
  PutU64(&payload, r.template_hash);
  PutU8(&payload, static_cast<uint8_t>(r.decision.mode));
  PutU64(&payload, r.decision.deduced_bound);
  PutString(&payload, r.decision.explanation);
  PutString(&payload, r.reason);
  PutU64(&payload, r.approx_budget);
  PutU64(&payload, r.tuples_fetched);
  PutU64(&payload, response.rows_inserted);
  PutU16(&payload, static_cast<uint16_t>(r.result.column_names.size()));
  for (size_t i = 0; i < r.result.column_names.size(); ++i) {
    PutString(&payload, r.result.column_names[i]);
    TypeId type = i < r.result.column_types.size() ? r.result.column_types[i]
                                                   : TypeId::kNull;
    PutU8(&payload, static_cast<uint8_t>(type));
  }
  PutU32(&payload, static_cast<uint32_t>(r.result.rows.size()));
  for (const Row& row : r.result.rows) PutRow(&payload, row);
  return FinishFrame(FrameKind::kResponse, request_id, std::move(payload));
}

Result<WireResponse> DecodeResponse(const uint8_t* payload, size_t len) {
  Reader in(payload, len);
  WireResponse response;
  uint8_t code;
  if (!in.U8(&code)) return Truncated("response");
  if (code > static_cast<uint8_t>(StatusCode::kCorruption)) {
    return Status::Corruption("unknown status code byte " +
                              std::to_string(code));
  }
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    std::string message;
    if (!in.Str(&message) || !in.Done()) return Truncated("response");
    response.status = Status(static_cast<StatusCode>(code),
                             std::move(message));
    return response;
  }
  QueryResponse& r = response.response;
  uint8_t flags, mode;
  if (!in.U8(&flags) || !in.F64(&r.eta) || !in.U64(&r.template_hash) ||
      !in.U8(&mode) || !in.U64(&r.decision.deduced_bound) ||
      !in.Str(&r.decision.explanation) || !in.Str(&r.reason) ||
      !in.U64(&r.approx_budget) || !in.U64(&r.tuples_fetched) ||
      !in.U64(&response.rows_inserted)) {
    return Truncated("response");
  }
  r.cache_hit = (flags & kFlagCacheHit) != 0;
  r.cacheable = (flags & kFlagCacheable) != 0;
  r.degraded = (flags & kFlagDegraded) != 0;
  r.timed_out = (flags & kFlagTimedOut) != 0;
  r.covered = (flags & kFlagCovered) != 0;
  r.unsatisfiable = (flags & kFlagUnsatisfiable) != 0;
  r.approx_exact = (flags & kFlagApproxExact) != 0;
  r.result_cache_hit = (flags & kFlagResultCacheHit) != 0;
  if (mode > static_cast<uint8_t>(
                 BeasSession::ExecutionDecision::Mode::kConventional)) {
    return Status::Corruption("unknown decision mode byte " +
                              std::to_string(mode));
  }
  r.decision.mode = static_cast<BeasSession::ExecutionDecision::Mode>(mode);
  uint16_t ncols;
  if (!in.U16(&ncols)) return Truncated("response");
  r.result.column_names.reserve(ncols);
  r.result.column_types.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    std::string name;
    uint8_t type;
    if (!in.Str(&name) || !in.U8(&type)) return Truncated("response");
    r.result.column_names.push_back(std::move(name));
    r.result.column_types.push_back(static_cast<TypeId>(type));
  }
  uint32_t nrows;
  if (!in.U32(&nrows)) return Truncated("response");
  if (static_cast<uint64_t>(nrows) * 2 > len) {
    return Status::Corruption("response row count exceeds payload size");
  }
  r.result.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row;
    if (!ReadRow(&in, &row)) return Truncated("response");
    r.result.rows.push_back(std::move(row));
  }
  if (!in.Done()) return Truncated("response");
  return response;
}

}  // namespace net
}  // namespace beas
