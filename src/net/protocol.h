#ifndef BEAS_NET_PROTOCOL_H_
#define BEAS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "service/beas_service.h"
#include "types/tuple.h"

namespace beas {
namespace net {

/// \brief The BEAS wire protocol ("BNW1"): length-prefixed binary frames
/// over a byte stream, designed for pipelining — a client may have many
/// request frames in flight on one connection; responses carry the
/// request id they answer, in completion order.
///
/// Frame layout (all integers little-endian):
///
///     offset  size  field
///     0       4     magic "BNW1"
///     4       1     kind (FrameKind)
///     5       1     flags (reserved, 0)
///     6       2     reserved (0)
///     8       4     request_id
///     12      4     payload_len
///     16      ...   payload (payload_len bytes)
///
/// Every decode is bounds-checked: a frame that lies about its length, or
/// a payload that runs out of bytes mid-field, yields a typed error
/// (kCorruption / kInvalidArgument), never a crash — malformed input is
/// the expected case on a public port.
constexpr size_t kFrameHeaderSize = 16;
extern const char kFrameMagic[4];

/// Hard protocol ceiling on payload size; servers may configure a lower
/// one. A header that announces more than this is treated as garbage
/// framing (the connection cannot be resynchronized).
constexpr uint32_t kMaxWirePayload = 64u << 20;

enum class FrameKind : uint8_t {
  kQueryRequest = 1,   ///< payload: QueryRequest
  kInsertRequest = 2,  ///< payload: InsertRequest
  kPing = 3,           ///< empty payload; answered with an empty OK response
  kResponse = 0x81,    ///< payload: WireResponse
};

struct FrameHeader {
  FrameKind kind = FrameKind::kPing;
  uint8_t flags = 0;
  uint32_t request_id = 0;
  uint32_t payload_len = 0;
};

/// \brief A batched write over the wire (the SQL front end has no INSERT;
/// writes travel as typed rows and land in BeasService::InsertBatch).
struct InsertRequest {
  std::string table;
  std::vector<Row> rows;
};

/// \brief What a kResponse frame carries: a typed verdict plus, on
/// success, the serializable subset of the QueryResponse envelope (the
/// checker's full CoverageResult stays in-process by design).
struct WireResponse {
  /// The error taxonomy's wire leg: the StatusCode enum value travels as
  /// one byte; StatusCodeName/StatusCodeToHttp derive the other two legs.
  Status status;
  QueryResponse response;      ///< valid when status.ok()
  uint64_t rows_inserted = 0;  ///< insert acks only
};

/// \name Frame header codec.
/// @{
void EncodeFrameHeader(const FrameHeader& header, uint8_t out[kFrameHeaderSize]);
/// kCorruption on bad magic or an over-ceiling payload length; the caller
/// must treat that as an unrecoverable framing error for the connection.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len);
/// @}

/// \name Full-frame encoders (header + payload, ready to write).
/// @{
std::string EncodeQueryRequestFrame(uint32_t request_id,
                                    const QueryRequest& request);
std::string EncodeInsertRequestFrame(uint32_t request_id,
                                     const InsertRequest& request);
std::string EncodePingFrame(uint32_t request_id);
std::string EncodeResponseFrame(uint32_t request_id,
                                const WireResponse& response);
/// @}

/// \name Payload decoders (bounds-checked; typed errors on malformed
/// input). QueryRequest::options.cancel does not serialize and decodes
/// to null — the server wires its own per-connection token.
/// @{
Result<QueryRequest> DecodeQueryRequest(const uint8_t* payload, size_t len);
Result<InsertRequest> DecodeInsertRequest(const uint8_t* payload, size_t len);
Result<WireResponse> DecodeResponse(const uint8_t* payload, size_t len);
/// @}

}  // namespace net
}  // namespace beas

#endif  // BEAS_NET_PROTOCOL_H_
