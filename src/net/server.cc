#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "net/wire_json.h"

namespace beas {
namespace net {

namespace {

/// recv() exactly `n` bytes. Returns n on success, 0 on clean EOF before
/// any byte, -1 on error/EOF mid-read.
ssize_t ReadExact(int fd, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(n);
}

const char* HttpReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "OK";
  }
}

bool LooksLikeHttp(const uint8_t* p) {
  static const char* kMethods[] = {"GET ", "POST", "PUT ", "HEAD",
                                   "DELE", "OPTI", "PATC"};
  for (const char* m : kMethods) {
    if (std::memcmp(p, m, 4) == 0) return true;
  }
  return false;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  NetGauges* gauges = nullptr;
  /// Tripped on client disconnect / shutdown; wired into every request's
  /// QueryOptions::cancel, so a dead client's queries self-terminate.
  std::atomic<bool> cancelled{false};
  /// Pipelining backpressure: requests decoded but not yet answered.
  std::mutex inflight_mutex;
  std::condition_variable inflight_cv;
  size_t inflight = 0;
  /// Serializes response frames (dispatchers finish in any order).
  std::mutex write_mutex;

  ~Connection() {
    if (fd >= 0) ::close(fd);
    if (gauges != nullptr) {
      gauges->connections_open.fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

struct Server::WorkItem {
  std::shared_ptr<Connection> conn;
  uint32_t request_id = 0;
  FrameKind kind = FrameKind::kPing;
  QueryRequest query;
  InsertRequest insert;
};

Server::Server(BeasService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.num_dispatchers == 0) options_.num_dispatchers = 1;
  if (options_.max_inflight_per_connection == 0) {
    options_.max_inflight_per_connection = 1;
  }
  if (options_.max_payload_bytes > kMaxWirePayload) {
    options_.max_payload_bytes = kMaxWirePayload;
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError("bind " + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IoError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (size_t i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // A second Stop() (e.g. destructor after explicit Stop) still joins
    // whatever the first left running — joins below are idempotent via
    // joinable() checks.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        conn->cancelled.store(true, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->inflight_cv.notify_all();
      }
    }
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  {
    // Drop whatever never ran; the shared_ptrs close the sockets.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (Stop) or broken
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->gauges = service_->net_gauges();
    conn->gauges->connections_open.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      // Compact dead entries so a long-lived server doesn't accumulate
      // one weak_ptr per historical connection.
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const std::weak_ptr<Connection>& w) {
                                    return w.expired();
                                  }),
                   conns_.end());
      conns_.push_back(conn);
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void Server::Enqueue(WorkItem item) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void Server::DispatchLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeItem(item);
  }
}

void Server::ServeItem(WorkItem& item) {
  const std::shared_ptr<Connection>& conn = item.conn;
  if (!conn->cancelled.load(std::memory_order_relaxed)) {
    WireResponse response;
    switch (item.kind) {
      case FrameKind::kQueryRequest: {
        QueryRequest request = item.query;
        // Disconnect = cancellation: the engine polls this token at every
        // ExecControl step, so a dead client's query stops mid-chain and
        // its admission cost is released by the service's RAII.
        request.options.cancel = &conn->cancelled;
        Result<QueryResponse> result = service_->Query(request);
        if (result.ok()) {
          if (result->result_cache_hit) {
            conn->gauges->result_cache_hits.fetch_add(
                1, std::memory_order_relaxed);
          }
          response.response = std::move(*result);
        } else {
          response.status = result.status();
        }
        break;
      }
      case FrameKind::kInsertRequest: {
        size_t n = item.insert.rows.size();
        Status st = service_->InsertBatch(item.insert.table,
                                          std::move(item.insert.rows));
        if (st.ok()) response.rows_inserted = n;
        response.status = std::move(st);
        break;
      }
      default:
        response.status = Status::Internal("unexpected work item kind");
    }
    if (!conn->cancelled.load(std::memory_order_relaxed)) {
      WriteToConnection(conn, EncodeResponseFrame(item.request_id, response));
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->inflight_mutex);
    --conn->inflight;
  }
  conn->inflight_cv.notify_one();
}

void Server::WriteToConnection(const std::shared_ptr<Connection>& conn,
                               const std::string& bytes) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  // Test hook: `net_write_response=sleep(MS)@*` turns this server into a
  // slow writer, forcing the per-connection inflight cap to exercise the
  // reader's backpressure path deterministically.
  Status injected = fail::Point("net_write_response");
  if (!injected.ok()) {
    conn->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t r = ::send(conn->fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      // Client went away mid-write; its in-flight queries should stop.
      conn->cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    sent += static_cast<size_t>(r);
  }
  conn->gauges->bytes_out_total.fetch_add(sent, std::memory_order_relaxed);
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  uint8_t header[kFrameHeaderSize];
  // Protocol detection: the first four bytes are either the frame magic
  // or an HTTP method. Anything else is garbage — answer with one typed
  // error frame (best effort) and drop the connection; the server and
  // every other connection are unaffected.
  ssize_t r = ReadExact(conn->fd, header, 4);
  if (r != 4) {
    conn->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  conn->gauges->bytes_in_total.fetch_add(4, std::memory_order_relaxed);
  if (LooksLikeHttp(header)) {
    ServeHttp(conn, std::string(reinterpret_cast<char*>(header), 4));
    conn->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  bool first = true;
  std::vector<uint8_t> payload;
  for (;;) {
    size_t need = first ? kFrameHeaderSize - 4 : kFrameHeaderSize;
    uint8_t* dst = first ? header + 4 : header;
    r = ReadExact(conn->fd, dst, need);
    if (r != static_cast<ssize_t>(need)) break;  // EOF or torn header
    conn->gauges->bytes_in_total.fetch_add(need, std::memory_order_relaxed);
    first = false;
    Result<FrameHeader> decoded = DecodeFrameHeader(header, kFrameHeaderSize);
    if (!decoded.ok()) {
      // Bad magic / lying length: framing is unrecoverable. Tell the
      // client why, then hang up.
      WireResponse err;
      err.status = decoded.status();
      WriteToConnection(conn, EncodeResponseFrame(0, err));
      break;
    }
    FrameHeader frame = *decoded;
    if (frame.payload_len > options_.max_payload_bytes) {
      WireResponse err;
      err.status = Status::InvalidArgument(
          "frame payload of " + std::to_string(frame.payload_len) +
          " bytes exceeds this server's limit of " +
          std::to_string(options_.max_payload_bytes));
      WriteToConnection(conn, EncodeResponseFrame(frame.request_id, err));
      break;
    }
    payload.resize(frame.payload_len);
    if (frame.payload_len > 0) {
      r = ReadExact(conn->fd, payload.data(), frame.payload_len);
      if (r != static_cast<ssize_t>(frame.payload_len)) break;  // truncated
      conn->gauges->bytes_in_total.fetch_add(frame.payload_len,
                                             std::memory_order_relaxed);
    }

    if (frame.kind == FrameKind::kPing) {
      conn->gauges->requests_total.fetch_add(1, std::memory_order_relaxed);
      WireResponse pong;
      WriteToConnection(conn, EncodeResponseFrame(frame.request_id, pong));
      continue;
    }

    WorkItem item;
    item.conn = conn;
    item.request_id = frame.request_id;
    item.kind = frame.kind;
    if (frame.kind == FrameKind::kQueryRequest) {
      Result<QueryRequest> request =
          DecodeQueryRequest(payload.data(), payload.size());
      if (!request.ok()) {
        // Framing was fine, only this payload is bad: typed error, keep
        // the connection.
        WireResponse err;
        err.status = request.status();
        WriteToConnection(conn, EncodeResponseFrame(frame.request_id, err));
        continue;
      }
      item.query = std::move(*request);
    } else if (frame.kind == FrameKind::kInsertRequest) {
      Result<InsertRequest> request =
          DecodeInsertRequest(payload.data(), payload.size());
      if (!request.ok()) {
        WireResponse err;
        err.status = request.status();
        WriteToConnection(conn, EncodeResponseFrame(frame.request_id, err));
        continue;
      }
      item.insert = std::move(*request);
    } else {
      WireResponse err;
      err.status =
          Status::InvalidArgument("clients may not send response frames");
      WriteToConnection(conn, EncodeResponseFrame(frame.request_id, err));
      continue;
    }
    conn->gauges->requests_total.fetch_add(1, std::memory_order_relaxed);

    // Pipelining backpressure: stop reading the socket while this
    // connection already has a full window in flight.
    {
      std::unique_lock<std::mutex> lock(conn->inflight_mutex);
      conn->inflight_cv.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               conn->cancelled.load(std::memory_order_relaxed) ||
               conn->inflight < options_.max_inflight_per_connection;
      });
      if (stopping_.load(std::memory_order_relaxed) ||
          conn->cancelled.load(std::memory_order_relaxed)) {
        return;
      }
      ++conn->inflight;
    }
    Enqueue(std::move(item));
  }
  // EOF / torn frame: everything this connection still has in flight is
  // now pointless — trip the cancel token so running queries stop early.
  conn->cancelled.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HTTP/1.1 JSON adapter: the curl-able face of the same service. One
// request at a time per connection (no pipelining); keep-alive honored.
// ---------------------------------------------------------------------------

void Server::ServeHttp(const std::shared_ptr<Connection>& conn,
                       std::string buffered) {
  constexpr size_t kMaxHeaderBytes = 64 * 1024;
  for (;;) {
    // Accumulate until the blank line ending the header block.
    size_t header_end;
    while ((header_end = buffered.find("\r\n\r\n")) == std::string::npos) {
      if (buffered.size() > kMaxHeaderBytes) return;
      char chunk[4096];
      ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (r <= 0) return;
      conn->gauges->bytes_in_total.fetch_add(static_cast<uint64_t>(r),
                                             std::memory_order_relaxed);
      buffered.append(chunk, static_cast<size_t>(r));
    }
    std::string head = buffered.substr(0, header_end);
    buffered.erase(0, header_end + 4);

    // Request line.
    size_t line_end = head.find("\r\n");
    std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    size_t sp1 = request_line.find(' ');
    size_t sp2 = request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) return;
    std::string method = request_line.substr(0, sp1);
    std::string path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

    // Headers we care about.
    size_t content_length = 0;
    bool keep_alive = true;
    size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      std::string line = head.substr(pos, eol == std::string::npos
                                              ? std::string::npos
                                              : eol - pos);
      pos = eol == std::string::npos ? head.size() : eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string key = line.substr(0, colon);
      for (char& c : key) c = static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      if (key == "content-length") {
        content_length = static_cast<size_t>(
            std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "connection") {
        for (char& c : value) c = static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c)));
        keep_alive = value != "close";
      }
    }
    if (content_length > options_.max_payload_bytes) return;
    while (buffered.size() < content_length) {
      char chunk[4096];
      ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (r <= 0) return;
      conn->gauges->bytes_in_total.fetch_add(static_cast<uint64_t>(r),
                                             std::memory_order_relaxed);
      buffered.append(chunk, static_cast<size_t>(r));
    }
    std::string body = buffered.substr(0, content_length);
    buffered.erase(0, content_length);

    conn->gauges->requests_total.fetch_add(1, std::memory_order_relaxed);
    WireResponse response;
    if (path == "/ping" || path == "/healthz") {
      // Empty OK envelope; renders as {"status":"OK",...}.
    } else if (method == "POST" && path == "/query") {
      Result<Json> doc = ParseJson(body);
      if (!doc.ok()) {
        response.status = doc.status();
      } else {
        QueryRequest request;
        const Json* sql = doc->Get("sql");
        if (sql == nullptr || !sql->is_string()) {
          response.status =
              Status::InvalidArgument("body must carry a \"sql\" string");
        } else {
          request.sql = sql->str;
          if (const Json* mode = doc->Get("mode")) {
            Result<QueryMode> parsed = ParseQueryMode(mode->str);
            if (!parsed.ok()) {
              response.status = parsed.status();
            } else {
              request.mode = *parsed;
            }
          }
          if (const Json* tenant = doc->Get("tenant")) {
            request.tenant = tenant->str;
          }
          if (const Json* v = doc->Get("timeout_millis")) {
            request.options.timeout_millis = v->inum;
          }
          if (const Json* v = doc->Get("fetch_budget")) {
            request.options.fetch_budget = static_cast<uint64_t>(v->inum);
          }
          if (const Json* v = doc->Get("min_eta")) {
            request.options.min_eta = v->num;
          }
          if (const Json* v = doc->Get("approx_budget")) {
            request.approx_budget = static_cast<uint64_t>(v->inum);
          }
          if (response.status.ok()) {
            request.options.cancel = &conn->cancelled;
            Result<QueryResponse> result = service_->Query(request);
            if (result.ok()) {
              response.response = std::move(*result);
            } else {
              response.status = result.status();
            }
          }
        }
      }
    } else if (method == "POST" && path == "/insert") {
      Result<Json> doc = ParseJson(body);
      const Json* table = doc.ok() ? doc->Get("table") : nullptr;
      const Json* rows = doc.ok() ? doc->Get("rows") : nullptr;
      if (!doc.ok()) {
        response.status = doc.status();
      } else if (table == nullptr || !table->is_string() || rows == nullptr ||
                 !rows->is_array()) {
        response.status = Status::InvalidArgument(
            "body must carry \"table\" (string) and \"rows\" (array of "
            "arrays)");
      } else {
        std::vector<Row> batch;
        batch.reserve(rows->items.size());
        Status st;
        for (const Json& row_json : rows->items) {
          if (!row_json.is_array()) {
            st = Status::InvalidArgument("each row must be an array");
            break;
          }
          Row row;
          row.reserve(row_json.items.size());
          for (const Json& cell : row_json.items) {
            Result<Value> v = JsonToValue(cell);
            if (!v.ok()) {
              st = v.status();
              break;
            }
            row.push_back(std::move(*v));
          }
          if (!st.ok()) break;
          batch.push_back(std::move(row));
        }
        if (st.ok()) {
          size_t n = batch.size();
          st = service_->InsertBatch(table->str, std::move(batch));
          if (st.ok()) response.rows_inserted = n;
        }
        response.status = std::move(st);
      }
    } else {
      response.status =
          Status::NotFound("no such endpoint: " + method + " " + path);
    }

    std::string json = RenderResponseJson(response);
    int code = StatusCodeToHttp(response.status.code());
    std::string reply = "HTTP/1.1 " + std::to_string(code) + " " +
                        HttpReason(code) +
                        "\r\nContent-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(json.size()) + "\r\nConnection: " +
                        (keep_alive ? "keep-alive" : "close") + "\r\n\r\n" +
                        json;
    WriteToConnection(conn, reply);
    if (!keep_alive || conn->cancelled.load(std::memory_order_relaxed) ||
        stopping_.load(std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace net
}  // namespace beas
