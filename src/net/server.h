#ifndef BEAS_NET_SERVER_H_
#define BEAS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "service/beas_service.h"

namespace beas {
namespace net {

/// \brief Tuning knobs for the wire server.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// Listen port; 0 = pick an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Threads draining the dispatch queue. Dispatchers call
  /// BeasService::Query directly, so concurrent in-flight requests from
  /// all connections execute in parallel and their sharded index probes
  /// batch together on the service's TaskPool (LookupBatch fan-out).
  size_t num_dispatchers = 4;
  /// Per-connection pipelining cap: a reader that has this many requests
  /// in flight blocks (stops reading the socket) until responses drain —
  /// TCP backpressure does the rest. Keeps one firehose client from
  /// monopolizing the dispatch queue.
  size_t max_inflight_per_connection = 32;
  /// Per-server payload ceiling (≤ kMaxWirePayload). A frame announcing
  /// more is a framing error: the connection is closed.
  uint32_t max_payload_bytes = 16u << 20;
};

/// \brief The network front door: a multi-threaded TCP server fronting a
/// BeasService with the BNW1 binary protocol, plus an HTTP/1.1 JSON
/// adapter auto-detected on the same port (a connection whose first bytes
/// are an HTTP method is served JSON; anything else must open with the
/// frame magic).
///
/// ## Threading
///
/// One accept thread, one reader thread per connection, and a fixed pool
/// of dispatcher threads draining a shared queue. Readers decode frames
/// and enqueue work; dispatchers execute against the service and write
/// responses (per-connection write mutex; responses interleave across
/// requests of one connection in completion order, correlated by request
/// id — that is the pipelining contract).
///
/// ## Disconnect = cancellation
///
/// Each connection owns an atomic cancelled flag that the server wires
/// into every request's QueryOptions::cancel. When the reader observes
/// EOF/error, it trips the flag: queries already executing observe it at
/// the next ExecControl poll and return their partial answer (which is
/// then discarded), queued-but-unstarted work is dropped, and admission
/// cost is released by the service's existing RAII — a disconnect can
/// never leak budget.
///
/// ## Robustness
///
/// Malformed input never tears down the server, only the offending
/// connection at worst: bad magic / lying lengths close that connection
/// (framing is unrecoverable); a well-framed but undecodable payload gets
/// a typed error response and the connection lives on.
class Server {
 public:
  /// `service` must outlive the server (it also owns the NetGauges the
  /// server increments).
  explicit Server(BeasService* service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept/dispatch threads.
  Status Start();
  /// Stops accepting, cancels in-flight work, closes every connection,
  /// and joins all threads. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after Start(); useful with options.port = 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

 private:
  struct Connection;
  struct WorkItem;

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void DispatchLoop();
  void Enqueue(WorkItem item);
  /// Executes one request and writes its response frame.
  void ServeItem(WorkItem& item);
  /// Serves a connection that opened with an HTTP method line. `prefix`
  /// holds the bytes already consumed during protocol detection.
  void ServeHttp(const std::shared_ptr<Connection>& conn, std::string prefix);
  void WriteToConnection(const std::shared_ptr<Connection>& conn,
                         const std::string& bytes);

  BeasService* service_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  std::mutex threads_mutex_;
  std::thread accept_thread_;
  std::vector<std::thread> dispatchers_;
  std::vector<std::thread> readers_;

  std::mutex conns_mutex_;
  std::vector<std::weak_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace beas

#endif  // BEAS_NET_SERVER_H_
