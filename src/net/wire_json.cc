#include "net/wire_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace beas {
namespace net {

const Json* Json::Get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = fields.find(key);
  return it == fields.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    BEAS_ASSIGN_OR_RETURN(Json doc, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing bytes after JSON document");
    }
    return doc;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Err("unexpected character");
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json out;
    out.type = Json::Type::kObject;
    SkipWs();
    if (Consume('}')) return out;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      BEAS_ASSIGN_OR_RETURN(Json key, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      BEAS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.fields[key.str] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Err("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json out;
    out.type = Json::Type::kArray;
    SkipWs();
    if (Consume(']')) return out;
    for (;;) {
      BEAS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseString() {
    ++pos_;  // '"'
    Json out;
    out.type = Json::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out.str += '"'; break;
          case '\\': out.str += '\\'; break;
          case '/': out.str += '/'; break;
          case 'b': out.str += '\b'; break;
          case 'f': out.str += '\f'; break;
          case 'n': out.str += '\n'; break;
          case 'r': out.str += '\r'; break;
          case 't': out.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // the adapter's own output never emits them).
            if (code < 0x80) {
              out.str += static_cast<char>(code);
            } else if (code < 0x800) {
              out.str += static_cast<char>(0xC0 | (code >> 6));
              out.str += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out.str += static_cast<char>(0xE0 | (code >> 12));
              out.str += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out.str += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out.str += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseBool() {
    Json out;
    out.type = Json::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.b = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.b = false;
      pos_ += 5;
      return out;
    }
    return Err("expected boolean");
  }

  Result<Json> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    return Err("expected null");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    Json out;
    out.type = Json::Type::kNumber;
    out.num = std::strtod(token.c_str(), nullptr);
    out.num_is_integral = integral;
    if (integral) {
      out.inum = std::strtoll(token.c_str(), nullptr, 10);
    } else {
      out.inum = static_cast<int64_t>(out.num);
    }
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendValueJson(std::string* out, const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      *out += "null";
      return;
    case TypeId::kInt64:
      *out += std::to_string(v.AsInt64());
      return;
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      *out += buf;
      return;
    }
    case TypeId::kString:
      *out += '"';
      *out += JsonEscape(v.AsString());
      *out += '"';
      return;
    case TypeId::kDate: {
      // Render the YYYYMMDD encoding back to ISO for the JSON side.
      int64_t d = v.AsDate();
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%04lld-%02lld-%02lld",
                    static_cast<long long>(d / 10000),
                    static_cast<long long>((d / 100) % 100),
                    static_cast<long long>(d % 100));
      *out += '"';
      *out += buf;
      *out += '"';
      return;
    }
  }
  *out += "null";
}

}  // namespace

Result<Json> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderResponseJson(const WireResponse& response) {
  std::string out;
  if (!response.status.ok()) {
    StatusCode code = response.status.code();
    out += "{\"error\":{\"code\":\"";
    out += StatusCodeName(code);
    out += "\",\"http\":";
    out += std::to_string(StatusCodeToHttp(code));
    out += ",\"message\":\"";
    out += JsonEscape(response.status.message());
    out += "\"}}";
    return out;
  }
  const QueryResponse& r = response.response;
  out += "{\"status\":\"OK\"";
  out += ",\"covered\":";
  out += r.covered ? "true" : "false";
  out += ",\"eta\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", r.eta);
  out += buf;
  out += ",\"degraded\":";
  out += r.degraded ? "true" : "false";
  out += ",\"timed_out\":";
  out += r.timed_out ? "true" : "false";
  out += ",\"cache_hit\":";
  out += r.cache_hit ? "true" : "false";
  out += ",\"result_cache_hit\":";
  out += r.result_cache_hit ? "true" : "false";
  out += ",\"deduced_bound\":";
  out += std::to_string(r.decision.deduced_bound);
  if (!r.reason.empty()) {
    out += ",\"reason\":\"";
    out += JsonEscape(r.reason);
    out += "\"";
  }
  if (response.rows_inserted > 0) {
    out += ",\"rows_inserted\":";
    out += std::to_string(response.rows_inserted);
  }
  out += ",\"columns\":[";
  for (size_t i = 0; i < r.result.column_names.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(r.result.column_names[i]);
    out += '"';
  }
  out += "],\"rows\":[";
  for (size_t i = 0; i < r.result.rows.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    const Row& row = r.result.rows[i];
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ',';
      AppendValueJson(&out, row[j]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

Result<Value> JsonToValue(const Json& json) {
  switch (json.type) {
    case Json::Type::kNull:
      return Value::Null();
    case Json::Type::kBool:
      return Value::Int64(json.b ? 1 : 0);
    case Json::Type::kNumber:
      return json.num_is_integral ? Value::Int64(json.inum)
                                  : Value::Double(json.num);
    case Json::Type::kString:
      return Value::String(json.str);
    case Json::Type::kObject: {
      const Json* date = json.Get("date");
      if (date != nullptr && date->is_string()) {
        return Value::DateFromString(date->str);
      }
      return Status::InvalidArgument(
          "JSON object values must be {\"date\":\"YYYY-MM-DD\"}");
    }
    case Json::Type::kArray:
      return Status::InvalidArgument("nested arrays are not valid cells");
  }
  return Status::InvalidArgument("unsupported JSON value");
}

}  // namespace net
}  // namespace beas
