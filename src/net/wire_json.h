#ifndef BEAS_NET_WIRE_JSON_H_
#define BEAS_NET_WIRE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"

namespace beas {
namespace net {

/// \brief A minimal JSON document model for the HTTP adapter: just enough
/// to parse request bodies and render responses, with no dependency.
/// Numbers keep both an integer and a double reading so "7" can bind an
/// INT column and "7.5" a DOUBLE one.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  int64_t inum = 0;
  bool num_is_integral = false;
  std::string str;
  std::vector<Json> items;                 ///< kArray
  std::map<std::string, Json> fields;      ///< kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  /// Object field lookup; null when absent or not an object.
  const Json* Get(const std::string& key) const;
};

/// Parses one JSON document (trailing garbage is an error). Bounds- and
/// depth-checked: attacker-controlled bodies get typed errors, not stack
/// overflows.
Result<Json> ParseJson(const std::string& text);

/// Escapes a string for embedding in a JSON document (no quotes added).
std::string JsonEscape(const std::string& s);

/// Renders a WireResponse as the HTTP adapter's JSON body. Errors become
/// {"error":{"code":TOKEN,"http":N,"message":...}}; successes carry the
/// envelope's scalar telemetry plus columns/rows.
std::string RenderResponseJson(const WireResponse& response);

/// Converts a parsed JSON value into an engine Value. Strings stay
/// strings; {"date":"YYYY-MM-DD"} objects become DATE values; integral
/// numbers become INT64, others DOUBLE.
Result<Value> JsonToValue(const Json& json);

}  // namespace net
}  // namespace beas

#endif  // BEAS_NET_WIRE_JSON_H_
