#include "plan/engine_profile.h"

namespace beas {

const EngineProfile& EngineProfile::PostgresLike() {
  static const EngineProfile kProfile{"PostgreSQL-like", /*use_hash_join=*/true,
                                      /*join_buffer_rows=*/0,
                                      /*greedy_join_order=*/true};
  return kProfile;
}

const EngineProfile& EngineProfile::MySqlLike() {
  static const EngineProfile kProfile{"MySQL-like", /*use_hash_join=*/false,
                                      /*join_buffer_rows=*/128,
                                      /*greedy_join_order=*/false};
  return kProfile;
}

const EngineProfile& EngineProfile::MariaDbLike() {
  static const EngineProfile kProfile{"MariaDB-like", /*use_hash_join=*/false,
                                      /*join_buffer_rows=*/4096,
                                      /*greedy_join_order=*/false};
  return kProfile;
}

}  // namespace beas
