#ifndef BEAS_PLAN_ENGINE_PROFILE_H_
#define BEAS_PLAN_ENGINE_PROFILE_H_

#include <cstddef>
#include <string>

namespace beas {

/// \brief Configuration of the conventional query engine.
///
/// The BEAS paper compares against PostgreSQL, MySQL and MariaDB — closed
/// systems we cannot ship. These profiles emulate the planner/executor
/// behaviours that drive the paper's relative ordering (see DESIGN.md §4):
///
///  - PostgreSQL-like: greedy join ordering by estimated cardinality and
///    hash joins;
///  - MySQL-like: FROM-order left-deep plans with block nested-loop joins
///    and a small join buffer (MySQL <= 5.7 had no hash join). Each buffer
///    chunk of outer rows rescans the inner relation, which is what makes
///    conventional evaluation access "almost the entire database" repeatedly;
///  - MariaDB-like: same, with a much larger join buffer (fewer rescans).
struct EngineProfile {
  std::string name;
  bool use_hash_join = true;
  size_t join_buffer_rows = 0;   ///< BNL buffer; 0 means unused (hash join)
  bool greedy_join_order = true; ///< false: join in FROM order

  static const EngineProfile& PostgresLike();
  static const EngineProfile& MySqlLike();
  static const EngineProfile& MariaDbLike();
};

}  // namespace beas

#endif  // BEAS_PLAN_ENGINE_PROFILE_H_
