#include "plan/planner.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace beas {

size_t PlanNode::OutputArity() const {
  switch (type) {
    case PlanNodeType::kSeqScan:
      return table->schema().NumColumns();
    case PlanNodeType::kFilter:
    case PlanNodeType::kLimit:
    case PlanNodeType::kDistinct:
    case PlanNodeType::kSort:
      return children[0]->OutputArity();
    case PlanNodeType::kProject:
      return projections.size();
    case PlanNodeType::kHashJoin:
    case PlanNodeType::kBnlJoin:
      return children[0]->OutputArity() + children[1]->OutputArity();
    case PlanNodeType::kAggregate:
      return group_by.size() + aggregates.size();
    case PlanNodeType::kValues:
      return values_arity;
  }
  return 0;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (type) {
    case PlanNodeType::kSeqScan:
      out += "SeqScan(" + table->name() + ")";
      break;
    case PlanNodeType::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanNodeType::kProject: {
      out += "Project(";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i]->ToString();
      }
      out += ")";
      break;
    }
    case PlanNodeType::kHashJoin: {
      out += "HashJoin(";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += left_keys[i]->ToString() + " = " + right_keys[i]->ToString();
      }
      out += ")";
      break;
    }
    case PlanNodeType::kBnlJoin:
      out += "BNLJoin(" + (predicate ? predicate->ToString() : "true") +
             ", buffer=" + std::to_string(buffer_rows) + ")";
      break;
    case PlanNodeType::kAggregate: {
      out += "Aggregate(groups=" + std::to_string(group_by.size()) + ", [";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregates[i].name;
      }
      out += "]";
      if (having) out += ", having=" + having->ToString();
      out += ")";
      break;
    }
    case PlanNodeType::kSort: {
      out += "Sort(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += "#" + std::to_string(sort_keys[i].first) +
               (sort_keys[i].second ? "" : " DESC");
      }
      out += ")";
      break;
    }
    case PlanNodeType::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
    case PlanNodeType::kDistinct:
      out += "Distinct";
      break;
    case PlanNodeType::kValues:
      out += "Values(" + std::to_string(rows ? rows->size() : 0) + " rows)";
      break;
  }
  out += "\n";
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

namespace {

std::unique_ptr<PlanNode> NewNode(PlanNodeType type) {
  auto node = std::make_unique<PlanNode>();
  node->type = type;
  return node;
}

/// True if every attribute of the conjunct belongs to atom `a` (false for
/// literal-only conjuncts, which are handled by the final sweep).
bool IsSingleAtom(const Conjunct& c, size_t a) {
  if (c.attrs.empty()) return false;
  for (const AttrRef& attr : c.attrs) {
    if (attr.atom != a) return false;
  }
  return true;
}

/// Selectivity-aware size estimate for one atom after its pushed-down
/// filters (equality via distinct counts; 0.5 per other predicate).
double EstimateFilteredSize(const BoundQuery& query, size_t a) {
  TableInfo* table = query.atoms[a].table;
  const TableStats& stats = table->stats();
  double size = static_cast<double>(stats.row_count);
  for (const Conjunct& c : query.conjuncts) {
    if (!IsSingleAtom(c, a)) continue;
    switch (c.cls) {
      case ConjunctClass::kEqConst: {
        size_t distinct =
            stats.DistinctOf(table->schema().ColumnAt(c.lhs.col).name);
        if (distinct > 0) size /= static_cast<double>(distinct);
        break;
      }
      case ConjunctClass::kInConst: {
        size_t distinct =
            stats.DistinctOf(table->schema().ColumnAt(c.lhs.col).name);
        if (distinct > 0) {
          size = size / static_cast<double>(distinct) *
                 static_cast<double>(c.in_vals.size());
        }
        break;
      }
      default:
        size *= 0.5;
        break;
    }
  }
  return std::max(size, 1.0);
}

}  // namespace

struct Planner::JoinState {
  /// Position p of the current intermediate row holds global column
  /// layout_[p] of the BoundQuery's atom-major layout.
  std::vector<size_t> layout;
  std::unordered_map<size_t, size_t> global_to_pos;
  std::vector<bool> conjunct_applied;

  void Append(const BoundQuery& query, size_t atom) {
    size_t base = query.atom_offsets[atom];
    size_t n = query.atoms[atom].table->schema().NumColumns();
    for (size_t c = 0; c < n; ++c) {
      global_to_pos[base + c] = layout.size();
      layout.push_back(base + c);
    }
  }

  bool Covers(const Conjunct& c, const BoundQuery& query) const {
    for (const AttrRef& attr : c.attrs) {
      if (!global_to_pos.count(query.GlobalIndex(attr))) return false;
    }
    return true;
  }
};

Result<std::unique_ptr<PlanNode>> Planner::BuildAtomPlan(
    const BoundQuery& query, size_t a, JoinState* state) const {
  auto scan = NewNode(PlanNodeType::kSeqScan);
  scan->table = query.atoms[a].table;
  // Push down single-atom conjuncts, rebound to the table-local layout.
  ExprPtr pred;
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (state->conjunct_applied[ci]) continue;
    const Conjunct& c = query.conjuncts[ci];
    if (!IsSingleAtom(c, a)) continue;
    std::unordered_map<size_t, size_t> mapping;
    size_t base = query.atom_offsets[a];
    size_t n = query.atoms[a].table->schema().NumColumns();
    for (size_t col = 0; col < n; ++col) mapping[base + col] = col;
    ExprPtr rebound = RebindColumns(c.expr, mapping);
    if (!rebound) return Status::Internal("rebind failed in pushdown");
    pred = pred ? Expression::Logic(LogicOp::kAnd, pred, rebound) : rebound;
    state->conjunct_applied[ci] = true;
  }
  if (!pred) return scan;
  auto filter = NewNode(PlanNodeType::kFilter);
  filter->predicate = pred;
  filter->children.push_back(std::move(scan));
  return filter;
}

std::vector<size_t> Planner::DecideOrder(const BoundQuery& query,
                                         const std::vector<size_t>& atoms,
                                         bool have_seed) const {
  if (!profile_.greedy_join_order || atoms.size() <= 1) return atoms;

  std::unordered_map<size_t, double> est;
  for (size_t a : atoms) est[a] = EstimateFilteredSize(query, a);

  std::vector<size_t> order;
  std::unordered_map<size_t, bool> placed;
  for (size_t a : atoms) placed[a] = false;

  if (!have_seed) {
    size_t first = atoms[0];
    for (size_t a : atoms) {
      if (est[a] < est[first]) first = a;
    }
    order.push_back(first);
    placed[first] = true;
  }
  // Greedily extend with the smallest atom connected by an equi-join to
  // anything already placed (seed atoms count as placed implicitly: their
  // attributes are in the layout, so `connected` uses conjunct reachability
  // to any atom not in `atoms`).
  while (order.size() < atoms.size()) {
    size_t best = static_cast<size_t>(-1);
    bool best_connected = false;
    for (size_t a : atoms) {
      if (placed[a]) continue;
      bool connected = false;
      for (const Conjunct& c : query.conjuncts) {
        if (c.cls != ConjunctClass::kEqAttr) continue;
        auto is_other_placed = [&](size_t other) {
          if (other == a) return false;
          auto it = placed.find(other);
          if (it == placed.end()) return true;  // seed atom or outside set
          return it->second;
        };
        if ((c.lhs.atom == a && is_other_placed(c.rhs.atom)) ||
            (c.rhs.atom == a && is_other_placed(c.lhs.atom))) {
          connected = true;
          break;
        }
      }
      if (best == static_cast<size_t>(-1) ||
          (connected && !best_connected) ||
          (connected == best_connected && est[a] < est[best])) {
        best = a;
        best_connected = connected;
      }
    }
    order.push_back(best);
    placed[best] = true;
  }
  return order;
}

Result<std::unique_ptr<PlanNode>> Planner::PlanJoinsCore(
    const BoundQuery& query, JoinState* state,
    std::unique_ptr<PlanNode> current, const std::vector<size_t>& order) const {
  size_t start_index = 0;
  if (current == nullptr) {
    if (order.empty()) {
      return Status::Internal("no atoms and no seed to plan from");
    }
    BEAS_ASSIGN_OR_RETURN(current, BuildAtomPlan(query, order[0], state));
    state->Append(query, order[0]);
    start_index = 1;
  }

  for (size_t i = start_index; i < order.size(); ++i) {
    size_t a = order[i];
    BEAS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> atom_plan,
                          BuildAtomPlan(query, a, state));
    size_t atom_base = query.atom_offsets[a];
    size_t atom_cols = query.atoms[a].table->schema().NumColumns();
    size_t left_width = state->layout.size();

    // Find unapplied equi-join conjuncts connecting the placed set with `a`.
    std::vector<size_t> equi;
    for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
      if (state->conjunct_applied[ci]) continue;
      const Conjunct& c = query.conjuncts[ci];
      if (c.cls != ConjunctClass::kEqAttr) continue;
      bool lhs_placed = state->global_to_pos.count(query.GlobalIndex(c.lhs));
      bool rhs_placed = state->global_to_pos.count(query.GlobalIndex(c.rhs));
      if ((lhs_placed && c.rhs.atom == a && !rhs_placed) ||
          (rhs_placed && c.lhs.atom == a && !lhs_placed)) {
        equi.push_back(ci);
      }
    }

    std::unique_ptr<PlanNode> join;
    if (profile_.use_hash_join && !equi.empty()) {
      join = NewNode(PlanNodeType::kHashJoin);
      for (size_t ci : equi) {
        const Conjunct& c = query.conjuncts[ci];
        AttrRef left_attr = c.lhs.atom == a ? c.rhs : c.lhs;
        AttrRef right_attr = c.lhs.atom == a ? c.lhs : c.rhs;
        size_t left_pos = state->global_to_pos.at(query.GlobalIndex(left_attr));
        TypeId lt = query.atoms[left_attr.atom]
                        .table->schema()
                        .ColumnAt(left_attr.col)
                        .type;
        TypeId rt =
            query.atoms[a].table->schema().ColumnAt(right_attr.col).type;
        join->left_keys.push_back(
            Expression::Column(left_pos, lt, query.AttrName(left_attr)));
        join->right_keys.push_back(
            Expression::Column(right_attr.col, rt, query.AttrName(right_attr)));
        state->conjunct_applied[ci] = true;
      }
      join->children.push_back(std::move(current));
      join->children.push_back(std::move(atom_plan));
    } else {
      // Block nested loop: the pair predicate is every unapplied conjunct
      // that becomes evaluable at this join, rebound to the concat layout.
      std::unordered_map<size_t, size_t> mapping = state->global_to_pos;
      for (size_t c = 0; c < atom_cols; ++c) {
        mapping[atom_base + c] = left_width + c;
      }
      ExprPtr pred;
      for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
        if (state->conjunct_applied[ci]) continue;
        const Conjunct& c = query.conjuncts[ci];
        if (c.attrs.empty()) continue;
        bool evaluable = true;
        bool touches_atom = false;
        for (const AttrRef& attr : c.attrs) {
          size_t g = query.GlobalIndex(attr);
          if (!mapping.count(g)) evaluable = false;
          if (attr.atom == a) touches_atom = true;
        }
        if (!evaluable || !touches_atom) continue;
        ExprPtr rebound = RebindColumns(c.expr, mapping);
        if (!rebound) return Status::Internal("rebind failed at BNL join");
        pred = pred ? Expression::Logic(LogicOp::kAnd, pred, rebound) : rebound;
        state->conjunct_applied[ci] = true;
      }
      join = NewNode(PlanNodeType::kBnlJoin);
      join->predicate = pred;
      join->buffer_rows =
          profile_.join_buffer_rows == 0 ? 8192 : profile_.join_buffer_rows;
      join->children.push_back(std::move(current));
      join->children.push_back(std::move(atom_plan));
    }
    current = std::move(join);
    state->Append(query, a);

    // Apply any newly evaluable conjuncts above the join (e.g. range
    // predicates across atoms after a hash join).
    ExprPtr post;
    for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
      if (state->conjunct_applied[ci]) continue;
      const Conjunct& c = query.conjuncts[ci];
      if (c.attrs.empty() || !state->Covers(c, query)) continue;
      ExprPtr rebound = RebindColumns(c.expr, state->global_to_pos);
      if (!rebound) return Status::Internal("rebind failed post-join");
      post = post ? Expression::Logic(LogicOp::kAnd, post, rebound) : rebound;
      state->conjunct_applied[ci] = true;
    }
    if (post) {
      auto filter = NewNode(PlanNodeType::kFilter);
      filter->predicate = post;
      filter->children.push_back(std::move(current));
      current = std::move(filter);
    }
  }

  // Final sweep: literal-only conjuncts (no column references) and anything
  // else still pending — e.g. WHERE 1 = 0 on a single-atom query.
  ExprPtr final_pred;
  for (size_t ci = 0; ci < query.conjuncts.size(); ++ci) {
    if (state->conjunct_applied[ci]) continue;
    const Conjunct& c = query.conjuncts[ci];
    if (!state->Covers(c, query)) {
      return Status::Internal("conjunct not applied: " + c.ToString());
    }
    ExprPtr rebound = RebindColumns(c.expr, state->global_to_pos);
    if (!rebound) return Status::Internal("rebind failed in final sweep");
    final_pred = final_pred
                     ? Expression::Logic(LogicOp::kAnd, final_pred, rebound)
                     : rebound;
    state->conjunct_applied[ci] = true;
  }
  if (final_pred) {
    auto filter = NewNode(PlanNodeType::kFilter);
    filter->predicate = final_pred;
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }
  return current;
}

Result<std::unique_ptr<PlanNode>> Planner::PlanTail(
    const BoundQuery& query, std::unique_ptr<PlanNode> input,
    JoinState* state) const {
  std::unique_ptr<PlanNode> current = std::move(input);
  const std::unordered_map<size_t, size_t>& mapping = state->global_to_pos;

  if (query.HasAggregates()) {
    auto agg = NewNode(PlanNodeType::kAggregate);
    for (const ExprPtr& g : query.group_by) {
      ExprPtr rebound = RebindColumns(g, mapping);
      if (!rebound) return Status::Internal("rebind failed for GROUP BY");
      agg->group_by.push_back(std::move(rebound));
    }
    for (const AggSpec& spec : query.aggregates) {
      AggSpec copy = spec;
      if (copy.arg) {
        copy.arg = RebindColumns(copy.arg, mapping);
        if (!copy.arg) return Status::Internal("rebind failed for aggregate");
      }
      agg->aggregates.push_back(std::move(copy));
    }
    agg->having = query.having;  // already over [groups..., aggs...]
    agg->children.push_back(std::move(current));
    current = std::move(agg);

    // Project aggregate output layout onto the SELECT list.
    auto project = NewNode(PlanNodeType::kProject);
    size_t num_groups = query.group_by.size();
    for (const OutputItem& out : query.outputs) {
      size_t pos = out.agg == AggFn::kNone ? out.slot : num_groups + out.slot;
      project->projections.push_back(
          Expression::Column(pos, out.type, out.name));
    }
    project->children.push_back(std::move(current));
    current = std::move(project);
  } else {
    auto project = NewNode(PlanNodeType::kProject);
    for (const OutputItem& out : query.outputs) {
      ExprPtr rebound = RebindColumns(out.expr, mapping);
      if (!rebound) return Status::Internal("rebind failed for output");
      project->projections.push_back(std::move(rebound));
    }
    project->children.push_back(std::move(current));
    current = std::move(project);
  }

  if (query.distinct) {
    auto distinct = NewNode(PlanNodeType::kDistinct);
    distinct->children.push_back(std::move(current));
    current = std::move(distinct);
  }
  if (!query.order_by.empty()) {
    auto sort = NewNode(PlanNodeType::kSort);
    for (const BoundOrderItem& item : query.order_by) {
      sort->sort_keys.emplace_back(item.output_index, item.asc);
    }
    sort->children.push_back(std::move(current));
    current = std::move(sort);
  }
  if (query.limit.has_value()) {
    auto limit = NewNode(PlanNodeType::kLimit);
    limit->limit = *query.limit;
    limit->children.push_back(std::move(current));
    current = std::move(limit);
  }
  return current;
}

Result<std::unique_ptr<PlanNode>> Planner::Plan(const BoundQuery& query) const {
  JoinState state;
  state.conjunct_applied.assign(query.conjuncts.size(), false);
  std::vector<size_t> all_atoms;
  for (size_t a = 0; a < query.atoms.size(); ++a) all_atoms.push_back(a);
  std::vector<size_t> order = DecideOrder(query, all_atoms, /*have_seed=*/false);
  BEAS_ASSIGN_OR_RETURN(
      std::unique_ptr<PlanNode> joined,
      PlanJoinsCore(query, &state, /*current=*/nullptr, order));
  return PlanTail(query, std::move(joined), &state);
}

Result<std::unique_ptr<PlanNode>> Planner::PlanWithSeed(
    const BoundQuery& query, std::unique_ptr<PlanNode> seed,
    const std::vector<AttrRef>& seed_layout,
    std::vector<bool> conjunct_applied,
    const std::vector<bool>& atom_in_seed) const {
  JoinState state;
  state.conjunct_applied = std::move(conjunct_applied);
  state.conjunct_applied.resize(query.conjuncts.size(), false);
  for (const AttrRef& attr : seed_layout) {
    state.global_to_pos[query.GlobalIndex(attr)] = state.layout.size();
    state.layout.push_back(query.GlobalIndex(attr));
  }
  std::vector<size_t> remaining;
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    if (a >= atom_in_seed.size() || !atom_in_seed[a]) remaining.push_back(a);
  }
  std::vector<size_t> order = DecideOrder(query, remaining, /*have_seed=*/true);
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> joined,
                        PlanJoinsCore(query, &state, std::move(seed), order));
  return PlanTail(query, std::move(joined), &state);
}

}  // namespace beas
