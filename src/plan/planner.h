#ifndef BEAS_PLAN_PLANNER_H_
#define BEAS_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "binder/bound_query.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/expression.h"
#include "plan/engine_profile.h"

namespace beas {

/// \brief Physical plan node kinds of the conventional engine.
enum class PlanNodeType {
  kSeqScan,
  kFilter,
  kProject,
  kHashJoin,
  kBnlJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kValues,
};

/// \brief A physical plan node. Executors are built from these trees; the
/// block nested-loop join rebuilds its inner subtree once per buffer pass,
/// which is why plans (not executors) are the unit of reuse.
struct PlanNode {
  PlanNodeType type;

  // kSeqScan
  TableInfo* table = nullptr;

  // kFilter; also the pair predicate of kBnlJoin (over concat layout).
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;

  // kHashJoin: output is concat(left row, right row); the hash table is
  // built on the right child.
  std::vector<ExprPtr> left_keys;   ///< over left-child layout
  std::vector<ExprPtr> right_keys;  ///< over right-child layout

  // kBnlJoin
  size_t buffer_rows = 0;

  // kAggregate: output layout is [group values..., aggregate values...].
  std::vector<ExprPtr> group_by;   ///< over child layout
  std::vector<AggSpec> aggregates; ///< args over child layout
  ExprPtr having;                  ///< over the aggregate output layout

  // kSort: (column index in child layout, ascending).
  std::vector<std::pair<size_t, bool>> sort_keys;

  // kLimit
  int64_t limit = 0;

  // kValues
  std::shared_ptr<const std::vector<Row>> rows;
  size_t values_arity = 0;

  std::vector<std::unique_ptr<PlanNode>> children;

  /// Number of columns this node outputs (computed from the tree).
  size_t OutputArity() const;

  /// Pretty-prints the plan subtree.
  std::string ToString(int indent = 0) const;
};

/// \brief Builds conventional (scan-and-join) physical plans from a
/// BoundQuery under an EngineProfile. This is the "commercial DBMS"
/// stand-in that BEAS is compared against, and also the tail used by
/// partially bounded plans.
class Planner {
 public:
  explicit Planner(const EngineProfile& profile) : profile_(profile) {}

  /// Plans the full query (joins, filters, aggregation, sort, limit).
  Result<std::unique_ptr<PlanNode>> Plan(const BoundQuery& query) const;

  /// Plans the query starting from a materialized seed relation (the
  /// output of a bounded fragment, as a kValues node): joins the remaining
  /// atoms conventionally and applies the pending conjuncts and the tail.
  /// This is how BE Plan Optimizer builds *partially bounded* plans
  /// (paper §3).
  ///
  /// `seed_layout[p]` names the query attribute at seed column p;
  /// `conjunct_applied[ci]` marks conjuncts already enforced inside the
  /// fragment; `atom_in_seed[a]` marks atoms the fragment covered.
  Result<std::unique_ptr<PlanNode>> PlanWithSeed(
      const BoundQuery& query, std::unique_ptr<PlanNode> seed,
      const std::vector<AttrRef>& seed_layout,
      std::vector<bool> conjunct_applied,
      const std::vector<bool>& atom_in_seed) const;

 private:
  struct JoinState;

  Result<std::unique_ptr<PlanNode>> BuildAtomPlan(const BoundQuery& query,
                                                  size_t atom,
                                                  JoinState* state) const;
  std::vector<size_t> DecideOrder(const BoundQuery& query,
                                  const std::vector<size_t>& atoms,
                                  bool have_seed) const;
  Result<std::unique_ptr<PlanNode>> PlanJoinsCore(
      const BoundQuery& query, JoinState* state,
      std::unique_ptr<PlanNode> current,
      const std::vector<size_t>& order) const;
  Result<std::unique_ptr<PlanNode>> PlanTail(const BoundQuery& query,
                                             std::unique_ptr<PlanNode> input,
                                             JoinState* state) const;

  const EngineProfile& profile_;
};

}  // namespace beas

#endif  // BEAS_PLAN_PLANNER_H_
