#include "service/beas_service.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "bounded/columnar_tail.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "service/result_cache.h"
#include "sql/canonical_template.h"

namespace beas {

namespace {

std::string BoundedExplanation(uint64_t bound, bool cached) {
  std::string out =
      "covered by the access schema; bounded plan with deduced bound M = " +
      WithCommas(bound);
  if (cached) out += " (cached template plan)";
  return out;
}

/// Cross-checks the hot-path masker against the reference lexer lifting:
/// same parameter values, in the same order. Run once per template.
bool ParamsAgree(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].type() != b[i].type() || a[i] != b[i]) return false;
  }
  return true;
}

/// Case-insensitive "does the SQL mention the stats table" check — cheap
/// enough to run on every Execute, and a false positive (the name inside
/// a string literal) merely refreshes the table needlessly.
bool MentionsStatsTable(const std::string& sql) {
  const char* name = BeasService::kStatsTableName;
  size_t n = std::strlen(name);
  if (sql.size() < n) return false;
  for (size_t i = 0; i + n <= sql.size(); ++i) {
    size_t j = 0;
    while (j < n &&
           std::tolower(static_cast<unsigned char>(sql[i + j])) == name[j]) {
      ++j;
    }
    if (j == n) return true;
  }
  return false;
}

/// Detaches dictionary-backed string Values into self-contained inline
/// strings. Results cross the service boundary and outlive the shared
/// lock they were computed under; a dictionary-backed Value in them would
/// silently change meaning when a later maintenance cycle renumbers the
/// table's dictionary (RunAdjustmentCycle's order-preserving rebuilds) —
/// the same hazard class as DROP TABLE, but triggered autonomously. The
/// copy is paid once per result cell, at the boundary of answers that are
/// bounded-small by construction; everything inside the engine stays on
/// the zero-copy code path.
void DetachResultStrings(QueryResult* result) {
  for (Row& row : result->rows) {
    for (Value& v : row) {
      if (v.dict() != nullptr) v = Value::String(v.AsString());
    }
  }
}

/// Lowercased, deduplicated names of the tables a bound query reads —
/// the result cache's epoch-validation set (catalog lookup is
/// case-insensitive, so lowercase resolves).
std::vector<std::string> TablesReadBy(const BoundQuery& query) {
  std::vector<std::string> tables;
  for (const BoundAtom& atom : query.atoms) {
    std::string name = ToLower(atom.table->name());
    if (std::find(tables.begin(), tables.end(), name) == tables.end()) {
      tables.push_back(std::move(name));
    }
  }
  return tables;
}

void AppendU64Key(std::string* key, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    key->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Typed, length-prefixed parameter serialization for the result-cache
/// key: no two distinct (type, value) pairs may collide.
void AppendValueKey(std::string* key, const Value& v) {
  if (v.is_null()) {
    key->push_back('n');
    return;
  }
  switch (v.type()) {
    case TypeId::kInt64:
      key->push_back('i');
      AppendU64Key(key, static_cast<uint64_t>(v.AsInt64()));
      break;
    case TypeId::kDouble: {
      key->push_back('d');
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      AppendU64Key(key, bits);
      break;
    }
    case TypeId::kString: {
      key->push_back('s');
      const std::string& s = v.AsString();
      AppendU64Key(key, s.size());
      *key += s;
      break;
    }
    default: {
      key->push_back('?');
      std::string s = v.ToString();
      AppendU64Key(key, s.size());
      *key += s;
      break;
    }
  }
}

}  // namespace

BeasService::BeasService(ServiceOptions options)
    : options_(std::move(options)),
      catalog_(&db_),
      maintenance_(&db_, &catalog_),
      session_(&db_, &catalog_),
      cache_(options_.cache_capacity, options_.cache_shards),
      cache_enabled_(options_.enable_plan_cache),
      result_cache_(std::make_unique<ResultCache>(
          options_.result_cache_max_bytes, options_.cache_shards)),
      result_cache_enabled_(options_.enable_result_cache &&
                            options_.result_cache_max_bytes > 0),
      // At least one worker, or Submit() futures would never resolve.
      pool_(std::max<size_t>(1, options_.num_workers)) {
  // (b) incremental index maintenance: inserts/deletes update AC indices
  // in place, keeping cached plans valid — no cache invalidation here.
  maintenance_.Attach();
  // (a) plan-validity events invalidate at table granularity. The result
  // cache hard-evicts on the same events (plus, unlike plans, on plain
  // writes — those go through the table version epochs, not these hooks).
  db_.RegisterDdlHook([this](const std::string& table) {
    cache_.InvalidateTable(table);
    result_cache_->InvalidateTable(table);
  });
  catalog_.AddChangeListener([this](AsCatalog::ChangeKind,
                                    const std::string& table,
                                    const std::string&) {
    cache_.InvalidateTable(table);
    result_cache_->InvalidateTable(table);
  });
  if (!options_.durability.dir.empty()) {
    // The stats table is recycled with direct heap writes outside the
    // hooked write path; logging or checkpointing it would replay stale
    // gauges (and its DROP has no hook to log).
    options_.durability.transient_tables = {kStatsTableName};
    durability_ = std::make_unique<durability::DurabilityManager>(
        &db_, &catalog_, options_.durability);
    // Recovers the data dir into db_/catalog_, registers the structural
    // logging hooks, and starts the group-commit drainers. A failure is
    // latched (durability_status()); durable writes then refuse.
    (void)durability_->Open();
    // Checkpoints ride the maintenance cadence: RunAdjustmentCycle ends
    // inside the exclusive structural section this hook needs.
    maintenance_.SetCheckpointHook(
        [this] { return durability_->MaybeCheckpointLocked(); });
    // The scrubber rides the same quiesced cycle, strictly before the
    // checkpoint hook: detect (and quarantine/repair) rot first, so a
    // cycle never checkpoints corrupt memory over the last good copy.
    maintenance_.SetScrubHook([this] { return durability_->ScrubLocked(); });
  }
}

BeasService::~BeasService() = default;

// ---------------------------------------------------------------------------
// Write side.
// ---------------------------------------------------------------------------

Result<TableInfo*> BeasService::CreateTable(const std::string& name,
                                            const Schema& schema) {
  // Durable: the DDL applies under the commit gate and its meta record is
  // logged by the durability layer's DDL hook before the call returns.
  if (durability_ != nullptr) return durability_->CreateTable(name, schema);
  // DDL self-locks the structural lock exclusively inside Database.
  return db_.CreateTable(name, schema);
}

Status BeasService::Insert(const std::string& table, Row row) {
  // Durable: enqueue on the row's shard WAL; the ack resolves after the
  // group fsync AND the apply — which runs through db_.Insert below, on
  // the drainer thread, with identical locking.
  if (durability_ != nullptr) return durability_->Insert(table, std::move(row));
  // Per-shard locking inside Database: only the shard the row hashes to
  // is blocked; inserts to other shards (and none of the readers' shards
  // being free) proceed concurrently.
  return db_.Insert(table, std::move(row));
}

Status BeasService::InsertBatch(const std::string& table,
                                std::vector<Row> rows) {
  if (rows.empty()) return Status::OK();
  if (durability_ != nullptr) {
    return durability_->InsertBatch(table, std::move(rows));
  }
  return db_.InsertBatch(table, std::move(rows));
}

Status BeasService::Delete(const std::string& table, const Row& row) {
  if (durability_ != nullptr) return durability_->Delete(table, row);
  return db_.DeleteWhereEquals(table, row);
}

Status BeasService::RegisterConstraint(AccessConstraint constraint) {
  // The stats table is refreshed outside the hooked write path (and
  // periodically recycled), so an AC index on it would silently go stale.
  if (constraint.table == kStatsTableName) {
    return Status::InvalidArgument(
        std::string(kStatsTableName) +
        " is a service-managed metadata table; access constraints on it "
        "are not supported");
  }
  // Gate before structural lock (the durability lock order); the catalog
  // change listener logs the registration under this gate.
  durability::DurabilityManager::StructuralGate gate(durability_.get());
  Database::StructuralScope lock(&db_);
  return catalog_.Register(std::move(constraint));
}

Status BeasService::UnregisterConstraint(const std::string& name) {
  durability::DurabilityManager::StructuralGate gate(durability_.get());
  Database::StructuralScope lock(&db_);
  return catalog_.Unregister(name);
}

Status BeasService::RunAdjustmentCycle(double headroom, size_t* changed_out) {
  durability::DurabilityManager::StructuralGate gate(durability_.get());
  Database::StructuralScope lock(&db_);
  return maintenance_.RunAdjustmentCycle(headroom, changed_out);
}

Status BeasService::ApplySuggestions(
    const std::vector<MaintenanceManager::Adjustment>& adjustments) {
  durability::DurabilityManager::StructuralGate gate(durability_.get());
  Database::StructuralScope lock(&db_);
  return maintenance_.ApplySuggestions(adjustments);
}

Status BeasService::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument("service is not durable");
  }
  return durability_->Checkpoint();
}

Status BeasService::Scrub(durability::ScrubReport* report) {
  if (durability_ == nullptr) {
    return Status::InvalidArgument("service is not durable");
  }
  return durability_->Scrub(report);
}

std::vector<MaintenanceManager::Adjustment> BeasService::RevalidateAndSuggest(
    double headroom) const {
  Database::ReadScope lock(&db_);
  return maintenance_.RevalidateAndSuggest(headroom);
}

// ---------------------------------------------------------------------------
// Read side: Query() is the single entry point. Every named method below
// builds a QueryRequest and funnels through it, so admission, tenant
// accounting, and telemetry behave identically no matter which transport
// or shim a request arrived through.
// ---------------------------------------------------------------------------

const char* QueryModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kAuto:
      return "auto";
    case QueryMode::kBoundedOnly:
      return "bounded";
    case QueryMode::kApproximate:
      return "approx";
    case QueryMode::kCheckOnly:
      return "check";
  }
  return "auto";
}

Result<QueryMode> ParseQueryMode(const std::string& token) {
  if (token.empty() || token == "auto") return QueryMode::kAuto;
  if (token == "bounded") return QueryMode::kBoundedOnly;
  if (token == "approx") return QueryMode::kApproximate;
  if (token == "check") return QueryMode::kCheckOnly;
  return Status::InvalidArgument("unknown query mode: '" + token +
                                 "' (expected auto|bounded|approx|check)");
}

Result<QueryResponse> BeasService::Query(const QueryRequest& request) {
  TenantState* tenant = TenantFor(request.tenant);
  if (tenant != nullptr) {
    tenant->requests.fetch_add(1, std::memory_order_relaxed);
  }
  switch (request.mode) {
    case QueryMode::kAuto:
      return QueryAuto(request, tenant);
    case QueryMode::kBoundedOnly:
      return QueryBoundedOnly(request, tenant);
    case QueryMode::kApproximate:
      return QueryApproximate(request, tenant);
    case QueryMode::kCheckOnly:
      return QueryCheckOnly(request);
  }
  // Unknown byte off the wire: typed client error, never a crash.
  return Status::InvalidArgument(
      "unknown query mode " +
      std::to_string(static_cast<unsigned>(request.mode)));
}

Result<ServiceResponse> BeasService::Execute(const std::string& sql,
                                             const QueryOptions& qopts) {
  QueryRequest request;
  request.sql = sql;
  request.options = qopts;
  return Query(request);
}

Result<QueryResponse> BeasService::QueryAuto(const QueryRequest& request,
                                             TenantState* tenant) {
  if (MentionsStatsTable(request.sql)) {
    // Materialize fresh serving-health counters before answering; the
    // refresh takes the exclusive lock, the query itself runs shared.
    // (The refresh rewrites the stats table's rows, bumping its version
    // epoch — so a previously cached beas_stats answer can never be
    // served stale.)
    BEAS_RETURN_NOT_OK(RefreshStatsTable());
  }
  TemplateInfo tinfo = PrepareTemplate(request.sql);
  Database::ReadScope lock(&db_);
  // Result-cache hit: serve the materialized answer before binding,
  // coverage checking, or any admission reservation — a hit consumes no
  // cost grant and cannot be rejected by an exhausted pool.
  std::string rkey;
  uint64_t rhash = 0;
  if (tinfo.have && result_cache_enabled_.load(std::memory_order_relaxed)) {
    rkey = ResultKeyFor(tinfo, QueryMode::kAuto, request.options);
    rhash = HashString(rkey);
    QueryResponse hit;
    if (LookupResult(rhash, rkey, &hit)) return hit;
  }
  std::vector<std::string> tables;
  Result<QueryResponse> resp = ExecuteLocked(request, tinfo, tenant, &tables);
  if (resp.ok()) {
    resp->covered =
        resp->decision.mode == BeasSession::ExecutionDecision::Mode::kBounded;
    // Still under the shared lock: no rebuild can race the detach.
    DetachResultStrings(&resp->result);
    if (!rkey.empty()) {
      // Same ReadScope the answer was computed under: the epochs captured
      // here are exactly the epochs the answer was evaluated at.
      MaybeStoreResult(rhash, rkey, *resp, request.options, tables);
    }
  }
  return resp;
}

BeasService::TemplateInfo BeasService::PrepareTemplate(const std::string& sql) {
  TemplateInfo info;
  info.sql = sql;
  Result<SqlTemplate> masked = MaskSqlLiterals(sql);
  if (!masked.ok()) return info;
  info.have = true;
  info.masked = std::move(*masked);
  CanonicalizedTemplate canon = CanonicalizeTemplate(info.masked);
  if (!canon.changed) return info;
  // Self-check before trusting a rewrite: render the canonical template
  // back to SQL and re-mask it; anything short of an exact round trip
  // (text AND parameters) falls back to the original spelling.
  Result<std::string> rendered = RenderTemplate(canon.tmpl);
  if (!rendered.ok()) return info;
  Result<SqlTemplate> remasked = MaskSqlLiterals(*rendered);
  if (!remasked.ok() || remasked->text != canon.tmpl.text ||
      !ParamsAgree(remasked->params, canon.tmpl.params)) {
    return info;
  }
  info.masked = std::move(canon.tmpl);
  info.sql = std::move(*rendered);
  info.canonicalized = true;
  template_canonicalizations_.fetch_add(1, std::memory_order_relaxed);
  return info;
}

std::string BeasService::ResultKeyFor(const TemplateInfo& tinfo,
                                      QueryMode mode,
                                      const QueryOptions& qopts) {
  std::string key = tinfo.masked.text;
  key.push_back('\0');
  key.push_back(static_cast<char>(mode));
  // The budget class: answers under different fetch budgets or min-η
  // contracts are different answers. The deadline is deliberately NOT in
  // the key — it only changes the answer by timing out, and timed-out
  // answers are never cached.
  AppendU64Key(&key, qopts.fetch_budget);
  double min_eta = qopts.min_eta;
  uint64_t bits;
  std::memcpy(&bits, &min_eta, sizeof(bits));
  AppendU64Key(&key, bits);
  for (const Value& v : tinfo.masked.params) AppendValueKey(&key, v);
  return key;
}

bool BeasService::LookupResult(uint64_t hash, const std::string& key,
                               QueryResponse* resp) {
  std::shared_ptr<const ResultCache::Entry> entry =
      result_cache_->Lookup(hash, key);
  if (entry == nullptr) return false;
  // Epoch validation under the caller's ReadScope: every writer is
  // excluded, so epoch equality means the source data is bit-identical
  // to what the cached answer was computed from.
  for (const auto& te : entry->table_epochs) {
    Result<TableInfo*> table = db_.catalog()->GetTable(te.first);
    if (!table.ok() || (*table)->heap()->version_epoch() != te.second) {
      result_cache_->RemoveStale(hash, key);
      return false;
    }
  }
  result_cache_->NoteHit();
  *resp = entry->response;
  resp->result_cache_hit = true;
  return true;
}

void BeasService::MaybeStoreResult(uint64_t hash, const std::string& key,
                                   const QueryResponse& resp,
                                   const QueryOptions& qopts,
                                   const std::vector<std::string>& tables) {
  if (!result_cache_enabled_.load(std::memory_order_relaxed)) return;
  // Only complete answers — or partial/degraded ones the client's min_eta
  // contract explicitly accepted — are worth replaying. Timed-out (or
  // cancelled; both surface as timed_out) answers reflect a deadline, not
  // the data, and degraded answers reflect admission pressure.
  if (resp.timed_out) return;
  if ((resp.eta < 1.0 || resp.degraded) &&
      !(qopts.min_eta > 0 && resp.eta >= qopts.min_eta)) {
    return;
  }
  auto entry = std::make_shared<ResultCache::Entry>();
  entry->response = resp;
  entry->response.result_cache_hit = false;
  entry->table_epochs.reserve(tables.size());
  for (const std::string& table_name : tables) {
    Result<TableInfo*> table = db_.catalog()->GetTable(table_name);
    if (!table.ok()) return;  // racing DDL: don't cache
    entry->table_epochs.emplace_back(table_name,
                                     (*table)->heap()->version_epoch());
  }
  entry->bytes = ApproxResponseBytes(entry->response) + key.size();
  result_cache_->Insert(hash, key, std::move(entry));
}

ResultCacheStats BeasService::result_cache_stats() const {
  return result_cache_->stats();
}

void BeasService::ClearResultCache() { result_cache_->Clear(); }

// ---------------------------------------------------------------------------
// Admission control: the deduced access bound of a covered query is a
// tight, a-priori cost estimate — exactly the quantity the paper bounds —
// so it doubles as the admission cost unit. Reservations are CAS-based on
// one atomic; no lock is held while a query runs.
// ---------------------------------------------------------------------------

BeasService::TenantState* BeasService::TenantFor(const std::string& tenant) {
  if (tenant.empty()) return nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mutex_);
  std::unique_ptr<TenantState>& slot = tenants_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    auto cap = options_.tenant_cost_caps.find(tenant);
    slot->cap = cap != options_.tenant_cost_caps.end()
                    ? cap->second
                    : options_.tenant_max_inflight_cost;
  }
  return slot.get();
}

Result<BeasService::AdmissionTicket> BeasService::Admit(uint64_t bound,
                                                        TenantState* tenant) {
  AdmissionTicket ticket;
  if (bound == 0) return ticket;  // free query: nothing to reserve

  // Level 1 — the tenant's own pool. A capped tenant degrades before it
  // rejects, exactly like the global pool; a cap of 0 only records usage.
  uint64_t remaining = bound;
  bool tenant_degraded = false;
  if (tenant != nullptr) {
    ticket.tenant = tenant;
    if (tenant->cap > 0) {
      uint64_t used = tenant->inflight.load(std::memory_order_relaxed);
      for (;;) {
        if (used >= tenant->cap) {
          tenant->rejected.fetch_add(1, std::memory_order_relaxed);
          queries_rejected_.fetch_add(1, std::memory_order_relaxed);
          return Status::ResourceExhausted(
              "tenant admission: in-flight cost " + WithCommas(used) +
              " has exhausted the tenant's cap of " + WithCommas(tenant->cap) +
              " (query's deduced access bound: " + WithCommas(bound) + ")");
        }
        uint64_t grant = std::min(remaining, tenant->cap - used);
        if (tenant->inflight.compare_exchange_weak(
                used, used + grant, std::memory_order_relaxed)) {
          ticket.tenant_charged = grant;
          tenant_degraded = grant < remaining;
          remaining = grant;
          break;
        }
      }
    } else {
      tenant->inflight.fetch_add(remaining, std::memory_order_relaxed);
      ticket.tenant_charged = remaining;
    }
  }

  // Level 2 — the global pool, reserving the (possibly shrunk) tenant
  // grant. A shortfall here refunds the tenant the difference so the two
  // charges always agree.
  uint64_t cap = options_.max_inflight_cost;
  if (cap > 0) {
    uint64_t used = inflight_cost_.load(std::memory_order_relaxed);
    for (;;) {
      if (used >= cap) {
        if (ticket.tenant_charged > 0) {
          tenant->inflight.fetch_sub(ticket.tenant_charged,
                                     std::memory_order_relaxed);
          ticket.tenant_charged = 0;
        }
        queries_rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "admission control: in-flight cost " + WithCommas(used) +
            " has exhausted the budget of " + WithCommas(cap) +
            " (query's deduced access bound: " + WithCommas(bound) + ")");
      }
      // Degrade before rejecting: grant whatever remains and run the query
      // under that fetch budget, with honest η.
      uint64_t grant = std::min(remaining, cap - used);
      if (inflight_cost_.compare_exchange_weak(used, used + grant,
                                               std::memory_order_relaxed)) {
        ticket.charged = grant;
        if (grant < remaining && ticket.tenant_charged > 0) {
          tenant->inflight.fetch_sub(remaining - grant,
                                     std::memory_order_relaxed);
          ticket.tenant_charged -= remaining - grant;
        }
        remaining = grant;
        break;
      }
    }
  }

  ticket.grant = remaining;
  ticket.degraded = remaining < bound;
  if (ticket.degraded) {
    queries_degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (tenant != nullptr) {
    if (tenant_degraded) {
      tenant->degraded.fetch_add(1, std::memory_order_relaxed);
    }
    // High-water mark of the tenant's in-flight cost, for beas_stats.
    uint64_t now = tenant->inflight.load(std::memory_order_relaxed);
    uint64_t max = tenant->inflight_max.load(std::memory_order_relaxed);
    while (now > max && !tenant->inflight_max.compare_exchange_weak(
                            max, now, std::memory_order_relaxed)) {
    }
  }
  return ticket;
}

void BeasService::ReleaseAdmission(const AdmissionTicket& ticket) {
  if (ticket.charged > 0) {
    inflight_cost_.fetch_sub(ticket.charged, std::memory_order_relaxed);
  }
  if (ticket.tenant != nullptr && ticket.tenant_charged > 0) {
    ticket.tenant->inflight.fetch_sub(ticket.tenant_charged,
                                      std::memory_order_relaxed);
  }
}

Status BeasService::RunCoveredAdmitted(const BoundQuery& query,
                                       const BoundedPlan& plan,
                                       BoundedExecOptions exec_options,
                                       const QueryOptions& qopts,
                                       TenantState* tenant,
                                       QueryResponse* resp) {
  BEAS_ASSIGN_OR_RETURN(AdmissionTicket ticket,
                        Admit(plan.total_access_bound, tenant));
  struct Release {
    BeasService* service;
    const AdmissionTicket* ticket;
    ~Release() { service->ReleaseAdmission(*ticket); }
  } release{this, &ticket};

  if (qopts.fetch_budget > 0) exec_options.fetch_budget = qopts.fetch_budget;
  if (ticket.degraded) {
    exec_options.fetch_budget =
        exec_options.fetch_budget > 0
            ? std::min(exec_options.fetch_budget, ticket.grant)
            : ticket.grant;
  }
  if (qopts.timeout_millis > 0) {
    exec_options.control =
        ExecControl::After(std::chrono::milliseconds(qopts.timeout_millis));
  }
  exec_options.control.cancel = qopts.cancel;

  BoundedExecStats stats;
  BEAS_ASSIGN_OR_RETURN(
      resp->result, session_.ExecuteCovered(query, plan, exec_options, &stats));
  resp->eta = stats.eta;
  resp->degraded = ticket.degraded;
  resp->timed_out = stats.timed_out;
  if (stats.timed_out) {
    queries_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
  if (qopts.min_eta > 0 && stats.eta < qopts.min_eta) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "answer coverage eta=" + std::to_string(stats.eta) +
        " fell below the requested min_eta=" + std::to_string(qopts.min_eta));
  }
  return Status::OK();
}

ServiceCounters BeasService::service_counters() const {
  ServiceCounters out;
  out.queries_timed_out_total =
      queries_timed_out_.load(std::memory_order_relaxed);
  out.queries_rejected_total =
      queries_rejected_.load(std::memory_order_relaxed);
  out.queries_degraded_total =
      queries_degraded_.load(std::memory_order_relaxed);
  out.submit_queue_depth = submit_queue_depth_.load(std::memory_order_relaxed);
  out.inflight_cost = inflight_cost_.load(std::memory_order_relaxed);
  return out;
}

TenantCounters BeasService::tenant_counters(const std::string& tenant) const {
  TenantCounters out;
  std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return out;
  const TenantState& state = *it->second;
  out.requests_total = state.requests.load(std::memory_order_relaxed);
  out.rejected_total = state.rejected.load(std::memory_order_relaxed);
  out.degraded_total = state.degraded.load(std::memory_order_relaxed);
  out.inflight_cost = state.inflight.load(std::memory_order_relaxed);
  out.inflight_cost_max = state.inflight_max.load(std::memory_order_relaxed);
  return out;
}

Status BeasService::RefreshStatsTable() {
  // Each refresh tombstones the old snapshot and appends a fresh one, and
  // heap slots are never reused — so a polled stats table would grow
  // forever. Recreate it (cheap, rare) once the dead-slot debt builds up.
  constexpr size_t kMaxDeadSlots = 4096;
  // One refresh at a time (concurrent beas_stats queries each trigger
  // one); this leaf mutex is always taken before any engine lock.
  std::lock_guard<std::mutex> refresh_lock(stats_refresh_mutex_);

  // Phase 1 — make sure the table exists: recycle it when the dead-slot
  // debt built up, create it when missing. Structural-exclusive, briefly.
  bool need_create = false;
  {
    Database::StructuralScope lock(&db_);
    if (db_.catalog()->HasTable(kStatsTableName)) {
      BEAS_ASSIGN_OR_RETURN(TableInfo * info,
                            db_.catalog()->GetTable(kStatsTableName));
      if (info->heap()->NumSlots() - info->heap()->NumRows() > kMaxDeadSlots) {
        BEAS_RETURN_NOT_OK(db_.catalog()->DropTable(kStatsTableName));
        need_create = true;
      }
    } else {
      need_create = true;
    }
  }
  if (need_create) {
    BEAS_ASSIGN_OR_RETURN(
        TableInfo * info,
        db_.CreateTable(kStatsTableName, Schema({{"metric", TypeId::kString},
                                                 {"value", TypeId::kDouble}})));
    // No interning for this table: it is the one table the service ever
    // drops (the recycle above), and dictionary-backed Values in results
    // a client still holds would dangle into the destroyed dictionary.
    // Inline strings keep returned rows self-contained; at ~20 tiny rows
    // the encoding would buy nothing anyway.
    Database::StructuralScope lock(&db_);
    info->heap()->set_dict_enabled(false);
  }

  // Phase 2 — snapshot the gauges. Per-shard storage counters are read
  // one shard at a time under that shard's read lock (never two shard
  // locks at once, so this can never invert lock order against a writer
  // that is taking its shards in ascending order); dictionary gauges are
  // sampled under each table's intern mutex. Counters (cache,
  // maintenance) are atomics.
  PlanCacheStats cache = cache_.stats();
  double dict_strings = 0;
  double dict_bytes = 0;
  double dict_sorted_tables = 0;
  double dict_rebuilds_total = 0;
  double num_tables = 0;
  double num_rows = 0;
  size_t lock_shards = db_.num_shard_locks();
  std::vector<double> rows_per_shard(lock_shards, 0);
  std::vector<std::string> table_names;
  {
    Database::ShardReadScope scope(&db_, 0);
    table_names = db_.catalog()->TableNames();
    num_tables = static_cast<double>(table_names.size());
    for (const std::string& name : table_names) {
      Result<TableInfo*> table = db_.catalog()->GetTable(name);
      if (!table.ok()) continue;
      TableHeap::DictGauges gauges = (*table)->heap()->SampleDictGauges();
      dict_strings += static_cast<double>(gauges.strings);
      dict_bytes += static_cast<double>(gauges.bytes);
      if ((*table)->heap()->dict() != nullptr && gauges.sorted) {
        dict_sorted_tables += 1;
      }
      dict_rebuilds_total += static_cast<double>(gauges.rebuilds);
    }
  }
  for (size_t s = 0; s < lock_shards; ++s) {
    Database::ShardReadScope scope(&db_, s);
    for (const std::string& name : table_names) {
      // The metadata table's own (about-to-be-replaced) snapshot is not
      // data; leaving it out keeps rows_live equal to user-visible rows.
      if (name == kStatsTableName) continue;
      Result<TableInfo*> table = db_.catalog()->GetTable(name);
      if (!table.ok()) continue;
      const TableHeap& heap = *(*table)->heap();
      // Lock id s protects every heap shard congruent to it.
      for (size_t h = s; h < heap.num_shards(); h += lock_shards) {
        rows_per_shard[s] += static_cast<double>(heap.ShardLiveRows(h));
      }
    }
    num_rows += rows_per_shard[s];
  }
  double shard_rows_max = 0;
  double shard_rows_min = lock_shards == 0 ? 0 : rows_per_shard[0];
  for (double r : rows_per_shard) {
    shard_rows_max = std::max(shard_rows_max, r);
    shard_rows_min = std::min(shard_rows_min, r);
  }

  std::vector<Row> rows;
  auto add = [&rows](const char* metric, double value) {
    rows.push_back({Value::String(metric), Value::Double(value)});
  };
  add("plan_cache_hits", static_cast<double>(cache.hits));
  add("plan_cache_misses", static_cast<double>(cache.misses));
  add("plan_cache_evictions", static_cast<double>(cache.evictions));
  add("plan_cache_invalidations", static_cast<double>(cache.invalidations));
  add("plan_cache_uncacheable", static_cast<double>(cache.uncacheable));
  add("plan_cache_entries", static_cast<double>(cache.entries));
  add("plan_cache_enabled", cache_enabled_.load() ? 1 : 0);
  // Materialized result cache: hit/miss/eviction counters, the lazy
  // (epoch) + hard invalidation count, and the resident byte footprint.
  ResultCacheStats rcache = result_cache_->stats();
  add("result_cache_hits_total", static_cast<double>(rcache.hits));
  add("result_cache_misses_total", static_cast<double>(rcache.misses));
  add("result_cache_evictions_total", static_cast<double>(rcache.evictions));
  add("result_cache_invalidations_total",
      static_cast<double>(rcache.invalidations));
  add("result_cache_entries", static_cast<double>(rcache.entries));
  add("result_cache_bytes", static_cast<double>(rcache.bytes));
  add("result_cache_enabled", result_cache_enabled_.load() ? 1 : 0);
  add("template_canonicalizations_total",
      static_cast<double>(
          template_canonicalizations_.load(std::memory_order_relaxed)));
  add("maintenance_updates_applied",
      static_cast<double>(maintenance_.updates_applied()));
  add("constraints_registered",
      static_cast<double>(catalog_.schema().constraints().size()));
  add("tables", num_tables);
  add("rows_live", num_rows);
  add("dict_strings_total", dict_strings);
  add("dict_bytes_total", dict_bytes);
  add("dict_sorted_tables", dict_sorted_tables);
  add("dict_rebuilds_total", dict_rebuilds_total);
  // Process-wide counters (like tls_hash_string_calls): a process hosting
  // several BeasService instances reports their combined tail activity
  // under each service's beas_stats.
  add("tail_batches_total", static_cast<double>(
                                TailBatchesTotal().load(
                                    std::memory_order_relaxed)));
  add("tail_rows_grouped", static_cast<double>(
                               TailRowsGrouped().load(
                                   std::memory_order_relaxed)));
  add("workers", static_cast<double>(pool_.num_threads()));
  add("storage_shards", static_cast<double>(lock_shards));
  add("shard_rows_max", shard_rows_max);
  add("shard_rows_min", shard_rows_min);
  // Durability gauges: all-zero for an in-memory service, so dashboards
  // can query them unconditionally.
  durability::DurabilityCounters dur = durability_counters();
  add("wal_bytes_total", static_cast<double>(dur.wal_bytes_total));
  add("wal_group_commits_total",
      static_cast<double>(dur.wal_group_commits_total));
  add("wal_fsyncs_total", static_cast<double>(dur.wal_fsyncs_total));
  add("checkpoints_total", static_cast<double>(dur.checkpoints_total));
  add("recovery_replayed_records",
      static_cast<double>(dur.recovery_replayed_records));
  add("wal_retries_total", static_cast<double>(dur.wal_retries_total));
  add("wal_latched_shards", static_cast<double>(dur.wal_latched_shards));
  add("scrub_cycles_total", static_cast<double>(dur.scrub_cycles_total));
  add("scrub_corruptions_found",
      static_cast<double>(dur.scrub_corruptions_found));
  add("scrub_repairs_total", static_cast<double>(dur.scrub_repairs_total));
  add("quarantined_shards", static_cast<double>(dur.quarantined_shards));
  add("env_injected_faults", static_cast<double>(dur.env_injected_faults));
  // Resilience gauges: deadline/admission verdicts and the live queue.
  ServiceCounters svc = service_counters();
  add("queries_timed_out_total",
      static_cast<double>(svc.queries_timed_out_total));
  add("queries_rejected_total",
      static_cast<double>(svc.queries_rejected_total));
  add("queries_degraded_total",
      static_cast<double>(svc.queries_degraded_total));
  add("submit_queue_depth", static_cast<double>(svc.submit_queue_depth));
  // Wire front-door gauges: the network server increments them; all zero
  // for an in-process service, so dashboards query them unconditionally.
  add("net_connections_open",
      static_cast<double>(
          net_gauges_.connections_open.load(std::memory_order_relaxed)));
  add("net_requests_total",
      static_cast<double>(
          net_gauges_.requests_total.load(std::memory_order_relaxed)));
  add("net_bytes_in_total",
      static_cast<double>(
          net_gauges_.bytes_in_total.load(std::memory_order_relaxed)));
  add("net_bytes_out_total",
      static_cast<double>(
          net_gauges_.bytes_out_total.load(std::memory_order_relaxed)));
  add("net_result_cache_hits_total",
      static_cast<double>(
          net_gauges_.result_cache_hits.load(std::memory_order_relaxed)));
  // Per-tenant admission, aggregated: total cap rejections across tenants
  // and the highest in-flight-cost high-water mark any tenant reached.
  double tenant_rejected = 0;
  double tenant_inflight_max = 0;
  {
    std::shared_lock<std::shared_mutex> tenants_lock(tenants_mutex_);
    for (const auto& entry : tenants_) {
      tenant_rejected += static_cast<double>(
          entry.second->rejected.load(std::memory_order_relaxed));
      tenant_inflight_max = std::max(
          tenant_inflight_max,
          static_cast<double>(
              entry.second->inflight_max.load(std::memory_order_relaxed)));
    }
  }
  add("tenant_rejected_total", tenant_rejected);
  add("tenant_inflight_cost_max", tenant_inflight_max);

  // Phase 3 — swap the snapshot in: tombstone the previous rows (the
  // table has no AC indices, so no write hooks need to observe these) and
  // append the fresh ones, under the structural lock so no reader sees a
  // half-built table.
  Database::StructuralScope lock(&db_);
  BEAS_ASSIGN_OR_RETURN(TableInfo * info,
                        db_.catalog()->GetTable(kStatsTableName));
  TableHeap* heap = info->heap();
  for (auto it = heap->Begin(); it.Valid(); it.Next()) {
    BEAS_RETURN_NOT_OK(heap->Delete(it.slot()));
  }
  for (Row& row : rows) {
    heap->InsertUnchecked(std::move(row));
  }
  info->InvalidateStats();
  return Status::OK();
}

Result<ServiceResponse> BeasService::ExecuteUncachedQuery(
    const BoundQuery& query) {
  ServiceResponse resp;
  resp.cacheable = false;
  BEAS_ASSIGN_OR_RETURN(
      resp.result,
      session_.Execute(query, &resp.decision, options_.fallback_profile));
  return resp;
}

Result<QueryResponse> BeasService::ExecuteLocked(
    const QueryRequest& request, const TemplateInfo& tinfo,
    TenantState* tenant, std::vector<std::string>* tables_out) {
  // The canonical rendering when normalization changed the text (every
  // equivalent spelling then executes the identical query), the client's
  // original otherwise.
  const std::string& sql = tinfo.sql;
  const QueryOptions& qopts = request.options;
  if (!cache_enabled_.load(std::memory_order_relaxed) || !tinfo.have) {
    // Plan cache off, or malformed literal syntax (masking failed): let
    // the real front end handle it.
    BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_.Bind(sql));
    if (tables_out != nullptr) *tables_out = TablesReadBy(query);
    return ExecuteUncachedQuery(query);
  }
  const SqlTemplate& masked = tinfo.masked;

  QueryTemplate key;
  key.canonical = masked.text;
  key.hash = HashString(key.canonical);

  // --- Fast path: instantiate the cached template (the variant matching
  // this instance's frozen parameters), skipping parse+bind and the
  // coverage / partial-plan search. ---
  std::shared_ptr<const PlanCache::Entry> entry =
      cache_.Lookup(key, masked.params);
  BoundQuery query;
  bool have_query = false;
  if (entry != nullptr && entry->prepared != nullptr) {
    Result<BoundQuery> inst =
        InstantiatePrepared(*entry->prepared, masked.params);
    if (inst.ok()) {
      query = std::move(*inst);
      have_query = true;
      if (tables_out != nullptr) *tables_out = TablesReadBy(query);
      if (entry->covered) {
        Result<BoundedPlan> plan = RebindPlanConstants(entry->plan, query);
        if (plan.ok()) {
          ServiceResponse resp;
          resp.cache_hit = true;
          resp.template_hash = key.hash;
          BEAS_RETURN_NOT_OK(RunCoveredAdmitted(
              query, *plan, FastPathOptions(*entry), qopts, tenant, &resp));
          resp.decision.mode = BeasSession::ExecutionDecision::Mode::kBounded;
          resp.decision.deduced_bound = plan->total_access_bound;
          resp.decision.explanation = entry->covered_explanation;
          return resp;
        }
      } else if (entry->partial_computed) {
        // Copy only the cheap choice fields; the plan skeleton is copied
        // once, inside RebindPlanConstants.
        PartialPlanChoice choice;
        choice.found = entry->partial.found;
        choice.atom_enabled = entry->partial.atom_enabled;
        choice.conjunct_enabled = entry->partial.conjunct_enabled;
        bool rebound = true;
        if (choice.found) {
          Result<BoundedPlan> plan = RebindPlanConstants(
              entry->partial.plan, query, choice.conjunct_enabled);
          if (plan.ok()) {
            choice.plan = std::move(*plan);
          } else {
            rebound = false;
          }
        }
        if (rebound) {
          BoundedExecOptions exec_options;
          exec_options.collect_stats = false;
          exec_options.probe_pool = &pool_;
          BEAS_ASSIGN_OR_RETURN(
              PartialPlanResult partial,
              session_.ExecutePartialChoice(
                  query, choice, options_.fallback_profile, exec_options));
          ServiceResponse resp;
          resp.cache_hit = true;
          resp.template_hash = key.hash;
          resp.result = std::move(partial.result);
          resp.decision.mode =
              partial.any_bounded
                  ? BeasSession::ExecutionDecision::Mode::kPartiallyBounded
                  : BeasSession::ExecutionDecision::Mode::kConventional;
          resp.decision.deduced_bound = partial.fragment_access_bound;
          resp.decision.explanation = entry->reason + "; " +
                                      partial.description +
                                      " (cached template plan)";
          return resp;
        }
      }
      // Covered rebind mismatch, or a not-covered entry whose fallback was
      // never computed (strict-bounded / Check populated it): re-plan below
      // reusing the instantiated query.
    }
  }

  if (!have_query) {
    BEAS_ASSIGN_OR_RETURN(query, db_.Bind(sql));
    if (tables_out != nullptr) *tables_out = TablesReadBy(query);
  }
  return ExecuteMiss(sql, masked, std::move(query), qopts, tenant);
}

BoundedExecOptions BeasService::FastPathOptions(
    const PlanCache::Entry& entry) const {
  BoundedExecOptions options;
  options.collect_stats = false;
  options.compiled = entry.compiled.get();
  options.probe_pool = &pool_;
  return options;
}

std::shared_ptr<PlanCache::Entry> BeasService::MakeEntry(
    const std::string& sql, const SqlTemplate& masked,
    const QueryTemplate& tmpl, const BoundQuery& query,
    const CoverageResult& coverage) {
  auto entry = std::make_shared<PlanCache::Entry>();
  entry->covered = coverage.covered;
  entry->unsatisfiable = coverage.unsatisfiable;
  entry->plan = coverage.plan;
  entry->nodes_explored = coverage.nodes_explored;
  entry->reason = coverage.reason;
  entry->tables = tmpl.tables;
  if (coverage.covered) {
    entry->covered_explanation =
        BoundedExplanation(coverage.plan.total_access_bound, /*cached=*/true);
    // Compile the vectorized step programs once per template; every cache
    // hit executes with them directly (no per-query layout/rebind work).
    Result<CompiledPlan> compiled =
        CompileBoundedPlan(query, coverage.plan, catalog_);
    if (compiled.ok()) {
      entry->compiled =
          std::make_shared<const CompiledPlan>(std::move(*compiled));
    }
  }
  // Validate the hot-path masker against the reference lexer once per
  // template; on agreement the entry carries a substitutable binding.
  Result<SqlTemplate> reference = NormalizeSql(sql);
  if (reference.ok() && ParamsAgree(reference->params, masked.params)) {
    entry->prepared = std::make_shared<PreparedQuery>(
        PrepareQuery(BoundQuery(query), masked.params));
  }
  return entry;
}

Result<ServiceResponse> BeasService::ExecuteMiss(const std::string& sql,
                                                 const SqlTemplate& masked,
                                                 BoundQuery query,
                                                 const QueryOptions& qopts,
                                                 TenantState* tenant) {
  QueryTemplate tmpl = BuildQueryTemplate(masked, query);
  if (!tmpl.cacheable) {
    cache_.NoteUncacheable();
    ServiceResponse resp;
    BEAS_ASSIGN_OR_RETURN(resp, ExecuteUncachedQuery(query));
    resp.template_hash = tmpl.hash;
    return resp;
  }

  ServiceResponse resp;
  resp.template_hash = tmpl.hash;
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, session_.Check(query));
  std::shared_ptr<PlanCache::Entry> entry =
      MakeEntry(sql, masked, tmpl, query, coverage);

  if (coverage.covered) {
    // First execution of the template: full telemetry, but already with
    // the freshly compiled step programs and the probe pool.
    BoundedExecOptions exec_options;
    exec_options.compiled = entry->compiled.get();
    exec_options.probe_pool = &pool_;
    BEAS_RETURN_NOT_OK(RunCoveredAdmitted(query, coverage.plan, exec_options,
                                          qopts, tenant, &resp));
    resp.decision.mode = BeasSession::ExecutionDecision::Mode::kBounded;
    resp.decision.deduced_bound = coverage.plan.total_access_bound;
    resp.decision.explanation =
        BoundedExplanation(coverage.plan.total_access_bound, false);
  } else {
    BEAS_ASSIGN_OR_RETURN(PartialPlanChoice choice,
                          session_.ChoosePartialPlan(query));
    entry->partial_computed = true;
    entry->partial = choice;
    BEAS_ASSIGN_OR_RETURN(
        PartialPlanResult partial,
        session_.ExecutePartialChoice(query, choice,
                                      options_.fallback_profile));
    resp.result = std::move(partial.result);
    resp.decision.mode =
        partial.any_bounded
            ? BeasSession::ExecutionDecision::Mode::kPartiallyBounded
            : BeasSession::ExecutionDecision::Mode::kConventional;
    resp.decision.deduced_bound = partial.fragment_access_bound;
    resp.decision.explanation = coverage.reason + "; " + partial.description;
  }
  if (entry->prepared != nullptr) {
    QueryTemplate key;
    key.canonical = masked.text;
    key.hash = tmpl.hash;
    cache_.Insert(key, std::move(entry));
  } else {
    // Masker/lexer divergence: the template can never be served from the
    // cache, so the response must not claim eligibility.
    cache_.NoteUncacheable();
    resp.cacheable = false;
  }
  return resp;
}

Result<QueryResponse> BeasService::QueryBoundedOnly(
    const QueryRequest& request, TenantState* tenant) {
  TemplateInfo tinfo = PrepareTemplate(request.sql);
  Database::ReadScope lock(&db_);
  // Result-cache hit: short-circuit before the coverage check and before
  // any admission reservation. The mode byte in the key keeps bounded
  // answers separate from kAuto answers of the same template.
  std::string rkey;
  uint64_t rhash = 0;
  if (tinfo.have && result_cache_enabled_.load(std::memory_order_relaxed)) {
    rkey = ResultKeyFor(tinfo, QueryMode::kBoundedOnly, request.options);
    rhash = HashString(rkey);
    QueryResponse hit;
    if (LookupResult(rhash, rkey, &hit)) return hit;
  }
  bool cache_hit = false;
  BoundQuery query;
  std::shared_ptr<const PlanCache::Entry> entry;
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage,
                        CheckLocked(tinfo.sql, &cache_hit, &query, &entry));
  if (!coverage.covered) return Status::NotCovered(coverage.reason);
  // CheckLocked's plan is already rebound to this instance's constants.
  QueryResponse resp;
  resp.cache_hit = cache_hit;
  resp.covered = true;
  BoundedExecOptions exec_options;
  exec_options.probe_pool = &pool_;
  if (entry != nullptr) exec_options.compiled = entry->compiled.get();
  BEAS_RETURN_NOT_OK(RunCoveredAdmitted(query, coverage.plan, exec_options,
                                        request.options, tenant, &resp));
  resp.decision.mode = BeasSession::ExecutionDecision::Mode::kBounded;
  resp.decision.deduced_bound = coverage.plan.total_access_bound;
  resp.decision.explanation =
      BoundedExplanation(coverage.plan.total_access_bound, cache_hit);
  DetachResultStrings(&resp.result);
  if (!rkey.empty()) {
    MaybeStoreResult(rhash, rkey, resp, request.options, TablesReadBy(query));
  }
  return resp;
}

Result<ServiceResponse> BeasService::ExecuteBounded(const std::string& sql,
                                                    const QueryOptions& qopts) {
  QueryRequest request;
  request.sql = sql;
  request.mode = QueryMode::kBoundedOnly;
  request.options = qopts;
  return Query(request);
}

Result<QueryResponse> BeasService::QueryApproximate(const QueryRequest& request,
                                                    TenantState* tenant) {
  (void)tenant;  // counted by Query(); approximation self-bounds by budget
  if (request.approx_budget == 0) {
    return Status::InvalidArgument(
        "approximate mode requires a positive approx_budget");
  }
  Database::ReadScope lock(&db_);
  BoundQuery query;
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage,
                        CheckLocked(request.sql, nullptr, &query));
  if (!coverage.covered) {
    return Status::NotCovered("approximation requires a covered query: " +
                              coverage.reason);
  }
  BEAS_ASSIGN_OR_RETURN(
      ApproxResult approx,
      session_.ExecuteApproximate(query, coverage.plan, request.approx_budget));
  QueryResponse resp;
  resp.result = std::move(approx.result);
  resp.covered = true;
  resp.eta = approx.eta;
  resp.approx_exact = approx.exact;
  resp.approx_budget = approx.budget;
  resp.tuples_fetched = approx.tuples_fetched;
  resp.decision.mode = BeasSession::ExecutionDecision::Mode::kBounded;
  resp.decision.deduced_bound = coverage.plan.total_access_bound;
  resp.decision.explanation =
      "budgeted approximation (budget " + WithCommas(approx.budget) + ")";
  DetachResultStrings(&resp.result);
  return resp;
}

Result<ApproxResult> BeasService::ExecuteApproximate(const std::string& sql,
                                                     uint64_t budget) {
  QueryRequest request;
  request.sql = sql;
  request.mode = QueryMode::kApproximate;
  request.approx_budget = budget;
  BEAS_ASSIGN_OR_RETURN(QueryResponse resp, Query(request));
  ApproxResult approx;
  approx.result = std::move(resp.result);
  approx.eta = resp.eta;
  approx.budget = resp.approx_budget;
  approx.tuples_fetched = resp.tuples_fetched;
  approx.exact = resp.approx_exact;
  return approx;
}

Result<QueryResponse> BeasService::QueryCheckOnly(const QueryRequest& request) {
  Database::ReadScope lock(&db_);
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, CheckLocked(request.sql));
  QueryResponse resp;
  resp.covered = coverage.covered;
  resp.unsatisfiable = coverage.unsatisfiable;
  resp.reason = coverage.reason;
  resp.decision.deduced_bound =
      coverage.covered ? coverage.plan.total_access_bound : 0;
  resp.coverage = std::move(coverage);
  return resp;
}

Result<CoverageResult> BeasService::Check(const std::string& sql) {
  QueryRequest request;
  request.sql = sql;
  request.mode = QueryMode::kCheckOnly;
  BEAS_ASSIGN_OR_RETURN(QueryResponse resp, Query(request));
  return std::move(resp.coverage);
}

Result<CoverageResult> BeasService::CheckLocked(
    const std::string& sql, bool* cache_hit, BoundQuery* query_out,
    std::shared_ptr<const PlanCache::Entry>* entry_out) {
  if (cache_hit != nullptr) *cache_hit = false;
  if (entry_out != nullptr) entry_out->reset();
  if (!cache_enabled_.load(std::memory_order_relaxed)) {
    BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_.Bind(sql));
    Result<CoverageResult> coverage = session_.Check(query);
    if (query_out != nullptr) *query_out = std::move(query);
    return coverage;
  }
  Result<SqlTemplate> masked_r = MaskSqlLiterals(sql);
  if (!masked_r.ok()) {
    BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_.Bind(sql));
    Result<CoverageResult> coverage = session_.Check(query);
    if (query_out != nullptr) *query_out = std::move(query);
    return coverage;
  }
  SqlTemplate masked = std::move(*masked_r);
  QueryTemplate key;
  key.canonical = masked.text;
  key.hash = HashString(key.canonical);

  std::shared_ptr<const PlanCache::Entry> entry =
      cache_.Lookup(key, masked.params);
  if (entry != nullptr && entry->prepared != nullptr) {
    Result<BoundQuery> inst =
        InstantiatePrepared(*entry->prepared, masked.params);
    if (inst.ok()) {
      Result<BoundedPlan> plan =
          entry->covered ? RebindPlanConstants(entry->plan, *inst)
                         : Result<BoundedPlan>(BoundedPlan(entry->plan));
      if (plan.ok()) {
        CoverageResult coverage;
        coverage.covered = entry->covered;
        coverage.unsatisfiable = entry->unsatisfiable;
        coverage.plan = std::move(*plan);
        coverage.reason = entry->reason;
        coverage.nodes_explored = entry->nodes_explored;  // search saved
        if (cache_hit != nullptr) *cache_hit = true;
        if (query_out != nullptr) *query_out = std::move(*inst);
        if (entry_out != nullptr) *entry_out = std::move(entry);
        return coverage;
      }
    }
  }

  BEAS_ASSIGN_OR_RETURN(BoundQuery query, db_.Bind(sql));
  QueryTemplate tmpl = BuildQueryTemplate(masked, query);
  BEAS_ASSIGN_OR_RETURN(CoverageResult coverage, session_.Check(query));
  if (tmpl.cacheable) {
    std::shared_ptr<PlanCache::Entry> fresh =
        MakeEntry(sql, masked, tmpl, query, coverage);
    if (entry_out != nullptr) *entry_out = fresh;
    if (fresh->prepared != nullptr) {
      cache_.Insert(key, std::move(fresh));
    } else {
      cache_.NoteUncacheable();
    }
  } else {
    // Keep stats consistent with ExecuteLocked's uncacheable accounting.
    cache_.NoteUncacheable();
  }
  if (query_out != nullptr) *query_out = std::move(query);
  return coverage;
}

std::future<Result<QueryResponse>> BeasService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  // Bounded backlog: an overloaded service answers "no" in O(1) instead
  // of queueing work it cannot serve in time.
  uint64_t depth = submit_queue_depth_.fetch_add(1, std::memory_order_relaxed);
  if (depth >= options_.max_queue_depth) {
    submit_queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(Status::ResourceExhausted(
        "submit queue is full (" + std::to_string(options_.max_queue_depth) +
        " requests in flight)"));
    return future;
  }
  bool queued = pool_.Submit([this, promise, request = std::move(request)] {
    promise->set_value(Query(request));
    submit_queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  });
  if (!queued) {
    submit_queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(Status::Unavailable("service is shutting down"));
  }
  return future;
}

std::future<Result<ServiceResponse>> BeasService::Submit(
    const std::string& sql, const QueryOptions& qopts) {
  QueryRequest request;
  request.sql = sql;
  request.options = qopts;
  return Submit(std::move(request));
}

}  // namespace beas
